// Micro-benchmarks (google-benchmark) of the building blocks whose cost the
// paper argues must stay negligible (§V-B model choice, §VII-E):
//  * STM primitives: transactional read/write, top-level commit, nested
//    spawn/merge;
//  * M5 model-tree training and prediction at online training-set sizes;
//  * bagging ensemble fit (k=10) and EI sweep over the full 198-point space;
//  * KPI monitor per-commit cost.

#include <benchmark/benchmark.h>

#include <array>
#include <memory>

#include "ml/bagging.hpp"
#include "opt/config_space.hpp"
#include "opt/ei.hpp"
#include "runtime/monitor.hpp"
#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/rng.hpp"

using namespace autopn;

namespace {

stm::StmConfig bench_config() {
  stm::StmConfig cfg;
  cfg.pool_threads = 2;
  cfg.initial_top = 4;
  cfg.initial_children = 4;
  return cfg;
}

void BM_StmReadOnlyTx(benchmark::State& state) {
  stm::Stm stm{bench_config()};
  stm::VBox<int> box{42};
  for (auto _ : state) {
    int v = 0;
    stm.run_top([&](stm::Tx& tx) { v = box.read(tx); });
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_StmReadOnlyTx);

void BM_StmWriteCommit(benchmark::State& state) {
  // Arg selects the commit strategy: 0 = global lock, 1 = lock-free helping.
  stm::StmConfig cfg = bench_config();
  cfg.commit_strategy = state.range(0) == 0 ? stm::CommitStrategy::kGlobalLock
                                            : stm::CommitStrategy::kLockFree;
  stm::Stm stm{cfg};
  stm::VBox<int> box{0};
  int i = 0;
  for (auto _ : state) {
    stm.run_top([&](stm::Tx& tx) { box.write(tx, ++i); });
  }
}
BENCHMARK(BM_StmWriteCommit)->Arg(0)->Arg(1);

void BM_StmContendedCommit(benchmark::State& state) {
  // Two application threads hammering one box, per strategy.
  stm::StmConfig cfg = bench_config();
  cfg.commit_strategy = state.range(0) == 0 ? stm::CommitStrategy::kGlobalLock
                                            : stm::CommitStrategy::kLockFree;
  static stm::Stm* shared_stm = nullptr;
  static stm::VBox<long>* shared_box = nullptr;
  if (state.thread_index() == 0) {
    shared_stm = new stm::Stm{cfg};
    shared_box = new stm::VBox<long>{0L};
  }
  for (auto _ : state) {
    shared_stm->run_top(
        [&](stm::Tx& tx) { shared_box->write(tx, shared_box->read(tx) + 1); });
  }
  if (state.thread_index() == 0) {
    delete shared_box;
    delete shared_stm;
    shared_box = nullptr;
    shared_stm = nullptr;
  }
}
BENCHMARK(BM_StmContendedCommit)->Arg(0)->Arg(1)->Threads(2)->UseRealTime();

void BM_StmReadsPerTx(benchmark::State& state) {
  const auto reads = static_cast<std::size_t>(state.range(0));
  stm::Stm stm{bench_config()};
  stm::TArray<int> arr{reads, 1};
  for (auto _ : state) {
    long sum = 0;
    stm.run_top([&](stm::Tx& tx) {
      for (std::size_t k = 0; k < reads; ++k) sum += arr.read(tx, k);
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(reads));
}
BENCHMARK(BM_StmReadsPerTx)->Arg(16)->Arg(256);

void BM_StmNestedSpawnMerge(benchmark::State& state) {
  const auto children = static_cast<std::size_t>(state.range(0));
  stm::Stm stm{bench_config()};
  stm::TArray<int> arr{children, 0};
  for (auto _ : state) {
    stm.run_top([&](stm::Tx& tx) {
      std::vector<std::function<void(stm::Tx&)>> kids;
      kids.reserve(children);
      for (std::size_t k = 0; k < children; ++k) {
        kids.emplace_back([&arr, k](stm::Tx& child) { arr.write(child, k, 1); });
      }
      tx.run_children(std::move(kids));
    });
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(children));
}
BENCHMARK(BM_StmNestedSpawnMerge)->Arg(2)->Arg(8);

ml::Dataset make_training_set(std::size_t n) {
  util::Rng rng{11};
  ml::Dataset data{2};
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 1.0 + static_cast<double>(rng.uniform_index(48));
    const double c = 1.0 + static_cast<double>(rng.uniform_index(8));
    data.add(std::array{t, c}, t * 10.0 / (1.0 + 0.05 * t * c));
  }
  return data;
}

void BM_M5TreeFit(benchmark::State& state) {
  const auto data = make_training_set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto tree = ml::M5Tree::fit(data);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_M5TreeFit)->Arg(9)->Arg(30)->Arg(100);

void BM_M5TreePredict(benchmark::State& state) {
  const auto tree = ml::M5Tree::fit(make_training_set(30));
  const std::array<double, 2> x{20.0, 2.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(x));
  }
}
BENCHMARK(BM_M5TreePredict);

void BM_BaggingFit10(benchmark::State& state) {
  const auto data = make_training_set(static_cast<std::size_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto ensemble = ml::BaggingEnsemble::fit(data, 10, {}, ++seed);
    benchmark::DoNotOptimize(ensemble);
  }
}
BENCHMARK(BM_BaggingFit10)->Arg(9)->Arg(30);

void BM_EiSweepFullSpace(benchmark::State& state) {
  // One SMBO iteration's acquisition cost: predict + EI over all 198 configs.
  const auto ensemble = ml::BaggingEnsemble::fit(make_training_set(30), 10, {}, 3);
  const opt::ConfigSpace space{48};
  for (auto _ : state) {
    double best = 0.0;
    for (const opt::Config& cfg : space.all()) {
      const auto p = ensemble.predict(
          std::array{static_cast<double>(cfg.t), static_cast<double>(cfg.c)});
      best = std::max(best, opt::expected_improvement(p.mean, p.stddev(), 100.0));
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_EiSweepFullSpace);

void BM_MonitorOnCommit(benchmark::State& state) {
  runtime::CvAdaptivePolicy policy{0.10, 1000000};  // never completes
  policy.begin_window(0.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    benchmark::DoNotOptimize(policy.on_commit(t));
  }
}
BENCHMARK(BM_MonitorOnCommit);

}  // namespace

BENCHMARK_MAIN();
