// Dynamic-workload extension (paper §V "Dynamic workloads"): AutoPN coupled
// with a CUSUM change detector. The workload starts as a read-dominated scan
// (optimal: many top-level transactions) and abruptly shifts to write-heavy
// (optimal: few roots, many children). The detector notices the throughput
// shift and triggers a re-tuning round; we report configurations and
// distances from optimum before and after, plus detection latency.
//
// Runs in virtual time on commit-event streams.

#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "opt/autopn_optimizer.hpp"
#include "runtime/cusum.hpp"
#include "runtime/monitor.hpp"
#include "sim/event_sim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

/// One full AutoPN optimization against a model, measuring every proposal
/// with the adaptive policy on virtual commit streams. Returns the chosen
/// configuration and the virtual time spent.
struct TuneResult {
  opt::Config chosen{1, 1};
  double seconds = 0.0;
  std::size_t explorations = 0;
};

TuneResult tune(const sim::SurfaceModel& model, const opt::ConfigSpace& space,
                std::uint64_t seed, double start_time) {
  opt::AutoPnOptimizer optimizer{space, {}, seed};
  runtime::CvAdaptivePolicy policy{0.10, 10};
  double now = start_time;
  double reference = 0.0;
  std::uint64_t stream_seed = seed;
  while (auto proposal = optimizer.propose()) {
    sim::CommitStream stream{model, *proposal, ++stream_seed, now};
    if (reference > 0.0) policy.set_reference_throughput(reference);
    const auto m = runtime::run_window_on_stream(
        policy, [&stream] { return stream.next_commit(); }, now);
    now += m.elapsed;
    optimizer.observe(*proposal, m.throughput);
    if (proposal->t == 1 && proposal->c == 1 && m.throughput > 0.0) {
      reference = m.throughput;
    }
  }
  TuneResult result;
  result.chosen = optimizer.best();
  result.seconds = now - start_time;
  return result;
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};
  const sim::SurfaceModel before{sim::workload_by_name("array-0"), space.cores()};
  const sim::SurfaceModel after{sim::workload_by_name("array-90"), space.cores()};

  std::cout << "== Dynamic workload: array-0 (read-only) -> array-90 "
               "(write-heavy) ==\n\n";

  // Phase 1: tune on the initial workload.
  const TuneResult initial = tune(before, space, 17, 0.0);
  std::cout << "initial tuning: chose " << initial.chosen.to_string() << " (DFO "
            << util::fmt_percent(before.distance_from_optimum(space, initial.chosen))
            << " on array-0) in " << util::fmt_double(initial.seconds, 2)
            << "s virtual\n";

  // Steady state: arm CUSUM on the current throughput, sample periodically.
  runtime::CusumDetector detector{0.05, 0.5};
  detector.reset(before.mean_throughput(initial.chosen));

  // The shift: the same configuration now runs on the write-heavy surface.
  const double old_thr = before.mean_throughput(initial.chosen);
  const double new_thr = after.mean_throughput(initial.chosen);
  std::cout << "\nworkload shifts: throughput at " << initial.chosen.to_string()
            << " drops " << util::fmt_double(old_thr, 0) << " -> "
            << util::fmt_double(new_thr, 0) << " tx/s ("
            << util::fmt_percent(1.0 - new_thr / old_thr) << " drop)\n";

  // Feed periodic steady-state measurements (one per second of virtual time)
  // from the post-shift surface until CUSUM fires.
  util::Rng rng{23};
  int samples_to_detect = 0;
  bool detected = false;
  while (!detected && samples_to_detect < 1000) {
    ++samples_to_detect;
    detected = detector.add(after.sample(initial.chosen, 1.0, rng));
  }
  std::cout << "CUSUM detected the shift after " << samples_to_detect
            << " steady-state samples (1 per second)\n";

  // Phase 2: re-tune on the new workload.
  const TuneResult retuned = tune(after, space, 29, 0.0);
  std::cout << "\nre-tuning: chose " << retuned.chosen.to_string() << " (DFO "
            << util::fmt_percent(after.distance_from_optimum(space, retuned.chosen))
            << " on array-90) in " << util::fmt_double(retuned.seconds, 2)
            << "s virtual\n";

  util::TextTable summary{{"phase", "config", "thr on active workload", "DFO"}};
  summary.add_row({"tuned for array-0", initial.chosen.to_string(),
                   util::fmt_double(before.mean_throughput(initial.chosen), 0),
                   util::fmt_percent(before.distance_from_optimum(space, initial.chosen))});
  summary.add_row({"after shift, stale config", initial.chosen.to_string(),
                   util::fmt_double(after.mean_throughput(initial.chosen), 0),
                   util::fmt_percent(after.distance_from_optimum(space, initial.chosen))});
  summary.add_row({"after re-tuning", retuned.chosen.to_string(),
                   util::fmt_double(after.mean_throughput(retuned.chosen), 0),
                   util::fmt_percent(after.distance_from_optimum(space, retuned.chosen))});
  std::cout << '\n';
  summary.print(std::cout);

  const double recovered = after.mean_throughput(retuned.chosen) /
                           after.mean_throughput(initial.chosen);
  std::cout << "\nre-tuning recovered " << util::fmt_double(recovered, 2)
            << "x throughput over the stale configuration\n";
  return 0;
}
