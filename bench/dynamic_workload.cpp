// Dynamic-workload extension (paper §V "Dynamic workloads"): AutoPN coupled
// with a CUSUM change detector. The workload starts as a read-dominated scan
// (optimal: many top-level transactions) and abruptly shifts to write-heavy
// (optimal: few roots, many children). The detector notices the throughput
// shift and triggers a re-tuning round; we report configurations and
// distances from optimum before and after, plus detection latency.
//
// The re-tuning round is run twice: cold (the paper's blind 9-point
// bootstrap) and warm (one probe window per pivot configuration fits the
// compositional model, whose predicted surface seeds the surrogate as an
// opt::Prior, and the probes themselves seed its history — DESIGN.md §14).
// The comparison counts *total* live windows, probes included: the warm
// path only wins if probes + prior save more search than they cost.
//
// Runs in virtual time on commit-event streams.

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "model/advisor.hpp"
#include "model/compose.hpp"
#include "model/fit.hpp"
#include "opt/autopn_optimizer.hpp"
#include "runtime/cusum.hpp"
#include "runtime/monitor.hpp"
#include "sim/event_sim.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

/// One adaptive measurement window at `config` on the surface's commit
/// stream, starting at virtual time `now`.
runtime::Measurement probe_window(const sim::SurfaceModel& model,
                                  const opt::Config& config, std::uint64_t seed,
                                  double now, double reference,
                                  runtime::CvAdaptivePolicy& policy) {
  sim::CommitStream stream{model, config, seed, now};
  if (reference > 0.0) policy.set_reference_throughput(reference);
  return runtime::run_window_on_stream(
      policy, [&stream] { return stream.next_commit(); }, now);
}

/// One full AutoPN optimization against a model, measuring every proposal
/// with the adaptive policy on virtual commit streams. Returns the chosen
/// configuration, the virtual time spent and the live windows burned
/// (probe windows for the warm path included).
struct TuneResult {
  opt::Config chosen{1, 1};
  double seconds = 0.0;
  std::size_t windows = 0;
};

TuneResult tune(const sim::SurfaceModel& model, const opt::ConfigSpace& space,
                std::uint64_t seed, double start_time,
                const opt::AutoPnParams& params = {},
                const std::vector<model::Probe>& seed_observations = {},
                std::size_t extra_windows = 0, double extra_seconds = 0.0) {
  opt::AutoPnOptimizer optimizer{space, params, seed};
  // Probe windows double as observations: the pivots are already explored,
  // so the bootstrap skips them and the surrogate starts from live data.
  for (const model::Probe& p : seed_observations) {
    optimizer.observe(p.config, p.throughput);
  }
  runtime::CvAdaptivePolicy policy{0.10, 10};
  double now = start_time + extra_seconds;
  double reference = 0.0;
  std::uint64_t stream_seed = seed;
  TuneResult result;
  result.windows = extra_windows;
  while (auto proposal = optimizer.propose()) {
    const auto m =
        probe_window(model, *proposal, ++stream_seed, now, reference, policy);
    now += m.elapsed;
    ++result.windows;
    optimizer.observe(*proposal, m.throughput);
    if (proposal->t == 1 && proposal->c == 1 && m.throughput > 0.0) {
      reference = m.throughput;
    }
  }
  result.chosen = optimizer.best();
  result.seconds = now - start_time;
  return result;
}

/// The warm path: measure the pivot configurations, fit the
/// compositional model from those probes (starting from the *stale*
/// pre-shift parameters — all the warm start knows), inject its predicted
/// surface as the SMBO prior, and seed the optimizer's history with the
/// probes themselves (which makes the pivots count as explored, so the
/// warm bootstrap shrinks to whatever they don't cover).
TuneResult warm_tune(const sim::SurfaceModel& live,
                     const sim::WorkloadParams& stale_params,
                     const opt::ConfigSpace& space, std::uint64_t seed) {
  // Four numbers carry the whole fit, so probe windows get a generous
  // starvation timeout — the search default of 3/T(1,1) truncates windows
  // at configurations whose warm-up rate is near T(1,1), which reads as a
  // systematic 3-4x throughput under-estimate and inverts the fitted
  // surface's shape. The search windows stay default-timed: there the
  // surrogate averages over many observations instead.
  runtime::CvAdaptivePolicy policy{0.10, 10, /*timeout_scale=*/12.0};
  double now = 0.0;
  double reference = 0.0;
  std::vector<model::Probe> probes;
  std::uint64_t stream_seed = seed + 1000;
  for (const opt::Config& cfg : model::probe_configs(space)) {
    const auto m = probe_window(live, cfg, ++stream_seed, now, reference, policy);
    now += m.elapsed;
    if (cfg.t == 1 && cfg.c == 1 && m.throughput > 0.0) {
      reference = m.throughput;
    }
    probes.push_back({cfg, m.throughput});
  }

  model::PipelineParams pp;
  pp.workload = model::fit_workload(stale_params, probes, space.cores());
  pp.cores = space.cores();
  pp.workers = static_cast<std::size_t>(space.cores());
  const model::CompositionalModel fitted{pp};

  opt::AutoPnParams params;
  params.prior = model::make_prior(fitted, space);
  return tune(live, space, seed, 0.0, params, probes, probes.size(), now);
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};
  const sim::SurfaceModel before{sim::workload_by_name("array-0"), space.cores()};
  const sim::SurfaceModel after{sim::workload_by_name("array-90"), space.cores()};

  std::cout << "== Dynamic workload: array-0 (read-only) -> array-90 "
               "(write-heavy) ==\n\n";

  // Phase 1: tune on the initial workload.
  const TuneResult initial = tune(before, space, 17, 0.0);
  std::cout << "initial tuning: chose " << initial.chosen.to_string() << " (DFO "
            << util::fmt_percent(before.distance_from_optimum(space, initial.chosen))
            << " on array-0) in " << util::fmt_double(initial.seconds, 2)
            << "s virtual\n";

  // Steady state: arm CUSUM on the current throughput, sample periodically.
  runtime::CusumDetector detector{0.05, 0.5};
  detector.reset(before.mean_throughput(initial.chosen));

  // The shift: the same configuration now runs on the write-heavy surface.
  const double old_thr = before.mean_throughput(initial.chosen);
  const double new_thr = after.mean_throughput(initial.chosen);
  std::cout << "\nworkload shifts: throughput at " << initial.chosen.to_string()
            << " drops " << util::fmt_double(old_thr, 0) << " -> "
            << util::fmt_double(new_thr, 0) << " tx/s ("
            << util::fmt_percent(1.0 - new_thr / old_thr) << " drop)\n";

  // Feed periodic steady-state measurements (one per second of virtual time)
  // from the post-shift surface until CUSUM fires.
  util::Rng rng{23};
  int samples_to_detect = 0;
  bool detected = false;
  while (!detected && samples_to_detect < 1000) {
    ++samples_to_detect;
    detected = detector.add(after.sample(initial.chosen, 1.0, rng));
  }
  std::cout << "CUSUM detected the shift after " << samples_to_detect
            << " steady-state samples (1 per second)\n";

  // Phase 2: re-tune on the new workload — cold (blind 9-point bootstrap)
  // vs warm (4 pivot probes -> fitted model -> SMBO prior + 3-point
  // bootstrap). Both paths start from the same stale knowledge.
  const TuneResult retuned = tune(after, space, 29, 0.0);
  std::cout << "\nre-tuning (cold): chose " << retuned.chosen.to_string()
            << " (DFO "
            << util::fmt_percent(after.distance_from_optimum(space, retuned.chosen))
            << " on array-90) in " << util::fmt_double(retuned.seconds, 2)
            << "s virtual\n";

  std::cout << "\n== Cold vs model-warm re-tuning (averaged over 40 seeds) ==\n";
  double cold_windows = 0.0;
  double warm_windows = 0.0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  std::vector<double> cold_dfos;
  std::vector<double> warm_dfos;
  const int kSeeds = 40;
  for (std::uint64_t seed = 31; seed < 31 + kSeeds; ++seed) {
    const TuneResult cold = tune(after, space, seed, 0.0);
    const TuneResult warm =
        warm_tune(after, sim::workload_by_name("array-0"), space, seed);
    cold_windows += static_cast<double>(cold.windows);
    warm_windows += static_cast<double>(warm.windows);
    cold_seconds += cold.seconds;
    warm_seconds += warm.seconds;
    cold_dfos.push_back(after.distance_from_optimum(space, cold.chosen));
    warm_dfos.push_back(after.distance_from_optimum(space, warm.chosen));
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return 0.5 * (v[(v.size() - 1) / 2] + v[v.size() / 2]);
  };
  util::TextTable warmcmp{
      {"path", "live windows", "virtual seconds", "avg DFO", "median DFO"}};
  warmcmp.add_row({"cold (9-pt bootstrap)",
                   util::fmt_double(cold_windows / kSeeds, 1),
                   util::fmt_double(cold_seconds / kSeeds, 2),
                   util::fmt_percent(mean(cold_dfos)),
                   util::fmt_percent(median(cold_dfos))});
  warmcmp.add_row({"warm (4 probes + prior)",
                   util::fmt_double(warm_windows / kSeeds, 1),
                   util::fmt_double(warm_seconds / kSeeds, 2),
                   util::fmt_percent(mean(warm_dfos)),
                   util::fmt_percent(median(warm_dfos))});
  warmcmp.print(std::cout);
  std::cout << "(warm windows include the 4 pivot probes; the prior pays for "
               "itself\nwhen probes + prior save more search than they cost)\n";

  util::TextTable summary{{"phase", "config", "thr on active workload", "DFO"}};
  summary.add_row({"tuned for array-0", initial.chosen.to_string(),
                   util::fmt_double(before.mean_throughput(initial.chosen), 0),
                   util::fmt_percent(before.distance_from_optimum(space, initial.chosen))});
  summary.add_row({"after shift, stale config", initial.chosen.to_string(),
                   util::fmt_double(after.mean_throughput(initial.chosen), 0),
                   util::fmt_percent(after.distance_from_optimum(space, initial.chosen))});
  summary.add_row({"after re-tuning", retuned.chosen.to_string(),
                   util::fmt_double(after.mean_throughput(retuned.chosen), 0),
                   util::fmt_percent(after.distance_from_optimum(space, retuned.chosen))});
  std::cout << '\n';
  summary.print(std::cout);

  const double recovered = after.mean_throughput(retuned.chosen) /
                           after.mean_throughput(initial.chosen);
  std::cout << "\nre-tuning recovered " << util::fmt_double(recovered, 2)
            << "x throughput over the stale configuration\n";
  return 0;
}
