// Reproduces paper Fig 1: throughput of PN-TM workloads as a function of the
// parallelism configuration (t, c).
//
//  * Fig 1a: TPC-C (medium contention) surface — best configuration (20,2),
//    about 9x over the worst (1,1) and 2-3x over most other configurations.
//  * Fig 1b: a workload whose best configuration is (near) the worst of
//    another — we contrast array-0 (pure scans; loves (48,1)) with array-90
//    (write-heavy scans; loves (2,c) and collapses at (48,1)).

#include <iostream>

#include "bench/bench_common.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

void print_surface(const bench::WorkloadSurface& ws, const opt::ConfigSpace& space) {
  std::cout << "\n-- " << ws.params.name << " throughput surface (commits/s) --\n";
  const std::vector<int> t_values{1, 2, 4, 8, 12, 16, 20, 24, 32, 40, 48};
  const std::vector<int> c_values{1, 2, 3, 4, 6, 8, 12, 16, 24, 48};
  std::vector<std::string> header{"t\\c"};
  for (int c : c_values) header.push_back(std::to_string(c));
  util::TextTable table{header};
  for (int t : t_values) {
    std::vector<std::string> row{std::to_string(t)};
    for (int c : c_values) {
      const opt::Config cfg{t, c};
      row.push_back(space.valid(cfg)
                        ? util::fmt_double(ws.model.mean_throughput(cfg), 0)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  const double worst = [&] {
    double w = 1e300;
    for (const opt::Config& cfg : space.all()) {
      w = std::min(w, ws.model.mean_throughput(cfg));
    }
    return w;
  }();
  std::cout << "optimum " << ws.opt.config.to_string() << " @ "
            << util::fmt_double(ws.opt.throughput, 0) << "/s; vs (1,1) "
            << util::fmt_double(
                   ws.opt.throughput / ws.model.mean_throughput(opt::Config{1, 1}), 2)
            << "x; vs worst " << util::fmt_double(ws.opt.throughput / worst, 2)
            << "x\n";
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};
  const auto surfaces = bench::paper_surfaces(space);

  std::cout << "== Fig 1a: TPC-C performance vs parallelism configuration ==\n";
  std::cout << "paper: best (20,2), ~9x over worst (1,1), 2-3x over most others\n";
  for (const auto& ws : surfaces) {
    if (ws.params.name == "tpcc-med") {
      print_surface(ws, space);
      // Fraction of the space at least 2x below the optimum ("most of the
      // remaining configurations").
      std::size_t below_2x = 0;
      for (const opt::Config& cfg : space.all()) {
        if (ws.opt.throughput / ws.model.mean_throughput(cfg) >= 2.0) ++below_2x;
      }
      std::cout << "configurations >=2x below optimum: " << below_2x << "/"
                << space.size() << "\n";
    }
  }

  std::cout << "\n== Fig 1b: the best configuration of one workload is (near) the "
               "worst of another ==\n";
  for (const auto& ws : surfaces) {
    if (ws.params.name == "array-0" || ws.params.name == "array-90") {
      print_surface(ws, space);
    }
  }
  const auto& scan = surfaces[6];       // array-0
  const auto& contended = surfaces[9];  // array-90
  std::cout << "\ncross check: " << scan.params.name << " optimum "
            << scan.opt.config.to_string() << " has DFO "
            << util::fmt_percent(bench::dfo(contended, scan.opt.config)) << " on "
            << contended.params.name << "; " << contended.params.name << " optimum "
            << contended.opt.config.to_string() << " has DFO "
            << util::fmt_percent(bench::dfo(scan, contended.opt.config)) << " on "
            << scan.params.name << "\n";
  return 0;
}
