// STM core scaling bench: begin/commit throughput vs thread count for both
// commit managers, demonstrating that the runtime's coordination structures
// (snapshot registry, commit serialization, sharded stats) do not serialize
// top-level transactions that touch disjoint data.
//
// Three workloads per (strategy, threads) cell:
//  * disjoint — each thread read-modify-writes its own private box: zero
//    logical conflicts, so any slowdown vs 1 thread is pure runtime
//    coordination overhead (the quantity the paper's actuator sits on top of);
//  * read-only — snapshot reads through the read_only fast path (no commit);
//  * shared — all threads increment one box: the worst-case serialization
//    anchor, dominated by aborts/retries by design.
//
// Also reports which runtime atomics are actually lock-free on this build
// (std::atomic<std::shared_ptr> is lock-BASED on libstdc++ — the lock-free
// commit manager's chain head degrades to a tiny critical section there; see
// DESIGN.md §6).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <deque>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "util/table.hpp"

namespace {

using namespace autopn;

struct CellResult {
  double txn_per_sec = 0.0;
  std::uint64_t aborts = 0;
};

/// Runs `threads` workers, each executing `txns_per_thread` transactions via
/// `run_one(stm, thread_index)`, and returns aggregate throughput.
CellResult run_cell(stm::StmConfig cfg, std::size_t threads,
                    std::size_t txns_per_thread,
                    const std::function<void(stm::Stm&, std::size_t)>& setup,
                    const std::function<void(stm::Stm&, std::size_t)>& run_one) {
  cfg.initial_top = threads;
  cfg.initial_children = 1;
  cfg.pool_threads = 1;
  stm::Stm stm{cfg};
  setup(stm, threads);
  stm.reset_stats();

  std::atomic<bool> go{false};
  std::vector<std::jthread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < txns_per_thread; ++i) run_one(stm, t);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  workers.clear();  // join
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  CellResult result;
  const double total = static_cast<double>(threads * txns_per_thread);
  result.txn_per_sec = elapsed > 0 ? total / elapsed : 0.0;
  result.aborts = stm.stats().top_aborts;
  return result;
}

void report_lock_freedom() {
  stm::StmConfig cfg;
  cfg.commit_strategy = stm::CommitStrategy::kLockFree;
  stm::Stm lockfree{cfg};
  cfg.commit_strategy = stm::CommitStrategy::kGlobalLock;
  stm::Stm locked{cfg};

  std::atomic<std::uint64_t> u64{};
  std::atomic<std::shared_ptr<int>> sptr{};

  util::TextTable table{{"atomic", "is_lock_free"}};
  table.add_row({"atomic<uint64_t> (clock, registry slots)",
                 u64.is_lock_free() ? "yes" : "NO"});
  table.add_row({"atomic<shared_ptr> (commit chain, callback)",
                 sptr.is_lock_free() ? "yes" : "NO"});
  table.add_row(
      {"commit serialization (lock-free manager)",
       lockfree.commit_manager().serialization_lock_free() ? "yes" : "NO"});
  table.add_row(
      {"commit serialization (global-lock manager)",
       locked.commit_manager().serialization_lock_free() ? "yes" : "NO"});
  table.print(std::cout);
  if (!sptr.is_lock_free()) {
    std::cout << "note: atomic<shared_ptr> is lock-based on this standard "
                 "library; the\n'lock-free' commit manager's chain head is a "
                 "short critical section here\n(documented in DESIGN.md §6). "
                 "The no-callback commit fast path avoids the\natomic<shared_"
                 "ptr> load entirely (Stm::notify_commit).\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Quick mode for CI/run_all: fewer transactions per cell.
  const bool quick = argc > 1 && std::string_view{argv[1]} == "--quick";
  const std::size_t txns = quick ? 2000 : 20000;

  std::cout << "== stm_scaling: begin/commit throughput vs thread count ==\n\n";
  report_lock_freedom();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw >= 4) thread_counts.push_back(8);

  struct Strategy {
    stm::CommitStrategy strategy;
    const char* name;
  };
  const Strategy strategies[] = {
      {stm::CommitStrategy::kGlobalLock, "global-lock"},
      {stm::CommitStrategy::kLockFree, "lock-free"},
  };

  util::TextTable table{{"workload", "strategy", "threads", "txn/s", "aborts",
                         "vs 1-thread"}};

  for (const char* workload : {"disjoint", "read-only", "shared"}) {
    for (const auto& [strategy, name] : strategies) {
      stm::StmConfig cfg;
      cfg.commit_strategy = strategy;
      double base = 0.0;
      for (std::size_t threads : thread_counts) {
        // One private box per worker; the shared workload uses box 0 only.
        auto boxes = std::make_shared<std::deque<stm::VBox<std::uint64_t>>>();
        auto setup = [boxes](stm::Stm&, std::size_t n) {
          boxes->resize(n);
          for (auto& box : *boxes) box.put_initial(0);
        };
        std::function<void(stm::Stm&, std::size_t)> run_one;
        if (std::string_view{workload} == "disjoint") {
          run_one = [boxes](stm::Stm& s, std::size_t t) {
            s.run_top([&](stm::Tx& tx) {
              auto& box = (*boxes)[t];
              box.write(tx, box.read(tx) + 1);
            });
          };
        } else if (std::string_view{workload} == "read-only") {
          run_one = [boxes](stm::Stm& s, std::size_t t) {
            (void)s.read_only<std::uint64_t>(
                [&](stm::Tx& tx) { return (*boxes)[t].read(tx); });
          };
        } else {
          run_one = [boxes](stm::Stm& s, std::size_t) {
            s.run_top([&](stm::Tx& tx) {
              auto& box = (*boxes)[0];
              box.write(tx, box.read(tx) + 1);
            });
          };
        }
        const CellResult cell = run_cell(cfg, threads, txns, setup, run_one);
        if (threads == 1) base = cell.txn_per_sec;
        table.add_row({workload, name, std::to_string(threads),
                       util::fmt_double(cell.txn_per_sec, 0),
                       std::to_string(cell.aborts),
                       base > 0 ? util::fmt_double(cell.txn_per_sec / base, 2)
                                : "-"});
      }
    }
  }

  table.print(std::cout);
  std::cout << "\nmachine: " << hw << " hardware thread(s); "
            << (quick ? "quick" : "full") << " mode, " << txns
            << " txns/thread/cell\n";
  return 0;
}
