// Reproduces paper Fig 6: the two domain-specific mechanisms of AutoPN's
// SMBO phase, evaluated trace-driven over the 10 workloads (hill climbing
// disabled to isolate the SMBO phase, as in the paper).
//
//  Left  (initial sampling): uniform-random 3/5/7/9 initial configurations
//        vs the biased boundary scheme with 3/5/7/9 points; EI<10% stop.
//        Paper: biased beats random only with all 9 boundary points; a major
//        accuracy boost appears from 7 -> 9.
//  Right (stop condition): EI<1%, EI<10%, no-improvement (K=5), hybrids
//        (EI|no-improve, EI&no-improve) and the "stubborn" oracle that stops
//        only at the true optimum. Paper: EI beats both no-improvement and
//        the hybrids, and stubborn shows that forcing the model beyond its
//        resolution backfires (it needs far more explorations).

#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "opt/runner.hpp"
#include "opt/smbo.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

constexpr std::size_t kRuns = 10;
constexpr std::size_t kMaxSteps = 198;

struct Outcome {
  std::vector<double> dfo;
  std::vector<double> explorations;
};

std::vector<opt::Config> random_sample(const opt::ConfigSpace& space, std::size_t n,
                                       util::Rng& rng) {
  std::vector<opt::Config> all = space.all();
  rng.shuffle(all);
  all.resize(n);
  return all;
}

using StopFactory = std::function<std::unique_ptr<opt::StopCriterion>(double optimum)>;

Outcome evaluate(const opt::ConfigSpace& space,
                 const std::vector<sim::SurfaceTrace>& traces, bool biased,
                 std::size_t initial_n, const StopFactory& make_stop) {
  Outcome out;
  for (std::size_t w = 0; w < traces.size(); ++w) {
    const sim::SurfaceTrace& trace = traces[w];
    const auto optimum = trace.optimum();
    for (std::size_t run = 0; run < kRuns; ++run) {
      const std::uint64_t seed = 104729 * (w + 1) + run;
      util::Rng rng{seed};
      const auto initial =
          biased ? space.biased_sample(initial_n) : random_sample(space, initial_n, rng);
      opt::Smbo smbo{space, initial, make_stop(optimum.throughput), {},
                     seed ^ 0x5eed};
      util::Rng noise{seed ^ 0xabcdef};
      const auto result = opt::run_to_convergence(
          smbo, [&](const opt::Config& cfg) { return trace.sample(cfg, noise); },
          kMaxSteps);
      // DFO of the measured-best incumbent, by true mean.
      out.dfo.push_back((optimum.throughput - trace.mean(result.final_best)) /
                        optimum.throughput);
      out.explorations.push_back(static_cast<double>(result.explorations()));
    }
  }
  return out;
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};
  const auto surfaces = bench::paper_surfaces(space);
  std::vector<sim::SurfaceTrace> traces;
  for (std::size_t w = 0; w < surfaces.size(); ++w) {
    traces.push_back(
        sim::SurfaceTrace::record(surfaces[w].model, space, 10, 600.0, 2000 + w));
  }

  const StopFactory ei10 = [](double) {
    return std::make_unique<opt::EiThresholdStop>(0.10);
  };

  std::cout << "== Fig 6 (left): initial sampling policy, SMBO only, EI<10% ==\n";
  util::TextTable sampling{{"policy", "points", "avg DFO", "p90 DFO", "avg expl"}};
  for (const bool biased : {false, true}) {
    for (const std::size_t n : {3u, 5u, 7u, 9u}) {
      const Outcome o = evaluate(space, traces, biased, n, ei10);
      sampling.add_row({biased ? "biased" : "uniform-random", std::to_string(n),
                        util::fmt_percent(util::mean_of(o.dfo)),
                        util::fmt_percent(util::percentile(o.dfo, 0.90)),
                        util::fmt_double(util::mean_of(o.explorations), 1)});
    }
  }
  sampling.print(std::cout);
  std::cout << "paper: biased wins only with all 9 boundary points; large "
               "accuracy boost from 7 -> 9\n";

  std::cout << "\n== Fig 6 (right): stop conditions, SMBO only, biased 9 ==\n";
  struct StopVariant {
    std::string name;
    StopFactory make;
  };
  const std::vector<StopVariant> variants{
      {"ei<1%", [](double) { return std::make_unique<opt::EiThresholdStop>(0.01); }},
      {"ei<10%", [](double) { return std::make_unique<opt::EiThresholdStop>(0.10); }},
      {"no-improve(K=5)",
       [](double) { return std::make_unique<opt::NoImproveStop>(5, 0.10); }},
      {"ei<10%|no-improve",
       [](double) {
         return std::make_unique<opt::AnyStop>(
             std::make_unique<opt::EiThresholdStop>(0.10),
             std::make_unique<opt::NoImproveStop>(5, 0.10));
       }},
      {"ei<10%&no-improve",
       [](double) {
         return std::make_unique<opt::AllStop>(
             std::make_unique<opt::EiThresholdStop>(0.10),
             std::make_unique<opt::NoImproveStop>(5, 0.10));
       }},
      {"stubborn (oracle)",
       [](double optimum) { return std::make_unique<opt::StubbornStop>(optimum); }},
  };
  util::TextTable stops{{"stop condition", "avg DFO", "p90 DFO", "avg expl"}};
  for (const StopVariant& v : variants) {
    const Outcome o = evaluate(space, traces, /*biased=*/true, 9, v.make);
    stops.add_row({v.name, util::fmt_percent(util::mean_of(o.dfo)),
                   util::fmt_percent(util::percentile(o.dfo, 0.90)),
                   util::fmt_double(util::mean_of(o.explorations), 1)});
  }
  stops.print(std::cout);
  std::cout << "paper: settling for good-enough (EI threshold) beats forcing the\n"
               "model to perfect accuracy (stubborn needs far more explorations);\n"
               "EI also beats no-improvement and the hybrid schemes\n";
  return 0;
}
