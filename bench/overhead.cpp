// Reproduces the paper's §VII-E overhead assessment on the live PN-STM.
//
// Methodology (as in the paper): run a zero-contention Array workload with
// the system pinned at a fixed configuration from the start. In the "tuned"
// run, the full self-tuning pipeline is active — the adaptive KPI monitor
// measures windows from the commit stream and the optimizer keeps updating
// and querying its ensemble of 10 bagged M5 models over the whole 198-point
// configuration space (fed trace-driven feedback) — but the actuator is
// inhibited, so the system pays every self-tuning cost without benefiting
// from it. The paper reports an average throughput drop below 2%.

#include <array>
#include <atomic>
#include <iostream>
#include <thread>

#include "ml/bagging.hpp"
#include "opt/config_space.hpp"
#include "runtime/monitor.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/array_bench.hpp"

using namespace autopn;

namespace {

constexpr int kDriverThreads = 2;
constexpr double kRunSeconds = 4.0;
constexpr int kRepetitions = 5;

double run_once(bool tuning_active) {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 2;
  cfg.initial_children = 2;
  stm::Stm stm{cfg};

  workloads::ArrayConfig acfg;
  acfg.array_size = 256;
  acfg.update_fraction = 0.0;
  workloads::ArrayBenchmark bench{stm, acfg};

  util::WallClock clock;
  std::atomic<bool> stop{false};

  // Self-tuning pipeline: monitor windows from the live commit stream and
  // continuous model update/query cycles, exactly the §VII-E cost profile.
  std::jthread tuner;
  if (tuning_active) {
    tuner = std::jthread{[&] {
      const opt::ConfigSpace space{48};
      runtime::CvAdaptivePolicy policy{0.10, 10};
      ml::Dataset samples{2};
      util::Rng rng{7};
      std::mutex window_mutex;
      std::condition_variable window_cv;
      std::deque<double> commits;
      auto callback = std::make_shared<const std::function<void()>>([&] {
        {
          std::scoped_lock lock{window_mutex};
          commits.push_back(clock.now());
        }
        window_cv.notify_one();
      });
      stm.set_commit_callback(callback);
      while (!stop.load(std::memory_order_relaxed)) {
        // One monitoring window over the live commit stream.
        policy.begin_window(clock.now());
        bool complete = false;
        while (!complete && !stop.load(std::memory_order_relaxed)) {
          std::unique_lock lock{window_mutex};
          window_cv.wait_for(lock, std::chrono::milliseconds{2},
                             [&] { return !commits.empty(); });
          while (!commits.empty() && !complete) {
            const double at = commits.front();
            commits.pop_front();
            complete = policy.on_commit(at);
          }
        }
        const auto measurement = policy.finish(clock.now(), false);
        // Feed the sample and refresh the surrogate (trace-driven feedback:
        // attach it to a random configuration, as the actuator is inhibited
        // the label only exercises the modeling cost).
        const auto& config = space.at(rng.uniform_index(space.size()));
        samples.add(std::array{static_cast<double>(config.t),
                               static_cast<double>(config.c)},
                    measurement.throughput);
        const auto ensemble = ml::BaggingEnsemble::fit(samples, 10, {}, rng());
        double best_ei = 0.0;
        for (const opt::Config& candidate : space.all()) {
          const auto p = ensemble.predict(std::array{
              static_cast<double>(candidate.t), static_cast<double>(candidate.c)});
          best_ei = std::max(best_ei, p.mean + p.stddev());
        }
        (void)best_ei;
        // Pace measurement windows: a deployed tuner takes one observation
        // per actuation epoch, not thousands per second. (On the paper's
        // 48-core machine an unpaced tuner thread would still cost at most
        // ~1/48 of the machine; on this single-core host pacing keeps the
        // experiment representative.)
        std::this_thread::sleep_for(std::chrono::milliseconds{200});
      }
      stm.set_commit_callback(nullptr);
    }};
  }

  // Drive the workload.
  std::vector<std::jthread> drivers;
  drivers.reserve(kDriverThreads);
  for (int d = 0; d < kDriverThreads; ++d) {
    drivers.emplace_back([&, d] {
      util::Rng rng{static_cast<std::uint64_t>(100 + d)};
      while (!stop.load(std::memory_order_relaxed)) bench.run_one(rng);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kRunSeconds));
  stop.store(true, std::memory_order_relaxed);
  drivers.clear();
  if (tuner.joinable()) tuner.join();

  return static_cast<double>(stm.stats().top_commits) / kRunSeconds;
}

}  // namespace

int main() {
  std::cout << "== §VII-E overhead assessment (live PN-STM, actuator inhibited) ==\n";
  std::cout << "zero-contention Array workload, fixed configuration, "
            << kRepetitions << " x " << kRunSeconds << "s runs\n\n";

  util::RunningStats baseline;
  util::RunningStats tuned;
  // Interleave to cancel machine drift.
  for (int rep = 0; rep < kRepetitions; ++rep) {
    baseline.add(run_once(/*tuning_active=*/false));
    tuned.add(run_once(/*tuning_active=*/true));
  }

  const double drop = 1.0 - tuned.mean() / baseline.mean();
  util::TextTable table{{"mode", "throughput (tx/s)", "cv"}};
  table.add_row({"self-tuning off", util::fmt_double(baseline.mean(), 0),
                 util::fmt_percent(baseline.cv())});
  table.add_row({"self-tuning on (actuator inhibited)",
                 util::fmt_double(tuned.mean(), 0), util::fmt_percent(tuned.cv())});
  table.print(std::cout);
  std::cout << "\nthroughput drop: " << util::fmt_percent(drop)
            << "   (paper: < 2% on average)\n";
  return 0;
}
