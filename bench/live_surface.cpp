// Records a real performance surface from the live PN-STM on this machine
// (the n=4 analogue of the paper's exhaustive offline measurement campaign),
// prints it, and runs AutoPN trace-driven against it — demonstrating that
// the whole optimizer pipeline works end-to-end on surfaces measured from
// the real system, not only on the analytical model.

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "opt/runner.hpp"
#include "runtime/live_trace.hpp"
#include "util/table.hpp"
#include "workloads/array_bench.hpp"

using namespace autopn;

int main() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 1;
  cfg.initial_children = 1;
  stm::Stm stm{cfg};

  workloads::ArrayConfig acfg;
  acfg.array_size = 256;
  acfg.update_fraction = 0.3;
  workloads::ArrayBenchmark bench{stm, acfg};

  std::atomic<bool> stop{false};
  std::vector<std::jthread> drivers;
  for (int d = 0; d < 3; ++d) {
    drivers.emplace_back([&, d] {
      util::Rng rng{static_cast<std::uint64_t>(77 + d)};
      while (!stop.load(std::memory_order_relaxed)) bench.run_one(rng);
    });
  }

  const opt::ConfigSpace space{static_cast<int>(cfg.max_cores)};
  util::WallClock clock;
  runtime::LiveTraceParams params;
  params.runs = 3;
  params.window_seconds = 0.15;
  std::cout << "recording the live surface (" << space.size() << " configs x "
            << params.runs << " runs x " << params.window_seconds << "s)...\n";
  const sim::SurfaceTrace trace =
      runtime::record_live_surface(stm, space, "array-30%-live", clock, params);
  stop.store(true, std::memory_order_relaxed);
  drivers.clear();

  util::TextTable table{{"(t,c)", "mean thr (tx/s)", "stddev"}};
  for (const opt::Config& c : space.all()) {
    table.add_row({c.to_string(), util::fmt_double(trace.mean(c), 0),
                   util::fmt_double(trace.at(c).stddev, 0)});
  }
  table.print(std::cout);
  const auto optimum = trace.optimum();
  std::cout << "\nlive optimum: " << optimum.config.to_string() << " @ "
            << util::fmt_double(optimum.throughput, 0) << " tx/s\n";

  // Trace-driven AutoPN on the recorded (real!) surface.
  util::Rng noise{1};
  opt::AutoPnOptimizer autopn{space, {}, 2};
  const auto result = opt::run_to_convergence(
      autopn, [&](const opt::Config& c) { return trace.sample(c, noise); });
  std::cout << "autopn on the recorded surface chose "
            << result.final_best.to_string() << " (DFO "
            << util::fmt_percent(trace.distance_from_optimum(result.final_best))
            << ") after " << result.explorations() << " explorations\n";
  std::cout << "(single-core host: the shape of this surface reflects this "
               "machine, not the paper's 48-core box)\n";
  return 0;
}
