#pragma once
// Shared helpers for the figure/table reproduction benches: the standard
// 48-core space, the 10 paper workloads as surface models and recorded
// traces, and distance-from-optimum utilities.

#include <cstdint>
#include <string>
#include <vector>

#include "opt/config_space.hpp"
#include "sim/surface.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace autopn::bench {

/// The paper's machine: 4x AMD Opteron 6168 = 48 cores, |S| = 198.
inline constexpr int kCores = 48;

struct WorkloadSurface {
  sim::WorkloadParams params;
  sim::SurfaceModel model;
  sim::SurfaceModel::Optimum opt;
};

/// All 10 workloads with their models and optima over the given space.
inline std::vector<WorkloadSurface> paper_surfaces(const opt::ConfigSpace& space) {
  std::vector<WorkloadSurface> out;
  for (const sim::WorkloadParams& params : sim::paper_workloads()) {
    sim::SurfaceModel model{params, space.cores()};
    auto optimum = model.optimum(space);
    out.push_back(WorkloadSurface{params, std::move(model), optimum});
  }
  return out;
}

/// Distance-from-optimum fraction for a config on one surface.
inline double dfo(const WorkloadSurface& ws, const opt::Config& cfg) {
  return (ws.opt.throughput - ws.model.mean_throughput(cfg)) / ws.opt.throughput;
}

/// Slowdown factor opt/cfg (how many times slower than the optimum).
inline double slowdown(const WorkloadSurface& ws, const opt::Config& cfg) {
  return ws.opt.throughput / ws.model.mean_throughput(cfg);
}

}  // namespace autopn::bench
