// Ablation study of AutoPN's design choices (DESIGN.md §7), trace-driven
// over the 10 paper workloads:
//
//  * bagging ensemble size k (paper fixes k = 10 as "sufficiently large to
//    generate model diversity at negligible overhead");
//  * acquisition function: Expected Improvement vs Probability of
//    Improvement (paper §V-B argues for EI);
//  * EI stop threshold (paper: "typical values are 1%-10%");
//  * number of biased initial samples with the full pipeline (complements
//    Fig 6, which isolates the SMBO phase).

#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "opt/autopn_optimizer.hpp"
#include "opt/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

constexpr std::size_t kRuns = 10;

struct Outcome {
  double avg_dfo = 0.0;
  double p90_dfo = 0.0;
  double avg_explorations = 0.0;
};

Outcome evaluate(const opt::ConfigSpace& space,
                 const std::vector<sim::SurfaceTrace>& traces,
                 const opt::AutoPnParams& params) {
  std::vector<double> dfos;
  std::vector<double> explorations;
  for (std::size_t w = 0; w < traces.size(); ++w) {
    const sim::SurfaceTrace& trace = traces[w];
    const auto optimum = trace.optimum();
    for (std::size_t run = 0; run < kRuns; ++run) {
      const std::uint64_t seed = 15485863 * (w + 1) + run;
      util::Rng noise{seed ^ 0xfeed};
      opt::AutoPnOptimizer optimizer{space, params, seed};
      const auto result = opt::run_to_convergence(
          optimizer,
          [&](const opt::Config& cfg) { return trace.sample(cfg, noise); }, 198);
      dfos.push_back((optimum.throughput - trace.mean(result.final_best)) /
                     optimum.throughput);
      explorations.push_back(static_cast<double>(result.explorations()));
    }
  }
  return Outcome{util::mean_of(dfos), util::percentile(dfos, 0.90),
                 util::mean_of(explorations)};
}

void add_outcome_row(util::TextTable& table, const std::string& label,
                     const Outcome& o) {
  table.add_row({label, util::fmt_percent(o.avg_dfo), util::fmt_percent(o.p90_dfo),
                 util::fmt_double(o.avg_explorations, 1)});
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};
  const auto surfaces = bench::paper_surfaces(space);
  std::vector<sim::SurfaceTrace> traces;
  for (std::size_t w = 0; w < surfaces.size(); ++w) {
    traces.push_back(
        sim::SurfaceTrace::record(surfaces[w].model, space, 10, 600.0, 3000 + w));
  }

  std::cout << "== Ablation: bagging ensemble size k (paper default 10) ==\n";
  util::TextTable bagging{{"k", "avg DFO", "p90 DFO", "avg expl"}};
  for (const std::size_t k : {1u, 3u, 10u, 20u}) {
    opt::AutoPnParams params;
    params.smbo.ensemble_size = k;
    add_outcome_row(bagging, std::to_string(k), evaluate(space, traces, params));
  }
  bagging.print(std::cout);
  std::cout << "(k=1 has no ensemble variance: EI degenerates and the SMBO "
               "phase exits blindly)\n";

  std::cout << "\n== Ablation: acquisition function (paper argues for EI) ==\n";
  util::TextTable acq{{"acquisition", "avg DFO", "p90 DFO", "avg expl"}};
  struct AcqVariant {
    const char* name;
    opt::SmboParams::Acquisition acquisition;
  };
  for (const AcqVariant& v :
       {AcqVariant{"expected improvement", opt::SmboParams::Acquisition::kEi},
        AcqVariant{"probability of improv.", opt::SmboParams::Acquisition::kPi},
        AcqVariant{"gp-ucb (beta=2)", opt::SmboParams::Acquisition::kUcb}}) {
    opt::AutoPnParams params;
    params.smbo.acquisition = v.acquisition;
    add_outcome_row(acq, v.name, evaluate(space, traces, params));
  }
  acq.print(std::cout);

  std::cout << "\n== Ablation: surrogate model ==\n";
  util::TextTable surrogate{{"surrogate", "avg DFO", "p90 DFO", "avg expl"}};
  for (const bool bagged : {true, false}) {
    opt::AutoPnParams params;
    params.smbo.surrogate = bagged ? opt::SmboParams::Surrogate::kBaggedM5
                                   : opt::SmboParams::Surrogate::kKnn;
    add_outcome_row(surrogate, bagged ? "bagged M5 (paper)" : "kNN (k=5)",
                    evaluate(space, traces, params));
  }
  surrogate.print(std::cout);

  std::cout << "\n== Ablation: EI stop threshold (paper: 1%-10%) ==\n";
  util::TextTable thresholds{{"threshold", "avg DFO", "p90 DFO", "avg expl"}};
  for (const double th : {0.01, 0.05, 0.10, 0.20}) {
    opt::AutoPnParams params;
    params.ei_threshold = th;
    add_outcome_row(thresholds, util::fmt_percent(th, 0),
                    evaluate(space, traces, params));
  }
  thresholds.print(std::cout);

  std::cout << "\n== Ablation: biased initial samples with the full pipeline ==\n";
  util::TextTable init{{"initial samples", "avg DFO", "p90 DFO", "avg expl"}};
  for (const std::size_t n : {3u, 5u, 7u, 9u}) {
    opt::AutoPnParams params;
    params.bootstrap_points = n;
    add_outcome_row(init, std::to_string(n), evaluate(space, traces, params));
  }
  init.print(std::cout);
  std::cout << "(the hill-climbing phase partially compensates for weaker "
               "initial knowledge, at the cost of extra explorations)\n";
  return 0;
}
