// Reproduces paper Fig 5: distance from optimum (average and 90th
// percentile across the 10 workloads x 10 runs) as a function of the number
// of explored configurations, for random search, grid search, hill climbing,
// simulated annealing, the genetic algorithm, AutoPN and AutoPN without the
// final hill-climbing refinement.
//
// Methodology as in §VII-B: optimizers are fed off-line collected traces
// (exhaustive per-configuration measurements, 10 runs each), so all
// algorithms compare on identical, reproducible inputs. Also prints the
// headline summary: final accuracy and explorations-to-stability, with
// AutoPN's speedup over each baseline (paper: 9.8x faster on average, ~1%
// final distance from optimum, ~3x fewer explorations than GA).

#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "bench/bench_common.hpp"
#include "opt/autopn_optimizer.hpp"
#include "opt/baselines.hpp"
#include "opt/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

constexpr std::size_t kRunsPerWorkload = 10;
constexpr std::size_t kMaxSteps = 90;

using MakeOptimizer =
    std::function<std::unique_ptr<opt::Optimizer>(const opt::ConfigSpace&, std::uint64_t)>;

struct Algorithm {
  std::string name;
  MakeOptimizer make;
};

struct AlgoStats {
  // dfo_curve[step] = DFO of the incumbent after `step+1` explorations, one
  // entry per (workload, run).
  std::vector<std::vector<double>> dfo_curve{kMaxSteps};
  std::vector<double> final_dfo;
  std::vector<double> explorations;
  std::vector<double> tuning_time;  ///< simulated seconds spent measuring
  // Convergence: explorations / simulated seconds until the incumbent first
  // comes within 5% of optimum (capped at the budget when never reached).
  std::vector<double> steps_to_good;
  std::vector<double> time_to_good;
};

/// Simulated duration of measuring one configuration with the adaptive
/// monitor: ~30 commits at the configuration's rate, but a configuration
/// slower than sequential is cut by the 1/T(1,1) adaptive timeout after a
/// few commit gaps. This is what makes exploring bad configurations
/// expensive in wall-clock terms (the x-axis of the paper's Fig 5).
double window_seconds(const sim::SurfaceTrace& trace, const opt::Config& cfg,
                      double sequential_throughput) {
  constexpr double kCommits = 30.0;
  const double rate = trace.mean(cfg);
  const double normal = kCommits / rate;
  const double timeout_cut = 5.0 / sequential_throughput;  // a few timeout gaps
  return rate >= sequential_throughput ? normal : std::min(normal, timeout_cut);
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};

  // Record the paper-style exhaustive traces: 10 long runs per config.
  std::vector<sim::SurfaceTrace> traces;
  std::vector<bench::WorkloadSurface> surfaces = bench::paper_surfaces(space);
  for (std::size_t w = 0; w < surfaces.size(); ++w) {
    traces.push_back(
        sim::SurfaceTrace::record(surfaces[w].model, space, 10, 600.0, 1000 + w));
  }

  const std::vector<Algorithm> algorithms{
      {"random",
       [](const opt::ConfigSpace& s, std::uint64_t seed) {
         return std::make_unique<opt::RandomSearch>(s, seed);
       }},
      {"grid",
       [](const opt::ConfigSpace& s, std::uint64_t) {
         return std::make_unique<opt::GridSearch>(s);
       }},
      {"hill-climb",
       [](const opt::ConfigSpace& s, std::uint64_t seed) {
         return std::make_unique<opt::HillClimbing>(s, seed);
       }},
      {"sim-anneal",
       [](const opt::ConfigSpace& s, std::uint64_t seed) {
         return std::make_unique<opt::SimulatedAnnealing>(s, seed);
       }},
      {"genetic",
       [](const opt::ConfigSpace& s, std::uint64_t seed) {
         return std::make_unique<opt::GeneticAlgorithm>(s, seed);
       }},
      {"autopn-noHC",
       [](const opt::ConfigSpace& s, std::uint64_t seed) {
         opt::AutoPnParams p;
         p.hill_climb_refinement = false;
         return std::make_unique<opt::AutoPnOptimizer>(s, p, seed);
       }},
      {"autopn",
       [](const opt::ConfigSpace& s, std::uint64_t seed) {
         return std::make_unique<opt::AutoPnOptimizer>(s, opt::AutoPnParams{}, seed);
       }},
  };

  std::map<std::string, AlgoStats> stats;

  for (std::size_t w = 0; w < traces.size(); ++w) {
    const sim::SurfaceTrace& trace = traces[w];
    const auto optimum = trace.optimum();
    for (const Algorithm& algo : algorithms) {
      for (std::size_t run = 0; run < kRunsPerWorkload; ++run) {
        const std::uint64_t seed = 7919 * (w + 1) + run;
        util::Rng noise{seed ^ 0xabcdef};
        auto optimizer = algo.make(space, seed);
        const auto result = opt::run_to_convergence(
            *optimizer,
            [&](const opt::Config& cfg) { return trace.sample(cfg, noise); },
            kMaxSteps);

        AlgoStats& s = stats[algo.name];
        // DFO of the incumbent (by true trace mean) after each step; the
        // incumbent is the explored config with the best *measured* KPI,
        // mirroring what a deployed tuner would pick.
        double best_measured = -1.0;
        opt::Config incumbent{1, 1};
        for (std::size_t step = 0; step < kMaxSteps; ++step) {
          if (step < result.steps.size()) {
            const auto& st = result.steps[step];
            if (st.kpi > best_measured) {
              best_measured = st.kpi;
              incumbent = st.config;
            }
          }
          if (best_measured >= 0.0) {
            s.dfo_curve[step].push_back(
                (optimum.throughput - trace.mean(incumbent)) / optimum.throughput);
          }
        }
        s.final_dfo.push_back(
            (optimum.throughput - trace.mean(incumbent)) / optimum.throughput);
        s.explorations.push_back(static_cast<double>(result.explorations()));
        const double sequential = trace.mean(opt::Config{1, 1});
        double seconds = 0.0;
        double good_at_seconds = -1.0;
        double good_at_steps = -1.0;
        double running_best = -1.0;
        opt::Config running_incumbent{1, 1};
        for (std::size_t step = 0; step < result.steps.size(); ++step) {
          const auto& st = result.steps[step];
          seconds += window_seconds(trace, st.config, sequential);
          if (st.kpi > running_best) {
            running_best = st.kpi;
            running_incumbent = st.config;
          }
          const double dfo_now =
              (optimum.throughput - trace.mean(running_incumbent)) /
              optimum.throughput;
          if (good_at_steps < 0.0 && dfo_now <= 0.05) {
            good_at_steps = static_cast<double>(step + 1);
            good_at_seconds = seconds;
          }
        }
        s.tuning_time.push_back(seconds);
        // Never reached 5%: charge the full budget (a deployed system would
        // still be searching / settled on a bad configuration).
        s.steps_to_good.push_back(good_at_steps > 0.0 ? good_at_steps
                                                      : static_cast<double>(kMaxSteps));
        s.time_to_good.push_back(
            good_at_seconds > 0.0
                ? good_at_seconds
                : seconds * static_cast<double>(kMaxSteps) /
                      std::max<std::size_t>(1, result.steps.size()));
      }
    }
  }

  auto curve_table = [&](const std::string& title, double quantile) {
    std::cout << "\n== Fig 5 (" << title
              << "): distance from optimum vs explored configurations ==\n";
    std::vector<std::string> header{"explored"};
    for (const Algorithm& a : algorithms) header.push_back(a.name);
    util::TextTable table{header};
    for (std::size_t step = 4; step < kMaxSteps; step += 5) {
      std::vector<std::string> row{std::to_string(step + 1)};
      for (const Algorithm& a : algorithms) {
        const auto& samples = stats[a.name].dfo_curve[step];
        row.push_back(samples.empty()
                          ? "-"
                          : util::fmt_percent(quantile < 0.0
                                                  ? util::mean_of(samples)
                                                  : util::percentile(samples, quantile)));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  };
  curve_table("average", -1.0);
  curve_table("90th percentile", 0.90);

  std::cout << "\n== Summary: final accuracy and convergence speed ==\n";
  util::TextTable summary{{"algorithm", "final DFO (avg)", "final DFO (p90)",
                           "explorations", "steps to <=5% DFO",
                           "time to <=5% (norm.)", "autopn speedup"}};
  const double autopn_good_time = util::mean_of(stats["autopn"].time_to_good);
  double speedup_sum = 0.0;
  int speedup_count = 0;
  for (const Algorithm& a : algorithms) {
    const AlgoStats& s = stats[a.name];
    const double good_time = util::mean_of(s.time_to_good);
    const double speedup = good_time / autopn_good_time;
    std::string speedup_str = "-";
    if (a.name != "autopn" && a.name != "autopn-noHC") {
      speedup_str = util::fmt_double(speedup, 1) + "x";
      speedup_sum += speedup;
      ++speedup_count;
    }
    summary.add_row({a.name, util::fmt_percent(util::mean_of(s.final_dfo)),
                     util::fmt_percent(util::percentile(s.final_dfo, 0.90)),
                     util::fmt_double(util::mean_of(s.explorations), 1),
                     util::fmt_double(util::mean_of(s.steps_to_good), 1),
                     util::fmt_double(good_time / autopn_good_time, 2),
                     speedup_str});
  }
  summary.print(std::cout);

  std::cout << "\npaper headline: autopn ~1% final DFO, 9.8x faster stability, "
               "~3x fewer explorations than GA\n";
  std::cout << "measured: autopn "
            << util::fmt_percent(util::mean_of(stats["autopn"].final_dfo))
            << " final DFO, "
            << util::fmt_double(speedup_sum / speedup_count, 1)
            << "x faster to <=5% DFO than the baseline average, "
            << util::fmt_double(util::mean_of(stats["genetic"].explorations) /
                                    util::mean_of(stats["autopn"].explorations),
                                1)
            << "x fewer explorations than GA\n";
  std::cout << "refinement gain: autopn-noHC "
            << util::fmt_percent(util::mean_of(stats["autopn-noHC"].final_dfo))
            << " -> autopn "
            << util::fmt_percent(util::mean_of(stats["autopn"].final_dfo))
            << " (paper: 5% -> 1% avg, 10% -> 2% p90)\n";
  return 0;
}
