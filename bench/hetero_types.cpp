// Heterogeneous transaction types (paper §VIII future work): a workload mix
// of two very different transaction types — read-only scans (array-0-like)
// and write-heavy scans (array-90-like) — sharing a 48-core machine. We
// compare:
//
//  * homogeneous AutoPN: both types forced to one shared (t, c) (the paper's
//    published system);
//  * the per-type coordinate-descent tuner: distinct (t_k, c_k) per type
//    under a shared core budget.
//
// The composite KPI is the weighted sum of the two types' throughputs, with
// a saturation penalty when the joint utilization approaches the machine.

#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "opt/hetero.hpp"
#include "opt/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

/// Composite two-type workload model.
class MixModel {
 public:
  MixModel(const sim::SurfaceModel& a, const sim::SurfaceModel& b, int cores)
      : a_(&a), b_(&b), cores_(cores) {}

  [[nodiscard]] double throughput(const opt::HeteroConfig& cfg) const {
    const double utilization =
        static_cast<double>(cfg.cores_used()) / static_cast<double>(cores_);
    // Gentle joint-resource penalty on top of each model's own saturation.
    const double penalty = 1.0 / (1.0 + 0.3 * utilization);
    return (a_->mean_throughput(cfg.per_type[0]) +
            b_->mean_throughput(cfg.per_type[1])) *
           penalty;
  }

  /// Same shared (t, c) for both types, halving the per-type budget check is
  /// the caller's job.
  [[nodiscard]] double throughput_shared(const opt::Config& cfg) const {
    opt::HeteroConfig joint;
    joint.per_type = {cfg, cfg};
    return throughput(joint);
  }

 private:
  const sim::SurfaceModel* a_;
  const sim::SurfaceModel* b_;
  int cores_;
};

}  // namespace

int main() {
  const int cores = bench::kCores;
  const sim::SurfaceModel scans{sim::workload_by_name("array-0"), cores};
  const sim::SurfaceModel writes{sim::workload_by_name("array-90"), cores};
  const MixModel mix{scans, writes, cores};

  std::cout << "== Heterogeneous types: array-0 + array-90 mix on " << cores
            << " cores ==\n\n";

  // Exhaustive reference optimum over the joint space (feasible offline for
  // 2 types: ~198^2/4 combinations under the budget).
  const opt::ConfigSpace full{cores};
  opt::HeteroConfig best_joint;
  double best_joint_thr = 0.0;
  for (const opt::Config& c0 : full.all()) {
    for (const opt::Config& c1 : full.all()) {
      opt::HeteroConfig joint;
      joint.per_type = {c0, c1};
      if (joint.cores_used() > cores) continue;
      const double thr = mix.throughput(joint);
      if (thr > best_joint_thr) {
        best_joint_thr = thr;
        best_joint = joint;
      }
    }
  }

  // Homogeneous AutoPN: one shared (t, c), budget 2*t*c <= n.
  const opt::ConfigSpace half{cores / 2};
  opt::AutoPnOptimizer shared_tuner{half, {}, 5};
  const auto shared_result = opt::run_to_convergence(
      shared_tuner,
      [&](const opt::Config& cfg) { return mix.throughput_shared(cfg); }, 400);
  const double shared_thr = mix.throughput_shared(shared_result.final_best);

  // Per-type coordinate-descent tuner.
  const opt::HeteroSpace hetero_space{cores, 2};
  opt::HeteroCoordinateTuner hetero_tuner{hetero_space, {}, 5};
  std::size_t hetero_explorations = 0;
  while (auto proposal = hetero_tuner.propose()) {
    hetero_tuner.observe(*proposal, mix.throughput(*proposal));
    ++hetero_explorations;
  }
  const double hetero_thr = mix.throughput(hetero_tuner.best());

  util::TextTable table{
      {"tuner", "configuration", "mix throughput", "% of joint optimum",
       "explorations"}};
  table.add_row({"joint optimum (exhaustive)", best_joint.to_string(),
                 util::fmt_double(best_joint_thr, 0), "100%", "-"});
  table.add_row({"homogeneous autopn (shared t,c)",
                 "[" + shared_result.final_best.to_string() + " " +
                     shared_result.final_best.to_string() + "]",
                 util::fmt_double(shared_thr, 0),
                 util::fmt_percent(shared_thr / best_joint_thr),
                 std::to_string(shared_result.explorations())});
  table.add_row({"per-type coordinate descent", hetero_tuner.best().to_string(),
                 util::fmt_double(hetero_thr, 0),
                 util::fmt_percent(hetero_thr / best_joint_thr),
                 std::to_string(hetero_explorations)});
  table.print(std::cout);

  std::cout << "\nper-type tuning captures the asymmetry (scans want wide "
               "top-level parallelism,\nwrite-heavy transactions want nesting) "
               "that a single shared (t,c) cannot express;\nrounds used: "
            << hetero_tuner.rounds_completed() << "\n";
  return 0;
}
