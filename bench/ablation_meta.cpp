// Meta-parameter calibration for the SA and GA baselines — the paper's
// procedure: "we use 10-fold cross-validation combined with grid-search to
// compare, off-line, the performance of these methods when using different
// settings of these meta-parameters and identify their most robust
// parametrization across the whole set of workloads" (§VII-A).
//
// We grid the key meta-parameters, score each setting on every workload
// (leave-one-workload-out cross-validation: a setting's score on a workload
// uses the parametrization's performance on the others to pick, then
// evaluates on the held-out one), and print the most robust setting.

#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "opt/baselines.hpp"
#include "opt/runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

constexpr std::size_t kRuns = 5;

/// DFO of a tuner on one workload trace, averaged over runs; combined with
/// exploration cost into a single score (lower is better): DFO + 0.1% per
/// exploration, mirroring the accuracy/latency balance of Fig 5.
template <typename MakeOpt>
double score_on(const opt::ConfigSpace& space, const sim::SurfaceTrace& trace,
                const MakeOpt& make, std::uint64_t base_seed) {
  const auto optimum = trace.optimum();
  double total = 0.0;
  for (std::size_t run = 0; run < kRuns; ++run) {
    const std::uint64_t seed = base_seed + run;
    util::Rng noise{seed ^ 0xbeef};
    auto optimizer = make(seed);
    const auto result = opt::run_to_convergence(
        *optimizer, [&](const opt::Config& cfg) { return trace.sample(cfg, noise); },
        198);
    const double dfo =
        (optimum.throughput - trace.mean(result.final_best)) / optimum.throughput;
    total += dfo + 0.001 * static_cast<double>(result.explorations());
  }
  return total / kRuns;
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};
  const auto surfaces = bench::paper_surfaces(space);
  std::vector<sim::SurfaceTrace> traces;
  for (std::size_t w = 0; w < surfaces.size(); ++w) {
    traces.push_back(
        sim::SurfaceTrace::record(surfaces[w].model, space, 10, 600.0, 4000 + w));
  }

  std::cout << "== SA meta-parameter grid (score = avg DFO + 0.1%/exploration; "
               "lower is better) ==\n";
  util::TextTable sa_table{{"T0", "cooling", "avg score", "worst workload score"}};
  double best_sa_score = 1e18;
  std::string best_sa;
  for (const double t0 : {0.1, 0.2, 0.4}) {
    for (const double cooling : {0.85, 0.93, 0.97}) {
      std::vector<double> per_workload;
      for (std::size_t w = 0; w < traces.size(); ++w) {
        per_workload.push_back(score_on(
            space, traces[w],
            [&](std::uint64_t seed) {
              opt::SaParams params;
              params.initial_temperature = t0;
              params.cooling = cooling;
              return std::make_unique<opt::SimulatedAnnealing>(space, seed, params);
            },
            7001 * (w + 1)));
      }
      const double avg = util::mean_of(per_workload);
      const double worst = util::percentile(per_workload, 1.0);
      sa_table.add_row({util::fmt_double(t0, 2), util::fmt_double(cooling, 2),
                        util::fmt_percent(avg), util::fmt_percent(worst)});
      if (avg < best_sa_score) {
        best_sa_score = avg;
        best_sa = "T0=" + util::fmt_double(t0, 2) +
                  " cooling=" + util::fmt_double(cooling, 2);
      }
    }
  }
  sa_table.print(std::cout);
  std::cout << "most robust SA setting: " << best_sa << "\n";

  std::cout << "\n== GA meta-parameter grid ==\n";
  util::TextTable ga_table{
      {"population", "mutation", "elites", "avg score", "worst workload score"}};
  double best_ga_score = 1e18;
  std::string best_ga;
  for (const std::size_t population : {6u, 10u, 16u}) {
    for (const double mutation : {0.03, 0.08, 0.15}) {
      for (const std::size_t elites : {1u, 2u}) {
        std::vector<double> per_workload;
        for (std::size_t w = 0; w < traces.size(); ++w) {
          per_workload.push_back(score_on(
              space, traces[w],
              [&](std::uint64_t seed) {
                opt::GaParams params;
                params.population = population;
                params.mutation_rate = mutation;
                params.elites = elites;
                return std::make_unique<opt::GeneticAlgorithm>(space, seed, params);
              },
              9001 * (w + 1)));
        }
        const double avg = util::mean_of(per_workload);
        const double worst = util::percentile(per_workload, 1.0);
        ga_table.add_row({std::to_string(population), util::fmt_double(mutation, 2),
                          std::to_string(elites), util::fmt_percent(avg),
                          util::fmt_percent(worst)});
        if (avg < best_ga_score) {
          best_ga_score = avg;
          best_ga = "population=" + std::to_string(population) +
                    " mutation=" + util::fmt_double(mutation, 2) +
                    " elites=" + std::to_string(elites);
        }
      }
    }
  }
  ga_table.print(std::cout);
  std::cout << "most robust GA setting: " << best_ga << "\n";
  std::cout << "\n(the defaults in opt/baselines.hpp were chosen with this "
               "procedure, as the paper does for its baselines)\n";
  return 0;
}
