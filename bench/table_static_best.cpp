// Reproduces the static-configuration facts of paper §VII-A:
//
//   "the best average configuration over all the workloads (i.e., 24 top
//    level and 2 nested transactions) has an average Distance From Optimum
//    of 21.8%, its 90-th percentile is 2.56x worse than optimum and, in the
//    worst case (Array high contention), 3.22x slower."
//
// Prints each workload's optimum, the best-on-average static configuration,
// and that configuration's DFO statistics across the 10 workloads.

#include <iostream>

#include "bench/bench_common.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

int main() {
  const opt::ConfigSpace space{bench::kCores};
  const auto surfaces = bench::paper_surfaces(space);

  std::cout << "== Paper §VII-A: workload optima and the best static configuration ==\n";
  std::cout << "search space: n=" << space.cores() << ", |S|=" << space.size()
            << " (paper: 198)\n\n";

  util::TextTable per_workload{
      {"workload", "optimum(t,c)", "thr@opt", "thr@(1,1)", "opt/(1,1)", "abort@opt"}};
  for (const auto& ws : surfaces) {
    const double seq = ws.model.mean_throughput(opt::Config{1, 1});
    per_workload.add_row({ws.params.name, ws.opt.config.to_string(),
                          util::fmt_double(ws.opt.throughput, 0),
                          util::fmt_double(seq, 0),
                          util::fmt_double(ws.opt.throughput / seq, 2),
                          util::fmt_percent(ws.model.top_abort_probability(ws.opt.config))});
  }
  per_workload.print(std::cout);

  // Best static configuration: the one minimizing average DFO across all
  // workloads.
  opt::Config best_static{1, 1};
  double best_avg_dfo = 1e9;
  for (const opt::Config& cfg : space.all()) {
    double total = 0.0;
    for (const auto& ws : surfaces) total += bench::dfo(ws, cfg);
    const double avg = total / static_cast<double>(surfaces.size());
    if (avg < best_avg_dfo) {
      best_avg_dfo = avg;
      best_static = cfg;
    }
  }

  std::vector<double> dfos;
  std::vector<double> slowdowns;
  std::string worst_name;
  double worst_slowdown = 0.0;
  for (const auto& ws : surfaces) {
    dfos.push_back(bench::dfo(ws, best_static));
    const double s = bench::slowdown(ws, best_static);
    slowdowns.push_back(s);
    if (s > worst_slowdown) {
      worst_slowdown = s;
      worst_name = ws.params.name;
    }
  }

  std::cout << "\n== Best static configuration across all workloads ==\n";
  util::TextTable summary{{"metric", "paper", "measured"}};
  summary.add_row({"best static config", "(24,2)", best_static.to_string()});
  summary.add_row({"avg DFO", "21.8%", util::fmt_percent(util::mean_of(dfos))});
  summary.add_row({"p90 slowdown", "2.56x",
                   util::fmt_double(util::percentile(slowdowns, 0.90), 2) + "x"});
  summary.add_row({"worst slowdown", "3.22x (array-high)",
                   util::fmt_double(worst_slowdown, 2) + "x (" + worst_name + ")"});
  summary.print(std::cout);

  std::cout << "\nper-workload DFO of the best static config "
            << best_static.to_string() << ":\n";
  util::TextTable detail{{"workload", "DFO", "slowdown"}};
  for (std::size_t i = 0; i < surfaces.size(); ++i) {
    detail.add_row({surfaces[i].params.name, util::fmt_percent(dfos[i]),
                    util::fmt_double(slowdowns[i], 2) + "x"});
  }
  detail.print(std::cout);
  return 0;
}
