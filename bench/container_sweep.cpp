// Container conflict-unit sweep: semantic (per-key predicates + commit-time
// delta install) vs box-granularity (whole-bucket copy-on-write) TMap and
// TQueue, over key-space size, thread count and access skew.
//
// The quantity of interest is the *false-abort* cost of coarse conflict
// units: under kBoxGranularity two transactions touching different keys of
// one bucket (or a push and a pop on a mid-full queue) abort each other even
// though they commute; under kSemantic those aborts vanish and only genuine
// same-key (same-cursor) conflicts remain. For each cell the sweep reports
// throughput and abort rate for both policies plus the false-abort fraction
// — the share of transaction attempts the box policy aborts *in excess* of
// the semantic policy on the identical workload (box aborts that semantic
// conflict detection proves spurious).
//
// Modes:
//  * disjoint-insert — threads upsert thread-private keys into a small,
//    heavily shared bucket array: every conflict is false by construction,
//    so the semantic abort rate must sit at ~zero (the acceptance headline);
//  * mixed — random get/put/erase over a shared key space with optional
//    hot-key skew: genuine same-key conflicts remain under both policies,
//    and skew shows how the false-abort gap widens as buckets heat up;
//  * queue — concurrent push/pop on a mid-full TQueue: box granularity
//    serializes opposite ends, semantic cursors conflict only on genuine
//    empty/full transitions and same-end races.
//
// Usage: container_sweep [--smoke]   (--smoke shrinks cells for CI)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <chrono>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace autopn;

struct CellResult {
  double txn_per_sec = 0.0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  [[nodiscard]] double abort_rate() const {
    const double attempts = static_cast<double>(commits + aborts);
    return attempts > 0 ? static_cast<double>(aborts) / attempts : 0.0;
  }
};

stm::StmConfig base_cfg(std::size_t threads) {
  stm::StmConfig cfg;
  cfg.initial_top = threads;
  cfg.initial_children = 1;
  cfg.pool_threads = 1;
  return cfg;
}

/// Runs `threads` workers, each performing `ops` transactions produced by
/// `body(stm, thread, rng)`; returns committed throughput and abort counts.
CellResult run_cell(
    std::size_t threads, std::size_t ops,
    const std::function<void(stm::Stm&)>& setup,
    const std::function<void(stm::Stm&, std::size_t, util::Rng&)>& body) {
  stm::Stm stm{base_cfg(threads)};
  setup(stm);
  stm.reset_stats();

  std::atomic<bool> go{false};
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        util::Rng rng{0xC0FFEE + 17 * t};
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (std::size_t i = 0; i < ops; ++i) body(stm, t, rng);
      });
    }
    go.store(true, std::memory_order_release);
  }
  const auto stats = stm.stats();
  CellResult result;
  result.commits = stats.top_commits;
  result.aborts = stats.top_aborts;
  return result;
}

/// Timed wrapper around run_cell.
CellResult timed_cell(
    std::size_t threads, std::size_t ops,
    const std::function<void(stm::Stm&)>& setup,
    const std::function<void(stm::Stm&, std::size_t, util::Rng&)>& body) {
  const auto start = std::chrono::steady_clock::now();
  CellResult result = run_cell(threads, ops, setup, body);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.txn_per_sec =
      elapsed > 0 ? static_cast<double>(result.commits) / elapsed : 0.0;
  return result;
}

/// Share of attempts the box policy aborts in excess of semantic: the
/// false-abort fraction attributable to the coarse conflict unit.
double false_abort_fraction(const CellResult& box, const CellResult& semantic) {
  const double excess = box.abort_rate() - semantic.abort_rate();
  return excess > 0 ? excess : 0.0;
}

std::string fmt(double v, const char* spec) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, spec, v);
  return buffer;
}

constexpr std::size_t kBuckets = 16;  ///< deliberately few: shared buckets

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t ops = smoke ? 2'000 : 40'000;
  const std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{2, 4} : std::vector<std::size_t>{1, 2, 4, 8};

  // ---- disjoint-insert: every conflict is false by construction ------------
  std::cout << "== disjoint-insert: thread-private keys, " << kBuckets
            << " shared buckets ==\n";
  util::TextTable disjoint{{"threads", "policy", "txn/s", "abort_rate",
                            "false_abort_fraction"}};
  for (const std::size_t threads : thread_counts) {
    CellResult by_policy[2];
    for (const stm::ContainerPolicy policy :
         {stm::ContainerPolicy::kBoxGranularity,
          stm::ContainerPolicy::kSemantic}) {
      auto map = std::make_shared<stm::TMap<int, int>>(kBuckets, "sweep",
                                                       policy);
      const CellResult cell = timed_cell(
          threads, ops, [](stm::Stm&) {},
          [map](stm::Stm& stm, std::size_t t, util::Rng& rng) {
            // Thread-private key range: threads never collide on a key, but
            // all ranges share the same few buckets. 1k keys per thread
            // bounds bucket population (and the box policy's copy cost).
            // Eight upserts per transaction: a realistic multi-item insert
            // whose footprint spans several buckets, widening the conflict
            // window the box policy pays for.
            int keys[8];
            for (int& key : keys) {
              key = static_cast<int>(t * 1000 + rng.uniform_index(1000));
            }
            stm.run_top([&](stm::Tx& tx) {
              for (const int key : keys) map->put(tx, key, key);
            });
          });
      by_policy[policy == stm::ContainerPolicy::kSemantic ? 1 : 0] = cell;
      disjoint.add_row({std::to_string(threads),
                        policy == stm::ContainerPolicy::kSemantic ? "semantic"
                                                                  : "box",
                        fmt(cell.txn_per_sec, "%.0f"),
                        fmt(cell.abort_rate(), "%.4f"),
                        policy == stm::ContainerPolicy::kSemantic
                            ? fmt(false_abort_fraction(by_policy[0], cell),
                                  "%.4f")
                            : "-"});
    }
  }
  disjoint.print(std::cout);

  // ---- mixed get/put/erase over a shared key space, with and without skew --
  for (const double skew : {0.0, 0.9}) {
    const std::size_t keys = smoke ? 128 : 512;
    std::cout << "\n== mixed get/put/erase: " << keys << " keys, "
              << kBuckets << " buckets, skew=" << skew
              << " (P[hot 10% of keys]) ==\n";
    util::TextTable mixed{{"threads", "policy", "txn/s", "abort_rate",
                           "false_abort_fraction"}};
    for (const std::size_t threads : thread_counts) {
      CellResult by_policy[2];
      for (const stm::ContainerPolicy policy :
           {stm::ContainerPolicy::kBoxGranularity,
            stm::ContainerPolicy::kSemantic}) {
        auto map = std::make_shared<stm::TMap<int, int>>(kBuckets, "sweep",
                                                         policy);
        const CellResult cell = timed_cell(
            threads, ops,
            [map, keys](stm::Stm& stm) {
              stm.run_top([&](stm::Tx& tx) {
                for (std::size_t k = 0; k < keys; ++k) {
                  map->put(tx, static_cast<int>(k), 0);
                }
              });
            },
            [map, keys, skew](stm::Stm& stm, std::size_t, util::Rng& rng) {
              const auto pick = [&] {
                if (rng.uniform() < skew) {
                  return static_cast<int>(rng.uniform_index(
                      std::max<std::size_t>(keys / 10, 1)));
                }
                return static_cast<int>(rng.uniform_index(keys));
              };
              // Six reads + two updates (+ occasional erase) per
              // transaction: an OLTP-shaped footprint over several buckets.
              int read_keys[6];
              for (int& k : read_keys) k = pick();
              const int a = pick();
              const int b = pick();
              const bool do_erase = rng.uniform_index(10) == 0;
              stm.run_top([&](stm::Tx& tx) {
                std::uint64_t sum = 0;
                for (const int k : read_keys) {
                  sum += static_cast<std::uint64_t>(
                      map->get(tx, k).value_or(0));
                }
                if (do_erase) (void)map->erase(tx, a);
                map->put(tx, b, static_cast<int>((sum + 1) % 1'000'003));
              });
            });
        by_policy[policy == stm::ContainerPolicy::kSemantic ? 1 : 0] = cell;
        mixed.add_row({std::to_string(threads),
                       policy == stm::ContainerPolicy::kSemantic ? "semantic"
                                                                 : "box",
                       fmt(cell.txn_per_sec, "%.0f"),
                       fmt(cell.abort_rate(), "%.4f"),
                       policy == stm::ContainerPolicy::kSemantic
                           ? fmt(false_abort_fraction(by_policy[0], cell),
                                 "%.4f")
                           : "-"});
      }
    }
    mixed.print(std::cout);
  }

  // ---- queue: concurrent push/pop on a mid-full ring -----------------------
  std::cout << "\n== queue: half producers push, half consumers pop, "
               "capacity 1024 ==\n";
  util::TextTable queue_table{{"threads", "policy", "txn/s", "abort_rate",
                               "false_abort_fraction"}};
  for (const std::size_t threads : thread_counts) {
    if (threads < 2) continue;  // need at least one producer and one consumer
    CellResult by_policy[2];
    for (const stm::ContainerPolicy policy :
         {stm::ContainerPolicy::kBoxGranularity,
          stm::ContainerPolicy::kSemantic}) {
      auto queue =
          std::make_shared<stm::TQueue<int>>(1024, "sweepq", policy);
      const CellResult cell = timed_cell(
          threads, ops,
          [queue](stm::Stm& stm) {
            stm.run_top([&](stm::Tx& tx) {
              for (int i = 0; i < 512; ++i) (void)queue->push(tx, i);
            });
          },
          [queue](stm::Stm& stm, std::size_t t, util::Rng&) {
            // Four ops per transaction widen the window in which the
            // opposite end commits (the box policy's false conflict).
            if (t % 2 == 0) {
              stm.run_top([&](stm::Tx& tx) {
                for (int i = 0; i < 4; ++i) (void)queue->push(tx, i);
              });
            } else {
              stm.run_top([&](stm::Tx& tx) {
                for (int i = 0; i < 4; ++i) (void)queue->pop(tx);
              });
            }
          });
      by_policy[policy == stm::ContainerPolicy::kSemantic ? 1 : 0] = cell;
      queue_table.add_row(
          {std::to_string(threads),
           policy == stm::ContainerPolicy::kSemantic ? "semantic" : "box",
           fmt(cell.txn_per_sec, "%.0f"), fmt(cell.abort_rate(), "%.4f"),
           policy == stm::ContainerPolicy::kSemantic
               ? fmt(false_abort_fraction(by_policy[0], cell), "%.4f")
               : "-"});
    }
  }
  queue_table.print(std::cout);

  std::cout << "\nfalse_abort_fraction = box abort rate minus semantic abort "
               "rate on the identical workload\n(the share of attempts the "
               "coarse conflict unit aborts spuriously).\n";
  return 0;
}
