// serve_slo: latency-SLO comparison of static parallelism configurations vs
// live AutoPN tuning on the serving engine, under an open-loop arrival rate
// that shifts mid-run (the scenario ISSUE/paper §V motivates: a service
// whose offered load changes while it runs).
//
// Each cell serves the same two-phase Poisson workload:
//   phase 1: `rate` req/s     phase 2: `rate * shift` req/s
// through a fresh PN-STM + ServeEngine. Static cells pin (t, c) via the
// actuator and never retune; the autopn cell runs tune_and_watch in the
// background so the CUSUM detector can fire on the rate shift. Reported per
// cell: completed throughput, p50/p95/p99 enqueue→commit latency, shed
// fraction, and (for autopn) the number of tuning rounds.
//
// The acceptance bar: autopn's p99 should be no worse than the best static
// pivot within noise — it finds a good (t, c) without being told which.

#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "opt/baselines.hpp"
#include "runtime/controller.hpp"
#include "serve/engine.hpp"
#include "serve/handlers.hpp"
#include "serve/loadgen.hpp"
#include "util/table.hpp"

namespace {

using namespace autopn;

struct BenchParams {
  std::string workload = "array-high";
  int cores = 8;
  std::size_t workers = 4;
  double rate = 800.0;
  double shift = 4.0;
  double phase_seconds = 1.0;
  std::uint64_t seed = 17;
};

struct CellResult {
  std::string name;
  opt::Config final_config{1, 1};
  double throughput = 0.0;
  serve::LatencyRecorder::Summary latency;
  double shed_fraction = 0.0;
  std::size_t tuning_rounds = 0;  ///< 0 for static cells
};

/// Serves the two-phase workload once. When `optimizer_name` is empty the
/// configuration `pinned` is applied up front and left alone; otherwise the
/// named optimizer tunes live for the whole run.
CellResult run_cell(const BenchParams& params, const std::string& name,
                    opt::Config pinned, const std::string& optimizer_name) {
  stm::StmConfig stm_cfg;
  stm_cfg.max_cores = static_cast<std::size_t>(params.cores);
  stm_cfg.pool_threads = std::max<std::size_t>(2, params.workers);
  stm_cfg.initial_top = static_cast<std::size_t>(pinned.t);
  stm_cfg.initial_children = static_cast<std::size_t>(pinned.c);
  stm::Stm stm{stm_cfg};
  util::WallClock clock;
  auto workload = serve::make_servable_workload(params.workload, stm, params.seed);

  serve::ServeConfig serve_cfg;
  serve_cfg.workers = params.workers;
  serve_cfg.queue_capacity = 512;
  serve_cfg.seed = params.seed;
  serve::ServeEngine engine{stm, workload.handler, clock, serve_cfg};

  const opt::ConfigSpace space{params.cores};
  std::unique_ptr<runtime::TuningController> controller;
  std::jthread tuner;
  std::size_t rounds = 0;
  if (!optimizer_name.empty()) {
    auto make_opt = [&]() -> std::unique_ptr<opt::Optimizer> {
      if (optimizer_name == "grid") return std::make_unique<opt::GridSearch>(space);
      return std::make_unique<opt::AutoPnOptimizer>(space, opt::AutoPnParams{},
                                                    params.seed);
    };
    runtime::ControllerParams cparams;
    cparams.max_window_seconds = 0.5;
    // SLO bench: optimize the latency KPI — fed by real enqueue→commit
    // samples through the ServiceKpiSource, not commit-to-commit gaps.
    cparams.kpi = runtime::KpiKind::kLatency;
    controller = std::make_unique<runtime::TuningController>(
        stm, make_opt(), std::make_unique<runtime::FixedTimePolicy>(0.05), clock,
        cparams);
    controller->set_latency_source(&engine.kpi_source());
    tuner = std::jthread{[&, make_opt] {
      rounds = controller->tune_and_watch(make_opt, 2.0 * params.phase_seconds);
    }};
  }

  serve::OpenLoopParams phase;
  phase.rate = params.rate;
  phase.duration = params.phase_seconds;
  phase.seed = params.seed ^ 0xaa;
  (void)serve::run_open_loop(engine, phase);
  phase.rate = params.rate * params.shift;
  phase.seed = params.seed ^ 0xbb;
  (void)serve::run_open_loop(engine, phase);
  if (tuner.joinable()) tuner.join();

  // Steady-state SLO measurement: keep whatever (t, c) the cell ended on,
  // wipe the histogram (the autopn cell's transient includes deliberately
  // bad exploration configs), and serve one more phase at the shifted rate.
  engine.kpi_source().reset_latency_histogram();
  const std::uint64_t completed_before = engine.report().completed;
  const double settle_start = clock.now();
  phase.seed = params.seed ^ 0xcc;
  (void)serve::run_open_loop(engine, phase);
  engine.drain_and_stop();
  const double settle_elapsed = clock.now() - settle_start;

  const serve::ServeReport report = engine.report();
  CellResult result;
  result.name = name;
  result.final_config = opt::Config{static_cast<int>(stm.top_limit()),
                                    static_cast<int>(stm.child_limit())};
  result.throughput =
      settle_elapsed > 0
          ? static_cast<double>(report.completed - completed_before) /
                settle_elapsed
          : 0.0;
  result.latency = report.latency;
  result.shed_fraction = report.shed_fraction;
  result.tuning_rounds = rounds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchParams params;
  const bool quick = argc > 1 && std::string_view{argv[1]} == "--quick";
  if (quick) params.phase_seconds = 0.5;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag{argv[i]};
    if (flag == "--workload") params.workload = argv[i + 1];
    if (flag == "--rate") params.rate = std::stod(argv[i + 1]);
    if (flag == "--shift") params.shift = std::stod(argv[i + 1]);
    if (flag == "--phase") params.phase_seconds = std::stod(argv[i + 1]);
    if (flag == "--seed") params.seed = std::stoull(argv[i + 1]);
  }

  std::cout << "== serve_slo: static (t,c) vs live AutoPN under a rate shift ==\n"
            << "workload " << params.workload << ", " << params.workers
            << " workers, " << util::fmt_double(params.rate, 0) << " -> "
            << util::fmt_double(params.rate * params.shift, 0) << " req/s, "
            << util::fmt_double(params.phase_seconds, 1)
            << "s per phase; req/s and latency are measured on a steady-state "
               "settle phase\nafter tuning, at the shifted rate\n\n";

  // Static pivots: the corners and the balanced center of the (t, c) lattice.
  const opt::ConfigSpace space{params.cores};
  const int t_max = params.cores;  // t*c <= cores, so (cores, 1) is the corner
  const int c_max = params.cores;
  const int mid = std::max(1, params.cores / 4);
  std::vector<std::pair<std::string, opt::Config>> statics{
      {"static(1,1)", opt::Config{1, 1}},
      {"static(t_max,1)", opt::Config{t_max, 1}},
      {"static(1,c_max)", opt::Config{1, c_max}},
      {"static(balanced)", opt::Config{mid, std::max(1, params.cores / (2 * mid))}},
  };

  util::TextTable table{{"strategy", "final (t,c)", "req/s", "p50(ms)", "p95(ms)",
                         "p99(ms)", "shed", "rounds"}};
  double best_static_p99 = 0.0;
  for (const auto& [name, config] : statics) {
    if (!space.valid(config)) continue;
    const CellResult cell = run_cell(params, name, config, "");
    if (best_static_p99 == 0.0 || cell.latency.p99 < best_static_p99) {
      best_static_p99 = cell.latency.p99;
    }
    table.add_row({cell.name, cell.final_config.to_string(),
                   util::fmt_double(cell.throughput, 0),
                   util::fmt_double(cell.latency.p50 * 1e3, 2),
                   util::fmt_double(cell.latency.p95 * 1e3, 2),
                   util::fmt_double(cell.latency.p99 * 1e3, 2),
                   util::fmt_percent(cell.shed_fraction), "-"});
  }

  const CellResult autopn =
      run_cell(params, "autopn(live)", opt::Config{1, 1}, "autopn");
  table.add_row({autopn.name, autopn.final_config.to_string(),
                 util::fmt_double(autopn.throughput, 0),
                 util::fmt_double(autopn.latency.p50 * 1e3, 2),
                 util::fmt_double(autopn.latency.p95 * 1e3, 2),
                 util::fmt_double(autopn.latency.p99 * 1e3, 2),
                 util::fmt_percent(autopn.shed_fraction),
                 std::to_string(autopn.tuning_rounds)});
  table.print(std::cout);

  // Sub-millisecond p99s carry ~16% histogram-bin resolution plus larger
  // run-to-run variance, so "within noise" is a generous 2x.
  const double ratio =
      best_static_p99 > 0 ? autopn.latency.p99 / best_static_p99 : 1.0;
  std::cout << "\nautopn p99 / best static p99: " << util::fmt_double(ratio, 2)
            << (ratio <= 2.0 ? "  (within noise of the best static pivot)"
                             : "  (worse than the best static pivot)")
            << "\ntuning rounds: " << autopn.tuning_rounds
            << (autopn.tuning_rounds >= 2 ? " (rate shift triggered a re-tune)"
                                          : "")
            << "\n";
  return 0;
}
