// router_bench: what does the routing hop cost, and what does the tier buy?
//
// Two questions, two tables, all in one process over loopback sockets:
//
//  1. Hop cost — the same open-loop load is run twice against the same
//     single shard: once straight at the shard's NetServer, once through a
//     Router fronting it. The client-observed p50/p95/p99 delta is the full
//     price of the extra tier: one more framing round-trip, the router's
//     loop dispatch, the pooled-client forward, and the response post back.
//
//  2. Throughput vs shard count — shards run a fixed-latency handler (1 ms),
//     so each shard's capacity is workers/1ms and a single shard saturates
//     under the offered rate. The router fans 64 tenants out by consistent
//     hash; served rate and shed fraction vs shard count show the tier
//     actually scaling admission capacity, with the per-shard decode counts
//     as the balance check.
//
// Handlers are deliberately near-no-op (hop table) and fixed-sleep (scaling
// table): the bench measures the routing tier, not the STM under it.
//
// Usage: bench/router_bench [rate] [duration_s] [connections] [max_shards]

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/netload.hpp"
#include "net/server.hpp"
#include "router/router.hpp"
#include "serve/engine.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"

namespace {

using namespace autopn;
using namespace std::chrono_literals;

struct Params {
  double rate = 3000.0;
  double duration = 2.0;
  std::size_t connections = 2;
  std::size_t max_shards = 4;
  std::size_t workers = 4;
  std::uint64_t seed = 23;
};

stm::StmConfig stm_config(const Params& p) {
  stm::StmConfig cfg;
  cfg.max_cores = 8;
  cfg.pool_threads = p.workers;
  cfg.initial_top = 4;
  cfg.initial_children = 1;
  return cfg;
}

/// One in-process backend shard.
struct Shard {
  Shard(const Params& p, serve::RequestHandler handler)
      : stm(stm_config(p)),
        engine(stm, std::move(handler), clock, serve_cfg(p)),
        server(engine, {}) {}

  static serve::ServeConfig serve_cfg(const Params& p) {
    serve::ServeConfig cfg;
    cfg.workers = p.workers;
    cfg.queue_capacity = 1024;
    cfg.seed = p.seed;
    return cfg;
  }

  util::WallClock clock;
  stm::Stm stm;
  serve::ServeEngine engine;
  net::NetServer server;
};

net::NetLoadParams load_params(const Params& p, std::uint16_t port,
                               std::uint16_t tenants) {
  net::NetLoadParams load;
  load.port = port;
  load.connections = p.connections;
  load.rate = p.rate;
  load.duration = p.duration;
  load.tenants = tenants;
  load.seed = p.seed;
  return load;
}

std::string fmt_ms(double seconds) { return util::fmt_double(seconds * 1e3, 3); }

void add_latency_row(util::TextTable& table, const std::string& name,
                     const net::NetLoadResult& r) {
  table.add_row({name,
                 util::fmt_double(static_cast<double>(r.ok) /
                                      std::max(r.duration, 1e-9),
                                  0),
                 fmt_ms(r.latency.p50), fmt_ms(r.latency.p95),
                 fmt_ms(r.latency.p99)});
}

router::RouterConfig router_config() {
  router::RouterConfig cfg;
  cfg.backoff.attempt_timeout_seconds = 0.5;
  cfg.backoff.initial_backoff_seconds = 0.02;
  cfg.rebalance_enabled = false;  // measure placement, not migration
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  if (argc > 1) p.rate = std::stod(argv[1]);
  if (argc > 2) p.duration = std::stod(argv[2]);
  if (argc > 3) p.connections = std::stoul(argv[3]);
  if (argc > 4) p.max_shards = std::stoul(argv[4]);

  const serve::RequestHandler noop = [](util::Rng&) {};
  const serve::RequestHandler sleep_1ms = [](util::Rng&) {
    std::this_thread::sleep_for(1ms);
  };

  // ---- Table 1: hop cost (direct vs via-router, same shard, same load) --
  std::cout << "hop cost: open loop @ " << util::fmt_double(p.rate, 0)
            << " req/s for " << util::fmt_double(p.duration, 1) << "s, "
            << p.connections << " connections, near-no-op handler\n";
  util::TextTable hop{{"path", "served/s", "p50(ms)", "p95(ms)", "p99(ms)"}};
  {
    Shard shard(p, noop);
    const auto direct =
        net::run_netload(load_params(p, shard.server.port(), 8));
    add_latency_row(hop, "direct", direct);

    router::Router router(
        {router::ShardAddress{0, "127.0.0.1", shard.server.port()}},
        router_config());
    const auto via = net::run_netload(load_params(p, router.port(), 8));
    add_latency_row(hop, "via router", via);
    router.shutdown();
  }
  hop.print(std::cout);

  // ---- Table 2: throughput vs shard count (1 ms handler saturates) ------
  std::cout << "\nscaling: open loop @ " << util::fmt_double(p.rate, 0)
            << " req/s, 64 tenants, 1 ms handler (" << p.workers
            << " workers/shard => ~" << p.workers * 1000
            << " req/s capacity per shard)\n";
  util::TextTable scaling{
      {"shards", "offered/s", "served/s", "shed", "shed@rtr", "unanswered"}};
  for (std::size_t count = 1; count <= p.max_shards; count *= 2) {
    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<router::ShardAddress> addresses;
    for (std::size_t s = 0; s < count; ++s) {
      shards.push_back(std::make_unique<Shard>(p, sleep_1ms));
      addresses.push_back(router::ShardAddress{
          static_cast<std::uint32_t>(s), "127.0.0.1",
          shards.back()->server.port()});
    }
    router::Router router(addresses, router_config());
    const auto result = net::run_netload(load_params(p, router.port(), 64));
    router.shutdown();
    scaling.add_row(
        {std::to_string(count),
         util::fmt_double(static_cast<double>(result.sent) /
                              std::max(result.duration, 1e-9),
                          0),
         util::fmt_double(static_cast<double>(result.ok) /
                              std::max(result.duration, 1e-9),
                          0),
         util::fmt_percent(static_cast<double>(result.shed) /
                           std::max<std::uint64_t>(result.sent, 1)),
         std::to_string(result.shed_router),
         std::to_string(result.unanswered)});
  }
  scaling.print(std::cout);
  return 0;
}
