// Reproduces paper Fig 7: the KPI-monitoring study, run in virtual time on
// commit-event streams generated from the surface models (per-commit
// semantics identical to a live deployment, fully reproducible).
//
//  7a: AutoPN with a *static* measurement window whose duration sweeps
//      20 ms .. 40 s, on a low-throughput and a high-throughput Array
//      workload. Paper: the high-throughput workload reaches ~10% accuracy
//      with 0.1 s windows; the low-throughput one needs ~30x longer windows.
//  7b: short-running application (fixed total run length): average run
//      throughput vs the static window length. Too-short windows pick bad
//      configurations; too-long windows eat the run tuning — both cripple
//      average throughput.
//  7c: AutoPN's adaptive policy (CV + adaptive timeout) vs WPNOC10/WPNOC30
//      with the adaptive timeout and WPNOC30 without it, across workloads
//      and run durations; throughput normalized to an optimally-tuned static
//      window. Paper: the adaptive policy is the most consistent overall.

#include <algorithm>
#include <functional>
#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "opt/autopn_optimizer.hpp"
#include "sim/event_sim.hpp"
#include "opt/runner.hpp"
#include "runtime/monitor.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

/// Result of one virtual-time self-tuning run.
struct VirtualRun {
  opt::Config chosen{1, 1};
  double tuning_seconds = 0.0;
  double tuning_commits = 0.0;
  std::size_t explorations = 0;
};

using PolicyFactory = std::function<std::unique_ptr<runtime::MonitorPolicy>()>;

/// Runs AutoPN against virtual commit streams: every proposed configuration
/// is measured by the policy on a fresh stream (reconfiguration warm-up
/// included). The sequential configuration's measurement seeds the adaptive
/// timeout, exactly as in the live controller. `budget_seconds` bounds the
/// total tuning time (a short-running application simply ends mid-search);
/// 0 means unbounded.
VirtualRun tune_virtual(const sim::SurfaceModel& model, const opt::ConfigSpace& space,
                        const PolicyFactory& make_policy, std::uint64_t seed,
                        double budget_seconds = 0.0) {
  opt::AutoPnOptimizer optimizer{space, {}, seed};
  auto policy = make_policy();
  VirtualRun run;
  double now = 0.0;
  double reference = 0.0;
  std::uint64_t stream_seed = seed ^ 0x7777;
  while (auto proposal = optimizer.propose()) {
    if (budget_seconds > 0.0 && now >= budget_seconds) break;
    sim::CommitStream stream{model, *proposal, ++stream_seed, now};
    if (reference > 0.0) {
      if (auto* cv = dynamic_cast<runtime::CvAdaptivePolicy*>(policy.get())) {
        cv->set_reference_throughput(reference);
      } else if (auto* wp = dynamic_cast<runtime::WpnocPolicy*>(policy.get())) {
        wp->set_reference_throughput(reference);
      }
    }
    runtime::Measurement m = runtime::run_window_on_stream(
        *policy, [&stream] { return stream.next_commit(); }, now);
    // Clip the window at the application's end of life.
    if (budget_seconds > 0.0 && now + m.elapsed > budget_seconds) {
      const double fraction = (budget_seconds - now) / m.elapsed;
      m.commits = static_cast<std::size_t>(m.commits * fraction);
      m.elapsed = budget_seconds - now;
      run.tuning_seconds += m.elapsed;
      run.tuning_commits += static_cast<double>(m.commits);
      break;  // run over before the window completed
    }
    now += m.elapsed;
    run.tuning_seconds += m.elapsed;
    run.tuning_commits += static_cast<double>(m.commits);
    ++run.explorations;
    optimizer.observe(*proposal, m.throughput);
    if (proposal->t == 1 && proposal->c == 1 && m.throughput > 0.0) {
      reference = m.throughput;
    }
  }
  run.chosen = optimizer.best();
  return run;
}

/// Average DFO of the chosen configuration over `runs` repetitions.
double avg_final_dfo(const sim::SurfaceModel& model, const opt::ConfigSpace& space,
                     const PolicyFactory& make_policy, std::size_t runs) {
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    const VirtualRun run = tune_virtual(model, space, make_policy, 31 * (r + 1));
    total += model.distance_from_optimum(space, run.chosen);
  }
  return total / static_cast<double>(runs);
}

/// Average run throughput of a short-running application that self-tunes at
/// startup and then runs the chosen configuration for the remaining time.
double avg_run_throughput(const sim::SurfaceModel& model,
                          const opt::ConfigSpace& space,
                          const PolicyFactory& make_policy, double run_seconds,
                          std::size_t runs) {
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    const VirtualRun run =
        tune_virtual(model, space, make_policy, 53 * (r + 1), run_seconds);
    const double remaining = std::max(0.0, run_seconds - run.tuning_seconds);
    const double commits =
        run.tuning_commits + remaining * model.mean_throughput(run.chosen);
    total += commits / run_seconds;
  }
  return total / static_cast<double>(runs);
}

}  // namespace

int main() {
  const opt::ConfigSpace space{bench::kCores};
  constexpr std::size_t kRuns = 16;

  // Low- vs high-throughput Array workloads (paper 7a uses two Array
  // variants whose rates differ by orders of magnitude).
  sim::WorkloadParams low_params = sim::workload_by_name("array-0.01");
  low_params.name = "array-low-rate";
  sim::WorkloadParams high_params = sim::workload_by_name("array-0.01");
  high_params.name = "array-high-rate";
  high_params.base_work = 1e-3;      // 20x faster transactions
  high_params.spawn_overhead = 5e-6;
  high_params.batch_overhead = 2.5e-6;
  high_params.warmup_seconds = 0.02;
  const sim::SurfaceModel low_model{low_params, space.cores()};
  const sim::SurfaceModel high_model{high_params, space.cores()};

  const std::vector<double> windows{0.02, 0.06, 0.2, 0.6, 2.0, 6.0, 20.0, 40.0};

  std::cout << "== Fig 7a: accuracy vs static monitoring-window length ==\n";
  util::TextTable fig7a{{"window (s)", "DFO low-rate wkld", "DFO high-rate wkld"}};
  for (const double w : windows) {
    const PolicyFactory fixed = [w] {
      return std::make_unique<runtime::FixedTimePolicy>(w);
    };
    fig7a.add_row({util::fmt_double(w, 2),
                   util::fmt_percent(avg_final_dfo(low_model, space, fixed, kRuns)),
                   util::fmt_percent(avg_final_dfo(high_model, space, fixed, kRuns))});
  }
  fig7a.print(std::cout);
  std::cout << "paper: ~0.1s suffices for the high-throughput workload; ~30x\n"
               "longer windows are needed for the low-throughput one\n";

  std::cout << "\n== Fig 7b: short-running application (120 s): average run "
               "throughput vs window length ==\n";
  util::TextTable fig7b{{"window (s)", "avg thr low-rate", "avg thr high-rate",
                         "low-rate % of ideal", "high-rate % of ideal"}};
  const double ideal_low = low_model.optimum(space).throughput;
  const double ideal_high = high_model.optimum(space).throughput;
  for (const double w : windows) {
    const PolicyFactory fixed = [w] {
      return std::make_unique<runtime::FixedTimePolicy>(w);
    };
    const double thr_low = avg_run_throughput(low_model, space, fixed, 120.0, kRuns);
    const double thr_high = avg_run_throughput(high_model, space, fixed, 120.0, kRuns);
    fig7b.add_row({util::fmt_double(w, 2), util::fmt_double(thr_low, 0),
                   util::fmt_double(thr_high, 0),
                   util::fmt_percent(thr_low / ideal_low),
                   util::fmt_percent(thr_high / ideal_high)});
  }
  fig7b.print(std::cout);
  std::cout << "paper: overly conservative windows cripple short runs\n";

  std::cout << "\n== Fig 7c: adaptive policy vs WPNOC variants ==\n";
  struct PolicyVariant {
    std::string name;
    PolicyFactory make;
  };
  const std::vector<PolicyVariant> policies{
      {"cv-adaptive", [] { return std::make_unique<runtime::CvAdaptivePolicy>(0.10, 10); }},
      {"wpnoc10+adaptTO", [] { return std::make_unique<runtime::WpnocPolicy>(10, true); }},
      {"wpnoc30+adaptTO", [] { return std::make_unique<runtime::WpnocPolicy>(30, true); }},
      {"wpnoc30", [] { return std::make_unique<runtime::WpnocPolicy>(30, false); }},
  };
  const std::vector<std::pair<std::string, double>> scenarios{
      {"array-low-rate", 60.0},  {"array-low-rate", 300.0},
      {"array-high-rate", 60.0}, {"tpcc-med", 60.0},
      {"vacation-high", 60.0},   {"array-90", 300.0},
  };

  std::vector<std::string> header{"workload/duration"};
  for (const auto& p : policies) header.push_back(p.name);
  util::TextTable fig7c{header};
  std::vector<std::vector<double>> per_policy(policies.size());

  for (const auto& [wl_name, duration] : scenarios) {
    const sim::SurfaceModel* model = nullptr;
    sim::SurfaceModel named{wl_name == "array-low-rate"
                                ? low_params
                                : (wl_name == "array-high-rate"
                                       ? high_params
                                       : sim::workload_by_name(wl_name)),
                            space.cores()};
    model = &named;

    // Optimally tuned static baseline: the best static window for this
    // workload/duration (oracle knowledge, as in the paper's normalization).
    double best_static = 0.0;
    for (const double w : {0.05, 0.2, 1.0, 5.0, 15.0}) {
      const PolicyFactory fixed = [w] {
        return std::make_unique<runtime::FixedTimePolicy>(w);
      };
      best_static = std::max(
          best_static, avg_run_throughput(*model, space, fixed, duration, kRuns / 2));
    }

    std::vector<std::string> row{wl_name + "/" + util::fmt_double(duration, 0) + "s"};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const double thr =
          avg_run_throughput(*model, space, policies[pi].make, duration, kRuns);
      per_policy[pi].push_back(thr / best_static);
      row.push_back(util::fmt_percent(thr / best_static));
    }
    fig7c.add_row(std::move(row));
  }
  // Consistency summary: worst case and spread per policy.
  std::vector<std::string> worst_row{"worst case"};
  std::vector<std::string> spread_row{"spread (max-min)"};
  for (const auto& values : per_policy) {
    const double lo = *std::min_element(values.begin(), values.end());
    const double hi = *std::max_element(values.begin(), values.end());
    worst_row.push_back(util::fmt_percent(lo));
    spread_row.push_back(util::fmt_percent(hi - lo));
  }
  fig7c.add_row(std::move(worst_row));
  fig7c.add_row(std::move(spread_row));
  fig7c.print(std::cout);
  std::cout << "(100% = optimally tuned static window; higher is better)\n";
  std::cout << "paper: the adaptive policy delivers the most consistent results\n";
  return 0;
}
