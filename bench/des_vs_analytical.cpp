// Cross-validation of the two testbed substitutes (DESIGN.md §3): the
// closed-form SurfaceModel against the discrete-event simulator, where
// throughput emerges from sampled read/write sets and first-committer-wins
// validation. The optimizer study only needs the *shape* of the surface, so
// the check is rank agreement over a probe set of configurations, plus a
// full AutoPN tuning run measured on DES commit events through the adaptive
// monitor (the paper pipeline end-to-end at 48 simulated cores).
//
// A third stage validates the compositional model's fitting path (DESIGN.md
// §14): its workload parameters are fitted from just the four pivot probes
// measured ON THE DES — the warm-start procedure — and the fitted model's
// throughput predictions are scored against the DES over the whole probe
// set. This is the accuracy contract behind using model predictions as an
// SMBO prior and a tuning veto.
//
// `--smoke` runs a reduced probe set with short simulations and skips the
// tuning stage — the CI-sized variant wired into tools/run_all.sh.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <memory>

#include "bench/bench_common.hpp"
#include "model/compose.hpp"
#include "model/fit.hpp"
#include "opt/autopn_optimizer.hpp"
#include "runtime/monitor.hpp"
#include "sim/des.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

/// Spearman rank correlation of two equally-long value lists.
double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<std::size_t> order(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> rank(v.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank[order[i]] = static_cast<double>(i);
    }
    return rank;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  const auto n = static_cast<double>(a.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

double median_abs_rel_error(const std::vector<double>& predicted,
                            const std::vector<double>& actual) {
  std::vector<double> errs;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (actual[i] > 0.0) errs.push_back(std::abs(predicted[i] / actual[i] - 1.0));
  }
  if (errs.empty()) return 0.0;
  std::sort(errs.begin(), errs.end());
  return errs[errs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const opt::ConfigSpace space{bench::kCores};
  const std::vector<opt::Config> probes =
      smoke ? std::vector<opt::Config>{{1, 1}, {1, 48}, {4, 4}, {12, 4}, {48, 1}}
            : std::vector<opt::Config>{
                  {1, 1},  {1, 8},  {1, 48}, {2, 9},  {4, 4},  {8, 2},  {8, 6},
                  {12, 4}, {16, 3}, {20, 2}, {24, 2}, {32, 1}, {48, 1},
              };
  const double des_seconds = smoke ? 0.4 : 1.5;

  std::cout << "== DES vs analytical model: shape agreement ==\n";
  util::TextTable agreement{
      {"workload", "rank corr", "analytical argmax", "DES argmax"}};
  for (const char* name : {"tpcc-med", "tpcc-high", "vacation-med", "array-90"}) {
    const auto wl = sim::workload_by_name(name);
    const sim::SurfaceModel analytical{wl, bench::kCores};
    const sim::DesParams des_params = sim::des_from_workload(wl, bench::kCores);

    std::vector<double> model_values;
    std::vector<double> des_values;
    opt::Config model_best{1, 1};
    opt::Config des_best{1, 1};
    for (const opt::Config& cfg : probes) {
      const double model_thr = analytical.mean_throughput(cfg);
      sim::DesSimulator sim{des_params, cfg, 101};
      const double des_thr = sim.run(des_seconds).throughput();
      model_values.push_back(model_thr);
      des_values.push_back(des_thr);
      if (model_thr > analytical.mean_throughput(model_best)) model_best = cfg;
      if (des_values.back() >=
          *std::max_element(des_values.begin(), des_values.end())) {
        des_best = cfg;
      }
    }
    agreement.add_row({name, util::fmt_double(spearman(model_values, des_values), 2),
                       model_best.to_string(), des_best.to_string()});
  }
  agreement.print(std::cout);
  std::cout
      << "(rank correlation ~1 = same configuration ordering. The two\n"
         "substitutes agree on moderate-contention workloads; they diverge on\n"
         "extremes because the DES's lazy commit-time validation floors\n"
         "heavily contended configurations — aborted attempts never publish\n"
         "writes, so winners keep committing — while the closed-form model is\n"
         "calibrated to JVSTM's harsher measured degradation. See DESIGN.md.)\n";

  // ---- Compositional model fitted from the DES pivot probes --------------
  std::cout << "\n== Compositional model fitted from 4 DES pivot probes ==\n";
  util::TextTable fitcmp{{"workload", "rank corr", "median |err| fitted",
                          "median |err| preset"}};
  for (const char* name : {"tpcc-med", "tpcc-low", "vacation-med"}) {
    const auto wl = sim::workload_by_name(name);
    const sim::DesParams des_params = sim::des_from_workload(wl, bench::kCores);

    // The warm-start procedure: one live window per pivot, measured on the
    // DES (the stand-in for the real system), then one fit.
    std::vector<model::Probe> pivot_probes;
    for (const opt::Config& cfg : model::probe_configs(space)) {
      sim::DesSimulator sim{des_params, cfg,
                            static_cast<std::uint64_t>(300 + cfg.t + cfg.c)};
      pivot_probes.push_back({cfg, sim.run(des_seconds).throughput()});
    }
    const sim::WorkloadParams fitted_wl =
        model::fit_workload(wl, pivot_probes, bench::kCores);

    model::PipelineParams pp;
    pp.workload = fitted_wl;
    pp.cores = bench::kCores;
    pp.workers = bench::kCores;  // service stage alone: no worker clamp
    const model::CompositionalModel fitted{pp};
    const sim::SurfaceModel preset{wl, bench::kCores};

    std::vector<double> fitted_values;
    std::vector<double> preset_values;
    std::vector<double> des_values;
    for (const opt::Config& cfg : probes) {
      fitted_values.push_back(fitted.closed_throughput(cfg));
      preset_values.push_back(preset.mean_throughput(cfg));
      sim::DesSimulator sim{des_params, cfg, 101};
      des_values.push_back(sim.run(des_seconds).throughput());
    }
    fitcmp.add_row({name, util::fmt_double(spearman(fitted_values, des_values), 2),
                    util::fmt_percent(median_abs_rel_error(fitted_values, des_values)),
                    util::fmt_percent(median_abs_rel_error(preset_values, des_values))});
  }
  fitcmp.print(std::cout);
  std::cout
      << "(fitting the pivots against the measured system pulls the\n"
         "model's absolute level onto the DES's scale — the preset columns\n"
         "carry JVSTM-calibrated constants, so their level error is larger\n"
         "while the ordering stays comparable. Shape is what the prior and\n"
         "the veto consume; level only matters for capacity what-ifs.)\n";

  if (smoke) {
    std::cout << "\n--smoke: skipping the AutoPN-on-DES tuning stage\n";
    return 0;
  }

  std::cout << "\n== AutoPN tuning on the DES through the adaptive monitor ==\n";
  const auto wl = sim::workload_by_name("tpcc-med");
  const sim::DesParams des_params = sim::des_from_workload(wl, bench::kCores);

  // Each proposed configuration is simulated and measured by the CV-adaptive
  // policy consuming the DES's own commit events.
  opt::AutoPnOptimizer optimizer{space, {}, 21};
  runtime::CvAdaptivePolicy policy{0.10, 10};
  double reference = 0.0;
  double virtual_seconds = 0.0;
  std::size_t explorations = 0;
  while (auto proposal = optimizer.propose()) {
    sim::DesSimulator sim{des_params, *proposal, 500 + explorations};
    if (reference > 0.0) policy.set_reference_throughput(reference);
    // Collect commit timestamps through the policy until stable/timeout.
    std::vector<double> pending;
    sim.set_commit_callback([&](double at) { pending.push_back(at); });
    policy.begin_window(0.0);
    runtime::Measurement m;
    bool complete = false;
    while (!complete) {
      pending.clear();
      const auto chunk = sim.run_commits(64, /*max_seconds=*/1.0);
      std::size_t i = 0;
      for (; i < pending.size() && !complete; ++i) {
        const auto deadline = policy.deadline();
        if (deadline.has_value() && pending[i] > *deadline) {
          m = policy.finish(*deadline, true);
          complete = true;
        } else if (policy.on_commit(pending[i])) {
          m = policy.finish(pending[i], false);
          complete = true;
        }
      }
      if (!complete && chunk.commits == 0) {
        m = policy.finish(sim.now(), true);  // starved window
        complete = true;
      }
    }
    virtual_seconds += m.elapsed;
    ++explorations;
    optimizer.observe(*proposal, m.throughput);
    if (proposal->t == 1 && proposal->c == 1 && m.throughput > 0.0) {
      reference = m.throughput;
    }
  }
  const opt::Config chosen = optimizer.best();
  // Score the choice on a long DES run against the probe-set best.
  auto long_run = [&](opt::Config cfg) {
    sim::DesSimulator sim{des_params, cfg, 999};
    return sim.run(3.0).throughput();
  };
  const double chosen_thr = long_run(chosen);
  double best_probe_thr = 0.0;
  opt::Config best_probe{1, 1};
  for (const opt::Config& cfg : probes) {
    const double thr = long_run(cfg);
    if (thr > best_probe_thr) {
      best_probe_thr = thr;
      best_probe = cfg;
    }
  }
  std::cout << "autopn chose " << chosen.to_string() << " after " << explorations
            << " explorations (" << util::fmt_double(virtual_seconds, 2)
            << "s virtual); long-run throughput "
            << util::fmt_double(chosen_thr, 0) << " vs best probe "
            << best_probe.to_string() << " @ " << util::fmt_double(best_probe_thr, 0)
            << " (" << util::fmt_percent(chosen_thr / best_probe_thr)
            << " of probe best)\n";
  std::cout << "(the point of a black-box tuner: it converges to the optimum of\n"
               "whichever system it measures — analytical, DES, or the real STM)\n";
  return 0;
}
