// chaos_soak: randomized failpoint schedules against the full serving stack
// (PN-STM + ServeEngine + live TuningController) with end-of-run invariant
// assertions. The driver flips a random subset of injection sites on and off
// every few hundred milliseconds while open-loop traffic flows and the
// controller retunes; at the end it checks that no request was lost, the
// workload's transactional state is consistent, and progress was made.
//
//   chaos_soak [--seconds S] [--seed N] [--workload NAME] [--workers N]
//              [--rate R] [--timeout S] [--net | --router]
//
// With --net the traffic arrives over a loopback TCP socket instead of
// in-process submits: a NetServer fronts the engine, netload offers the
// open-loop stream, and the schedule additionally flips the net.accept /
// net.read / net.write failpoints — connection churn, mid-request
// disconnects, and write faults on top of the engine-level chaos. The wire
// ledger (decoded == written + dropped) joins the checked invariants.
//
// With --router the topology becomes the full distributed tier in one
// process: two backend shards (each a complete PN-STM serving stack behind
// its own NetServer), a Router fronting them by consistent hash with an
// aggressive rebalance cadence, and netload offering traffic through the
// router. The schedule adds the router.forward / router.backend_down /
// router.rebalance / router.poll_timeout / router.admit / router.retire
// sites on top of the net.* and engine-level chaos — and because the net.*
// sites are process-global, the router's own shard links suffer the same
// read/write faults, exercising backend-down synthesis and redial under
// load. A membership-churn timeline runs underneath: a third shard is
// admitted mid-run, one static shard is killed outright (redial budget →
// eviction), and the dynamic shard is retired again — the router's
// forwarding ledger (dispatched == forwarded + shed_local, forwarded ==
// returned) must stay exact across all of it, alongside every wire and
// engine ledger in the topology.
//
// Exits 0 when every invariant holds, 1 on any violation (or an unexpected
// exception). When the failpoint framework is compiled out the soak degrades
// to a clean-run smoke test and says so.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/netload.hpp"
#include "net/server.hpp"
#include "opt/baselines.hpp"
#include "router/router.hpp"
#include "runtime/controller.hpp"
#include "serve/engine.hpp"
#include "serve/handlers.hpp"
#include "util/clock.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace {

using namespace autopn;

struct SoakParams {
  double seconds = 5.0;
  std::uint64_t seed = 42;
  std::string workload = "array";
  std::size_t workers = 3;
  double rate = 1500.0;        ///< open-loop arrivals per second
  double request_timeout = 0.05;
  bool net = false;            ///< front the engine with a loopback NetServer
  bool router = false;         ///< full tier: router + two shards + netload
};

SoakParams parse_args(int argc, char** argv) {
  SoakParams params;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seconds") {
      params.seconds = std::stod(next());
    } else if (arg == "--seed") {
      params.seed = std::stoull(next());
    } else if (arg == "--workload") {
      params.workload = next();
    } else if (arg == "--workers") {
      params.workers = std::stoul(next());
    } else if (arg == "--rate") {
      params.rate = std::stod(next());
    } else if (arg == "--timeout") {
      params.request_timeout = std::stod(next());
    } else if (arg == "--net") {
      params.net = true;
    } else if (arg == "--router") {
      params.router = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return params;
}

/// Draws a random failpoint schedule: each site independently armed with a
/// random probability (errors) or delay (stalls). Roughly half the sites are
/// active in any given epoch so healthy and faulty paths interleave. With
/// `net` the socket-edge sites join the lottery; with `router` the routing
/// tier's sites do as well.
std::string random_schedule(util::Rng& rng, bool net, bool router = false) {
  std::ostringstream spec;
  auto add = [&](const std::string& s) {
    if (spec.tellp() > 0) spec << ';';
    spec << s;
  };
  auto coin = [&] { return rng.uniform(0.0, 1.0) < 0.5; };
  if (coin()) {
    std::ostringstream s;
    s << "stm.commit.validate=error(p=" << rng.uniform(0.05, 0.5) << ")";
    add(s.str());
  }
  if (coin()) {
    std::ostringstream s;
    s << "stm.child.merge=error(p=" << rng.uniform(0.05, 0.3) << ")";
    add(s.str());
  }
  if (coin()) {
    std::ostringstream s;
    s << "stm.commit.helping=delay(d=" << rng.uniform_int(20, 200)
      << "us,p=0.3)";
    add(s.str());
  }
  if (coin()) {
    std::ostringstream s;
    s << "stm.vbox.prune=delay(d=" << rng.uniform_int(20, 100) << "us,p=0.5)";
    add(s.str());
  }
  if (coin()) {
    std::ostringstream s;
    s << "stm.commit.validate_pred=error(p=" << rng.uniform(0.05, 0.4) << ")";
    add(s.str());
  }
  if (coin()) {
    // Stall between reading the install base and applying a datatype delta:
    // widens the helper race in the lock-free commit writeback.
    std::ostringstream s;
    s << "stm.map.install=delay(d=" << rng.uniform_int(20, 200) << "us,p=0.3)";
    add(s.str());
  }
  if (coin()) {
    std::ostringstream s;
    s << "serve.worker.fail=error(p=" << rng.uniform(0.02, 0.2) << ")";
    add(s.str());
  }
  if (coin()) {
    std::ostringstream s;
    s << "serve.worker.begin=delay(d=" << rng.uniform_int(100, 2000)
      << "us,p=0.3)";
    add(s.str());
  }
  if (coin()) {
    std::ostringstream s;
    s << "serve.queue.push=delay(d=" << rng.uniform_int(10, 100)
      << "us,p=0.2)";
    add(s.str());
  }
  if (coin()) {
    // Occasionally blind the monitor entirely: the watchdog must notice the
    // stalled windows and revert the actuator without wedging the run.
    add("runtime.monitor.drop_commit=error(p=1)");
  }
  if (net) {
    if (coin()) {
      std::ostringstream s;
      s << "net.accept=error(p=" << rng.uniform(0.05, 0.3) << ")";
      add(s.str());
    }
    if (coin()) {
      std::ostringstream s;
      s << "net.read=error(p=" << rng.uniform(0.005, 0.05) << ")";
      add(s.str());
    }
    if (coin()) {
      std::ostringstream s;
      s << "net.write=error(p=" << rng.uniform(0.005, 0.05) << ")";
      add(s.str());
    }
    if (coin()) {
      std::ostringstream s;
      s << "net.read=delay(d=" << rng.uniform_int(50, 500) << "us,p=0.2)";
      add(s.str());
    }
  }
  if (router) {
    if (coin()) {
      // Forced local shed before any forward: the dispatch-time escape hatch.
      std::ostringstream s;
      s << "router.forward=error(p=" << rng.uniform(0.01, 0.1) << ")";
      add(s.str());
    }
    if (coin()) {
      // ShardLink::forward reports the backend unreachable even though the
      // socket is fine — the caller must fall back to a router-origin shed.
      std::ostringstream s;
      s << "router.backend_down=error(p=" << rng.uniform(0.01, 0.1) << ")";
      add(s.str());
    }
    if (coin()) {
      // Starve the rebalancer: placement decisions stop while traffic and
      // stats polling continue, then resume on the next epoch.
      add("router.rebalance=error(p=1)");
    }
    if (coin()) {
      // Blind health ticks: the poll observes no stats from any shard,
      // driving healthy→suspect (and occasionally all the way to a
      // spurious eviction — which must heal through probation).
      std::ostringstream s;
      s << "router.poll_timeout=error(p=" << rng.uniform(0.1, 0.3) << ")";
      add(s.str());
    }
    if (coin()) {
      // Membership ops rejected as if invalid; the churn driver retries.
      std::ostringstream s;
      s << "router.admit=error(p=" << rng.uniform(0.05, 0.2) << ")";
      add(s.str());
    }
    if (coin()) {
      std::ostringstream s;
      s << "router.retire=error(p=" << rng.uniform(0.05, 0.2) << ")";
      add(s.str());
    }
  }
  return spec.str();
}

int check(bool ok, const std::string& what, int& failures) {
  if (ok) {
    std::cout << "  [ok]   " << what << "\n";
  } else {
    std::cout << "  [FAIL] " << what << "\n";
    ++failures;
  }
  return failures;
}

int run_soak(const SoakParams& params) {
  stm::StmConfig stm_cfg;
  stm_cfg.pool_threads = 2;
  stm_cfg.initial_top = 2;
  stm_cfg.initial_children = 2;
  stm::Stm stm{stm_cfg};
  util::WallClock clock;
  auto workload = serve::make_servable_workload(params.workload, stm,
                                                params.seed);
  serve::ServeConfig serve_cfg;
  serve_cfg.workers = params.workers;
  serve_cfg.queue_capacity = 256;
  serve_cfg.request_timeout = params.request_timeout;
  serve::ServeEngine engine{stm, workload.handler, clock, serve_cfg};

  // --net: put a loopback NetServer in front of the engine and offer the
  // open-loop stream through real sockets (reconnecting through the churn
  // the net.* failpoints inject).
  std::unique_ptr<net::NetServer> server;
  if (params.net) server = std::make_unique<net::NetServer>(engine, net::NetServer::HandlerTable{});

  std::atomic<bool> stop{false};
  std::optional<net::NetLoadResult> net_result;
  std::jthread traffic{[&] {
    if (params.net) {
      net::NetLoadParams load;
      load.port = server->port();
      load.connections = 3;
      load.rate = params.rate;
      load.duration = params.seconds;
      load.deadline_us =
          static_cast<std::uint64_t>(params.request_timeout * 1e6);
      load.seed = params.seed ^ 0x9e3779b97f4a7c15ull;
      load.drain_grace = 1.0;
      net_result = net::run_netload(load);
      return;
    }
    util::Rng rng{params.seed ^ 0x9e3779b97f4a7c15ull};
    while (!stop.load(std::memory_order_relaxed)) {
      (void)engine.submit();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(rng.exponential(params.rate)));
    }
  }};

  // Live tuning with the watchdog armed: chaos epochs that blind the monitor
  // should surface as stalled windows + reverts, not a wedged controller.
  const opt::ConfigSpace space{4};
  runtime::ControllerParams ctl_params;
  ctl_params.max_window_seconds = 0.2;
  ctl_params.watchdog_stall_windows = 2;
  runtime::TuningController controller{
      stm, std::make_unique<opt::RandomSearch>(space, params.seed),
      std::make_unique<runtime::FixedTimePolicy>(0.05), clock, ctl_params};
  controller.set_latency_source(&engine.kpi_source());
  std::jthread tuner{[&] {
    controller.tune_and_watch(
        [&] {
          return std::make_unique<opt::RandomSearch>(space, params.seed + 1);
        },
        params.seconds);
  }};

  // Chaos epochs: a fresh randomized schedule every 200-500 ms.
  util::Rng chaos_rng{params.seed};
  std::size_t epochs = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(params.seconds);
  const bool inject = util::FailpointRegistry::compiled_in();
  while (std::chrono::steady_clock::now() < deadline) {
    if (inject) {
      const std::string spec = random_schedule(chaos_rng, params.net);
      util::FailpointRegistry::instance().disarm_all();
      if (!spec.empty()) {
        util::FailpointRegistry::instance().arm_from_string(spec);
      }
      ++epochs;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds{chaos_rng.uniform_int(200, 500)});
  }
  util::FailpointRegistry::instance().disarm_all();

  stop.store(true, std::memory_order_relaxed);
  traffic = {};  // join the submitter before closing admission
  tuner = {};
  if (server) {
    server->shutdown();  // ordered drain: engine + loop + flush
  } else {
    engine.drain_and_stop();
  }
  const serve::ServeReport report = engine.report();
  const runtime::WatchdogReport& watchdog = controller.watchdog();

  std::cout << "chaos_soak: workload=" << params.workload
            << " seconds=" << params.seconds << " seed=" << params.seed
            << " epochs=" << epochs << (inject ? "" : " (failpoints compiled out)")
            << "\n";
  std::cout << "  offered=" << report.offered << " admitted=" << report.admitted
            << " shed=" << report.shed << " completed=" << report.completed
            << " expired=" << report.expired << " failed=" << report.failed
            << "\n";
  std::cout << "  watchdog: stalled_windows=" << watchdog.stalled_windows
            << " reverts=" << watchdog.reverts << "\n";
  if (server) {
    const net::NetServerReport wire = server->report();
    std::cout << "  wire: accepted=" << wire.accepted
              << " rejected=" << wire.rejected_accepts
              << " disconnects=" << wire.disconnects
              << " decoded=" << wire.requests_decoded
              << " written=" << wire.responses_written
              << " dropped=" << wire.responses_dropped << "\n";
    if (net_result) {
      std::cout << "  client: sent=" << net_result->sent
                << " ok=" << net_result->ok << " shed=" << net_result->shed
                << " io_errors=" << net_result->io_errors
                << " reconnects=" << net_result->reconnects
                << " unanswered=" << net_result->unanswered << "\n";
    }
  }

  int failures = 0;
  check(report.offered == report.admitted + report.shed,
        "offered == admitted + shed", failures);
  check(report.admitted ==
            report.completed + report.expired + report.failed,
        "admitted == completed + expired + failed", failures);
  check(report.queue_depth == 0, "queue drained to depth 0", failures);
  check(report.completed > 0, "bounded completion: progress was made",
        failures);
  check(workload.verify(), "workload transactional state consistent",
        failures);
  if (server) {
    const net::NetServerReport wire = server->report();
    check(wire.requests_decoded == wire.responses_enqueued,
          "wire: decoded == responses enqueued", failures);
    check(wire.responses_enqueued ==
              wire.responses_written + wire.responses_dropped,
          "wire: enqueued == written + dropped", failures);
    check(!net_result || net_result->sent > 0,
          "wire: client offered traffic", failures);
  }
  if (failures != 0) {
    std::cout << "chaos_soak: " << failures << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "chaos_soak: all invariants hold\n";
  return 0;
}

/// --router: the whole distributed tier under one chaos schedule — two
/// backend shards, a Router rebalancing between them, netload through the
/// router — with every ledger in the topology asserted at the end. A
/// membership-churn timeline runs underneath the failpoint schedule: a
/// third shard is admitted mid-run (and must earn its ring arcs through
/// probation), shard b is killed outright to drive the redial-budget →
/// evict path, and the dynamic shard is retired again near the end — all
/// while the same ledgers must stay exact.
int run_router_soak(const SoakParams& params) {
  struct BackendShard {
    BackendShard(const SoakParams& params, std::uint64_t seed)
        : stm(shard_stm()),
          workload(serve::make_servable_workload(params.workload, stm, seed)),
          engine(stm, workload.handler, clock, shard_serve(params, seed)),
          server(engine, {}) {}

    static stm::StmConfig shard_stm() {
      stm::StmConfig cfg;
      cfg.pool_threads = 2;
      cfg.initial_top = 2;
      cfg.initial_children = 2;
      return cfg;
    }
    static serve::ServeConfig shard_serve(const SoakParams& params,
                                          std::uint64_t seed) {
      serve::ServeConfig cfg;
      cfg.workers = params.workers;
      cfg.queue_capacity = 256;
      cfg.request_timeout = params.request_timeout;
      cfg.seed = seed;
      return cfg;
    }

    util::WallClock clock;
    stm::Stm stm;
    serve::ServableWorkload workload;
    serve::ServeEngine engine;
    net::NetServer server;
  };

  BackendShard shard_a{params, params.seed};
  BackendShard shard_b{params, params.seed + 1};
  std::optional<BackendShard> shard_c;  // admitted mid-run by the churn driver

  router::RouterConfig router_cfg;
  router_cfg.backoff.attempt_timeout_seconds = 0.25;
  router_cfg.backoff.initial_backoff_seconds = 0.02;
  router_cfg.backoff.max_backoff_seconds = 0.1;
  // Aggressive cadence and a tight SLO so delay chaos actually triggers
  // migrations; drain-then-cut keeps them drop-free regardless.
  router_cfg.stats_poll_seconds = 0.1;
  router_cfg.rebalance_seconds = 0.25;
  router_cfg.rebalance.slo_p99_us = 5'000;
  router_cfg.rebalance.min_tenant_requests = 8;
  router_cfg.migration_timeout_seconds = 0.25;
  // A small redial budget so the hard-killed shard burns through it and is
  // evicted while the soak still has runway to exercise post-evict traffic.
  router_cfg.redial_budget = 4;
  router_cfg.dead_probe_seconds = 0.2;
  router::Router router{
      {router::ShardAddress{0, "127.0.0.1", shard_a.server.port()},
       router::ShardAddress{1, "127.0.0.1", shard_b.server.port()}},
      router_cfg};

  std::optional<net::NetLoadResult> net_result;
  std::jthread traffic{[&] {
    net::NetLoadParams load;
    load.port = router.port();
    load.connections = 3;
    load.rate = params.rate;
    load.duration = params.seconds;
    load.tenants = 8;
    load.deadline_us =
        static_cast<std::uint64_t>(params.request_timeout * 1e6);
    load.seed = params.seed ^ 0x9e3779b97f4a7c15ull;
    load.drain_grace = 1.0;
    net_result = net::run_netload(load);
  }};

  util::Rng chaos_rng{params.seed};
  std::size_t epochs = 0;
  const auto started = std::chrono::steady_clock::now();
  const auto deadline =
      started + std::chrono::duration<double>(params.seconds);
  const bool inject = util::FailpointRegistry::compiled_in();
  // Membership churn interleaved with the failpoint epochs. Admit/retire
  // go through the same path the wire's Membership frames reach, so the
  // router.admit / router.retire failpoints may veto them — the driver
  // simply retries on the next epoch, exactly like an external operator.
  bool admitted = false;
  bool killed = false;
  bool retired = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (inject) {
      const std::string spec =
          random_schedule(chaos_rng, /*net=*/true, /*router=*/true);
      util::FailpointRegistry::instance().disarm_all();
      if (!spec.empty()) {
        util::FailpointRegistry::instance().arm_from_string(spec);
      }
      ++epochs;
    }
    const double frac = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started)
                            .count() /
                        params.seconds;
    if (!admitted && frac > 0.25) {
      if (!shard_c) shard_c.emplace(params, params.seed + 2);
      admitted =
          router.admit_shard({2, "127.0.0.1", shard_c->server.port()}).ok;
    }
    if (!killed && frac > 0.5) {
      shard_b.server.shutdown();  // hard kill: drives redial budget → evict
      killed = true;
    }
    if (admitted && !retired && frac > 0.75) {
      retired = router.retire_shard(2).ok;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds{chaos_rng.uniform_int(200, 500)});
  }
  util::FailpointRegistry::instance().disarm_all();

  traffic = {};        // client drains before the tier comes down
  router.shutdown();   // answers every in-flight, then closes the links
  shard_a.server.shutdown();
  shard_b.server.shutdown();
  if (shard_c) shard_c->server.shutdown();

  const router::RouterReport rr = router.report();
  const net::NetServerReport router_wire = router.server_report();
  std::cout << "chaos_soak --router: workload=" << params.workload
            << " seconds=" << params.seconds << " seed=" << params.seed
            << " epochs=" << epochs
            << (inject ? "" : " (failpoints compiled out)") << "\n";
  std::cout << "  router: dispatched=" << rr.dispatched
            << " forwarded=" << rr.forwarded << " shed_local=" << rr.shed_local
            << " returned=" << rr.returned << " synthesized=" << rr.synthesized
            << " late=" << rr.late_responses << "\n";
  std::cout << "  router: held=" << rr.held << " migrations="
            << rr.migrations_completed << "/" << rr.migrations_started
            << " forced_cuts=" << rr.forced_cuts
            << " rebalance_rounds=" << rr.rebalance_rounds << "\n";
  std::cout << "  membership: admits=" << rr.admits
            << " retires=" << rr.retires << " evictions=" << rr.evictions
            << " ring_joins=" << rr.readmits
            << " (churn: admitted=" << (admitted ? "yes" : "no")
            << " killed=" << (killed ? "yes" : "no")
            << " retired=" << (retired ? "yes" : "no") << ")\n";
  if (net_result) {
    std::cout << "  client: sent=" << net_result->sent
              << " ok=" << net_result->ok << " shed=" << net_result->shed
              << " io_errors=" << net_result->io_errors
              << " reconnects=" << net_result->reconnects
              << " unanswered=" << net_result->unanswered << "\n";
  }

  int failures = 0;
  check(rr.dispatched == rr.forwarded + rr.shed_local,
        "router: dispatched == forwarded + shed_local", failures);
  check(rr.forwarded == rr.returned, "router: forwarded == returned",
        failures);
  check(router_wire.requests_decoded == router_wire.responses_enqueued,
        "router wire: decoded == responses enqueued", failures);
  check(router_wire.responses_enqueued ==
            router_wire.responses_written + router_wire.responses_dropped,
        "router wire: enqueued == written + dropped", failures);
  std::uint64_t completed = 0;
  std::vector<std::pair<std::string, BackendShard*>> backends{
      {"shard a", &shard_a}, {"shard b", &shard_b}};
  if (shard_c) backends.emplace_back("shard c", &*shard_c);
  for (auto& [name, backend] : backends) {
    const serve::ServeReport report = backend->engine.report();
    const net::NetServerReport wire = backend->server.report();
    completed += report.completed;
    check(report.offered == report.admitted + report.shed,
          name + ": offered == admitted + shed", failures);
    check(report.admitted == report.completed + report.expired + report.failed,
          name + ": admitted == completed + expired + failed", failures);
    check(report.queue_depth == 0, name + ": queue drained to depth 0",
          failures);
    check(wire.requests_decoded == wire.responses_enqueued,
          name + " wire: decoded == responses enqueued", failures);
    check(wire.responses_enqueued ==
              wire.responses_written + wire.responses_dropped,
          name + " wire: enqueued == written + dropped", failures);
    check(backend->workload.verify(),
          name + ": workload transactional state consistent", failures);
  }
  check(completed > 0, "bounded completion: progress was made", failures);
  check(!net_result || net_result->sent > 0, "client offered traffic",
        failures);
  // Churn accounting: counters only assert the transitions the driver
  // actually landed (failpoints may have vetoed some); the eviction check
  // needs enough post-kill runway for the redial budget to burn down.
  if (admitted) {
    check(rr.admits >= 1, "membership: runtime admit recorded", failures);
  }
  if (retired) {
    check(rr.retires >= 1, "membership: runtime retire recorded", failures);
  }
  if (killed && params.seconds >= 4) {
    check(rr.evictions >= 1, "membership: killed shard was evicted",
          failures);
  }
  if (failures != 0) {
    std::cout << "chaos_soak: " << failures << " invariant violation(s)\n";
    return 1;
  }
  std::cout << "chaos_soak: all invariants hold\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const SoakParams params = parse_args(argc, argv);
    return params.router ? run_router_soak(params) : run_soak(params);
  } catch (const std::exception& e) {
    std::cerr << "chaos_soak: unexpected exception: " << e.what() << "\n";
    return 1;
  }
}
