// net_serve: what does the wire cost? The same workload is served twice —
// once submitted in-process (loadgen straight into ServeEngine) and once
// over a loopback TCP socket (netload → NetServer → the same engine) — and
// the p50/p95/p99 latencies are compared. The delta is the full protocol
// stack: framing, epoll dispatch, the completion post back to the loop, and
// a kernel round-trip each way.
//
// Two latency vantage points are reported for the network cell: the engine's
// enqueue→completion latency (directly comparable with the in-process cell —
// this is the overhead the *server* adds) and the client-observed
// send→response latency (what a caller on the wire actually experiences).
//
// Usage: bench/net_serve [rate] [duration_s] [connections] [payload_bytes]

#include <cstdint>
#include <iostream>
#include <string>

#include "net/netload.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"
#include "serve/handlers.hpp"
#include "serve/loadgen.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"

namespace {

using namespace autopn;

struct Params {
  std::string workload = "array";
  double rate = 2000.0;
  double duration = 2.0;
  std::size_t connections = 4;
  std::size_t payload_bytes = 64;
  std::size_t workers = 4;
  std::uint64_t seed = 23;
};

stm::StmConfig stm_config(const Params& p) {
  stm::StmConfig cfg;
  cfg.max_cores = 8;
  cfg.pool_threads = p.workers;
  cfg.initial_top = 4;
  cfg.initial_children = 1;
  return cfg;
}

serve::ServeConfig serve_config(const Params& p) {
  serve::ServeConfig cfg;
  cfg.workers = p.workers;
  cfg.queue_capacity = 4096;
  cfg.shed_watermark = 4096;
  cfg.seed = p.seed;
  return cfg;
}

std::string fmt_ms(double seconds) { return util::fmt_double(seconds * 1e3, 3); }

struct Cell {
  std::string name;
  std::uint64_t completed = 0;
  double duration = 0.0;
  serve::LatencyRecorder::Summary latency;
};

void add_row(util::TextTable& table, const Cell& cell) {
  table.add_row({cell.name,
                 util::fmt_double(static_cast<double>(cell.completed) /
                                      std::max(cell.duration, 1e-9),
                                  0),
                 fmt_ms(cell.latency.p50), fmt_ms(cell.latency.p95),
                 fmt_ms(cell.latency.p99)});
}

Cell run_in_process(const Params& p) {
  stm::Stm stm{stm_config(p)};
  util::WallClock clock;
  auto workload = serve::make_servable_workload(p.workload, stm, p.seed);
  serve::ServeEngine engine{stm, workload.handler, clock, serve_config(p)};
  serve::OpenLoopParams open;
  open.rate = p.rate;
  open.duration = p.duration;
  open.seed = p.seed;
  const auto result = serve::run_open_loop(engine, open);
  engine.drain_and_stop();
  const auto report = engine.report();
  return {"in-process", report.completed, result.duration, report.latency};
}

int run_loopback(const Params& p, util::TextTable& table) {
  stm::Stm stm{stm_config(p)};
  util::WallClock clock;
  auto workload = serve::make_servable_workload(p.workload, stm, p.seed);
  serve::ServeEngine engine{stm, workload.handler, clock, serve_config(p)};
  net::NetServer server{engine, {}};

  net::NetLoadParams load;
  load.port = server.port();
  load.connections = p.connections;
  load.rate = p.rate;
  load.duration = p.duration;
  load.payload_bytes = p.payload_bytes;
  load.seed = p.seed ^ 0x6e;
  const auto result = net::run_netload(load);
  server.shutdown();

  const auto report = engine.report();
  add_row(table, {"loopback (server)", report.completed, result.duration,
                  report.latency});
  add_row(table, {"loopback (client)", result.ok, result.duration,
                  result.latency});

  const auto wire = server.report();
  const bool exact =
      wire.requests_decoded == wire.responses_enqueued &&
      wire.responses_enqueued == wire.responses_written + wire.responses_dropped;
  std::cout << "wire: " << wire.requests_decoded << " decoded, "
            << wire.responses_written << " written, " << wire.responses_dropped
            << " dropped, ledger " << (exact ? "exact" : "VIOLATED") << "\n";
  return exact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  if (argc > 1) p.rate = std::stod(argv[1]);
  if (argc > 2) p.duration = std::stod(argv[2]);
  if (argc > 3) p.connections = std::stoul(argv[3]);
  if (argc > 4) p.payload_bytes = std::stoul(argv[4]);

  std::cout << "net_serve: " << p.workload << " @ "
            << util::fmt_double(p.rate, 0) << " req/s for "
            << util::fmt_double(p.duration, 1) << "s, " << p.connections
            << " connections, " << p.payload_bytes << "B payloads\n";

  util::TextTable table{{"path", "req/s", "p50(ms)", "p95(ms)", "p99(ms)"}};
  const Cell in_process = run_in_process(p);
  add_row(table, in_process);
  const int rc = run_loopback(p, table);
  table.print(std::cout);
  std::cout << "\nthe (server) row minus the in-process row is the server-side "
               "protocol overhead;\nthe (client) row additionally includes the "
               "kernel round-trip both ways.\n";
  return rc;
}
