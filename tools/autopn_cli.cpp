// autopn — command-line interface to the library's studies.
//
//   autopn workloads                      list the 10 paper workloads & optima
//   autopn surface <workload>             print a throughput surface
//   autopn tune <workload> [opts]         run one tuner trace-driven, log steps
//   autopn compare <workload> [--seed N]  all tuners on one workload
//   autopn record <workload> <file>       record an offline trace to a file
//   autopn info <file>                    summarize a recorded trace
//
// tune options: --optimizer autopn|smbo|random|grid|hc|sa|ga  --seed N
//               --cores N (default 48)

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "opt/baselines.hpp"
#include "opt/runner.hpp"
#include "sim/des.hpp"
#include "sim/surface.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

int usage() {
  std::cerr << "usage: autopn <workloads|surface|tune|compare|des-tune|record|info> ...\n"
               "  autopn workloads\n"
               "  autopn surface <workload> [--cores N]\n"
               "  autopn tune <workload> [--optimizer NAME] [--seed N] [--cores N]\n"
               "  autopn compare <workload> [--seed N] [--cores N]\n"
               "  autopn des-tune <workload> [--optimizer NAME] [--seed N]\n"
               "  autopn record <workload> <file> [--cores N]\n"
               "  autopn info <file>\n";
  return 2;
}

struct Options {
  std::string optimizer = "autopn";
  std::uint64_t seed = 1;
  int cores = 48;
};

Options parse_options(const std::vector<std::string>& args, std::size_t start) {
  Options opts;
  for (std::size_t i = start; i + 1 < args.size(); i += 2) {
    if (args[i] == "--optimizer") {
      opts.optimizer = args[i + 1];
    } else if (args[i] == "--seed") {
      opts.seed = std::stoull(args[i + 1]);
    } else if (args[i] == "--cores") {
      opts.cores = std::stoi(args[i + 1]);
    } else {
      throw std::invalid_argument{"unknown option " + args[i]};
    }
  }
  return opts;
}

std::unique_ptr<opt::Optimizer> make_optimizer(const std::string& name,
                                               const opt::ConfigSpace& space,
                                               std::uint64_t seed) {
  if (name == "autopn") {
    return std::make_unique<opt::AutoPnOptimizer>(space, opt::AutoPnParams{}, seed);
  }
  if (name == "smbo") {
    opt::AutoPnParams params;
    params.hill_climb_refinement = false;
    return std::make_unique<opt::AutoPnOptimizer>(space, params, seed);
  }
  if (name == "random") return std::make_unique<opt::RandomSearch>(space, seed);
  if (name == "grid") return std::make_unique<opt::GridSearch>(space);
  if (name == "hc") return std::make_unique<opt::HillClimbing>(space, seed);
  if (name == "sa") return std::make_unique<opt::SimulatedAnnealing>(space, seed);
  if (name == "ga") return std::make_unique<opt::GeneticAlgorithm>(space, seed);
  throw std::invalid_argument{"unknown optimizer " + name};
}

int cmd_workloads() {
  const opt::ConfigSpace space{48};
  util::TextTable table{{"workload", "optimum", "thr@opt", "opt/(1,1)"}};
  for (const auto& params : sim::paper_workloads()) {
    const sim::SurfaceModel model{params, 48};
    const auto optimum = model.optimum(space);
    table.add_row({params.name, optimum.config.to_string(),
                   util::fmt_double(optimum.throughput, 0),
                   util::fmt_double(optimum.throughput /
                                        model.mean_throughput(opt::Config{1, 1}),
                                    2)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_surface(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  util::TextTable table{{"(t,c)", "thr", "latency(ms)", "abort", "DFO"}};
  for (const opt::Config& cfg : space.all()) {
    table.add_row({cfg.to_string(), util::fmt_double(model.mean_throughput(cfg), 0),
                   util::fmt_double(model.mean_latency(cfg) * 1e3, 3),
                   util::fmt_percent(model.top_abort_probability(cfg)),
                   util::fmt_percent(model.distance_from_optimum(space, cfg))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_tune(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  auto optimizer = make_optimizer(opts.optimizer, space, opts.seed);
  util::Rng noise{opts.seed ^ 0xabc};
  std::cout << "tuning " << workload << " with " << optimizer->name() << " over "
            << space.size() << " configurations\n";
  util::TextTable steps{{"step", "config", "measured", "best so far", "DFO"}};
  std::size_t step = 0;
  double best = 0.0;
  opt::Config incumbent{1, 1};
  while (auto proposal = optimizer->propose()) {
    const double kpi = model.sample(*proposal, 1.0, noise);
    optimizer->observe(*proposal, kpi);
    if (kpi > best) {
      best = kpi;
      incumbent = *proposal;
    }
    steps.add_row({std::to_string(++step), proposal->to_string(),
                   util::fmt_double(kpi, 0), incumbent.to_string(),
                   util::fmt_percent(model.distance_from_optimum(space, incumbent))});
    if (step > 400) break;
  }
  steps.print(std::cout);
  std::cout << "final: " << incumbent.to_string() << " (DFO "
            << util::fmt_percent(model.distance_from_optimum(space, incumbent))
            << ") after " << step << " explorations\n";
  return 0;
}

int cmd_compare(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  util::TextTable table{{"optimizer", "chosen", "DFO", "explorations"}};
  for (const std::string name : {"autopn", "smbo", "random", "grid", "hc", "sa", "ga"}) {
    auto optimizer = make_optimizer(name, space, opts.seed);
    util::Rng noise{opts.seed ^ 0xdef};
    const auto result = opt::run_to_convergence(
        *optimizer, [&](const opt::Config& c) { return model.sample(c, 1.0, noise); },
        400);
    table.add_row({name, result.final_best.to_string(),
                   util::fmt_percent(
                       model.distance_from_optimum(space, result.final_best)),
                   std::to_string(result.explorations())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_record(const std::string& workload, const std::string& file,
               const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  const auto trace = sim::SurfaceTrace::record(model, space, 10, 600.0, opts.seed);
  std::ofstream out{file};
  if (!out) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  trace.save(out);
  std::cout << "recorded " << trace.size() << " configurations of " << workload
            << " to " << file << "\n";
  return 0;
}

int cmd_des_tune(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::DesParams des_params =
      sim::des_from_workload(sim::workload_by_name(workload), opts.cores);
  auto optimizer = make_optimizer(opts.optimizer, space, opts.seed);
  std::cout << "tuning " << workload << " on the discrete-event simulator with "
            << optimizer->name() << "\n";
  std::size_t step = 0;
  while (auto proposal = optimizer->propose()) {
    sim::DesSimulator sim{des_params, *proposal, opts.seed + step};
    const auto window = sim.run_commits(200, 5.0);
    optimizer->observe(*proposal, window.throughput());
    ++step;
    if (step > 400) break;
  }
  const opt::Config chosen = optimizer->best();
  sim::DesSimulator verify{des_params, chosen, opts.seed ^ 0xfff};
  const auto long_run = verify.run(3.0);
  std::cout << "chosen " << chosen.to_string() << " after " << step
            << " explorations; long-run DES throughput "
            << util::fmt_double(long_run.throughput(), 0) << " tx/s, abort rate "
            << util::fmt_percent(long_run.abort_rate()) << "\n";
  return 0;
}

int cmd_info(const std::string& file) {
  std::ifstream in{file};
  if (!in) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  const auto trace = sim::SurfaceTrace::load(in);
  const auto optimum = trace.optimum();
  std::cout << "workload: " << trace.workload() << "\ncores: " << trace.cores()
            << "\nconfigurations: " << trace.size()
            << "\noptimum: " << optimum.config.to_string() << " @ "
            << util::fmt_double(optimum.throughput, 1) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "workloads") return cmd_workloads();
    if (cmd == "surface" && args.size() >= 2) {
      return cmd_surface(args[1], parse_options(args, 2));
    }
    if (cmd == "tune" && args.size() >= 2) {
      return cmd_tune(args[1], parse_options(args, 2));
    }
    if (cmd == "compare" && args.size() >= 2) {
      return cmd_compare(args[1], parse_options(args, 2));
    }
    if (cmd == "des-tune" && args.size() >= 2) {
      return cmd_des_tune(args[1], parse_options(args, 2));
    }
    if (cmd == "record" && args.size() >= 3) {
      return cmd_record(args[1], args[2], parse_options(args, 3));
    }
    if (cmd == "info" && args.size() >= 2) return cmd_info(args[1]);
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
