// autopn — command-line interface to the library's studies.
//
//   autopn workloads                      list the 10 paper workloads & optima
//   autopn surface <workload>             print a throughput surface
//   autopn tune <workload> [opts]         run one tuner trace-driven, log steps
//   autopn compare <workload> [--seed N]  all tuners on one workload
//   autopn record <workload> <file>       record an offline trace to a file
//   autopn info <file>                    summarize a recorded trace
//   autopn serve [--workload W] [opts]    live serving engine + AutoPN tuning
//
// tune options: --optimizer autopn|smbo|random|grid|hc|sa|ga  --seed N
//               --cores N (default 48)
// serve options: --workload array|array-high|vacation|tpcc  --rate R
//                --duration S  --workers N  --shift F  --cores N  --seed N

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "model/advisor.hpp"
#include "model/compose.hpp"
#include "net/netload.hpp"
#include "net/server.hpp"
#include "router/router.hpp"
#include "opt/autopn_optimizer.hpp"
#include "opt/baselines.hpp"
#include "opt/runner.hpp"
#include "runtime/controller.hpp"
#include "serve/engine.hpp"
#include "serve/handlers.hpp"
#include "serve/loadgen.hpp"
#include "sim/des.hpp"
#include "sim/surface.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"
#include "util/failpoint.hpp"
#include "util/table.hpp"

using namespace autopn;

namespace {

int usage() {
  std::cerr << "usage: autopn <workloads|surface|model|tune|compare|des-tune|record|info|serve> ...\n"
               "  autopn workloads\n"
               "  autopn surface <workload> [--cores N]\n"
               "  autopn model <workload> [--rate R] [--workers N] [--cores N]\n"
               "               [--shift F] [--shed-target F]   (capacity what-ifs)\n"
               "  autopn tune <workload> [--optimizer NAME] [--seed N] [--cores N]\n"
               "  autopn compare <workload> [--seed N] [--cores N]\n"
               "  autopn des-tune <workload> [--optimizer NAME] [--seed N]\n"
               "  autopn record <workload> <file> [--cores N]\n"
               "  autopn info <file>\n"
               "  autopn serve [--workload W] [--rate R] [--duration S] [--workers N]\n"
               "               [--shift F] [--optimizer NAME] [--cores N] [--seed N]\n"
               "               [--request-timeout S] [--model-warm] [--model-veto BAND]\n"
               "  autopn serve --listen ADDR:PORT [--port-file F] [--duration S]\n"
               "               [--workload W] [--workers N] ...   (0.0.0.0:0 = any port)\n"
               "  autopn netload [--host H] [--port P | --port-file F] [--connections N]\n"
               "               [--rate R | --closed-loop [--think S]] [--duration S]\n"
               "               [--tenants N] [--payload BYTES] [--deadline-us U] [--seed N]\n"
               "  autopn router --listen ADDR:PORT (--shard HOST:PORT | --shard-port-file F)...\n"
               "               [--port-file F] [--duration S] [--slo-ms MS]\n"
               "               [--rebalance-interval S] [--no-rebalance]\n"
               "               [--redial-budget N] [--scale-file F]\n"
               "  autopn router-ctl add (--port P | --port-file F) --shard-id N\n"
               "               (--shard HOST:PORT | --shard-port-file F)   [--host H]\n"
               "  autopn router-ctl remove (--port P | --port-file F) --shard-id N\n"
               "  autopn router-ctl status (--port P | --port-file F)\n"
               "global: --failpoints 'name=kind(args)[;...]'  e.g.\n"
               "        --failpoints 'stm.commit.validate=error(p=0.1);stm.vbox.prune=delay(d=1ms)'\n"
               "        (also read from the AUTOPN_FAILPOINTS environment variable;\n"
               "        no-op unless the build compiles failpoints in)\n";
  return 2;
}

struct Options {
  std::string optimizer = "autopn";
  std::uint64_t seed = 1;
  int cores = 48;
  bool cores_given = false;
  // serve-only knobs
  std::string workload = "tpcc";
  double rate = 600.0;      ///< open-loop arrivals/s before the shift
  double duration = 4.0;    ///< total serving time; the rate shifts halfway
  double shift = 4.0;       ///< rate multiplier for the second phase
  std::size_t workers = 4;  ///< engine worker threads
  double request_timeout = 0.0;  ///< per-request deadline, seconds (0 = none)
  // model knobs (model subcommand / serve warm-start+veto)
  bool model_warm = false;   ///< serve: warm-start the tuner from the model
  double model_veto = 0.0;   ///< serve: veto band (0 = off); vetoes block
  double shed_target = 0.01; ///< model: shed-fraction target for what-ifs
  // network knobs (serve --listen / netload)
  std::string listen;       ///< serve: "addr:port" to put the engine on the wire
  std::string port_file;    ///< serve: write the bound port; netload: read it
  std::string host = "127.0.0.1";  ///< netload target
  std::uint16_t port = 0;          ///< netload target
  std::size_t connections = 4;     ///< netload connections
  bool closed_loop = false;        ///< netload: closed loop instead of Poisson
  double think_time = 0.001;       ///< netload closed loop: mean think seconds
  std::uint16_t tenants = 1;       ///< netload: round-robined tenant ids
  std::size_t payload = 0;         ///< netload: request payload bytes
  std::uint64_t deadline_us = 0;   ///< netload: client deadline on the wire
  // router knobs
  std::vector<std::string> shards;            ///< router: HOST:PORT backends
  std::vector<std::string> shard_port_files;  ///< router: loopback backends
  double slo_ms = 50.0;            ///< router: rebalance SLO on shard p99
  double rebalance_interval = 1.0; ///< router: placement decision cadence
  bool no_rebalance = false;       ///< router: disable the rebalancer
  std::uint64_t redial_budget = 8; ///< router: failed dials before dead
  std::string scale_file;          ///< router: write scale recommendations
  std::uint32_t shard_id = 0;      ///< router-ctl: add/remove target id
  bool shard_id_given = false;
};

Options parse_options(const std::vector<std::string>& args, std::size_t start) {
  Options opts;
  std::size_t i = start;
  while (i < args.size()) {
    // No-argument flags first; everything else consumes a value.
    if (args[i] == "--closed-loop") {
      opts.closed_loop = true;
      ++i;
      continue;
    }
    if (args[i] == "--no-rebalance") {
      opts.no_rebalance = true;
      ++i;
      continue;
    }
    if (args[i] == "--model-warm") {
      opts.model_warm = true;
      ++i;
      continue;
    }
    if (i + 1 >= args.size()) {
      throw std::invalid_argument{"option " + args[i] + " needs a value"};
    }
    if (args[i] == "--optimizer") {
      opts.optimizer = args[i + 1];
    } else if (args[i] == "--seed") {
      opts.seed = std::stoull(args[i + 1]);
    } else if (args[i] == "--cores") {
      opts.cores = std::stoi(args[i + 1]);
      opts.cores_given = true;
    } else if (args[i] == "--workload") {
      opts.workload = args[i + 1];
    } else if (args[i] == "--rate") {
      opts.rate = std::stod(args[i + 1]);
    } else if (args[i] == "--duration") {
      opts.duration = std::stod(args[i + 1]);
    } else if (args[i] == "--shift") {
      opts.shift = std::stod(args[i + 1]);
    } else if (args[i] == "--workers") {
      opts.workers = std::stoul(args[i + 1]);
    } else if (args[i] == "--request-timeout") {
      opts.request_timeout = std::stod(args[i + 1]);
    } else if (args[i] == "--model-veto") {
      opts.model_veto = std::stod(args[i + 1]);
    } else if (args[i] == "--shed-target") {
      opts.shed_target = std::stod(args[i + 1]);
    } else if (args[i] == "--listen") {
      opts.listen = args[i + 1];
    } else if (args[i] == "--port-file") {
      opts.port_file = args[i + 1];
    } else if (args[i] == "--host") {
      opts.host = args[i + 1];
    } else if (args[i] == "--port") {
      opts.port = static_cast<std::uint16_t>(std::stoul(args[i + 1]));
    } else if (args[i] == "--connections") {
      opts.connections = std::stoul(args[i + 1]);
    } else if (args[i] == "--think") {
      opts.think_time = std::stod(args[i + 1]);
    } else if (args[i] == "--tenants") {
      opts.tenants = static_cast<std::uint16_t>(std::stoul(args[i + 1]));
    } else if (args[i] == "--payload") {
      opts.payload = std::stoul(args[i + 1]);
    } else if (args[i] == "--deadline-us") {
      opts.deadline_us = std::stoull(args[i + 1]);
    } else if (args[i] == "--shard") {
      opts.shards.push_back(args[i + 1]);
    } else if (args[i] == "--shard-port-file") {
      opts.shard_port_files.push_back(args[i + 1]);
    } else if (args[i] == "--slo-ms") {
      opts.slo_ms = std::stod(args[i + 1]);
    } else if (args[i] == "--rebalance-interval") {
      opts.rebalance_interval = std::stod(args[i + 1]);
    } else if (args[i] == "--redial-budget") {
      opts.redial_budget = std::stoull(args[i + 1]);
    } else if (args[i] == "--scale-file") {
      opts.scale_file = args[i + 1];
    } else if (args[i] == "--shard-id") {
      opts.shard_id = static_cast<std::uint32_t>(std::stoul(args[i + 1]));
      opts.shard_id_given = true;
    } else if (args[i] == "--failpoints") {
      // Arm immediately — global, not an Options field: failpoints are
      // process-wide and must be live before any workload code runs.
      util::FailpointRegistry::instance().arm_from_string(args[i + 1]);
    } else {
      throw std::invalid_argument{"unknown option " + args[i]};
    }
    i += 2;
  }
  return opts;
}

std::unique_ptr<opt::Optimizer> make_optimizer(const std::string& name,
                                               const opt::ConfigSpace& space,
                                               std::uint64_t seed,
                                               const opt::Prior* prior = nullptr) {
  if (name == "autopn") {
    opt::AutoPnParams params;
    if (prior != nullptr) params.prior = *prior;
    return std::make_unique<opt::AutoPnOptimizer>(space, params, seed);
  }
  if (name == "smbo") {
    opt::AutoPnParams params;
    params.hill_climb_refinement = false;
    if (prior != nullptr) params.prior = *prior;
    return std::make_unique<opt::AutoPnOptimizer>(space, params, seed);
  }
  if (name == "random") return std::make_unique<opt::RandomSearch>(space, seed);
  if (name == "grid") return std::make_unique<opt::GridSearch>(space);
  if (name == "hc") return std::make_unique<opt::HillClimbing>(space, seed);
  if (name == "sa") return std::make_unique<opt::SimulatedAnnealing>(space, seed);
  if (name == "ga") return std::make_unique<opt::GeneticAlgorithm>(space, seed);
  throw std::invalid_argument{"unknown optimizer " + name};
}

int cmd_workloads() {
  const opt::ConfigSpace space{48};
  util::TextTable table{{"workload", "optimum", "thr@opt", "opt/(1,1)"}};
  for (const auto& params : sim::paper_workloads()) {
    const sim::SurfaceModel model{params, 48};
    const auto optimum = model.optimum(space);
    table.add_row({params.name, optimum.config.to_string(),
                   util::fmt_double(optimum.throughput, 0),
                   util::fmt_double(optimum.throughput /
                                        model.mean_throughput(opt::Config{1, 1}),
                                    2)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_surface(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  util::TextTable table{{"(t,c)", "thr", "latency(ms)", "abort", "DFO"}};
  for (const opt::Config& cfg : space.all()) {
    table.add_row({cfg.to_string(), util::fmt_double(model.mean_throughput(cfg), 0),
                   util::fmt_double(model.mean_latency(cfg) * 1e3, 3),
                   util::fmt_percent(model.top_abort_probability(cfg)),
                   util::fmt_percent(model.distance_from_optimum(space, cfg))});
  }
  table.print(std::cout);
  return 0;
}

/// model: capacity what-ifs answered offline by the compositional model
/// (DESIGN.md §14) — predicted throughput/p50/p99/shed at an arrival rate,
/// the shifted-rate question, the max sustainable rate for a shed target,
/// and the min-shards answer.
int cmd_model(const std::string& workload, const Options& opts) {
  model::PipelineParams pipeline;
  pipeline.workload = sim::workload_by_name(workload);
  pipeline.cores = opts.cores;
  pipeline.workers = opts.workers;
  pipeline.queue_capacity = 512;
  const model::CompositionalModel m{pipeline};
  const opt::ConfigSpace space{opts.cores};

  std::cout << "pipeline: " << workload << ", " << opts.workers
            << " workers, queue " << pipeline.queue_capacity << ", "
            << opts.cores << " cores; open-loop "
            << util::fmt_double(opts.rate, 0) << " req/s\n";

  const auto best = m.best_at(space, opts.rate);
  util::TextTable table{
      {"(t,c)", "thr", "p50(ms)", "p99(ms)", "shed", "util", "abort"}};
  std::vector<opt::Config> rows{{1, 1},
                                {1, std::max(1, opts.cores)},
                                {std::max(1, opts.cores), 1},
                                best.config};
  for (const opt::Config& cfg : rows) {
    if (!space.valid(cfg)) continue;
    const model::Prediction p = m.predict(cfg, opts.rate);
    table.add_row({cfg.to_string() + (cfg == best.config ? " *" : ""),
                   util::fmt_double(p.throughput, 0),
                   util::fmt_double(p.p50 * 1e3, 2),
                   util::fmt_double(p.p99 * 1e3, 2),
                   util::fmt_percent(p.shed_fraction),
                   util::fmt_percent(p.utilization),
                   util::fmt_percent(p.abort_rate)});
  }
  table.print(std::cout);
  std::cout << "* best predicted configuration at this rate\n";

  const double shifted_rate = opts.rate * opts.shift;
  const model::Prediction shifted = m.predict(best.config, shifted_rate);
  std::cout << "at " << util::fmt_double(opts.shift, 1) << "x rate ("
            << util::fmt_double(shifted_rate, 0) << " req/s): p99 "
            << util::fmt_double(shifted.p99 * 1e3, 2) << " ms, shed "
            << util::fmt_percent(shifted.shed_fraction) << ", throughput "
            << util::fmt_double(shifted.throughput, 0) << " req/s\n";
  std::cout << "max rate for shed <= " << util::fmt_percent(opts.shed_target)
            << ": "
            << util::fmt_double(m.max_rate_for_shed(best.config, opts.shed_target), 0)
            << " req/s (capacity "
            << util::fmt_double(m.capacity(best.config), 0) << " req/s)\n";
  const std::size_t shards =
      m.min_shards_for_shed(shifted_rate, best.config, opts.shed_target);
  std::cout << "min shards for shed <= " << util::fmt_percent(opts.shed_target)
            << " at " << util::fmt_double(shifted_rate, 0) << " req/s: ";
  if (shards > 64) {
    std::cout << "> 64\n";
  } else {
    std::cout << shards << "\n";
  }
  return 0;
}

int cmd_tune(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  auto optimizer = make_optimizer(opts.optimizer, space, opts.seed);
  util::Rng noise{opts.seed ^ 0xabc};
  std::cout << "tuning " << workload << " with " << optimizer->name() << " over "
            << space.size() << " configurations\n";
  util::TextTable steps{{"step", "config", "measured", "best so far", "DFO"}};
  std::size_t step = 0;
  double best = 0.0;
  opt::Config incumbent{1, 1};
  while (auto proposal = optimizer->propose()) {
    const double kpi = model.sample(*proposal, 1.0, noise);
    optimizer->observe(*proposal, kpi);
    if (kpi > best) {
      best = kpi;
      incumbent = *proposal;
    }
    steps.add_row({std::to_string(++step), proposal->to_string(),
                   util::fmt_double(kpi, 0), incumbent.to_string(),
                   util::fmt_percent(model.distance_from_optimum(space, incumbent))});
    if (step > 400) break;
  }
  steps.print(std::cout);
  std::cout << "final: " << incumbent.to_string() << " (DFO "
            << util::fmt_percent(model.distance_from_optimum(space, incumbent))
            << ") after " << step << " explorations\n";
  return 0;
}

int cmd_compare(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  util::TextTable table{{"optimizer", "chosen", "DFO", "explorations"}};
  for (const std::string name : {"autopn", "smbo", "random", "grid", "hc", "sa", "ga"}) {
    auto optimizer = make_optimizer(name, space, opts.seed);
    util::Rng noise{opts.seed ^ 0xdef};
    const auto result = opt::run_to_convergence(
        *optimizer, [&](const opt::Config& c) { return model.sample(c, 1.0, noise); },
        400);
    table.add_row({name, result.final_best.to_string(),
                   util::fmt_percent(
                       model.distance_from_optimum(space, result.final_best)),
                   std::to_string(result.explorations())});
  }
  table.print(std::cout);
  return 0;
}

int cmd_record(const std::string& workload, const std::string& file,
               const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::SurfaceModel model{sim::workload_by_name(workload), opts.cores};
  const auto trace = sim::SurfaceTrace::record(model, space, 10, 600.0, opts.seed);
  std::ofstream out{file};
  if (!out) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  trace.save(out);
  std::cout << "recorded " << trace.size() << " configurations of " << workload
            << " to " << file << "\n";
  return 0;
}

int cmd_des_tune(const std::string& workload, const Options& opts) {
  const opt::ConfigSpace space{opts.cores};
  const sim::DesParams des_params =
      sim::des_from_workload(sim::workload_by_name(workload), opts.cores);
  auto optimizer = make_optimizer(opts.optimizer, space, opts.seed);
  std::cout << "tuning " << workload << " on the discrete-event simulator with "
            << optimizer->name() << "\n";
  std::size_t step = 0;
  while (auto proposal = optimizer->propose()) {
    sim::DesSimulator sim{des_params, *proposal, opts.seed + step};
    const auto window = sim.run_commits(200, 5.0);
    optimizer->observe(*proposal, window.throughput());
    ++step;
    if (step > 400) break;
  }
  const opt::Config chosen = optimizer->best();
  sim::DesSimulator verify{des_params, chosen, opts.seed ^ 0xfff};
  const auto long_run = verify.run(3.0);
  std::cout << "chosen " << chosen.to_string() << " after " << step
            << " explorations; long-run DES throughput "
            << util::fmt_double(long_run.throughput(), 0) << " tx/s, abort rate "
            << util::fmt_percent(long_run.abort_rate()) << "\n";
  return 0;
}

/// SLO lines shared by the in-process and network serve paths: the queue's
/// current retry-after hint and the per-tenant latency breakdown.
void print_slo_details(const serve::ServeReport& report) {
  std::cout << "retry-after:   "
            << util::fmt_double(report.retry_after_hint * 1e3, 1)
            << " ms (hint a request shed right now would receive)\n";
  if (report.queue_wait.count > 0) {
    // Per-stage breakdown of the end-to-end latency — the production
    // counters the compositional model fits from.
    util::TextTable stages{{"stage", "mean(ms)", "p50(ms)", "p99(ms)"}};
    stages.add_row({"queue wait", util::fmt_double(report.queue_wait.mean * 1e3, 2),
                    util::fmt_double(report.queue_wait.p50 * 1e3, 2),
                    util::fmt_double(report.queue_wait.p99 * 1e3, 2)});
    stages.add_row({"service", util::fmt_double(report.service.mean * 1e3, 2),
                    util::fmt_double(report.service.p50 * 1e3, 2),
                    util::fmt_double(report.service.p99 * 1e3, 2)});
    stages.print(std::cout);
  }
  if (report.tenants.size() > 1) {
    util::TextTable tenants{{"tenant", "requests", "p50(ms)", "p95(ms)", "p99(ms)"}};
    for (const auto& t : report.tenants) {
      tenants.add_row({std::to_string(t.tenant), std::to_string(t.latency.count),
                       util::fmt_double(t.latency.p50 * 1e3, 2),
                       util::fmt_double(t.latency.p95 * 1e3, 2),
                       util::fmt_double(t.latency.p99 * 1e3, 2)});
    }
    tenants.print(std::cout);
  }
}

/// Maps a servable workload name onto the sim preset that parameterizes the
/// compositional model for it. Model assists are shape-relative (prior
/// rescaling, model-relative veto), so preset-level fidelity suffices.
std::string sim_preset_for(const std::string& serve_workload) {
  if (serve_workload == "tpcc") return "tpcc-med";
  if (serve_workload == "vacation") return "vacation-med";
  if (serve_workload == "array") return "array-0.01";
  if (serve_workload == "array-high") return "array-90";
  return serve_workload;  // already a sim preset name
}

/// serve --listen: the full stack on the wire — NetServer in front of the
/// engine, the AutoPN controller tuning live, traffic arriving over TCP
/// (drive it with `autopn netload`).
int cmd_serve_net(const Options& opts) {
  const auto colon = opts.listen.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "--listen wants ADDR:PORT (got '" << opts.listen << "')\n";
    return 2;
  }
  net::NetServerConfig net_cfg;
  net_cfg.bind_address = opts.listen.substr(0, colon);
  net_cfg.port = static_cast<std::uint16_t>(std::stoul(opts.listen.substr(colon + 1)));

  const int cores = opts.cores_given ? opts.cores : 8;
  stm::StmConfig stm_cfg;
  stm_cfg.max_cores = static_cast<std::size_t>(cores);
  stm_cfg.pool_threads = std::max<std::size_t>(2, opts.workers);
  stm::Stm stm{stm_cfg};
  util::WallClock clock;
  auto workload = serve::make_servable_workload(opts.workload, stm, opts.seed ^ 0x5e);

  serve::ServeConfig serve_cfg;
  serve_cfg.workers = opts.workers;
  serve_cfg.queue_capacity = 512;
  serve_cfg.seed = opts.seed;
  serve_cfg.request_timeout = opts.request_timeout;
  serve::ServeEngine engine{stm, workload.handler, clock, serve_cfg};
  net::NetServer server{engine, {}, net_cfg};

  if (!opts.port_file.empty()) {
    std::ofstream out{opts.port_file};
    out << server.port() << "\n";
  }
  std::cout << "listening on " << net_cfg.bind_address << ":" << server.port()
            << " — " << opts.workload << " workload, " << opts.workers
            << " workers, serving for " << util::fmt_double(opts.duration, 1)
            << "s\n"
            << std::flush;

  const opt::ConfigSpace space{cores};
  runtime::ControllerParams params;
  params.max_window_seconds = 0.5;
  runtime::TuningController controller{
      stm, make_optimizer(opts.optimizer, space, opts.seed),
      std::make_unique<runtime::FixedTimePolicy>(0.05), clock, params};
  controller.set_latency_source(&engine.kpi_source());

  const double start = clock.now();
  const std::size_t rounds = controller.tune_and_watch(
      [&] { return make_optimizer(opts.optimizer, space, opts.seed); },
      opts.duration);
  const double elapsed = clock.now() - start;
  server.shutdown();

  const net::NetServerReport wire = server.report();
  const serve::ServeReport report = engine.report();
  util::TextTable ledger{{"accepted", "disconnects", "decoded", "written",
                          "dropped", "shed", "bp pauses"}};
  ledger.add_row({std::to_string(wire.accepted), std::to_string(wire.disconnects),
                  std::to_string(wire.requests_decoded),
                  std::to_string(wire.responses_written),
                  std::to_string(wire.responses_dropped),
                  std::to_string(wire.shed_responses),
                  std::to_string(wire.backpressure_pauses)});
  ledger.print(std::cout);
  if (wire.accept.count > 0) {
    std::cout << "wire stages:   accept p50 "
              << util::fmt_double(wire.accept.p50 * 1e6, 1) << " µs p99 "
              << util::fmt_double(wire.accept.p99 * 1e6, 1) << " µs; reply p50 "
              << util::fmt_double(wire.reply.p50 * 1e6, 1) << " µs p99 "
              << util::fmt_double(wire.reply.p99 * 1e6, 1) << " µs\n";
  }
  const bool ledger_exact =
      wire.requests_decoded == wire.responses_enqueued &&
      wire.responses_enqueued == wire.responses_written + wire.responses_dropped;
  std::cout << "wire ledger:   "
            << (ledger_exact ? "exact (decoded == written + dropped)"
                             : "VIOLATED")
            << "\ntuning rounds: " << rounds << "\nchosen (t,c):  ("
            << stm.top_limit() << "," << stm.child_limit()
            << ")\nthroughput:    "
            << util::fmt_double(static_cast<double>(report.completed) /
                                    std::max(elapsed, 1e-9),
                                0)
            << " req/s (" << report.completed << " completed)\nlatency (ms):  p50 "
            << util::fmt_double(report.latency.p50 * 1e3, 2) << "  p95 "
            << util::fmt_double(report.latency.p95 * 1e3, 2) << "  p99 "
            << util::fmt_double(report.latency.p99 * 1e3, 2)
            << "\nshed fraction: " << util::fmt_percent(report.shed_fraction)
            << " (" << report.shed << "/" << report.offered << " offered)\n";
  print_slo_details(report);
  if (!ledger_exact) return 1;
  if (!workload.verify()) {
    std::cerr << "consistency check FAILED\n";
    return 1;
  }
  std::cout << "consistency:   OK\n";
  return 0;
}

/// router: the distributed serving tier's front end — consistent-hash
/// placement of tenants over `autopn serve --listen` shards, per-shard KPI
/// polling, and ContTune-conservative latency-driven rebalancing. Serves
/// the same wire protocol as a shard, so `autopn netload` drives it
/// unchanged.
int cmd_router(const Options& opts) {
  if (opts.listen.empty()) {
    std::cerr << "router needs --listen ADDR:PORT\n";
    return 2;
  }
  const auto colon = opts.listen.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "--listen wants ADDR:PORT (got '" << opts.listen << "')\n";
    return 2;
  }

  std::vector<router::ShardAddress> shards;
  std::uint32_t next_id = 0;
  for (const std::string& spec : opts.shards) {
    const auto sep = spec.rfind(':');
    if (sep == std::string::npos) {
      std::cerr << "--shard wants HOST:PORT (got '" << spec << "')\n";
      return 2;
    }
    shards.push_back(router::ShardAddress{
        next_id++, spec.substr(0, sep),
        static_cast<std::uint16_t>(std::stoul(spec.substr(sep + 1)))});
  }
  for (const std::string& file : opts.shard_port_files) {
    std::ifstream in{file};
    unsigned port = 0;
    if (!(in >> port)) {
      std::cerr << "cannot read shard port from " << file << "\n";
      return 1;
    }
    shards.push_back(router::ShardAddress{
        next_id++, "127.0.0.1", static_cast<std::uint16_t>(port)});
  }
  if (shards.empty()) {
    std::cerr << "router needs at least one --shard or --shard-port-file\n";
    return 2;
  }

  router::RouterConfig cfg;
  cfg.server.bind_address = opts.listen.substr(0, colon);
  cfg.server.port =
      static_cast<std::uint16_t>(std::stoul(opts.listen.substr(colon + 1)));
  cfg.rebalance.slo_p99_us = static_cast<std::uint64_t>(opts.slo_ms * 1e3);
  cfg.rebalance_seconds = opts.rebalance_interval;
  cfg.rebalance_enabled = !opts.no_rebalance;
  cfg.redial_budget = opts.redial_budget;
  router::Router router{shards, cfg};

  if (!opts.port_file.empty()) {
    std::ofstream out{opts.port_file};
    out << router.port() << "\n";
  }
  std::cout << "routing on " << cfg.server.bind_address << ":" << router.port()
            << " → " << shards.size() << " shards, SLO p99 "
            << util::fmt_double(opts.slo_ms, 1) << " ms, rebalance "
            << (cfg.rebalance_enabled
                    ? "every " + util::fmt_double(cfg.rebalance_seconds, 1) + "s"
                    : "off")
            << ", serving for " << util::fmt_double(opts.duration, 1) << "s\n"
            << std::flush;

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opts.duration));
  int tick = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // Publish the rebalancer's capacity recommendation for an external
    // autoscaler (scripts/run_cluster.sh --elastic) to act on.
    if (!opts.scale_file.empty() && ++tick % 5 == 0) {
      const router::ScaleProposal scale = router.scale_recommendation();
      std::ofstream out{opts.scale_file};
      out << router::to_string(scale.action);
      if (scale.action == router::ScaleAction::kRemove) {
        out << " " << scale.shard_id;
      }
      out << "\n";
    }
  }

  // Snapshot the per-shard SLO table before shutdown tears the links down.
  const auto status = router.shard_status();
  const auto members = router.membership_status();
  router.shutdown();

  util::TextTable slo{{"shard", "state", "ring", "offered", "completed", "shed",
                       "depth", "p50(ms)", "p99(ms)", "reconn", "redials"}};
  for (const auto& s : status) {
    const net::StatsFrame stats = s.stats.value_or(net::StatsFrame{});
    slo.add_row({std::to_string(s.shard_id), router::to_string(s.health),
                 s.in_ring ? "yes" : "NO",
                 std::to_string(stats.offered), std::to_string(stats.completed),
                 std::to_string(stats.shed), std::to_string(stats.queue_depth),
                 util::fmt_double(static_cast<double>(stats.p50_us) / 1e3, 2),
                 util::fmt_double(static_cast<double>(stats.p99_us) / 1e3, 2),
                 std::to_string(s.reconnects),
                 std::to_string(s.redial_attempts)});
  }
  slo.print(std::cout);

  const router::RouterReport report = router.report();
  const net::NetServerReport wire = router.server_report();
  util::TextTable ledger{{"dispatched", "forwarded", "shed@router", "returned",
                          "synth", "held", "migrations", "forced cuts"}};
  ledger.add_row({std::to_string(report.dispatched),
                  std::to_string(report.forwarded),
                  std::to_string(report.shed_local),
                  std::to_string(report.returned),
                  std::to_string(report.synthesized),
                  std::to_string(report.held),
                  std::to_string(report.migrations_completed),
                  std::to_string(report.forced_cuts)});
  ledger.print(std::cout);
  const bool router_ledger_exact =
      report.dispatched == report.forwarded + report.shed_local &&
      report.forwarded == report.returned && report.late_responses == 0;
  const bool wire_ledger_exact =
      wire.requests_decoded == wire.responses_enqueued &&
      wire.responses_enqueued == wire.responses_written + wire.responses_dropped;
  std::cout << "router ledger: "
            << (router_ledger_exact
                    ? "exact (dispatched == forwarded + shed, forwarded == returned)"
                    : "VIOLATED")
            << "\nwire ledger:   "
            << (wire_ledger_exact ? "exact (decoded == written + dropped)"
                                  : "VIOLATED")
            << "\nmembership:    " << report.admits << " admits, "
            << report.retires << " retires, " << report.evictions
            << " evictions, " << report.readmits << " ring joins\n";
  if (!members.log.empty()) {
    std::cout << "membership log:";
    for (const net::MembershipLogEntry& entry : members.log) {
      std::cout << " " << entry.seq << ":"
                << router::to_string(
                       static_cast<router::MembershipEvent>(entry.event))
                << "(" << entry.shard_id << ")";
    }
    std::cout << "\n";
  }
  return router_ledger_exact && wire_ledger_exact ? 0 : 1;
}

/// router-ctl: membership control client. Speaks the v1.2 Membership frame
/// pair at a running router — admit a shard, retire one, or read the
/// member table, membership log, and scale recommendation.
int cmd_router_ctl(const std::string& action, const Options& opts) {
  std::uint16_t port = opts.port;
  if (!opts.port_file.empty()) {
    std::ifstream in{opts.port_file};
    unsigned p = 0;
    if (!(in >> p)) {
      std::cerr << "cannot read router port from " << opts.port_file << "\n";
      return 1;
    }
    port = static_cast<std::uint16_t>(p);
  }
  if (port == 0) {
    std::cerr << "router-ctl needs --port or --port-file\n";
    return 2;
  }

  net::MembershipRequest request;
  if (action == "add") {
    request.op = net::MembershipOp::kAdd;
    if (!opts.shard_id_given) {
      std::cerr << "router-ctl add needs --shard-id N\n";
      return 2;
    }
    request.shard_id = opts.shard_id;
    if (!opts.shards.empty()) {
      const std::string& spec = opts.shards.front();
      const auto sep = spec.rfind(':');
      if (sep == std::string::npos) {
        std::cerr << "--shard wants HOST:PORT (got '" << spec << "')\n";
        return 2;
      }
      request.host = spec.substr(0, sep);
      request.port =
          static_cast<std::uint16_t>(std::stoul(spec.substr(sep + 1)));
    } else if (!opts.shard_port_files.empty()) {
      std::ifstream in{opts.shard_port_files.front()};
      unsigned p = 0;
      if (!(in >> p)) {
        std::cerr << "cannot read shard port from "
                  << opts.shard_port_files.front() << "\n";
        return 1;
      }
      request.host = "127.0.0.1";
      request.port = static_cast<std::uint16_t>(p);
    } else {
      std::cerr << "router-ctl add needs --shard HOST:PORT or "
                   "--shard-port-file F\n";
      return 2;
    }
  } else if (action == "remove") {
    request.op = net::MembershipOp::kRemove;
    if (!opts.shard_id_given) {
      std::cerr << "router-ctl remove needs --shard-id N\n";
      return 2;
    }
    request.shard_id = opts.shard_id;
  } else if (action == "status") {
    request.op = net::MembershipOp::kStatus;
  } else {
    std::cerr << "router-ctl wants add, remove, or status (got '" << action
              << "')\n";
    return 2;
  }

  auto client = net::Client::connect(opts.host, port, 2.0);
  if (client.wire_minor() < 2) {
    std::cerr << "peer negotiated wire minor " << client.wire_minor()
              << " (< 2): no membership support\n";
    return 1;
  }
  if (!client.send_membership(request)) {
    std::cerr << "failed to send membership request\n";
    return 1;
  }
  const auto reply = client.poll_membership(2.0);
  if (!reply) {
    std::cerr << "no membership response within 2s\n";
    return 1;
  }
  if (!reply->message.empty()) {
    std::cout << (reply->ok ? "" : "rejected: ") << reply->message << "\n";
  }
  util::TextTable table{{"shard", "address", "state", "ring", "redials",
                         "reconn", "last error"}};
  for (const net::MemberInfo& m : reply->members) {
    table.add_row({std::to_string(m.shard_id),
                   m.host + ":" + std::to_string(m.port),
                   router::to_string(static_cast<router::HealthState>(m.health)),
                   m.in_ring ? "yes" : "NO",
                   std::to_string(m.redial_attempts),
                   std::to_string(m.reconnects), m.last_error});
  }
  table.print(std::cout);
  std::cout << "log:";
  for (const net::MembershipLogEntry& entry : reply->log) {
    std::cout << " " << entry.seq << ":"
              << router::to_string(
                     static_cast<router::MembershipEvent>(entry.event))
              << "(" << entry.shard_id << ")";
  }
  std::cout << "\nscale: "
            << router::to_string(
                   static_cast<router::ScaleAction>(reply->scale_action));
  if (static_cast<router::ScaleAction>(reply->scale_action) ==
      router::ScaleAction::kRemove) {
    std::cout << " " << reply->scale_shard;
  }
  std::cout << "\n";
  return reply->ok ? 0 : 1;
}

int cmd_netload(const Options& opts) {
  net::NetLoadParams params;
  params.host = opts.host;
  params.port = opts.port;
  if (!opts.port_file.empty()) {
    std::ifstream in{opts.port_file};
    unsigned port = 0;
    if (!(in >> port)) {
      std::cerr << "cannot read port from " << opts.port_file << "\n";
      return 1;
    }
    params.port = static_cast<std::uint16_t>(port);
  }
  if (params.port == 0) {
    std::cerr << "netload needs --port or --port-file\n";
    return 2;
  }
  params.connections = opts.connections;
  params.closed_loop = opts.closed_loop;
  params.rate = opts.rate;
  params.think_time = opts.think_time;
  params.duration = opts.duration;
  params.tenants = opts.tenants;
  params.payload_bytes = opts.payload;
  params.deadline_us = opts.deadline_us;
  params.seed = opts.seed;

  std::cout << "netload → " << params.host << ":" << params.port << " — "
            << params.connections << " connections, "
            << (params.closed_loop
                    ? "closed loop"
                    : "open loop @ " + util::fmt_double(params.rate, 0) + " req/s")
            << " for " << util::fmt_double(params.duration, 1) << "s\n";
  const net::NetLoadResult result = net::run_netload(params);

  util::TextTable counts{{"sent", "ok", "shed", "shed@rtr", "rtr-dead",
                          "rtr-blip", "expired", "failed", "rejected",
                          "io errs", "reconn", "unanswered"}};
  counts.add_row({std::to_string(result.sent), std::to_string(result.ok),
                  std::to_string(result.shed),
                  std::to_string(result.shed_router),
                  std::to_string(result.shed_router_dead),
                  std::to_string(result.shed_router_transient),
                  std::to_string(result.expired),
                  std::to_string(result.failed), std::to_string(result.rejected),
                  std::to_string(result.io_errors),
                  std::to_string(result.reconnects),
                  std::to_string(result.unanswered)});
  counts.print(std::cout);
  std::cout << "achieved:      "
            << util::fmt_double(static_cast<double>(result.sent) /
                                    std::max(result.duration, 1e-9),
                                0)
            << " req/s offered, "
            << util::fmt_double(static_cast<double>(result.ok) /
                                    std::max(result.duration, 1e-9),
                                0)
            << " req/s served\nlatency (ms):  p50 "
            << util::fmt_double(result.latency.p50 * 1e3, 2) << "  p95 "
            << util::fmt_double(result.latency.p95 * 1e3, 2) << "  p99 "
            << util::fmt_double(result.latency.p99 * 1e3, 2)
            << "  (client-observed)\n";
  if (result.shed > 0) {
    std::cout << "mean retry-after: "
              << util::fmt_double(result.mean_retry_after * 1e3, 1)
              << " ms over " << result.shed << " shed responses\n";
  }
  // An all-zero answered count means the server never responded — fail the
  // smoke rather than report a vacuous success.
  return result.answered() > 0 ? 0 : 1;
}

int cmd_serve(const Options& opts) {
  if (!opts.listen.empty()) return cmd_serve_net(opts);
  // The live path: a real PN-STM behind the serving engine, open-loop
  // traffic whose arrival rate shifts halfway through, and the AutoPN
  // controller retuning (t, c) on the running system via CUSUM.
  const int cores = opts.cores_given ? opts.cores : 8;
  stm::StmConfig stm_cfg;
  stm_cfg.max_cores = static_cast<std::size_t>(cores);
  stm_cfg.pool_threads = std::max<std::size_t>(2, opts.workers);
  stm::Stm stm{stm_cfg};
  util::WallClock clock;
  auto workload = serve::make_servable_workload(opts.workload, stm, opts.seed ^ 0x5e);

  serve::ServeConfig serve_cfg;
  serve_cfg.workers = opts.workers;
  serve_cfg.queue_capacity = 512;
  serve_cfg.seed = opts.seed;
  serve_cfg.request_timeout = opts.request_timeout;
  serve::ServeEngine engine{stm, workload.handler, clock, serve_cfg};

  const opt::ConfigSpace space{cores};

  // Optional model assists: a warm-start prior for the optimizer and/or a
  // veto advisor for the controller, both from the compositional model of
  // the sim preset closest to the served workload.
  std::optional<model::TunerAdvisor> advisor;
  std::optional<opt::Prior> prior;
  if (opts.model_warm || opts.model_veto > 0.0) {
    model::PipelineParams pipeline;
    pipeline.workload = sim::workload_by_name(sim_preset_for(opts.workload));
    pipeline.cores = cores;
    pipeline.workers = opts.workers;
    pipeline.queue_capacity = serve_cfg.queue_capacity;
    model::CompositionalModel m{pipeline};
    if (opts.model_warm) prior = model::make_prior(m, space);
    if (opts.model_veto > 0.0) advisor.emplace(std::move(m));
  }

  runtime::ControllerParams params;
  params.max_window_seconds = 0.5;
  params.model_veto_band = opts.model_veto;
  params.model_veto_blocks = opts.model_veto > 0.0;
  const opt::Prior* prior_ptr = prior.has_value() ? &*prior : nullptr;
  runtime::TuningController controller{
      stm, make_optimizer(opts.optimizer, space, opts.seed, prior_ptr),
      std::make_unique<runtime::FixedTimePolicy>(0.05), clock, params};
  controller.set_latency_source(&engine.kpi_source());
  if (advisor.has_value()) controller.set_config_advisor(&*advisor);

  const double shifted_rate = opts.rate * opts.shift;
  std::cout << "serving " << opts.workload << ": " << opts.workers
            << " workers, queue " << serve_cfg.queue_capacity << ", open-loop "
            << util::fmt_double(opts.rate, 0) << " req/s shifting to "
            << util::fmt_double(shifted_rate, 0) << " req/s at t="
            << util::fmt_double(opts.duration / 2, 1) << "s; "
            << opts.optimizer << " tuning live over " << space.size()
            << " configurations\n";

  const double start = clock.now();
  std::size_t rounds = 0;
  std::jthread tuner{[&] {
    rounds = controller.tune_and_watch(
        [&] { return make_optimizer(opts.optimizer, space, opts.seed, prior_ptr); },
        opts.duration);
  }};

  serve::OpenLoopParams phase;
  phase.rate = opts.rate;
  phase.duration = opts.duration / 2;
  phase.seed = opts.seed ^ 0xaa;
  const serve::OpenLoopResult p1 = serve::run_open_loop(engine, phase);
  phase.rate = shifted_rate;
  phase.seed = opts.seed ^ 0xbb;
  const serve::OpenLoopResult p2 = serve::run_open_loop(engine, phase);
  tuner.join();
  const double elapsed = clock.now() - start;
  engine.drain_and_stop();

  util::TextTable phases{{"phase", "rate", "offered", "shed", "max depth"}};
  phases.add_row({"1", util::fmt_double(opts.rate, 0), std::to_string(p1.offered),
                  util::fmt_percent(p1.shed_fraction()),
                  std::to_string(p1.max_queue_depth)});
  phases.add_row({"2", util::fmt_double(shifted_rate, 0), std::to_string(p2.offered),
                  util::fmt_percent(p2.shed_fraction()),
                  std::to_string(p2.max_queue_depth)});
  phases.print(std::cout);

  const serve::ServeReport report = engine.report();
  std::cout << "tuning rounds: " << rounds
            << (rounds >= 2 ? " (the rate shift triggered a re-tune)" : "")
            << "\nchosen (t,c):  (" << stm.top_limit() << "," << stm.child_limit()
            << ")\nthroughput:    "
            << util::fmt_double(static_cast<double>(report.completed) / elapsed, 0)
            << " req/s (" << report.completed << " completed in "
            << util::fmt_double(elapsed, 2) << "s)\nlatency (ms):  p50 "
            << util::fmt_double(report.latency.p50 * 1e3, 2) << "  p95 "
            << util::fmt_double(report.latency.p95 * 1e3, 2) << "  p99 "
            << util::fmt_double(report.latency.p99 * 1e3, 2)
            << "\nshed fraction: " << util::fmt_percent(report.shed_fraction)
            << " (" << report.shed << "/" << report.offered << " offered)\n";
  print_slo_details(report);
  if (opts.model_warm || opts.model_veto > 0.0) {
    std::cout << "model assist:  "
              << (opts.model_warm ? "warm-start prior" : "")
              << (opts.model_warm && opts.model_veto > 0.0 ? " + " : "")
              << (opts.model_veto > 0.0
                      ? "veto band " + util::fmt_percent(opts.model_veto) +
                            " (" + std::to_string(controller.vetoes().flagged) +
                            " flagged, " +
                            std::to_string(controller.vetoes().blocked) +
                            " blocked)"
                      : "")
              << "\n";
  }
  if (report.expired > 0 || opts.request_timeout > 0.0) {
    std::cout << "expired:       " << report.expired << " (deadline "
              << util::fmt_double(opts.request_timeout * 1e3, 0) << " ms)\n";
  }
  if (report.failed > 0) {
    std::cout << "failed:        " << report.failed << " (handler errors)\n";
  }
  if (!workload.verify()) {
    std::cerr << "consistency check FAILED\n";
    return 1;
  }
  std::cout << "consistency:   OK\n";
  return 0;
}

int cmd_info(const std::string& file) {
  std::ifstream in{file};
  if (!in) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  const auto trace = sim::SurfaceTrace::load(in);
  const auto optimum = trace.optimum();
  std::cout << "workload: " << trace.workload() << "\ncores: " << trace.cores()
            << "\nconfigurations: " << trace.size()
            << "\noptimum: " << optimum.config.to_string() << " @ "
            << util::fmt_double(optimum.throughput, 1) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    // The global --failpoints flag may precede the subcommand (it also works
    // anywhere after it, handled in parse_options).
    while (args.size() >= 2 && args[0] == "--failpoints") {
      util::FailpointRegistry::instance().arm_from_string(args[1]);
      args.erase(args.begin(), args.begin() + 2);
    }
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "workloads") return cmd_workloads();
    if (cmd == "surface" && args.size() >= 2) {
      return cmd_surface(args[1], parse_options(args, 2));
    }
    if (cmd == "model" && args.size() >= 2) {
      return cmd_model(args[1], parse_options(args, 2));
    }
    if (cmd == "tune" && args.size() >= 2) {
      return cmd_tune(args[1], parse_options(args, 2));
    }
    if (cmd == "compare" && args.size() >= 2) {
      return cmd_compare(args[1], parse_options(args, 2));
    }
    if (cmd == "des-tune" && args.size() >= 2) {
      return cmd_des_tune(args[1], parse_options(args, 2));
    }
    if (cmd == "record" && args.size() >= 3) {
      return cmd_record(args[1], args[2], parse_options(args, 3));
    }
    if (cmd == "info" && args.size() >= 2) return cmd_info(args[1]);
    if (cmd == "netload") return cmd_netload(parse_options(args, 1));
    if (cmd == "router") return cmd_router(parse_options(args, 1));
    if (cmd == "router-ctl" && args.size() >= 2) {
      return cmd_router_ctl(args[1], parse_options(args, 2));
    }
    if (cmd == "serve") {
      // Accept both `serve tpcc` and `serve --workload tpcc`.
      if (args.size() >= 2 && args[1][0] != '-') {
        Options opts = parse_options(args, 2);
        opts.workload = args[1];
        return cmd_serve(opts);
      }
      return cmd_serve(parse_options(args, 1));
    }
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
