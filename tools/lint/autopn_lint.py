#!/usr/bin/env python3
"""autopn-lint — concurrency-invariant static analysis for the autopn tree.

Enforces the project's hand-maintained concurrency discipline at build time
(see docs/STATIC_ANALYSIS.md). The rule families:

  atomic-order      every std::atomic load/store/RMW spells an explicit
                    std::memory_order; every memory_order_relaxed site is
                    justified in allow_relaxed.txt.
  guarded-by        every class that owns a mutex annotates its mutable
                    fields with AUTOPN_GUARDED_BY(mu) (or justifies the
                    exception in allow_unguarded.txt).
  failpoint         every AUTOPN_FAILPOINT site is unique and registered in
                    failpoints.txt; names referenced by chaos schedules and
                    docs exist.
  banned-pattern    no rand()/srand(), no naked new/delete, no
                    std::this_thread::sleep_for in src/, no
                    #include <iostream> in headers — unless justified in
                    allow_banned.txt.
  lock-order        every nested mutex acquisition (a guard taken while
                    another is textually held) must be a registered edge in
                    lock_order.txt, and the registered edges must form a
                    DAG — so two-lock deadlocks cannot be introduced without
                    declaring (and justifying) the order.
  mc-seam           files listed in mc_ported.txt are model-checked through
                    the sync seam (util/sync.hpp, docs/MODEL_CHECKING.md);
                    raw std:: primitives there would silently escape the
                    checker, so they are rejected outright.
  stale-allow       allowlist entries that no longer match any site fail the
                    lint, so the justification files never rot. lock_order
                    edges and mc_ported entries that match nothing fail the
                    same way (reported under their own rule names).

This is a textual analyzer, not a compiler: it resolves atomic-ness by
harvesting every declaration whose type mentions std::atomic and matching
receiver identifier chains against that set. That catches members declared
in one file and used in another, but not atomics reached through getters or
type aliases — clang-tidy and -Wthread-safety (scripts/static_analysis.sh)
cover the gap when a clang toolchain is present. Diagnostics print the
allowlist line that would accept the site, so justifying an intentional
exception is copy-paste plus a reason.

Exit status: 0 clean, 1 violations, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

ATOMIC_OPS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "test_and_set",
    "clear",
)

# Types that make a field exempt from the guarded-by rule: they synchronize
# themselves (or are the synchronization).
SELF_SYNC_TYPE_TOKENS = (
    "std::atomic",
    "std::mutex",
    "std::shared_mutex",
    "std::recursive_mutex",
    "std::timed_mutex",
    "std::condition_variable",
    "std::once_flag",
    "std::stop_source",
    # Virtualized seam aliases (util/sync.hpp): identical to the std
    # primitives in production, model-checker primitives under AUTOPN_MC.
    "sync::Atomic",
    "sync::Mutex",
    "sync::CondVar",
)

MUTEX_TYPE_RE = re.compile(
    r"\b(?:std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex)|(?:autopn::)?sync::Mutex)\b"
)

FAILPOINT_NAME_PREFIXES = ("stm.", "serve.", "net.", "runtime.")

HEADER_SUFFIXES = (".hpp", ".h")
SOURCE_SUFFIXES = (".hpp", ".h", ".cpp", ".cc")


@dataclass(order=True)
class Diagnostic:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class AllowEntry:
    rule: str
    path: str
    token: str
    why: str
    file: str
    line: int
    used: bool = False

    def matches(self, path: str, text: str) -> bool:
        if self.path != path:
            return False
        return self.token == "*" or self.token in text


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    raw: str
    code: str = ""  # comments AND string/char literals blanked
    code_str: str = ""  # comments blanked, string literals kept
    lines: list = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        return self.raw.count("\n", 0, offset) + 1

    def line_text(self, lineno: int) -> str:
        return self.lines[lineno - 1] if 0 < lineno <= len(self.lines) else ""


def blank_comments_and_strings(text: str):
    """Returns (code, code_str): same length/newlines as `text`, with
    comments blanked in both and string/char literals additionally blanked
    in `code`. Raw strings are handled; escapes inside literals are honored.
    """
    code = list(text)
    code_str = list(text)
    i, n = 0, len(text)

    def blank(buf, start, end):
        for k in range(start, end):
            if buf[k] != "\n":
                buf[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(code, i, j)
            blank(code_str, i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank(code, i, j)
            blank(code_str, i, j)
            i = j
        elif c == '"' and text[i - 3 : i] == 'R"(':  # simple raw string R"(...)"
            j = text.find(')"', i + 1)
            j = n if j < 0 else j + 2
            blank(code, i + 1, j - 2 if j <= n else n)
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":  # unterminated; bail at newline
                    break
                j += 1
            blank(code, i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(code), "".join(code_str)


def load_sources(root: str, rel_paths) -> list:
    out = []
    for rel in sorted(rel_paths):
        full = os.path.join(root, rel)
        try:
            raw = open(full, encoding="utf-8", errors="replace").read()
        except OSError as e:
            print(f"autopn-lint: cannot read {full}: {e}", file=sys.stderr)
            sys.exit(2)
        sf = SourceFile(path=rel.replace(os.sep, "/"), raw=raw)
        sf.code, sf.code_str = blank_comments_and_strings(raw)
        sf.lines = raw.split("\n")
        out.append(sf)
    return out


def collect_tree(root: str, subdirs, exclude_dirs) -> list:
    rels = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            dirnames[:] = [
                d
                for d in dirnames
                if f"{rel_dir}/{d}" not in exclude_dirs and d != "__pycache__"
            ]
            for fn in sorted(filenames):
                if fn.endswith(SOURCE_SUFFIXES):
                    rels.append(f"{rel_dir}/{fn}")
    return rels


# ---------------------------------------------------------------- allowlists


def parse_allow_file(path: str, rule: str) -> list:
    """Entries: `<path> <token> -- <justification>`; token `*` = whole file.
    Lines starting with `#` and blank lines are ignored."""
    entries = []
    if not os.path.exists(path):
        return entries
    for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            print(
                f"{path}:{lineno}: malformed allowlist entry (missing ' -- '"
                f" justification): {line}",
                file=sys.stderr,
            )
            sys.exit(2)
        head, why = line.split(" -- ", 1)
        parts = head.split(None, 1)
        if len(parts) != 2 or not why.strip():
            print(
                f"{path}:{lineno}: malformed allowlist entry (want"
                f" '<path> <token> -- <why>'): {line}",
                file=sys.stderr,
            )
            sys.exit(2)
        entries.append(
            AllowEntry(
                rule=rule,
                path=parts[0],
                token=parts[1].strip(),
                why=why.strip(),
                file=path,
                line=lineno,
            )
        )
    return entries


def allow_match(entries, path: str, text: str):
    for e in entries:
        if e.matches(path, text):
            e.used = True
            return e
    return None


# ------------------------------------------------------------- atomic-order

ATOMIC_DECL_RE = re.compile(
    r"\b(?:std::atomic(?:_flag|_bool|_int|_uint|_long|_size_t)?"
    r"|(?:autopn::)?sync::Atomic)\b"
    r"(?:<(?:[^<>;]|<(?:[^<>;]|<[^<>;]*>)*>)*>)?"  # template args, <=3 deep
    r"[\s&*>]*?"
    r"([A-Za-z_]\w*)\s*(?:[;,={()\[]|$)",
    re.M,
)
ATOMIC_CONTAINER_DECL_RE = re.compile(
    r"\bstd::(?:vector|array|deque)\s*"
    r"<[^;()]*(?:std::atomic|sync::Atomic)[^;()]*>\s*"
    r"([A-Za-z_]\w*)\s*[;={]"
)

# Tokens that look like a declaring type but are not (for shadow detection).
NOT_A_TYPE = frozenset(
    "return co_return co_yield throw case goto new delete typename template"
    " using namespace operator sizeof alignof if while for switch else do"
    " static_assert".split()
)


def build_include_closure(sources, subdirs):
    """Maps each file to the set of scanned files it (transitively)
    #includes, resolving quoted includes against the scan roots and the
    including file's directory."""
    by_path = {sf.path: sf for sf in sources}
    direct = {}
    inc_re = re.compile(r'#\s*include\s*"([^"]+)"')
    for sf in sources:
        incs = set()
        for m in inc_re.finditer(sf.code_str):
            target = m.group(1)
            cands = [f"{sub}/{target}" for sub in subdirs]
            cands.append(
                os.path.normpath(
                    os.path.join(os.path.dirname(sf.path), target)
                ).replace(os.sep, "/")
            )
            for cand in cands:
                if cand in by_path:
                    incs.add(cand)
                    break
        direct[sf.path] = incs
    closure = {}

    def visit(path, seen):
        if path in closure:
            return closure[path]
        seen.add(path)
        out = set(direct[path])
        for inc in direct[path]:
            if inc not in seen:
                out |= visit(inc, seen)
        closure[path] = out
        return out

    for sf in sources:
        visit(sf.path, set())
    return closure


def harvest_atomic_scopes(sources, subdirs):
    """Per-file (atomic_names, shadowed_names): atomic declarations visible
    through the file's include closure, and names from that same scope that
    are *also* declared with a non-atomic type (so a textual match would be
    ambiguous — those are skipped rather than mis-flagged)."""
    closure = build_include_closure(sources, subdirs)
    per_file_atomics = {}
    all_atomics = set()
    for sf in sources:
        names = set()
        for m in ATOMIC_DECL_RE.finditer(sf.code):
            names.add(m.group(1))
        for m in ATOMIC_CONTAINER_DECL_RE.finditer(sf.code):
            names.add(m.group(1))
        per_file_atomics[sf.path] = names
        all_atomics |= names

    # Shadows: the same name declared with a non-atomic type anywhere —
    # trailing `;,=){[` marks variable/param declarations; a name followed by
    # `(` is a function declaration, not a shadow.
    per_file_shadows = {}
    if all_atomics:
        shadow_re = re.compile(
            r"([A-Za-z_][\w:]*(?:<[^;<>]*>)?)[\s&*]+("
            + "|".join(re.escape(n) for n in sorted(all_atomics))
            + r")\s*[;,=){\[]"
        )
        # Thread-safety annotation macros sit between a declared name and its
        # terminator (`std::thread t_ AUTOPN_GUARDED_BY(mu_);`) — blank them
        # so the declaration still registers as a shadow.
        annotation_re = re.compile(r"AUTOPN_[A-Z_]+\([^()]*\)")
        for sf in sources:
            shadows = set()
            code = annotation_re.sub(lambda m: " " * len(m.group(0)), sf.code)
            for m in shadow_re.finditer(code):
                typ = m.group(1)
                if "atomic" in typ or "Atomic" in typ or typ in NOT_A_TYPE:
                    continue
                shadows.add(m.group(2))
            per_file_shadows[sf.path] = shadows

    scopes = {}
    for sf in sources:
        incs = sorted(closure[sf.path])
        closure_atomics, closure_shadows = set(), set()
        for p in incs:
            closure_atomics |= per_file_atomics.get(p, set())
            closure_shadows |= per_file_shadows.get(p, set())
        own_atomics = per_file_atomics[sf.path]
        own_shadows = per_file_shadows.get(sf.path, set())
        # Most-local binding wins: a name declared atomic in this very file is
        # atomic here even if some included header shadows it; a name only
        # atomic through the closure is skipped when any visible declaration
        # makes it ambiguous.
        atomics = own_atomics | closure_atomics
        usable = (own_atomics - own_shadows) | (
            closure_atomics - closure_shadows - own_shadows
        )
        scopes[sf.path] = (atomics, atomics - usable)
    return scopes


def extract_call_args(code: str, open_paren: int) -> str:
    depth, i = 0, open_paren
    while i < len(code):
        ch = code[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren + 1 : i]
        i += 1
    return code[open_paren + 1 :]


def receiver_chain(code: str, end: int) -> list:
    """Identifier chain left of position `end` (exclusive), e.g. for
    `foo.bar[i].baz.load(` with end at the final `.` returns
    ['foo', 'bar', 'baz']."""
    chain = []
    i = end
    while i > 0:
        # skip whitespace
        while i > 0 and code[i - 1].isspace():
            i -= 1
        if i > 0 and code[i - 1] == "]":  # skip [...] subscript
            depth = 0
            while i > 0:
                i -= 1
                if code[i] == "]":
                    depth += 1
                elif code[i] == "[":
                    depth -= 1
                    if depth == 0:
                        break
            continue
        j = i
        while j > 0 and (code[j - 1].isalnum() or code[j - 1] == "_"):
            j -= 1
        if j == i:
            break
        chain.append(code[j:i])
        i = j
        while i > 0 and code[i - 1].isspace():
            i -= 1
        if i >= 2 and code[i - 2 : i] == "->":
            i -= 2
        elif i >= 1 and code[i - 1] == ".":
            i -= 1
        else:
            break
    chain.reverse()
    return chain


def check_atomic_order(sources, scopes, allow_relaxed, diags):
    op_re = re.compile(
        r"(?:\.|->)\s*(" + "|".join(ATOMIC_OPS) + r")\s*\("
    )
    for sf in sources:
        code = sf.code
        atomic_names, shadowed = scopes[sf.path]
        usable = atomic_names - shadowed
        for m in op_re.finditer(code):
            chain = receiver_chain(code, m.start())
            if not chain or not any(x in usable for x in chain):
                continue
            recv = chain[-1]
            op = m.group(1)
            args = extract_call_args(code, m.end() - 1)
            lineno = sf.line_of(m.start())
            site = f"{recv}.{op}"
            if "memory_order" not in args:
                diags.append(
                    Diagnostic(
                        sf.path,
                        lineno,
                        "atomic-order",
                        f"`{site}(...)` without an explicit std::memory_order"
                        " (implicit seq_cst). Spell the order — seq_cst"
                        " included — so the choice is visibly deliberate.",
                    )
                )
            elif "memory_order_relaxed" in args:
                if not allow_match(allow_relaxed, sf.path, recv):
                    diags.append(
                        Diagnostic(
                            sf.path,
                            lineno,
                            "atomic-order",
                            f"memory_order_relaxed on `{site}` is not"
                            " justified in allow_relaxed.txt. Add:"
                            f" `{sf.path} {recv} -- <why relaxed is enough>`",
                        )
                    )
        # Operator forms on known atomics (implicit seq_cst): ++x, x++, x += n,
        # x = v. Skip `obj.x`/`obj->x` unless via this->, and skip declaration
        # lines (type precedes the name).
        for name in usable:
            for m in re.finditer(
                rf"(?<![\w.>]){re.escape(name)}\s*(\+\+|--|[-+|&^]=|=(?![=]))",
                code,
            ):
                before = code[: m.start()]
                # declaration? an identifier/'>'/'&'/'*' directly before name
                prev = before.rstrip()
                if prev and (prev[-1].isalnum() or prev[-1] in ">&*_"):
                    continue
                if prev.endswith("->") or prev.endswith("."):
                    continue
                lineno = sf.line_of(m.start())
                op = m.group(1)
                diags.append(
                    Diagnostic(
                        sf.path,
                        lineno,
                        "atomic-order",
                        f"operator `{op}` on atomic `{name}` is an implicit"
                        " seq_cst access; use .load/.store/.fetch_* with an"
                        " explicit std::memory_order.",
                    )
                )
            for m in re.finditer(
                rf"(\+\+|--)\s*{re.escape(name)}(?![\w])", code
            ):
                prev = code[: m.start()].rstrip()
                if prev.endswith("->") or prev.endswith("."):
                    continue
                diags.append(
                    Diagnostic(
                        sf.path,
                        sf.line_of(m.start()),
                        "atomic-order",
                        f"operator `{m.group(1)}` on atomic `{name}` is an"
                        " implicit seq_cst RMW; use .fetch_add/.fetch_sub with"
                        " an explicit std::memory_order.",
                    )
                )


# --------------------------------------------------------------- guarded-by


@dataclass
class Member:
    name: str
    decl: str
    line: int
    annotated: bool


@dataclass
class ClassInfo:
    name: str
    path: str
    line: int
    mutexes: list = field(default_factory=list)
    members: list = field(default_factory=list)
    self_sync: bool = False  # owns atomic/mutex/ShardedCounter → internally


def split_statements(body: str):
    """Top-level statements of a class body: yields (offset, text), skipping
    nested brace blocks (function bodies, nested classes — which are returned
    whole for recursion)."""
    stmts = []
    depth_brace = depth_paren = 0
    start = 0
    i = 0
    n = len(body)
    while i < n:
        c = body[i]
        if c == "{":
            depth_brace += 1
        elif c == "}":
            depth_brace -= 1
            # `};` or `}` ends a nested block; treat block end as a statement
            if depth_brace == 0:
                stmts.append((start, body[start : i + 1]))
                start = i + 1
        elif c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren -= 1
        elif c == ";" and depth_brace == 0 and depth_paren == 0:
            stmts.append((start, body[start:i]))
            start = i + 1
        i += 1
    if start < n:
        stmts.append((start, body[start:]))
    return stmts


CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?\{")


def find_classes(sf: SourceFile):
    """All class/struct definitions (including nested) with their body
    offsets in sf.code."""
    out = []
    code = sf.code
    for m in CLASS_RE.finditer(code):
        # Skip `enum class`
        pre = code[max(0, m.start() - 8) : m.start()]
        if re.search(r"\benum\s*$", pre):
            continue
        depth = 0
        i = m.end() - 1
        while i < len(code):
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        out.append((m.group(2), m.end(), code[m.end() : i], m.start()))
    return out


STMT_SKIP_RE = re.compile(
    r"^\s*(public|private|protected)\s*:?$|^\s*(using|typedef|friend|template"
    r"|static_assert|enum|class|struct|union|explicit|virtual|operator"
    r"|AUTOPN_)",
)


def member_of_statement(stmt: str):
    """Returns (name, decl, annotated) for a data-member statement, else
    None for functions / specifiers / nested types."""
    s = stmt.strip()
    if not s or s.startswith("}"):
        return None
    # Drop leading access specifiers glued to a decl ("public:\n  int x")
    s = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", s).strip()
    if not s:
        return None
    if STMT_SKIP_RE.match(s):
        return None
    if s.endswith("}") and "{" in s:
        # brace block: function body or nested type — nested types are
        # analyzed separately by find_classes
        return None
    annotated = "AUTOPN_GUARDED_BY" in s or "AUTOPN_PT_GUARDED_BY" in s
    core = re.sub(r"AUTOPN(?:_PT)?_GUARDED_BY\s*\([^)]*\)", " ", s)
    # strip default initializer
    core = re.split(r"=", core, 1)[0]
    core = re.split(r"\{", core, 1)[0].strip()
    if not core:
        return None
    # strip template args so std::function<void()> isn't mistaken for a fn
    flat = core
    for _ in range(6):
        new = re.sub(r"<[^<>]*>", "", flat)
        if new == flat:
            break
        flat = new
    if "(" in flat:  # function declaration
        return None
    # bitfield `int x : 3` (single colon only — `::` is a scope qualifier)
    flat = re.split(r"(?<!:):(?!:)", flat, 1)[0].strip()
    m = re.search(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)*$", flat)
    if not m:
        return None
    name = m.group(1)
    tokens = flat.split()
    if len(tokens) < 2 and "*" not in flat and "&" not in flat:
        return None  # lone identifier — not a declaration we understand
    return name, s, annotated


def analyze_classes(sources):
    classes = []
    for sf in sources:
        for cname, body_off, body, decl_off in find_classes(sf):
            info = ClassInfo(
                name=cname, path=sf.path, line=sf.line_of(decl_off)
            )
            for off, stmt in split_statements(body):
                parsed = member_of_statement(stmt)
                if not parsed:
                    continue
                name, decl, annotated = parsed
                lineno = sf.line_of(body_off + off + len(stmt) - len(stmt.lstrip()))
                if MUTEX_TYPE_RE.search(decl):
                    info.mutexes.append(name)
                info.members.append(Member(name, decl, lineno, annotated))
            if any(
                any(tok in mem.decl for tok in SELF_SYNC_TYPE_TOKENS)
                for mem in info.members
            ) or "ShardedCounter" in body:
                info.self_sync = True
            classes.append(info)
    return classes


def check_guarded_by(sources, allow_unguarded, diags):
    classes = analyze_classes(sources)
    # Project types that synchronize themselves: own a mutex or an atomic.
    sync_types = {c.name for c in classes if c.mutexes or c.self_sync}
    for info in classes:
        if not info.mutexes:
            continue
        for mem in info.members:
            d = mem.decl
            if mem.name in info.mutexes or mem.annotated:
                continue
            if any(tok in d for tok in SELF_SYNC_TYPE_TOKENS):
                continue
            if re.match(r"^\s*(static\b|constexpr\b|static\s+constexpr\b)", d):
                continue
            if re.match(r"^\s*(const\b|mutable\s+const\b)", d):
                continue
            # member whose type is a project-internal synchronized class
            type_part = d[: d.rfind(mem.name)]
            type_ids = set(re.findall(r"[A-Za-z_]\w*", type_part))
            if type_ids & sync_types and "vector" not in type_ids and (
                "unique_ptr" not in type_ids
            ):
                continue
            key = f"{info.name}::{mem.name}"
            if allow_match(allow_unguarded, info.path, key):
                continue
            diags.append(
                Diagnostic(
                    info.path,
                    mem.line,
                    "guarded-by",
                    f"`{info.name}` owns a mutex"
                    f" ({', '.join(info.mutexes)}) but field `{mem.name}` is"
                    " neither AUTOPN_GUARDED_BY(...) nor justified in"
                    " allow_unguarded.txt. Annotate it, or add:"
                    f" `{info.path} {key} -- <why it needs no lock>`",
                )
            )


# ---------------------------------------------------------------- failpoint


def parse_failpoint_registry(path: str):
    names = {}
    if not os.path.exists(path):
        return names
    for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name = line.split()[0]
        names[name] = lineno
    return names


def check_failpoints(sources, registry_path, diags):
    registry = parse_failpoint_registry(registry_path)
    sites = {}
    site_re = re.compile(r"AUTOPN_FAILPOINT\s*\(\s*\"([^\"]+)\"")
    for sf in sources:
        if sf.path.endswith("util/failpoint.hpp"):
            continue  # the macro's own definition/doc examples
        for m in site_re.finditer(sf.code_str):
            name = m.group(1)
            lineno = sf.line_of(m.start())
            if name in sites:
                diags.append(
                    Diagnostic(
                        sf.path,
                        lineno,
                        "failpoint",
                        f"duplicate failpoint name \"{name}\" (first declared"
                        f" at {sites[name]}). Site names must be unique.",
                    )
                )
                continue
            sites[name] = f"{sf.path}:{lineno}"
            if name not in registry:
                diags.append(
                    Diagnostic(
                        sf.path,
                        lineno,
                        "failpoint",
                        f"failpoint \"{name}\" is not registered in"
                        f" {os.path.basename(registry_path)}; add a line:"
                        f" `{name} -- <what it injects>`",
                    )
                )
    for name, lineno in registry.items():
        if name not in sites:
            diags.append(
                Diagnostic(
                    registry_path.replace(os.sep, "/"),
                    lineno,
                    "failpoint",
                    f"registered failpoint \"{name}\" has no"
                    " AUTOPN_FAILPOINT site in the tree (stale entry).",
                )
            )
    return sites


def check_failpoint_references(root, sources, registry_path, doc_rels, diags):
    registry = set(parse_failpoint_registry(registry_path))
    name_re = re.compile(
        r"\b((?:" + "|".join(p[:-1] for p in FAILPOINT_NAME_PREFIXES) + r")"
        r"(?:\.[a-z_][a-z0-9_]*)+)\b"
    )
    # chaos schedules and any other code that names failpoints in strings
    for sf in sources:
        if sf.path.endswith("util/failpoint.hpp"):
            continue
        for m in re.finditer(r"\"([^\"\n]*)\"", sf.code_str):
            literal = m.group(1)
            if "/" in literal:  # include paths, file names
                continue
            for ref in name_re.findall(literal):
                if re.search(r"\.(hpp|h|cpp|cc|md|txt|json)$", ref):
                    continue
                if ref not in registry:
                    diags.append(
                        Diagnostic(
                            sf.path,
                            sf.line_of(m.start()),
                            "failpoint",
                            f"string references failpoint \"{ref}\" which is"
                            " not in the registry — stale name or typo.",
                        )
                    )
    # docs: only `backtick`-quoted names are treated as references
    for rel in doc_rels:
        full = os.path.join(root, rel)
        if not os.path.exists(full):
            continue
        text = open(full, encoding="utf-8", errors="replace").read()
        for m in re.finditer(r"`([^`\n]+)`", text):
            for ref in name_re.findall(m.group(1)):
                if "(" in m.group(1) or "=" in m.group(1):
                    continue  # spec-grammar examples, code snippets
                if "/" in m.group(1) or re.search(
                    r"\.(hpp|h|cpp|cc|md|txt|json)$", ref
                ):
                    continue  # file paths like `src/stm/stm.cpp`
                if ref not in registry:
                    lineno = text.count("\n", 0, m.start()) + 1
                    diags.append(
                        Diagnostic(
                            rel,
                            lineno,
                            "failpoint",
                            f"doc references failpoint `{ref}` which is not"
                            " in the registry — stale name or typo.",
                        )
                    )


# ----------------------------------------------------------- banned-pattern


def check_banned(sources, allow_banned, diags):
    for sf in sources:
        code = sf.code
        in_src = sf.path.startswith("src/")
        is_header = sf.path.endswith(HEADER_SUFFIXES)

        def flag(offset, what, detail):
            lineno = sf.line_of(offset)
            line_text = sf.line_text(lineno)
            if allow_match(allow_banned, sf.path, line_text):
                return
            # also accept a token that names the rule for whole-file allows
            if allow_match(allow_banned, sf.path, what):
                return
            diags.append(
                Diagnostic(
                    sf.path,
                    lineno,
                    "banned-pattern",
                    f"{detail} Allow with: `{sf.path} <token-on-line> --"
                    " <why>` in allow_banned.txt.",
                )
            )

        for m in re.finditer(r"(?<![\w:.])s?rand\s*\(", code):
            flag(
                m.start(),
                "rand",
                "rand()/srand() is banned — it is racy, low-quality, and"
                " unseedable per-thread; use util::Rng.",
            )
        for m in re.finditer(r"(?<![\w_])new\b(?!\s*\()", code):
            # skip `= new`? no — naked new is naked new; placement new has '('
            flag(
                m.start(),
                "new",
                "naked `new` — prefer std::make_unique/containers; lock-free"
                " code that must manage raw bodies is allowlisted per file.",
            )
        for m in re.finditer(r"(?<![\w_=])delete\b(?!\s*[;(]?\s*\[?\]?\s*=)", code):
            # `= delete` (deleted functions) has '=' before; regex lookbehind
            # can't span spaces, so re-check the prefix.
            prefix = code[: m.start()].rstrip()
            if prefix.endswith("="):
                continue
            flag(
                m.start(),
                "delete",
                "naked `delete` — prefer RAII ownership; lock-free"
                " reclamation paths are allowlisted per file.",
            )
        if in_src:
            for m in re.finditer(r"std::this_thread::sleep_for", code):
                flag(
                    m.start(),
                    "sleep_for",
                    "std::this_thread::sleep_for in src/ — sleeping on a hot"
                    " or shutdown path hides latency bugs; use condition"
                    " variables or clock abstractions, or justify the wait.",
                )
        if is_header:
            for m in re.finditer(r"#\s*include\s*<iostream>", sf.code_str):
                flag(
                    m.start(),
                    "iostream",
                    "#include <iostream> in a header injects the static"
                    " ios_base init into every TU; include <ostream>/<sstream>"
                    " or move the I/O into a .cpp.",
                )


# ----------------------------------------------------------------- driver


# --------------------------------------------------------------- lock-order
#
# Textual two-lock discipline: a RAII guard (or a manual .lock()) taken while
# another guard is still alive in the same scope is a "nested acquisition
# edge" holder -> acquired. Every observed edge must be registered in
# lock_order.txt, and the registered edges must be acyclic — so any global
# acquisition order that could deadlock has to be declared, justified, and
# DAG-checked before it compiles past CI. Like the atomic harvest this is
# textual: it sees nesting within one function body, not across calls
# (-Wthread-safety covers cross-function when clang is present), and it
# deliberately ignores same-name re-acquisition (recursive locking is a
# different bug class with loud runtime symptoms).

GUARD_DECL_RE = re.compile(
    r"\b(?:std::(?:scoped_lock|unique_lock|lock_guard|shared_lock)|"
    r"(?:autopn::)?sync::(?:ScopedLock|UniqueLock))"
    r"(?:\s*<[^<>;(){}]*>)?\s+([A-Za-z_]\w*)\s*([{(])"
)
LOCK_CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*[A-Za-z_]\w*)\s*(?:\.|->)\s*"
    r"(lock|unlock)\s*\(\s*\)"
)
LOCK_TAG_RE = re.compile(r"\bstd::(?:defer_lock|adopt_lock|try_to_lock)\b")


@dataclass
class LockEdge:
    holder: str
    acquired: str
    file: str
    line: int
    used: bool = False


def parse_lock_order(path: str) -> list:
    """Entries: `<holder> -> <acquired> -- <justification>`."""
    edges = []
    if not os.path.exists(path):
        return edges
    for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line or " -> " not in line.split(" -- ", 1)[0]:
            print(
                f"{path}:{lineno}: malformed lock-order entry (want"
                f" '<holder> -> <acquired> -- <why>'): {line}",
                file=sys.stderr,
            )
            sys.exit(2)
        head, why = line.split(" -- ", 1)
        holder, acquired = (p.strip() for p in head.split(" -> ", 1))
        if not holder or not acquired or not why.strip():
            print(
                f"{path}:{lineno}: malformed lock-order entry (want"
                f" '<holder> -> <acquired> -- <why>'): {line}",
                file=sys.stderr,
            )
            sys.exit(2)
        edges.append(LockEdge(holder, acquired, path, lineno))
    return edges


def _last_ident(expr: str):
    ids = re.findall(r"[A-Za-z_]\w*", expr)
    return ids[-1] if ids else None


def _balanced_close(code: str, open_idx: int) -> int:
    close = {"{": "}", "(": ")"}[code[open_idx]]
    depth = 0
    for j in range(open_idx, min(len(code), open_idx + 500)):
        if code[j] == code[open_idx]:
            depth += 1
        elif code[j] == close:
            depth -= 1
            if depth == 0:
                return j
    return -1


def _split_args(arglist: str) -> list:
    args, depth, start = [], 0, 0
    for i, ch in enumerate(arglist):
        if ch in "({[<":
            depth += 1
        elif ch in ")}]>":
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(arglist[start:i])
            start = i + 1
    args.append(arglist[start:])
    return [a for a in (a.strip() for a in args) if a]


def _scope_ends(code: str, offsets) -> dict:
    """offset -> offset of the `}` closing its innermost scope (or EOF)."""
    ends = {off: len(code) for off in offsets}
    stack = []
    for i, ch in enumerate(code):
        if ch == "{":
            stack.append(i)
        elif ch == "}" and stack:
            start = stack.pop()
            for off in offsets:
                if start < off < i and ends[off] == len(code):
                    ends[off] = i
    return ends


def _lock_intervals(sf) -> list:
    """(start, end, mutex_name) for every textual hold in this file."""
    code = sf.code
    decls = []  # (offset, guard var, [mutex names], deferred)
    for m in GUARD_DECL_RE.finditer(code):
        open_idx = m.end() - 1
        close_idx = _balanced_close(code, open_idx)
        if close_idx < 0:
            continue
        names, deferred = [], False
        for arg in _split_args(code[open_idx + 1 : close_idx]):
            if LOCK_TAG_RE.search(arg):
                deferred = deferred or "defer_lock" in arg
                continue
            name = _last_ident(arg)
            if name:
                names.append(name)
        if names:
            decls.append((m.start(), m.group(1), names, deferred))
    calls = [
        (m.start(), _last_ident(m.group(1)), m.group(2))
        for m in LOCK_CALL_RE.finditer(code)
    ]
    offsets = [d[0] for d in decls] + [c[0] for c in calls]
    ends = _scope_ends(code, offsets)
    guard_vars = {}
    for _, var, names, _ in decls:
        guard_vars.setdefault(var, names)

    def unlock_after(var, start, limit):
        for off, name, op in calls:
            if op == "unlock" and name == var and start < off < limit:
                return off
        return limit

    intervals = []
    for off, var, names, deferred in decls:
        if deferred:
            continue  # held only from a later explicit var.lock()
        end = unlock_after(var, off, ends[off])
        for name in names:
            intervals.append((off, end, name))
    for off, name, op in calls:
        if op != "lock":
            continue
        end = unlock_after(name, off, ends[off])
        for mutex in guard_vars.get(name, [name]):
            intervals.append((off, end, mutex))
    return intervals


def _registered_cycle(edges) -> list:
    adj = {}
    for e in edges:
        adj.setdefault(e.holder, set()).add(e.acquired)
        adj.setdefault(e.acquired, set())
    color, stack = {n: 0 for n in adj}, []

    def dfs(n):
        color[n] = 1
        stack.append(n)
        for m in sorted(adj[n]):
            if color[m] == 1:
                return stack[stack.index(m) :] + [m]
            if color[m] == 0:
                cyc = dfs(m)
                if cyc:
                    return cyc
        stack.pop()
        color[n] = 2
        return None

    for n in sorted(adj):
        if color[n] == 0:
            cyc = dfs(n)
            if cyc:
                return cyc
    return None


def check_lock_order(sources, registry_path, diags):
    edges = parse_lock_order(registry_path)
    registry_rel = registry_path.replace(os.sep, "/")
    registry_name = os.path.basename(registry_path)

    cycle = _registered_cycle(edges)
    if cycle:
        first = next(
            e for e in edges if e.holder == cycle[0] and e.acquired == cycle[1]
        )
        diags.append(
            Diagnostic(
                registry_rel,
                first.line,
                "lock-order",
                "registered edges form a cycle: "
                + " -> ".join(cycle)
                + " — the lock hierarchy must be a DAG.",
            )
        )

    by_key = {(e.holder, e.acquired): e for e in edges}
    seen_sites = set()
    for sf in sources:
        intervals = _lock_intervals(sf)
        for s1, e1, held in intervals:
            for s2, _, taken in intervals:
                if not (s1 < s2 < e1) or held == taken:
                    continue
                edge = by_key.get((held, taken))
                if edge is not None:
                    edge.used = True
                    continue
                site = (sf.path, sf.line_of(s2), held, taken)
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                diags.append(
                    Diagnostic(
                        sf.path,
                        sf.line_of(s2),
                        "lock-order",
                        f"acquiring `{taken}` while `{held}` is held is not a"
                        f" registered edge — add `{held} -> {taken} -- <why"
                        f" this order>` to {registry_name} (the hierarchy"
                        " must stay a DAG).",
                    )
                )
    for e in edges:
        if not e.used:
            diags.append(
                Diagnostic(
                    registry_rel,
                    e.line,
                    "lock-order",
                    f"registered edge `{e.holder} -> {e.acquired}` matches no"
                    " nested acquisition — remove it or fix the names.",
                )
            )


# ------------------------------------------------------------------ mc-seam
#
# Files ported onto the sync seam (util/sync.hpp) are the ones the mc_*
# harnesses model-check under AUTOPN_MC. A raw std:: primitive in such a file
# compiles and runs fine in production — and silently escapes the checker,
# turning "exhaustively verified" into a lie. So the ported set is an
# explicit registry and raw primitives there are rejected with no allowlist:
# the fix is always to use the sync:: alias (or argue the file out of
# mc_ported.txt in review).

RAW_SYNC_RE = re.compile(
    r"\bstd::(?:atomic_thread_fence|atomic_signal_fence|atomic_flag|"
    r"atomic_ref|atomic|mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable_any|condition_variable|scoped_lock|unique_lock|"
    r"lock_guard|shared_lock|counting_semaphore|binary_semaphore|latch|"
    r"barrier)\b"
)


def parse_ported_registry(path: str) -> list:
    """Entries: `<path> -- <what the mc harness for it proves>`."""
    entries = []
    if not os.path.exists(path):
        return entries
    for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if " -- " not in line:
            print(
                f"{path}:{lineno}: malformed mc_ported entry (want"
                f" '<path> -- <why>'): {line}",
                file=sys.stderr,
            )
            sys.exit(2)
        rel, why = line.split(" -- ", 1)
        if not rel.strip() or not why.strip():
            print(
                f"{path}:{lineno}: malformed mc_ported entry (want"
                f" '<path> -- <why>'): {line}",
                file=sys.stderr,
            )
            sys.exit(2)
        entries.append((rel.strip(), lineno))
    return entries


def check_mc_seam(sources, registry_path, diags):
    entries = parse_ported_registry(registry_path)
    if not entries:
        return
    registry_rel = registry_path.replace(os.sep, "/")
    by_path = {sf.path: sf for sf in sources}
    for rel, lineno in entries:
        sf = by_path.get(rel)
        if sf is None:
            diags.append(
                Diagnostic(
                    registry_rel,
                    lineno,
                    "mc-seam",
                    f"mc_ported.txt lists `{rel}`, which is not in the"
                    " scanned tree — remove the entry or fix the path.",
                )
            )
            continue
        for m in RAW_SYNC_RE.finditer(sf.code):
            diags.append(
                Diagnostic(
                    sf.path,
                    sf.line_of(m.start()),
                    "mc-seam",
                    f"`{m.group(0)}` in a seam-ported file — use the sync::"
                    " alias from util/sync.hpp so AUTOPN_MC model-checks this"
                    " primitive (docs/MODEL_CHECKING.md).",
                )
            )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        ),
        help="repository root (default: two levels above this script)",
    )
    ap.add_argument(
        "--allow-dir",
        default=None,
        help="directory holding allow_*.txt and failpoints.txt"
        " (default: <root>/tools/lint)",
    )
    ap.add_argument(
        "--subdirs",
        nargs="*",
        default=["src", "bench", "tools"],
        help="tree roots (relative to --root) to scan",
    )
    ap.add_argument(
        "--docs",
        nargs="*",
        default=["DESIGN.md", "README.md", "docs"],
        help="docs (files or dirs, relative to --root) scanned for failpoint"
        " references",
    )
    ap.add_argument(
        "--no-stale-allow",
        action="store_true",
        help="do not fail on unused allowlist entries",
    )
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    allow_dir = args.allow_dir or os.path.join(root, "tools", "lint")
    exclude = {"tools/lint/testdata", "tools/lint/__pycache__"}

    rels = collect_tree(root, args.subdirs, exclude)
    if not rels:
        print(f"autopn-lint: no sources found under {root}", file=sys.stderr)
        return 2
    sources = load_sources(root, rels)

    allow_relaxed = parse_allow_file(
        os.path.join(allow_dir, "allow_relaxed.txt"), "atomic-order"
    )
    allow_unguarded = parse_allow_file(
        os.path.join(allow_dir, "allow_unguarded.txt"), "guarded-by"
    )
    allow_banned = parse_allow_file(
        os.path.join(allow_dir, "allow_banned.txt"), "banned-pattern"
    )
    registry_path = os.path.join(allow_dir, "failpoints.txt")

    diags = []
    scopes = harvest_atomic_scopes(sources, args.subdirs)
    check_atomic_order(sources, scopes, allow_relaxed, diags)
    check_guarded_by(sources, allow_unguarded, diags)
    check_failpoints(sources, registry_path, diags)

    doc_rels = []
    for d in args.docs:
        full = os.path.join(root, d)
        if os.path.isdir(full):
            for fn in sorted(os.listdir(full)):
                if fn.endswith(".md"):
                    doc_rels.append(f"{d}/{fn}")
        elif os.path.exists(full):
            doc_rels.append(d)
    check_failpoint_references(root, sources, registry_path, doc_rels, diags)

    check_banned(sources, allow_banned, diags)
    check_lock_order(sources, os.path.join(allow_dir, "lock_order.txt"), diags)
    check_mc_seam(sources, os.path.join(allow_dir, "mc_ported.txt"), diags)

    if not args.no_stale_allow:
        for e in allow_relaxed + allow_unguarded + allow_banned:
            if not e.used:
                diags.append(
                    Diagnostic(
                        e.file.replace(os.sep, "/"),
                        e.line,
                        "stale-allow",
                        f"allowlist entry `{e.path} {e.token}` matches no"
                        " site — remove it or fix the path/token.",
                    )
                )

    diags.sort()
    for d in diags:
        print(d.render())
    n_files = len(sources)
    if diags:
        print(
            f"autopn-lint: {len(diags)} violation(s) across {n_files} files",
            file=sys.stderr,
        )
        return 1
    print(f"autopn-lint: OK ({n_files} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
