#!/usr/bin/env python3
"""Fixture tests for autopn-lint (registered in ctest as lint_fixture_test).

Three assertions:
  1. The seeded-violation tree produces exactly the golden diagnostics in
     testdata/expected.txt (exit 1), and every rule family fires at least
     once — atomic-order, guarded-by, failpoint, banned-pattern, lock-order,
     mc-seam, stale-allow. The stale coverage includes both flavours: an
     entry whose file is gone, and an entry whose receiver was renamed.
  2. The clean tree passes (exit 0).
  3. A malformed allowlist entry is a usage error (exit 2), not a silent skip.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "autopn_lint.py")

RULES = ("atomic-order", "guarded-by", "failpoint", "banned-pattern",
         "lock-order", "mc-seam", "stale-allow")


def run_lint(*args):
    # cwd=HERE with relative paths keeps diagnostic paths (and therefore the
    # golden file) machine-independent.
    return subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True,
        text=True,
        cwd=HERE,
    )


def fail(msg: str):
    print(f"lint_test: FAIL — {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    proc = run_lint(
        "--root", "testdata/violations",
        "--allow-dir", "testdata/violations/allow",
        "--subdirs", "src",
        "--docs", "DOC.md",
    )
    if proc.returncode != 1:
        fail(f"violations tree: expected exit 1, got {proc.returncode}\n"
             f"{proc.stdout}{proc.stderr}")
    with open(os.path.join(HERE, "testdata", "expected.txt"),
              encoding="utf-8") as f:
        golden = f.read()
    if proc.stdout != golden:
        fail("violations tree: diagnostics differ from testdata/expected.txt\n"
             f"--- got ---\n{proc.stdout}--- want ---\n{golden}")
    for rule in RULES:
        if f"[{rule}]" not in proc.stdout:
            fail(f"rule `{rule}` did not fire on the seeded fixture")

    proc = run_lint(
        "--root", "testdata/clean",
        "--allow-dir", "testdata/clean/allow",
        "--subdirs", "src",
        "--docs",
    )
    if proc.returncode != 0:
        fail(f"clean tree: expected exit 0, got {proc.returncode}\n"
             f"{proc.stdout}{proc.stderr}")

    proc = run_lint(
        "--root", "testdata/clean",
        "--allow-dir", "testdata/malformed",
        "--subdirs", "src",
        "--docs",
    )
    if proc.returncode != 2:
        fail(f"malformed allowlist: expected exit 2, got {proc.returncode}\n"
             f"{proc.stdout}{proc.stderr}")

    print("lint_test: OK (golden diagnostics, clean tree, malformed allow)")


if __name__ == "__main__":
    main()
