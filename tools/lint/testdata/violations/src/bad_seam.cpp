// Seeded mc-seam violations: this file is listed in mc_ported.txt, so raw
// std:: primitives must be rejected in favour of the sync:: seam aliases.
#include <atomic>
#include <mutex>

struct SeamBreaker {
  std::atomic<int> counter{0};
  std::mutex m_;
};
