// Seeded banned-pattern violation: <iostream> in a header.
#pragma once

#include <iostream>

inline void hello() { std::cout << "hi\n"; }
