// Seeded atomic-order violations: implicit seq_cst calls, an operator-form
// access, and an unjustified relaxed site.
#include <atomic>

std::atomic<int> hits{0};
std::atomic<bool> done{false};

void seeded_atomic_violations() {
  hits.fetch_add(1);                           // implicit seq_cst
  done.store(true);                            // implicit seq_cst
  (void)hits.load(std::memory_order_relaxed);  // relaxed, not allowlisted
  ++hits;                                      // operator form, implicit
}
