// Seeded guarded-by violations: a mutex-owning class with unannotated
// mutable fields.
#pragma once

#include <mutex>
#include <vector>

class Leaky {
 public:
  void add(int v);

 private:
  std::mutex mutex_;
  std::vector<int> values_;
  int total_ = 0;
};
