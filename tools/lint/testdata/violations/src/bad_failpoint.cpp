// Seeded failpoint violations: an unregistered site, a duplicate name, and a
// string reference to a name missing from the registry.
#define AUTOPN_FAILPOINT(name) (void)(name)

void seeded_failpoint_violations() {
  AUTOPN_FAILPOINT("stm.unregistered.site");
  AUTOPN_FAILPOINT("stm.dup.site");
  AUTOPN_FAILPOINT("stm.dup.site");
  const char* schedule = "net.phantom";
  (void)schedule;
}
