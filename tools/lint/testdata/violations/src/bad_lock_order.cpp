// Seeded lock-order violation: `b_` is acquired while `a_` is still held,
// but the edge `a_ -> b_` is not registered in lock_order.txt.
#include <mutex>

struct TwoLocks {
  void both() {
    std::scoped_lock outer{a_};
    std::scoped_lock inner{b_};
  }

  std::mutex a_;
  std::mutex b_;
};
