// Seeded banned-pattern violations: rand(), naked new/delete, sleep_for
// under src/.
#include <chrono>
#include <cstdlib>
#include <thread>

void seeded_banned_violations() {
  int r = rand();
  int* p = new int{r};
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  delete p;
}
