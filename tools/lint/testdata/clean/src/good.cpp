// Clean fixture: explicit orders, justified relaxed, annotated guarded
// field, registered failpoint. autopn-lint must exit 0 on this tree.
#include <atomic>
#include <mutex>

#define AUTOPN_FAILPOINT(name) (void)(name)
#define AUTOPN_GUARDED_BY(x)

std::atomic<int> counter{0};

void all_clean() {
  counter.fetch_add(1, std::memory_order_relaxed);
  counter.store(0, std::memory_order_release);
  AUTOPN_FAILPOINT("stm.fixture.ok");
}

class Tidy {
 public:
  void bump();

 private:
  std::mutex mutex_;
  int value_ AUTOPN_GUARDED_BY(mutex_) = 0;
};

// Nested acquisition whose edge IS registered in lock_order.txt — the
// lock-order rule must accept it (and the entry must not go stale).
class Ordered {
 public:
  void nested() {
    std::scoped_lock outer{first_};
    std::scoped_lock inner{second_};
  }

 private:
  std::mutex first_;
  std::mutex second_;
};
