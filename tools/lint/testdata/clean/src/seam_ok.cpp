// Clean fixture for mc-seam: listed in mc_ported.txt and uses only the
// sync:: seam aliases — no raw std:: primitives, so the rule passes.
namespace sync {
struct Mutex {};
template <typename T>
struct Atomic {
  T v;
};
}  // namespace sync

struct OnSeam {
  sync::Atomic<int> counter{0};
  sync::Mutex m;
};
