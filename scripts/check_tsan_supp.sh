#!/usr/bin/env bash
# tsan.supp coverage check (see docs/STATIC_ANALYSIS.md).
#
# A ThreadSanitizer suppression that no longer matches anything is worse
# than dead weight: it documents a race that supposedly exists, and it will
# silently swallow a future, unrelated report that happens to match. So
# every `kind:pattern` line in tsan.supp must still match a symbol in the
# built test binaries' symbol tables (nm -C). We check the tsan tree when it
# exists and fall back to the production tree — the template instantiations
# the patterns name are the same code either way. No tree at all is a
# visible SKIP, not a pass.
#
# Matching: TSan patterns may contain `*` wildcards; we grep for the longest
# wildcard-free segment, which is exactly the part that has to keep naming a
# real symbol for the suppression to keep doing its job.
set -uo pipefail
cd "$(dirname "$0")/.."

supp=tsan.supp
if [ ! -f "$supp" ]; then
  echo "check_tsan_supp: no $supp — nothing to check"
  exit 0
fi

bins=()
for tree in build-tsan build; do
  if compgen -G "$tree/tests/*_test" > /dev/null; then
    while IFS= read -r b; do bins+=("$b"); done \
      < <(compgen -G "$tree/tests/*_test")
    echo "check_tsan_supp: checking against $tree/tests (${#bins[@]} binaries)"
    break
  fi
done
if [ "${#bins[@]}" -eq 0 ]; then
  echo "SKIPPED: no built test binaries (build-tsan/ or build/) to check" \
       "tsan.supp symbols against"
  exit 0
fi

symbols=$(nm -C "${bins[@]}" 2>/dev/null)

fail=0
checked=0
while IFS= read -r line; do
  line="${line%%#*}"
  line="$(echo "$line" | xargs)"
  [ -z "$line" ] && continue
  case "$line" in
    *:*) ;;
    *)
      echo "malformed suppression (want 'kind:pattern'): $line"
      fail=1
      continue
      ;;
  esac
  pattern="${line#*:}"
  # Longest wildcard-free segment of the pattern.
  segment=$(echo "$pattern" | tr '*' '\n' | awk '{ if (length > length(best)) best = $0 } END { print best }')
  if [ -z "$segment" ]; then
    echo "suppression '$line' is all wildcards — too broad to audit; narrow it"
    fail=1
    continue
  fi
  checked=$((checked + 1))
  if ! grep -qF "$segment" <<< "$symbols"; then
    echo "STALE suppression: '$line' — no symbol containing '$segment' in" \
         "any built test binary; remove it or fix the pattern"
    fail=1
  fi
done < "$supp"

if [ "$fail" -ne 0 ]; then
  echo "check_tsan_supp: FAILED"
  exit 1
fi
echo "check_tsan_supp: OK ($checked suppression(s), all match live symbols)"
