#!/usr/bin/env bash
# Builds everything, runs the test suite and every figure/table bench,
# collecting outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  if [ "$name" = micro_costs ]; then
    "$bench" --benchmark_min_time=0.1 | tee "results/$name.txt"
  else
    "$bench" | tee "results/$name.txt"
  fi
done
echo "outputs written to results/"
