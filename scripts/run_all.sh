#!/usr/bin/env bash
# Builds everything, runs the test suite and every figure/table bench,
# collecting outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Race-check the STM core and the serving engine: rebuild just those test
# binaries under ThreadSanitizer (the tsan preset) and run them directly. We
# invoke the binaries rather than ctest -R because gtest test names don't
# match target names. tsan.supp masks a GCC-12 library-internal report in
# std::atomic<std::shared_ptr> (see the file for details).
export TSAN_OPTIONS="suppressions=$PWD/tsan.supp ${TSAN_OPTIONS:-}"
cmake --preset tsan
cmake --build build-tsan --target \
  stm_basic_test stm_nesting_test stm_concurrency_test stm_containers_test \
  stm_property_test stm_commit_strategy_test stm_snapshot_registry_test \
  stm_commit_manager_test stm_stats_test \
  serve_queue_test serve_engine_test serve_e2e_test \
  util_concurrency_test runtime_controller_test \
  util_failpoint_test chaos_stm_test chaos_serve_test chaos_runtime_test
for t in build-tsan/tests/stm_*_test build-tsan/tests/serve_*_test \
         build-tsan/tests/util_concurrency_test \
         build-tsan/tests/runtime_controller_test \
         build-tsan/tests/util_failpoint_test build-tsan/tests/chaos_*_test; do
  echo "== tsan: $(basename "$t") =="
  "$t"
done

# Chaos smoke: short randomized-failpoint soaks under both sanitizers. The
# soak exits nonzero on any accounting/consistency invariant violation, so a
# plain invocation is the assertion.
cmake --preset asan
cmake --build build-asan --target chaos_soak
cmake --build build-tsan --target chaos_soak
echo "== asan: chaos_soak =="
build-asan/bench/chaos_soak --seconds 3 --seed 1
echo "== tsan: chaos_soak =="
build-tsan/bench/chaos_soak --seconds 3 --seed 2

mkdir -p results
for bench in build/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  if [ "$name" = micro_costs ]; then
    "$bench" --benchmark_min_time=0.1 | tee "results/$name.txt"
  else
    "$bench" | tee "results/$name.txt"
  fi
done
echo "outputs written to results/"
