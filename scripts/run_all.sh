#!/usr/bin/env bash
# Builds everything, runs the test suite and every figure/table bench,
# collecting outputs under results/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Gate on static analysis before spending time on sanitizer rebuilds: the
# concurrency-invariant lint, the header self-sufficiency build, and (when a
# clang toolchain exists) clang-tidy + -Wthread-safety.
scripts/static_analysis.sh

# Model-checking smoke (docs/MODEL_CHECKING.md): the mc preset routes the
# sync seam through the cooperative scheduler; each mc_* harness explores the
# schedule tree at the reduced --smoke budget (preemption bound 1), and the
# weakened-publish fixture proves detect-and-replay still fires. The full
# exhaustive suite is `cmake --build build --target mc` (also CI tier 2).
cmake --preset mc
cmake --build --preset mc
echo "== mc-smoke: mc_commit_helping =="
build-mc/tests/mc_commit_helping --smoke
echo "== mc-smoke: mc_snapshot_registry =="
build-mc/tests/mc_snapshot_registry --smoke
echo "== mc-smoke: mc_request_queue =="
build-mc/tests/mc_request_queue --smoke
echo "== mc-smoke: mc_commit_helping --weaken-publish (expect failure) =="
build-mc/tests/mc_commit_helping --smoke --weaken-publish --expect-failure

# UBSan sweep: the whole suite, non-recovering (any UB report is fatal).
cmake --preset ubsan
cmake --build build-ubsan
ctest --test-dir build-ubsan --output-on-failure

# Race-check the STM core and the serving engine: rebuild just those test
# binaries under ThreadSanitizer (the tsan preset) and run them directly. We
# invoke the binaries rather than ctest -R because gtest test names don't
# match target names. tsan.supp masks a GCC-12 library-internal report in
# std::atomic<std::shared_ptr> (see the file for details).
export TSAN_OPTIONS="suppressions=$PWD/tsan.supp ${TSAN_OPTIONS:-}"
cmake --preset tsan
cmake --build build-tsan --target \
  stm_basic_test stm_nesting_test stm_concurrency_test stm_containers_test \
  stm_property_test stm_commit_strategy_test stm_snapshot_registry_test \
  stm_commit_manager_test stm_stats_test \
  stm_semantic_test stm_linearizability_test \
  serve_queue_test serve_engine_test serve_e2e_test \
  util_concurrency_test runtime_controller_test \
  util_failpoint_test chaos_stm_test chaos_serve_test chaos_runtime_test \
  net_wire_test net_loop_test net_server_test net_chaos_test \
  net_client_retry_test router_ring_test router_rebalancer_test \
  router_proxy_test router_health_test router_membership_test \
  model_queue_test model_compose_test model_vs_des_test
for t in build-tsan/tests/stm_*_test build-tsan/tests/serve_*_test \
         build-tsan/tests/net_*_test build-tsan/tests/router_*_test \
         build-tsan/tests/model_*_test \
         build-tsan/tests/util_concurrency_test \
         build-tsan/tests/runtime_controller_test \
         build-tsan/tests/util_failpoint_test build-tsan/tests/chaos_*_test; do
  echo "== tsan: $(basename "$t") =="
  "$t"
done

# The net and router tests exercise real sockets and cross-thread completion
# posting: run them under ASan+UBSan combined as well (the TSan pass above
# already covers them for races). The semantic-container checkers join this
# pass because commit-time delta install and predicate revalidation shuffle
# shared_ptr ownership across threads — exactly ASan territory.
cmake --preset asan-ubsan
cmake --build build-asan-ubsan --target \
  net_wire_test net_loop_test net_server_test net_chaos_test \
  net_client_retry_test router_proxy_test router_membership_test \
  stm_semantic_test stm_linearizability_test \
  model_queue_test model_compose_test model_vs_des_test
for t in build-asan-ubsan/tests/net_*_test \
         build-asan-ubsan/tests/router_proxy_test \
         build-asan-ubsan/tests/router_membership_test \
         build-asan-ubsan/tests/stm_semantic_test \
         build-asan-ubsan/tests/stm_linearizability_test \
         build-asan-ubsan/tests/model_*_test; do
  echo "== asan-ubsan: $(basename "$t") =="
  "$t"
done

# Chaos smoke: short randomized-failpoint soaks under both sanitizers. The
# soak exits nonzero on any accounting/consistency invariant violation, so a
# plain invocation is the assertion. --net fronts the engine with a
# NetServer and adds the wire response ledger to the checked invariants.
cmake --build build-asan-ubsan --target chaos_soak
cmake --build build-tsan --target chaos_soak
echo "== asan-ubsan: chaos_soak =="
build-asan-ubsan/bench/chaos_soak --seconds 3 --seed 1
echo "== tsan: chaos_soak =="
build-tsan/bench/chaos_soak --seconds 3 --seed 2
echo "== asan-ubsan: chaos_soak --net =="
build-asan-ubsan/bench/chaos_soak --net --seconds 3 --seed 3
echo "== tsan: chaos_soak --net =="
build-tsan/bench/chaos_soak --net --seconds 3 --seed 4
echo "== asan-ubsan: chaos_soak --router =="
build-asan-ubsan/bench/chaos_soak --router --seconds 3 --seed 5
echo "== tsan: chaos_soak --router =="
build-tsan/bench/chaos_soak --router --seconds 3 --seed 6

# Model-vs-DES smoke: the compositional model's fitting path validated
# against the discrete-event simulator at reduced probe set and short runs
# (the full stage runs unsanitized in the results loop below). Exits via the
# bench's own tables; any fit regression shows up as rank-correlation drift.
echo "== des_vs_analytical --smoke =="
build/bench/des_vs_analytical --smoke

# Container-policy smoke: the semantic-vs-box sweep at reduced size, under
# ASan+UBSan so the delta/predicate fast paths get sanitizer coverage on
# every run (the full-size sweep runs unsanitized in the results loop below).
cmake --build build-asan-ubsan --target container_sweep
echo "== asan-ubsan: container_sweep --smoke =="
build-asan-ubsan/bench/container_sweep --smoke

# Loopback smoke: a real two-process serve/netload run over TCP. The server
# exits nonzero if the wire response ledger is inexact or the workload's
# transactional state fails verification; netload exits nonzero if nothing
# was answered.
echo "== loopback serve/netload smoke =="
portfile=$(mktemp)
build/tools/autopn serve --listen 127.0.0.1:0 --port-file "$portfile" \
  --duration 6 &
serve_pid=$!
for _ in $(seq 1 50); do [ -s "$portfile" ] && break; sleep 0.1; done
build/tools/autopn netload --port-file "$portfile" --rate 300 --duration 3 \
  --tenants 3
wait "$serve_pid"
rm -f "$portfile"

# Cluster smoke: the full distributed tier as separate processes — two
# `autopn serve --listen` shards, an `autopn router` fronting them, netload
# through the router. Every process asserts its own ledgers on exit.
echo "== cluster smoke: router + 2 shards over loopback =="
scripts/run_cluster.sh --smoke

# Elastic-membership smoke: the same tier with runtime admit/retire churned
# underneath live traffic via `router-ctl` — the admitted shard must pass
# probation into the ring and retire back out drop-free, with every ledger
# exact. Run once against the plain build and once with an ASan-built
# binary so the membership paths (link teardown, member finalize) get leak
# and use-after-free coverage in every full run.
echo "== cluster smoke: elastic membership churn =="
scripts/run_cluster.sh --smoke --elastic
cmake --build build-asan-ubsan --target autopn
echo "== cluster smoke: elastic membership churn (asan-ubsan) =="
scripts/run_cluster.sh --smoke --elastic --build build-asan-ubsan

mkdir -p results
for bench in build/bench/*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name =="
  if [ "$name" = micro_costs ]; then
    "$bench" --benchmark_min_time=0.1 | tee "results/$name.txt"
  else
    "$bench" | tee "results/$name.txt"
  fi
done
echo "outputs written to results/"
