#!/usr/bin/env bash
# run_cluster.sh — multi-process serving cluster on loopback TCP: N `autopn
# serve --listen` shard processes, one `autopn router` fronting them by
# consistent hash, and an `autopn netload` client offering open-loop traffic
# through the router.
#
# Every process asserts its own ledgers on exit: shards exit nonzero if the
# wire response ledger is inexact or transactional state fails verification,
# the router exits nonzero if its forwarding ledger (dispatched == forwarded +
# shed_local, forwarded == returned) or its own wire ledger is inexact, and
# netload exits nonzero if nothing was answered. The script fails if any
# process fails, so a plain invocation is the end-to-end assertion.
#
#   scripts/run_cluster.sh [--smoke] [--elastic] [--shards N] [--duration S]
#                          [--rate R] [--tenants N] [--build DIR]
#
# --smoke: short fixed-parameter run for CI (2 shards, ~4 s wall clock).
# --elastic: exercise runtime membership under load — an extra shard is
#   started and admitted through `router-ctl add` (the script asserts it
#   passes probation and joins the ring), then retired through `router-ctl
#   remove` (asserting the member table shrinks back), all while netload
#   keeps offering traffic. Without --smoke the script also acts on the
#   router's scale recommendation (--scale-file) once, like a tiny
#   autoscaler. Ledger exactness across all this churn is the point.
set -euo pipefail
cd "$(dirname "$0")/.."

shards=2
duration=10
rate=500
tenants=8
build=build
smoke=0
elastic=0
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) smoke=1; shards=2; duration=4; rate=400; tenants=8 ;;
    --elastic) elastic=1 ;;
    --shards) shards=$2; shift ;;
    --duration) duration=$2; shift ;;
    --rate) rate=$2; shift ;;
    --tenants) tenants=$2; shift ;;
    --build) build=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

autopn="$build/tools/autopn"
if [ ! -x "$autopn" ]; then
  echo "run_cluster: $autopn not built (cmake --build $build --target autopn)" >&2
  exit 2
fi

workdir=$(mktemp -d)
pids=()
cleanup() {
  # Best-effort teardown on early exit; a clean run has already waited.
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

wait_for_port_file() {
  for _ in $(seq 1 100); do [ -s "$1" ] && return 0; sleep 0.1; done
  echo "run_cluster: timed out waiting for $1" >&2
  return 1
}

# Shards first: each picks an ephemeral port and publishes it via port-file.
# They serve a little longer than the client offers so the router's drain
# never races a shard teardown.
shard_args=()
for s in $(seq 1 "$shards"); do
  portfile="$workdir/shard$s.port"
  "$autopn" serve --listen 127.0.0.1:0 --port-file "$portfile" \
    --duration "$((duration + 4))" &
  pids+=($!)
  shard_args+=(--shard-port-file "$portfile")
done
for s in $(seq 1 "$shards"); do
  wait_for_port_file "$workdir/shard$s.port"
done

# Router fronts the shards; outlives the client by a grace window too.
router_port="$workdir/router.port"
router_args=()
if [ "$elastic" = 1 ]; then
  router_args+=(--scale-file "$workdir/scale")
fi
"$autopn" router --listen 127.0.0.1:0 --port-file "$router_port" \
  "${shard_args[@]}" --duration "$((duration + 2))" "${router_args[@]}" &
pids+=($!)
wait_for_port_file "$router_port"

echo "run_cluster: $shards shard(s) + router up, offering ${rate} req/s" \
  "for ${duration}s across $tenants tenants"

if [ "$elastic" = 0 ]; then
  "$autopn" netload --port-file "$router_port" --rate "$rate" \
    --duration "$duration" --tenants "$tenants"
else
  # Traffic runs in the background while membership churns underneath it.
  "$autopn" netload --port-file "$router_port" --rate "$rate" \
    --duration "$duration" --tenants "$tenants" &
  pids+=($!)

  member_rows() {
    "$autopn" router-ctl status --port-file "$router_port" | grep -c '^[0-9]'
  }
  ring_state() {  # $1 = shard id -> yes/NO (column 4 of the member table)
    "$autopn" router-ctl status --port-file "$router_port" \
      | awk -v id="$1" '$1 == id {print $4}'
  }
  spawn_shard() {  # $1 = port file; serves past the router's lifetime
    "$autopn" serve --listen 127.0.0.1:0 --port-file "$1" \
      --duration "$((duration + 3))" &
    pids+=($!)
    wait_for_port_file "$1"
  }

  # Admit an extra shard mid-traffic and require it to earn ring arcs
  # through probation.
  extra_id=$shards
  extra_port="$workdir/shard_extra.port"
  sleep 1
  spawn_shard "$extra_port"
  "$autopn" router-ctl add --port-file "$router_port" \
    --shard-id "$extra_id" --shard-port-file "$extra_port"
  joined=0
  for _ in $(seq 1 50); do
    [ "$(ring_state "$extra_id")" = "yes" ] && { joined=1; break; }
    sleep 0.2
  done
  if [ "$joined" != 1 ]; then
    echo "run_cluster: admitted shard $extra_id never joined the ring" >&2
    exit 1
  fi
  if [ "$(member_rows)" -ne "$((shards + 1))" ]; then
    echo "run_cluster: expected $((shards + 1)) members after admit" >&2
    exit 1
  fi
  echo "run_cluster: shard $extra_id admitted and joined the ring (probation passed)"

  # Retire it again while traffic continues; the member table must shrink.
  sleep 1
  "$autopn" router-ctl remove --port-file "$router_port" --shard-id "$extra_id"
  gone=0
  for _ in $(seq 1 50); do
    [ "$(member_rows)" -eq "$shards" ] && { gone=1; break; }
    sleep 0.2
  done
  if [ "$gone" != 1 ]; then
    echo "run_cluster: retired shard $extra_id never left the member table" >&2
    exit 1
  fi
  echo "run_cluster: shard $extra_id retired drop-free (membership back to $shards)"

  # Act once on the rebalancer's capacity recommendation (skipped in smoke
  # runs to keep CI deterministic).
  if [ "$smoke" = 0 ] && [ -s "$workdir/scale" ]; then
    recommendation=$(cat "$workdir/scale")
    case "$recommendation" in
      add)
        scale_port="$workdir/shard_scale.port"
        spawn_shard "$scale_port"
        "$autopn" router-ctl add --port-file "$router_port" \
          --shard-id "$((shards + 1))" --shard-port-file "$scale_port"
        echo "run_cluster: autoscaler acted on 'add' (admitted shard $((shards + 1)))"
        ;;
      remove\ *)
        victim=${recommendation#remove }
        "$autopn" router-ctl remove --port-file "$router_port" --shard-id "$victim"
        echo "run_cluster: autoscaler acted on 'remove $victim'"
        ;;
      *)
        echo "run_cluster: scale recommendation '$recommendation' — holding"
        ;;
    esac
  fi
fi

failures=0
for pid in "${pids[@]}"; do
  wait "$pid" || failures=$((failures + 1))
done
pids=()
if [ "$failures" -ne 0 ]; then
  echo "run_cluster: $failures process(es) reported ledger/verification failures"
  exit 1
fi
echo "run_cluster: all ledgers exact across $((shards + 1)) processes"
