#!/usr/bin/env bash
# run_cluster.sh — multi-process serving cluster on loopback TCP: N `autopn
# serve --listen` shard processes, one `autopn router` fronting them by
# consistent hash, and an `autopn netload` client offering open-loop traffic
# through the router.
#
# Every process asserts its own ledgers on exit: shards exit nonzero if the
# wire response ledger is inexact or transactional state fails verification,
# the router exits nonzero if its forwarding ledger (dispatched == forwarded +
# shed_local, forwarded == returned) or its own wire ledger is inexact, and
# netload exits nonzero if nothing was answered. The script fails if any
# process fails, so a plain invocation is the end-to-end assertion.
#
#   scripts/run_cluster.sh [--smoke] [--shards N] [--duration S] [--rate R]
#                          [--tenants N] [--build DIR]
#
# --smoke: short fixed-parameter run for CI (2 shards, ~4 s wall clock).
set -euo pipefail
cd "$(dirname "$0")/.."

shards=2
duration=10
rate=500
tenants=8
build=build
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) shards=2; duration=4; rate=400; tenants=8 ;;
    --shards) shards=$2; shift ;;
    --duration) duration=$2; shift ;;
    --rate) rate=$2; shift ;;
    --tenants) tenants=$2; shift ;;
    --build) build=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

autopn="$build/tools/autopn"
if [ ! -x "$autopn" ]; then
  echo "run_cluster: $autopn not built (cmake --build $build --target autopn)" >&2
  exit 2
fi

workdir=$(mktemp -d)
pids=()
cleanup() {
  # Best-effort teardown on early exit; a clean run has already waited.
  for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

wait_for_port_file() {
  for _ in $(seq 1 100); do [ -s "$1" ] && return 0; sleep 0.1; done
  echo "run_cluster: timed out waiting for $1" >&2
  return 1
}

# Shards first: each picks an ephemeral port and publishes it via port-file.
# They serve a little longer than the client offers so the router's drain
# never races a shard teardown.
shard_args=()
for s in $(seq 1 "$shards"); do
  portfile="$workdir/shard$s.port"
  "$autopn" serve --listen 127.0.0.1:0 --port-file "$portfile" \
    --duration "$((duration + 4))" &
  pids+=($!)
  shard_args+=(--shard-port-file "$portfile")
done
for s in $(seq 1 "$shards"); do
  wait_for_port_file "$workdir/shard$s.port"
done

# Router fronts the shards; outlives the client by a grace window too.
router_port="$workdir/router.port"
"$autopn" router --listen 127.0.0.1:0 --port-file "$router_port" \
  "${shard_args[@]}" --duration "$((duration + 2))" &
pids+=($!)
wait_for_port_file "$router_port"

echo "run_cluster: $shards shard(s) + router up, offering ${rate} req/s" \
  "for ${duration}s across $tenants tenants"
"$autopn" netload --port-file "$router_port" --rate "$rate" \
  --duration "$duration" --tenants "$tenants"

failures=0
for pid in "${pids[@]}"; do
  wait "$pid" || failures=$((failures + 1))
done
pids=()
if [ "$failures" -ne 0 ]; then
  echo "run_cluster: $failures process(es) reported ledger/verification failures"
  exit 1
fi
echo "run_cluster: all ledgers exact across $((shards + 1)) processes"
