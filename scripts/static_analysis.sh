#!/usr/bin/env bash
# Static-analysis gate (see docs/STATIC_ANALYSIS.md):
#   1. autopn-lint   — concurrency-invariant rules over src/, bench/, tools/
#   2. header check  — every public header under src/ compiles standalone
#   3. clang-tidy + -Wthread-safety — when a clang toolchain is present;
#      prints a visible SKIPPED line otherwise (gcc-only containers).
#
# Exits nonzero on the first failing stage. Run from anywhere.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== static-analysis: autopn-lint =="
if command -v python3 >/dev/null 2>&1; then
  python3 tools/lint/autopn_lint.py || fail=1
else
  echo "SKIPPED: python3 not found; autopn-lint rules not checked"
fi

echo "== static-analysis: header self-sufficiency =="
# The lint_headers object library holds one generated TU per header under
# src/; building it proves each header pulls in everything it needs.
header_build=build
if [ ! -f "$header_build/CMakeCache.txt" ]; then
  cmake -B "$header_build" >/dev/null
fi
if cmake --build "$header_build" --target lint_headers -- -j "$(nproc)" \
    > /tmp/autopn_lint_headers.log 2>&1; then
  echo "headers OK"
else
  cat /tmp/autopn_lint_headers.log
  echo "header self-sufficiency check FAILED"
  fail=1
fi

echo "== static-analysis: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by every build tree
  # (CMAKE_EXPORT_COMPILE_COMMANDS ON in the top-level CMakeLists).
  mapfile -t tidy_sources < <(git ls-files 'src/**/*.cpp' 2>/dev/null ||
                              find src -name '*.cpp' | sort)
  clang-tidy -p "$header_build" --quiet "${tidy_sources[@]}" || fail=1
else
  echo "SKIPPED: clang-tidy not found (gcc-only toolchain); .clang-tidy rules not checked"
fi

echo "== static-analysis: clang -Wthread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  # The AUTOPN_GUARDED_BY annotations expand to clang attributes; a
  # -Wthread-safety -Werror pass upgrades the textual guarded-by audit to a
  # compiler-verified proof.
  tsa_fail=0
  while IFS= read -r f; do
    clang++ -std=c++20 -fsyntax-only -Isrc -Wthread-safety \
      -Werror=thread-safety "$f" || tsa_fail=1
  done < <(find src -name '*.cpp' | sort)
  [ "$tsa_fail" -eq 0 ] || fail=1
else
  echo "SKIPPED: clang++ not found (gcc-only toolchain); -Wthread-safety not checked"
fi

if [ "$fail" -ne 0 ]; then
  echo "static-analysis: FAILED"
  exit 1
fi
echo "static-analysis: all stages passed"
