#!/usr/bin/env bash
# Static-analysis gate (see docs/STATIC_ANALYSIS.md):
#   1. autopn-lint   — concurrency-invariant rules over src/, bench/, tools/
#   2. header check  — every public header under src/ compiles standalone
#   3. clang-tidy + -Wthread-safety — when a clang toolchain is present;
#      prints a visible SKIPPED line otherwise (gcc-only containers).
#   4. gcc -fanalyzer over the concurrency core (src/{stm,serve,util,mc}),
#      gated by the checked-in baseline tools/lint/fanalyzer_baseline.txt.
#   5. tsan.supp coverage — every suppression must still match a symbol in
#      the tsan build (scripts/check_tsan_supp.sh; skipped if no tsan tree).
#
# Exits nonzero on the first failing stage. Run from anywhere.
set -uo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== static-analysis: autopn-lint =="
if command -v python3 >/dev/null 2>&1; then
  python3 tools/lint/autopn_lint.py || fail=1
else
  echo "SKIPPED: python3 not found; autopn-lint rules not checked"
fi

echo "== static-analysis: header self-sufficiency =="
# The lint_headers object library holds one generated TU per header under
# src/; building it proves each header pulls in everything it needs.
header_build=build
if [ ! -f "$header_build/CMakeCache.txt" ]; then
  cmake -B "$header_build" >/dev/null
fi
if cmake --build "$header_build" --target lint_headers -- -j "$(nproc)" \
    > /tmp/autopn_lint_headers.log 2>&1; then
  echo "headers OK"
else
  cat /tmp/autopn_lint_headers.log
  echo "header self-sufficiency check FAILED"
  fail=1
fi

echo "== static-analysis: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by every build tree
  # (CMAKE_EXPORT_COMPILE_COMMANDS ON in the top-level CMakeLists).
  mapfile -t tidy_sources < <(git ls-files 'src/**/*.cpp' 2>/dev/null ||
                              find src -name '*.cpp' | sort)
  clang-tidy -p "$header_build" --quiet "${tidy_sources[@]}" || fail=1
else
  echo "SKIPPED: clang-tidy not found (gcc-only toolchain); .clang-tidy rules not checked"
fi

echo "== static-analysis: clang -Wthread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  # The AUTOPN_GUARDED_BY annotations expand to clang attributes; a
  # -Wthread-safety -Werror pass upgrades the textual guarded-by audit to a
  # compiler-verified proof.
  tsa_fail=0
  while IFS= read -r f; do
    clang++ -std=c++20 -fsyntax-only -Isrc -Wthread-safety \
      -Werror=thread-safety "$f" || tsa_fail=1
  done < <(find src -name '*.cpp' | sort)
  [ "$tsa_fail" -eq 0 ] || fail=1
else
  echo "SKIPPED: clang++ not found (gcc-only toolchain); -Wthread-safety not checked"
fi

echo "== static-analysis: gcc -fanalyzer =="
# The interprocedural path analyzer over the concurrency core — the four
# directories the lint's atomic/guarded/lock-order rules police hardest.
# Findings are normalized to `<file> [-Wanalyzer-<id>]` (line numbers drop
# out so edits don't churn the baseline) and diffed against the checked-in
# baseline: anything new fails the gate; anything stale is called out so the
# baseline shrinks as real fixes land.
fanalyzer_baseline=tools/lint/fanalyzer_baseline.txt
fanalyzer_log=/tmp/autopn_fanalyzer.log
: > "$fanalyzer_log"
fanalyzer_compile_ok=1
for f in $(find src/stm src/serve src/util src/mc -name '*.cpp' | sort); do
  g++ -std=c++20 -Isrc -DAUTOPN_FAILPOINTS_ENABLED=1 -fanalyzer \
      -c "$f" -o /dev/null 2>>"$fanalyzer_log" || {
    echo "-fanalyzer compile failed for $f"
    fanalyzer_compile_ok=0
  }
done
if [ "$fanalyzer_compile_ok" -eq 1 ]; then
  current=$(sed -nE \
    's/^([^:]+):[0-9]+:[0-9]+: warning: .* (\[-Wanalyzer[^]]*\])$/\1 \2/p' \
    "$fanalyzer_log" | sort -u)
  baseline=$(grep -v '^#' "$fanalyzer_baseline" | grep -v '^$' | sort -u)
  new_findings=$(comm -23 <(printf '%s\n' "$current" | sed '/^$/d') \
                          <(printf '%s\n' "$baseline" | sed '/^$/d'))
  stale_findings=$(comm -13 <(printf '%s\n' "$current" | sed '/^$/d') \
                            <(printf '%s\n' "$baseline" | sed '/^$/d'))
  if [ -n "$new_findings" ]; then
    echo "NEW -fanalyzer findings (fix, or triage into $fanalyzer_baseline):"
    printf '%s\n' "$new_findings"
    grep -F "warning:" "$fanalyzer_log" | head -20
    fail=1
  fi
  if [ -n "$stale_findings" ]; then
    echo "stale baseline entries (no longer reported — remove them):"
    printf '%s\n' "$stale_findings"
    fail=1
  fi
  [ -z "$new_findings$stale_findings" ] && echo "-fanalyzer OK (baseline exact)"
else
  fail=1
fi

echo "== static-analysis: tsan.supp coverage =="
scripts/check_tsan_supp.sh || fail=1

if [ "$fail" -ne 0 ]; then
  echo "static-analysis: FAILED"
  exit 1
fi
echo "static-analysis: all stages passed"
