// TPC-C with online self-tuning — the paper's motivating workload (Fig 1a).
// New-Order transactions parallelize per-order-line stock updates across
// nested transactions; AutoPN balances how many orders run concurrently (t)
// against how many order lines each order processes in parallel (c).
//
// Run: ./build/examples/tpcc_autotune

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "runtime/controller.hpp"
#include "runtime/monitor.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"
#include "workloads/tpcc.hpp"

using namespace autopn;

int main() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 1;
  cfg.initial_children = 1;
  stm::Stm stm{cfg};

  workloads::TpccConfig tcfg;
  tcfg.warehouses = 2;
  tcfg.districts_per_warehouse = 4;
  tcfg.customers_per_district = 10;
  tcfg.items = 200;
  workloads::TpccBenchmark tpcc{stm, tcfg};
  stm.set_contention_profiling(true);  // find the hot rows while we run

  std::atomic<bool> stop{false};
  std::vector<std::jthread> terminals;
  for (int i = 0; i < 3; ++i) {
    terminals.emplace_back([&, i] {
      util::Rng rng{static_cast<std::uint64_t>(900 + i)};
      while (!stop.load()) tpcc.run_one(rng);
    });
  }

  util::WallClock clock;
  opt::ConfigSpace space{static_cast<int>(cfg.max_cores)};
  runtime::ControllerParams params;
  params.max_window_seconds = 1.0;
  runtime::TuningController controller{
      stm, std::make_unique<opt::AutoPnOptimizer>(space, opt::AutoPnParams{}, 9),
      std::make_unique<runtime::CvAdaptivePolicy>(0.20, 5), clock, params};

  std::cout << "tpcc: tuning (t, c) over " << space.size() << " configurations\n";
  const auto report = controller.tune();
  std::cout << "chosen " << report.chosen.to_string() << " after "
            << report.explorations << " explorations\n";

  // Run tuned for a moment, then verify the database invariants.
  stm.reset_stats();
  std::this_thread::sleep_for(std::chrono::milliseconds{500});
  stop.store(true);
  terminals.clear();

  const auto stats = stm.stats();
  std::cout << "tuned: " << stats.top_commits * 2 << " tx/s, abort rate "
            << util::fmt_percent(stats.top_abort_rate()) << ", "
            << tpcc.new_orders_committed() << " orders placed\n";
  std::cout << "consistency (order ids dense, stock YTD = ordered units, "
               "warehouse YTD = sum of districts): "
            << (tpcc.verify_consistency() ? "OK" : "VIOLATED — BUG") << "\n";

  // The actuator's query API (paper §VI): applications can read the tuned
  // degrees to adapt, e.g., their partitioning.
  std::cout << "application-visible tuned degrees: t="
            << controller.actuator().current().t
            << " c=" << controller.actuator().current().c << "\n";

  // Contention diagnosis: which rows caused the validation conflicts (the
  // classic TPC-C answer: the district bucket holding next_order_id).
  std::cout << "contention hotspots:\n";
  for (const auto& hotspot : stm.contention_hotspots(5)) {
    std::cout << "  " << hotspot.label << ": " << hotspot.conflicts
              << " conflicts\n";
  }
  return 0;
}
