// Live dynamic-workload management (paper §V "dynamic workloads"): the
// managed tuning loop keeps watching steady-state throughput after
// convergence; when the application's behaviour shifts (here: a read-mostly
// pipeline turning write-heavy), the CUSUM detector fires and the controller
// re-tunes automatically.
//
// Run: ./build/examples/dynamic_live

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "runtime/controller.hpp"
#include "runtime/monitor.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"
#include "workloads/array_bench.hpp"

using namespace autopn;

int main() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  stm::Stm stm{cfg};

  workloads::ArrayConfig read_cfg;
  read_cfg.array_size = 128;
  read_cfg.update_fraction = 0.0;
  workloads::ArrayBenchmark read_mostly{stm, read_cfg};

  workloads::ArrayConfig write_cfg;
  write_cfg.array_size = 512;
  write_cfg.update_fraction = 0.9;
  workloads::ArrayBenchmark write_heavy{stm, write_cfg};

  std::atomic<bool> shifted{false};
  std::atomic<bool> stop{false};
  std::vector<std::jthread> app_threads;
  for (int i = 0; i < 2; ++i) {
    app_threads.emplace_back([&, i] {
      util::Rng rng{static_cast<std::uint64_t>(7000 + i)};
      while (!stop.load()) {
        if (shifted.load()) {
          write_heavy.run_one(rng);
        } else {
          read_mostly.run_one(rng);
        }
      }
    });
  }

  // Shift the workload 0.8s into the run.
  std::jthread shifter{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{800});
    shifted.store(true);
    std::cout << ">> workload shifted to write-heavy\n";
  }};

  util::WallClock clock;
  opt::ConfigSpace space{static_cast<int>(cfg.max_cores)};
  runtime::ControllerParams params;
  params.max_window_seconds = 0.5;
  runtime::TuningController controller{
      stm, std::make_unique<opt::AutoPnOptimizer>(space, opt::AutoPnParams{}, 11),
      std::make_unique<runtime::CvAdaptivePolicy>(0.20, 5), clock, params};

  std::cout << "managed tuning loop for ~3s of wall time...\n";
  const std::size_t rounds = controller.tune_and_watch(
      [&space] {
        return std::make_unique<opt::AutoPnOptimizer>(space, opt::AutoPnParams{}, 13);
      },
      /*duration_seconds=*/3.0);

  stop.store(true);
  app_threads.clear();

  std::cout << "tuning rounds performed: " << rounds
            << " (>= 2 means the shift was detected and re-tuned)\n";
  std::cout << "final configuration: "
            << controller.actuator().current().to_string() << "\n";
  const auto stats = stm.stats();
  std::cout << "totals: " << stats.top_commits << " commits, " << stats.top_aborts
            << " aborts (validation " << stats.aborts_validation << ", sibling "
            << stats.aborts_sibling << ")\n";
  return 0;
}
