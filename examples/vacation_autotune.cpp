// Vacation (STAMP) with online self-tuning: a travel-reservation service
// whose client transactions make multi-item reservations with the per-item
// work parallelized across nested transactions. AutoPN tunes (t, c) live
// while clients run; afterwards the example verifies reservation
// conservation and reports the tuned configuration.
//
// Run: ./build/examples/vacation_autotune

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "runtime/controller.hpp"
#include "runtime/monitor.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"
#include "workloads/vacation.hpp"

using namespace autopn;

int main() {
  stm::StmConfig cfg;
  cfg.max_cores = 4;
  cfg.pool_threads = 2;
  cfg.initial_top = 1;
  cfg.initial_children = 1;
  stm::Stm stm{cfg};

  workloads::VacationConfig vcfg;
  vcfg.relations = 32;
  vcfg.customers = 32;
  vcfg.items_per_reservation = 4;
  workloads::VacationBenchmark vacation{stm, vcfg};

  // Client threads issue the reservation mix continuously.
  std::atomic<bool> stop{false};
  std::vector<std::jthread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      util::Rng rng{static_cast<std::uint64_t>(500 + i)};
      while (!stop.load()) vacation.run_one(rng);
    });
  }

  // Online tuning with the paper's full pipeline.
  util::WallClock clock;
  opt::ConfigSpace space{static_cast<int>(cfg.max_cores)};
  runtime::ControllerParams params;
  params.max_window_seconds = 1.0;
  runtime::TuningController controller{
      stm, std::make_unique<opt::AutoPnOptimizer>(space, opt::AutoPnParams{}, 3),
      std::make_unique<runtime::CvAdaptivePolicy>(0.20, 5), clock, params};

  std::cout << "vacation: tuning over " << space.size() << " configurations\n";
  const auto report = controller.tune();
  std::cout << "chosen " << report.chosen.to_string() << " after "
            << report.explorations << " explorations ("
            << util::fmt_double(report.tuning_seconds, 2) << "s)\n";

  // Arm the workload-change detector with a steady-state sample, run a
  // little longer, then check nothing drifted.
  const auto steady = controller.measure_once();
  controller.arm_change_detector(steady.throughput);
  std::this_thread::sleep_for(std::chrono::milliseconds{300});
  const auto later = controller.measure_once();
  std::cout << "steady-state throughput " << util::fmt_double(steady.throughput, 0)
            << " tx/s; later " << util::fmt_double(later.throughput, 0)
            << " tx/s; workload change detected: "
            << (controller.check_for_change(later.throughput) ? "yes" : "no")
            << "\n";

  stop.store(true);
  clients.clear();

  std::cout << "reservation tables consistent: "
            << (vacation.verify_consistency() ? "yes" : "NO — BUG") << "\n";
  const auto stats = stm.stats();
  std::cout << "totals: " << stats.top_commits << " commits, " << stats.top_aborts
            << " top-level aborts, " << stats.child_commits << " nested commits, "
            << stats.child_aborts << " sibling aborts\n";
  return 0;
}
