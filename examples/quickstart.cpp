// Quickstart: the smallest complete AutoPN program.
//
//  1. create a PN-STM runtime and some transactional state;
//  2. run top-level transactions that fan work out to parallel nested
//     children;
//  3. let AutoPN tune the inter-/intra-transaction parallelism degree (t, c)
//     online while the workload runs.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <atomic>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "runtime/controller.hpp"
#include "runtime/monitor.hpp"
#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

using namespace autopn;

int main() {
  // --- 1. the PN-STM runtime and shared transactional state ---------------
  stm::StmConfig config;
  config.max_cores = 4;        // the machine we tune for
  config.pool_threads = 2;     // worker threads shared by nested transactions
  config.initial_top = 1;      // start sequential; AutoPN will adjust
  config.initial_children = 1;
  stm::Stm stm{config};

  stm::TArray<long long> account_balances{64, 1000LL};
  stm::VBox<long long> total_transfers{0LL};

  // --- 2. the application: transfers with nested parallel auditing --------
  auto run_one_transaction = [&](util::Rng& rng) {
    const std::size_t from = rng.uniform_index(account_balances.size());
    const std::size_t to = rng.uniform_index(account_balances.size());
    stm.run_top([&](stm::Tx& tx) {
      // Move money between two accounts...
      const long long amount = 1 + static_cast<long long>(rng.uniform_index(10));
      account_balances.write(tx, from, account_balances.read(tx, from) - amount);
      account_balances.write(tx, to, account_balances.read(tx, to) + amount);
      total_transfers.write(tx, total_transfers.read(tx) + 1);

      // ...and audit the books in parallel nested transactions, each child
      // summing a disjoint segment. The per-tree child concurrency is capped
      // by the tuned value of c.
      const std::size_t segments = stm.child_limit();
      const std::size_t chunk =
          (account_balances.size() + segments - 1) / segments;
      std::vector<long long> partial(segments, 0);
      std::vector<std::function<void(stm::Tx&)>> children;
      for (std::size_t s = 0; s < segments; ++s) {
        children.emplace_back([&, s](stm::Tx& child) {
          const std::size_t lo = s * chunk;
          const std::size_t hi =
              std::min(account_balances.size(), lo + chunk);
          long long sum = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            sum += account_balances.read(child, i);
          }
          partial[s] = sum;
        });
      }
      tx.run_children(std::move(children));

      long long grand_total = 0;
      for (long long p : partial) grand_total += p;
      if (grand_total != static_cast<long long>(account_balances.size()) * 1000) {
        // Snapshot reads make this impossible; retry defensively if it ever
        // tripped (it cannot — see tests/stm_concurrency_test.cpp).
        tx.retry();
      }
    });
  };

  // Application threads drive transactions while tuning happens.
  std::atomic<bool> stop{false};
  std::vector<std::jthread> app_threads;
  for (int i = 0; i < 2; ++i) {
    app_threads.emplace_back([&, i] {
      util::Rng rng{static_cast<std::uint64_t>(42 + i)};
      while (!stop.load()) run_one_transaction(rng);
    });
  }

  // --- 3. online self-tuning ----------------------------------------------
  util::WallClock clock;
  opt::ConfigSpace space{static_cast<int>(config.max_cores)};
  runtime::ControllerParams params;
  params.max_window_seconds = 1.0;
  runtime::TuningController controller{
      stm,
      std::make_unique<opt::AutoPnOptimizer>(space, opt::AutoPnParams{}, /*seed=*/1),
      std::make_unique<runtime::CvAdaptivePolicy>(/*cv_threshold=*/0.20,
                                                  /*min_commits=*/5),
      clock, params};

  std::cout << "tuning the parallelism degree over " << space.size()
            << " configurations...\n";
  const runtime::TuningReport report = controller.tune();

  std::cout << "explored " << report.explorations << " configurations in "
            << report.tuning_seconds << "s\n";
  std::cout << "chosen configuration: t=" << report.chosen.t
            << " top-level transactions, c=" << report.chosen.c
            << " nested transactions per tree\n";

  // Let the tuned system run briefly, then report.
  stm.reset_stats();
  std::this_thread::sleep_for(std::chrono::milliseconds{500});
  stop.store(true);
  app_threads.clear();

  const auto stats = stm.stats();
  std::cout << "tuned throughput: " << stats.top_commits * 2 << " tx/s ("
            << stats.top_aborts << " aborts, " << stats.child_commits
            << " nested commits)\n";
  std::cout << "final transfer count: " << total_transfers.peek() << "\n";
  return 0;
}
