// Array microbenchmark demo (paper §VII-A): shows why the optimal (t, c)
// depends on the workload. Runs the Array benchmark live at several
// configurations for a read-only and for a write-heavy variant and prints
// the measured throughput — the Fig 1b phenomenon on real transactions.
//
// Run: ./build/examples/array_demo

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "util/table.hpp"
#include "workloads/array_bench.hpp"

using namespace autopn;

namespace {

struct Sample {
  double commits_per_second = 0.0;
  double aborts_per_second = 0.0;
};

/// Runs the Array workload live at a fixed (t, c) for `seconds` and returns
/// throughput/abort rates. Also asserts the update invariant.
Sample measure(double update_fraction, std::size_t top, std::size_t children,
               double seconds) {
  stm::StmConfig cfg;
  cfg.max_cores = 8;
  cfg.pool_threads = 2;
  cfg.initial_top = top;
  cfg.initial_children = children;
  stm::Stm stm{cfg};

  workloads::ArrayConfig acfg;
  acfg.array_size = 512;
  acfg.update_fraction = update_fraction;
  workloads::ArrayBenchmark bench{stm, acfg};

  std::atomic<bool> stop{false};
  std::vector<std::jthread> drivers;
  for (std::size_t d = 0; d < top; ++d) {
    drivers.emplace_back([&, d] {
      util::Rng rng{7 * (d + 1)};
      while (!stop.load(std::memory_order_relaxed)) bench.run_one(rng);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  drivers.clear();

  if (bench.checksum() != bench.committed_updates()) {
    std::cerr << "INVARIANT VIOLATION\n";
    std::abort();
  }
  const auto stats = stm.stats();
  return Sample{static_cast<double>(stats.top_commits) / seconds,
                static_cast<double>(stats.top_aborts) / seconds};
}

}  // namespace

int main() {
  const double kSeconds = 1.0;
  struct Variant {
    const char* name;
    double update_fraction;
  };
  const std::vector<Variant> variants{{"read-only scan (0% updates)", 0.0},
                                      {"write-heavy scan (90% updates)", 0.9}};
  const std::vector<std::pair<std::size_t, std::size_t>> configs{
      {1, 1}, {4, 1}, {2, 2}, {1, 4}, {4, 2}};

  std::cout << "Array microbenchmark on the live PN-STM (" << kSeconds
            << "s per cell; this machine, not the paper's 48-core box)\n\n";
  for (const Variant& v : variants) {
    std::cout << "== " << v.name << " ==\n";
    util::TextTable table{{"(t,c)", "throughput (tx/s)", "top aborts/s"}};
    for (const auto& [t, c] : configs) {
      const Sample s = measure(v.update_fraction, t, c, kSeconds);
      table.add_row({"(" + std::to_string(t) + "," + std::to_string(c) + ")",
                     util::fmt_double(s.commits_per_second, 0),
                     util::fmt_double(s.aborts_per_second, 0)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "note how the write-heavy variant suffers from top-level\n"
               "parallelism (concurrent whole-array scans conflict) while the\n"
               "read-only variant tolerates it — no single static (t,c)\n"
               "serves both, which is exactly what AutoPN tunes online.\n";
  return 0;
}
