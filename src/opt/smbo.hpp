#pragma once
// Sequential Model-Based Bayesian Optimization over the (t, c) lattice
// (paper §V-B). The surrogate is a bagging ensemble of M5 model trees whose
// member mean/variance feed the Gaussian EI closed form; the stop criterion
// is pluggable (EI threshold — AutoPN's default —, no-improvement, hybrids,
// and the "stubborn" oracle used only in the Fig 6 study).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ml/bagging.hpp"
#include "ml/knn.hpp"
#include "opt/config_space.hpp"
#include "opt/optimizer.hpp"

namespace autopn::opt {

/// Stop criteria evaluated after every SMBO iteration.
class StopCriterion {
 public:
  virtual ~StopCriterion() = default;
  /// `max_ei_fraction` is max-EI over unexplored points divided by the
  /// incumbent KPI; `last_kpi` the most recent observation; `best_kpi` the
  /// incumbent. Returns true to end the SMBO phase.
  [[nodiscard]] virtual bool should_stop(double max_ei_fraction, double last_kpi,
                                         double best_kpi) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// AutoPN default: stop when max EI drops below a fraction of the incumbent
/// (typical thresholds 1%-10%, paper §V-B).
class EiThresholdStop final : public StopCriterion {
 public:
  explicit EiThresholdStop(double threshold) : threshold_(threshold) {}
  [[nodiscard]] bool should_stop(double max_ei_fraction, double, double) override {
    return max_ei_fraction < threshold_;
  }
  [[nodiscard]] std::string name() const override;

 private:
  double threshold_;
};

/// Heuristic: stop after `window` consecutive observations that fail to
/// improve the incumbent by `epsilon` (relative).
class NoImproveStop final : public StopCriterion {
 public:
  NoImproveStop(std::size_t window, double epsilon)
      : window_(window), epsilon_(epsilon) {}
  [[nodiscard]] bool should_stop(double, double last_kpi, double best_kpi) override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t window_;
  double epsilon_;
  std::size_t stale_ = 0;
  double tracked_best_ = 0.0;
  bool first_ = true;
};

/// Hybrid combinators (paper Fig 6 "hybrid" schemes).
class AnyStop final : public StopCriterion {
 public:
  AnyStop(std::unique_ptr<StopCriterion> a, std::unique_ptr<StopCriterion> b)
      : a_(std::move(a)), b_(std::move(b)) {}
  [[nodiscard]] bool should_stop(double ei, double last, double best) override {
    const bool sa = a_->should_stop(ei, last, best);
    const bool sb = b_->should_stop(ei, last, best);
    return sa || sb;
  }
  [[nodiscard]] std::string name() const override {
    return a_->name() + "|" + b_->name();
  }

 private:
  std::unique_ptr<StopCriterion> a_;
  std::unique_ptr<StopCriterion> b_;
};

class AllStop final : public StopCriterion {
 public:
  AllStop(std::unique_ptr<StopCriterion> a, std::unique_ptr<StopCriterion> b)
      : a_(std::move(a)), b_(std::move(b)) {}
  [[nodiscard]] bool should_stop(double ei, double last, double best) override {
    const bool sa = a_->should_stop(ei, last, best);
    const bool sb = b_->should_stop(ei, last, best);
    return sa && sb;
  }
  [[nodiscard]] std::string name() const override {
    return a_->name() + "&" + b_->name();
  }

 private:
  std::unique_ptr<StopCriterion> a_;
  std::unique_ptr<StopCriterion> b_;
};

/// Oracle criterion for the Fig 6 study: stops only once the known optimum
/// has been observed. Not implementable in production (the optimum is not
/// known a priori) — study use only.
class StubbornStop final : public StopCriterion {
 public:
  explicit StubbornStop(double optimum_kpi, double tolerance = 1e-9)
      : optimum_(optimum_kpi), tolerance_(tolerance) {}
  [[nodiscard]] bool should_stop(double, double, double best_kpi) override {
    return best_kpi >= optimum_ - tolerance_;
  }
  [[nodiscard]] std::string name() const override { return "stubborn"; }

 private:
  double optimum_;
  double tolerance_;
};

/// Pseudo-observations injected into the surrogate's training set — the
/// warm-start seam (DESIGN.md §14). A model (or recorded history) predicts a
/// KPI surface; until `decay_observations` live windows have been measured,
/// the unexplored part of that surface is added to every surrogate fit,
/// affinely rescaled so its level matches the live observations (predictions
/// shape the surface, measurements set the scale). After the decay horizon
/// the prior vanishes and SMBO is purely data-driven. The seam is generic:
/// opt/ does not know where the predictions come from.
struct Prior {
  std::vector<Observation> observations;
  /// Live observations after which pseudo-observations are dropped.
  std::size_t decay_observations = 12;
  /// Pseudo-observations are injected only where t and c both lie on a
  /// lattice of this stride ((t-1) % stride == 0, likewise c). A prior that
  /// pins every configuration leaves the surrogate no residual variance, so
  /// expected improvement collapses and SMBO stops after a single model
  /// step; single-cell gaps keep EI alive around the prior's peak. Wider
  /// gaps overshoot: EI then chases the large-variance holes at the edges
  /// of the space instead of refining the peak. Stride 1 injects everything.
  std::size_t stride = 2;
};

struct SmboParams {
  /// Bagged M5 learners in the surrogate (paper uses 10).
  std::size_t ensemble_size = 10;
  /// Surrogate tree settings. Leaf-to-root smoothing is disabled here: with
  /// the tiny online training sets of SMBO (9-40 points) smoothing shrinks
  /// every bootstrap member toward one global fit, collapsing the ensemble
  /// variance that EI's exploration term needs. (M5Tree's default keeps
  /// smoothing on for general regression use.)
  ml::M5Params tree{.min_leaf = 4, .sd_fraction = 0.05, .prune = true,
                    .smooth = false, .smoothing_k = 15.0};
  /// Acquisition: EI (AutoPN default), PI or GP-UCB (ablations; the paper
  /// names all three and argues EI needs the fewest knobs, §V-B).
  enum class Acquisition { kEi, kPi, kUcb } acquisition = Acquisition::kEi;
  /// Exploration weight of the UCB acquisition (mu + beta * sigma).
  double ucb_beta = 2.0;
  /// Surrogate model: bagged M5 trees (paper) or kNN (ablation).
  enum class Surrogate { kBaggedM5, kKnn } surrogate = Surrogate::kBaggedM5;
  /// Neighbour count for the kNN surrogate.
  std::size_t knn_k = 5;
  /// Safety cap on SMBO explorations (excludes the initial samples).
  std::size_t max_iterations = 200;
};

/// SMBO engine implementing the pull-driven Optimizer protocol. The initial
/// sample list is injected (AutoPN passes the biased boundary points; the
/// Fig 6 study passes uniform-random sets).
class Smbo final : public BaseOptimizer {
 public:
  Smbo(const ConfigSpace& space, std::vector<Config> initial_samples,
       std::unique_ptr<StopCriterion> stop, SmboParams params, std::uint64_t seed);

  [[nodiscard]] std::optional<Config> propose() override;
  [[nodiscard]] std::string name() const override { return "smbo"; }

  /// Installs a pseudo-observation prior (see Prior). Call before the first
  /// propose(); replaces any previous prior.
  void set_prior(Prior prior) { prior_ = std::move(prior); }
  [[nodiscard]] bool has_prior() const noexcept { return prior_.has_value(); }

  /// Highest EI (as a fraction of the incumbent) at the last model refresh.
  [[nodiscard]] double last_max_ei_fraction() const noexcept {
    return last_max_ei_fraction_;
  }
  /// Number of surrogate (re)trainings so far.
  [[nodiscard]] std::size_t model_updates() const noexcept { return model_updates_; }

 private:
  void on_observe(const Config& config, double kpi) override;

  /// Retrains the ensemble and finds the unexplored argmax-EI point.
  [[nodiscard]] std::optional<Config> model_step();

  const ConfigSpace* space_;
  std::vector<Config> initial_;
  std::optional<Prior> prior_;
  std::size_t initial_cursor_ = 0;
  std::unique_ptr<StopCriterion> stop_;
  SmboParams params_;
  std::uint64_t seed_;
  double last_kpi_ = 0.0;
  double last_max_ei_fraction_ = 1.0;
  std::size_t iterations_ = 0;
  std::size_t model_updates_ = 0;
  bool done_ = false;
};

}  // namespace autopn::opt
