#include "opt/ei.hpp"

#include <cmath>

namespace autopn::opt {

namespace {
constexpr double kInvSqrt2Pi = 0.39894228040143267794;  // 1/sqrt(2*pi)
constexpr double kInvSqrt2 = 0.70710678118654752440;    // 1/sqrt(2)
}  // namespace

double norm_pdf(double z) { return kInvSqrt2Pi * std::exp(-0.5 * z * z); }

double norm_cdf(double z) { return 0.5 * std::erfc(-z * kInvSqrt2); }

double expected_improvement(double mu, double sigma, double f_max) {
  if (sigma <= 0.0) return mu > f_max ? mu - f_max : 0.0;
  const double z = (mu - f_max) / sigma;
  return (mu - f_max) * norm_cdf(z) + sigma * norm_pdf(z);
}

double probability_of_improvement(double mu, double sigma, double f_max) {
  if (sigma <= 0.0) return mu > f_max ? 1.0 : 0.0;
  return norm_cdf((mu - f_max) / sigma);
}

}  // namespace autopn::opt
