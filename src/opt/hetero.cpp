#include "opt/hetero.hpp"

#include <stdexcept>

namespace autopn::opt {

std::string HeteroConfig::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < per_type.size(); ++i) {
    if (i > 0) out += " ";
    out += per_type[i].to_string();
  }
  return out + "]";
}

long HeteroConfig::cores_used() const {
  long used = 0;
  for (const Config& cfg : per_type) used += static_cast<long>(cfg.t) * cfg.c;
  return used;
}

HeteroSpace::HeteroSpace(int cores, std::size_t types) : cores_(cores), types_(types) {
  if (types == 0) throw std::invalid_argument{"HeteroSpace needs >= 1 type"};
  if (cores < static_cast<int>(types)) {
    throw std::invalid_argument{"need at least one core per type"};
  }
}

bool HeteroSpace::valid(const HeteroConfig& cfg) const {
  if (cfg.per_type.size() != types_) return false;
  for (const Config& c : cfg.per_type) {
    if (c.t < 1 || c.c < 1) return false;
  }
  return cfg.cores_used() <= cores_;
}

HeteroConfig HeteroSpace::sequential() const {
  HeteroConfig cfg;
  cfg.per_type.assign(types_, Config{1, 1});
  return cfg;
}

int HeteroSpace::budget_for(const HeteroConfig& cfg, std::size_t k) const {
  long frozen = 0;
  for (std::size_t j = 0; j < cfg.per_type.size(); ++j) {
    if (j != k) frozen += static_cast<long>(cfg.per_type[j].t) * cfg.per_type[j].c;
  }
  return static_cast<int>(cores_ - frozen);
}

HeteroCoordinateTuner::HeteroCoordinateTuner(const HeteroSpace& space,
                                             HeteroTunerParams params,
                                             std::uint64_t seed)
    : space_(&space), params_(params), seed_(seed), current_(space.sequential()) {
  start_inner();
}

void HeteroCoordinateTuner::start_inner() {
  const int budget = space_->budget_for(current_, active_type_);
  inner_space_ = std::make_unique<ConfigSpace>(std::max(1, budget));
  inner_ = std::make_unique<AutoPnOptimizer>(
      *inner_space_, params_.autopn,
      seed_ ^ (0x9e3779b97f4a7c15ULL * (round_ * space_->types() + active_type_ + 1)));
  inner_pending_.reset();
}

bool HeteroCoordinateTuner::advance() {
  // The inner tuner finished: adopt its best choice for the active type.
  const Config chosen = inner_->best();
  if (!(chosen == current_.per_type[active_type_])) {
    round_changed_ = true;
    current_.per_type[active_type_] = chosen;
  }
  ++active_type_;
  if (active_type_ >= space_->types()) {
    ++round_;
    if (!round_changed_ || round_ >= params_.max_rounds) return false;
    active_type_ = 0;
    round_changed_ = false;
  }
  start_inner();
  return true;
}

std::optional<HeteroConfig> HeteroCoordinateTuner::propose() {
  if (done_) return std::nullopt;
  for (;;) {
    if (auto candidate = inner_->propose()) {
      inner_pending_ = candidate;
      HeteroConfig joint = current_;
      joint.per_type[active_type_] = *candidate;
      return joint;
    }
    if (!advance()) {
      done_ = true;
      current_ = best_;
      return std::nullopt;
    }
  }
}

void HeteroCoordinateTuner::observe(const HeteroConfig& config, double kpi) {
  if (inner_pending_.has_value()) {
    inner_->observe(*inner_pending_, kpi);
    inner_pending_.reset();
  }
  if (!have_best_ || kpi > best_kpi_) {
    best_ = config;
    best_kpi_ = kpi;
    have_best_ = true;
  }
}

}  // namespace autopn::opt
