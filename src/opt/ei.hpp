#pragma once
// Expected Improvement acquisition (paper §V-B, Eq. 1). Assuming the
// surrogate's posterior at x is Gaussian N(mu, sigma^2), the expected
// positive improvement over the incumbent f_max has the closed form
//
//   EI(x) = (mu - f_max) * Phi(z) + sigma * phi(z),   z = (mu - f_max) / sigma
//
// with Phi/phi the standard normal CDF/PDF. EI is what balances exploitation
// (high mu) against exploration (high sigma) in AutoPN's SMBO phase.

namespace autopn::opt {

/// Standard normal probability density.
[[nodiscard]] double norm_pdf(double z);

/// Standard normal cumulative distribution.
[[nodiscard]] double norm_cdf(double z);

/// Closed-form Gaussian Expected Improvement of sampling a point with
/// posterior mean `mu` and standard deviation `sigma` over incumbent
/// `f_max` (maximization). With sigma == 0 this degenerates to
/// max(mu - f_max, 0).
[[nodiscard]] double expected_improvement(double mu, double sigma, double f_max);

/// Probability of Improvement, the simpler acquisition AutoPN rejects in
/// favour of EI (kept for the acquisition ablation bench): Phi(z).
[[nodiscard]] double probability_of_improvement(double mu, double sigma, double f_max);

}  // namespace autopn::opt
