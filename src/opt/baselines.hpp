#pragma once
// The five general-purpose online tuners AutoPN is compared against
// (paper §VII-A): random search, grid search, hill climbing, simulated
// annealing and a genetic algorithm. Each implements the pull-driven
// Optimizer interface.

#include <cstdint>
#include <deque>
#include <vector>

#include "opt/config_space.hpp"
#include "opt/optimizer.hpp"
#include "util/rng.hpp"

namespace autopn::opt {

/// Uniform random exploration; stops when the last 5 samples improved the
/// incumbent by less than 10% (paper's parity rule with AutoPN's EI < 10%).
class RandomSearch final : public BaseOptimizer {
 public:
  RandomSearch(const ConfigSpace& space, std::uint64_t seed,
               std::size_t no_improve_window = 5, double no_improve_eps = 0.10);

  [[nodiscard]] std::optional<Config> propose() override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  void on_observe(const Config& config, double kpi) override;

  const ConfigSpace* space_;
  util::Rng rng_;
  NoImprovementTracker stop_;
  std::vector<Config> shuffled_;  // sampling without replacement
  std::size_t cursor_ = 0;
};

/// Deterministic sweep: for increasing t, sweep c (the paper sweeps "first c
/// then t"); same no-improvement stopping rule as random search.
class GridSearch final : public BaseOptimizer {
 public:
  GridSearch(const ConfigSpace& space, std::size_t no_improve_window = 5,
             double no_improve_eps = 0.10);

  [[nodiscard]] std::optional<Config> propose() override;
  [[nodiscard]] std::string name() const override { return "grid"; }

 private:
  void on_observe(const Config& config, double kpi) override;

  const ConfigSpace* space_;
  NoImprovementTracker stop_;
  std::size_t cursor_ = 0;
};

/// Plain steepest-ascent hill climbing from a random start: measure the whole
/// (Chebyshev-1) neighbourhood of the incumbent, move to the best improving
/// neighbour, stop at a local optimum.
class HillClimbing final : public BaseOptimizer {
 public:
  /// `start` fixes the initial configuration (used by AutoPN's refinement
  /// phase); when std::nullopt, a random start is drawn (plain HC baseline).
  /// `diagonal_moves` selects the 8-way Chebyshev neighbourhood instead of
  /// the classic 4-way axis neighbourhood used by prior TM tuners.
  HillClimbing(const ConfigSpace& space, std::uint64_t seed,
               std::optional<Config> start = std::nullopt,
               bool diagonal_moves = false);

  [[nodiscard]] std::optional<Config> propose() override;
  [[nodiscard]] std::string name() const override { return "hill-climbing"; }

  /// Seeds the incumbent with an already-measured point so the climb starts
  /// there without re-measuring (refinement-phase entry).
  void seed(const Config& config, double kpi);

 private:
  void on_observe(const Config& config, double kpi) override;
  void refill_frontier();

  const ConfigSpace* space_;
  util::Rng rng_;
  bool diagonal_moves_;
  Config current_{};
  double current_kpi_ = 0.0;
  bool have_current_ = false;
  std::optional<Config> start_;
  std::deque<Config> frontier_;      // unexplored neighbours of current_
  std::vector<Observation> round_;   // measured neighbours this round
  bool done_ = false;
};

/// Simulated annealing (paper baseline iv): random-neighbour walk accepting
/// degradations with probability exp(-rel_loss / temperature); geometric
/// cooling. Meta-parameters follow the paper's offline grid-search
/// calibration procedure (see bench/ablation_meta).
struct SaParams {
  double initial_temperature = 0.20;  ///< relative-loss scale
  double cooling = 0.95;              ///< geometric decay per step
  double min_temperature = 0.01;      ///< freeze point: switch to descent-stop
  std::size_t no_improve_window = 15;
  double no_improve_eps = 0.03;
};

class SimulatedAnnealing final : public BaseOptimizer {
 public:
  SimulatedAnnealing(const ConfigSpace& space, std::uint64_t seed,
                     SaParams params = {});

  [[nodiscard]] std::optional<Config> propose() override;
  [[nodiscard]] std::string name() const override { return "simulated-annealing"; }

 private:
  void on_observe(const Config& config, double kpi) override;

  const ConfigSpace* space_;
  util::Rng rng_;
  SaParams params_;
  double temperature_;
  Config current_{};
  double current_kpi_ = 0.0;
  bool have_current_ = false;
  NoImprovementTracker stop_;
};

/// Genetic algorithm (paper baseline v): configurations encoded as bit-string
/// chromosomes (6 bits per coordinate), elitism, single-point crossover,
/// per-bit mutation, invalid offspring repaired by shrinking c.
struct GaParams {
  std::size_t population = 10;
  std::size_t elites = 2;
  double crossover_rate = 0.9;
  double mutation_rate = 0.08;            ///< per-bit
  std::size_t random_immigrants = 2;      ///< fresh random individuals per gen
  std::size_t no_improve_generations = 6; ///< stop after this many stale gens
};

class GeneticAlgorithm final : public BaseOptimizer {
 public:
  GeneticAlgorithm(const ConfigSpace& space, std::uint64_t seed,
                   GaParams params = {});

  [[nodiscard]] std::optional<Config> propose() override;
  [[nodiscard]] std::string name() const override { return "genetic"; }

 private:
  void on_observe(const Config& config, double kpi) override;
  void spawn_next_generation();
  [[nodiscard]] Config decode_and_repair(std::uint32_t chromosome) const;
  [[nodiscard]] static std::uint32_t encode(const Config& config);

  const ConfigSpace* space_;
  util::Rng rng_;
  GaParams params_;
  std::vector<Config> pending_;            // individuals awaiting evaluation
  std::vector<Observation> generation_;    // evaluated individuals
  std::size_t cursor_ = 0;
  std::size_t stale_generations_ = 0;
  double last_generation_best_ = 0.0;
  bool done_ = false;
};

}  // namespace autopn::opt
