#pragma once
// Common interface of all online tuners (AutoPN and the five baselines of
// paper §VII-A). Optimizers are pull-driven state machines:
//
//   while (auto cfg = optimizer.propose()) {
//     double kpi = <measure cfg on the system or a trace>;
//     optimizer.observe(*cfg, kpi);
//   }
//   Config chosen = optimizer.best();
//
// This decouples the search policy from how KPIs are obtained, so the same
// optimizer code runs against the live STM (runtime::TuningController), the
// analytical surface model, and recorded traces (the paper's §VII-B
// methodology).

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "opt/config_space.hpp"

namespace autopn::opt {

/// One measurement taken during tuning.
struct Observation {
  Config config;
  double kpi = 0.0;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Next configuration to measure; std::nullopt once converged. A proposal
  /// must be answered by observe() before the next propose().
  [[nodiscard]] virtual std::optional<Config> propose() = 0;

  /// Feedback for the most recent proposal.
  virtual void observe(const Config& config, double kpi) = 0;

  /// Best configuration observed so far (highest KPI).
  [[nodiscard]] virtual Config best() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Base with the bookkeeping every tuner needs: the history, the dedup map of
/// explored configurations and the incumbent.
class BaseOptimizer : public Optimizer {
 public:
  void observe(const Config& config, double kpi) override {
    history_.push_back(Observation{config, kpi});
    explored_.insert_or_assign(config, kpi);
    if (history_.size() == 1 || kpi > best_kpi_) {
      best_kpi_ = kpi;
      best_ = config;
    }
    on_observe(config, kpi);
  }

  [[nodiscard]] Config best() const override { return best_; }
  [[nodiscard]] double best_kpi() const noexcept { return best_kpi_; }
  [[nodiscard]] const std::vector<Observation>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] bool explored(const Config& config) const {
    return explored_.contains(config);
  }
  [[nodiscard]] std::optional<double> kpi_of(const Config& config) const {
    auto it = explored_.find(config);
    if (it == explored_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::size_t explored_count() const noexcept { return explored_.size(); }

 protected:
  /// Subclass hook called after the base bookkeeping.
  virtual void on_observe(const Config& config, double kpi) = 0;

 private:
  std::vector<Observation> history_;
  std::unordered_map<Config, double, ConfigHash> explored_;
  Config best_{};
  double best_kpi_ = 0.0;
};

/// Relative no-improvement stopping rule: stop when the last `window`
/// observations did not improve the incumbent by more than `epsilon`
/// (relative). The paper applies window=5, epsilon=10% to random and grid
/// search for parity with AutoPN's EI < 10% criterion.
class NoImprovementTracker {
 public:
  NoImprovementTracker(std::size_t window, double epsilon)
      : window_(window), epsilon_(epsilon) {}

  void add(double kpi) {
    if (count_ == 0 || kpi > best_ * (1.0 + epsilon_)) {
      stale_ = 0;
    } else {
      ++stale_;
    }
    if (count_ == 0 || kpi > best_) best_ = kpi;
    ++count_;
  }

  [[nodiscard]] bool should_stop() const noexcept { return stale_ >= window_; }
  void reset() noexcept {
    stale_ = 0;
    count_ = 0;
    best_ = 0.0;
  }

 private:
  std::size_t window_;
  double epsilon_;
  std::size_t stale_ = 0;
  std::size_t count_ = 0;
  double best_ = 0.0;
};

}  // namespace autopn::opt
