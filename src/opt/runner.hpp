#pragma once
// Drives an Optimizer against any KPI source to convergence, recording the
// exploration trace. Benches use this with trace/surface evaluators
// (paper §VII-B methodology); the live runtime uses the same optimizers
// through runtime::TuningController instead.

#include <functional>
#include <vector>

#include "opt/optimizer.hpp"

namespace autopn::opt {

/// Maps a configuration to a measured KPI sample.
using Evaluator = std::function<double(const Config&)>;

struct TraceStep {
  Config config;
  double kpi = 0.0;
  double best_kpi = 0.0;  ///< incumbent after this step
};

struct RunResult {
  std::vector<TraceStep> steps;
  Config final_best{};
  double final_best_kpi = 0.0;

  [[nodiscard]] std::size_t explorations() const noexcept { return steps.size(); }
};

/// Pulls proposals until the optimizer stops (or `max_steps` is hit — a
/// safety net against non-terminating policies).
inline RunResult run_to_convergence(Optimizer& optimizer, const Evaluator& evaluate,
                                    std::size_t max_steps = 1000) {
  RunResult result;
  double best = 0.0;
  while (result.steps.size() < max_steps) {
    const auto proposal = optimizer.propose();
    if (!proposal.has_value()) break;
    const double kpi = evaluate(*proposal);
    optimizer.observe(*proposal, kpi);
    if (result.steps.empty() || kpi > best) best = kpi;
    result.steps.push_back(TraceStep{*proposal, kpi, best});
  }
  result.final_best = optimizer.best();
  result.final_best_kpi = best;
  return result;
}

}  // namespace autopn::opt
