#include "opt/config_space.hpp"

#include <stdexcept>

namespace autopn::opt {

std::string Config::to_string() const {
  return "(" + std::to_string(t) + "," + std::to_string(c) + ")";
}

ConfigSpace::ConfigSpace(int cores) : cores_(cores) {
  if (cores < 1) throw std::invalid_argument{"ConfigSpace needs >= 1 core"};
  for (int t = 1; t <= cores; ++t) {
    for (int c = 1; static_cast<long>(t) * c <= cores; ++c) {
      all_.push_back(Config{t, c});
    }
  }
}

std::optional<std::size_t> ConfigSpace::index_of(const Config& cfg) const {
  if (!valid(cfg)) return std::nullopt;
  // Rows are grouped by t in construction order; offset of row t is the
  // number of configs with smaller t. Compute by summation (spaces are tiny;
  // clarity over micro-optimization).
  std::size_t offset = 0;
  for (int t = 1; t < cfg.t; ++t) offset += static_cast<std::size_t>(cores_ / t);
  return offset + static_cast<std::size_t>(cfg.c - 1);
}

std::vector<Config> ConfigSpace::neighbors(const Config& cfg,
                                           bool include_diagonals) const {
  std::vector<Config> out;
  out.reserve(8);
  for (int dt = -1; dt <= 1; ++dt) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dt == 0 && dc == 0) continue;
      if (!include_diagonals && dt != 0 && dc != 0) continue;
      const Config candidate{cfg.t + dt, cfg.c + dc};
      if (valid(candidate)) out.push_back(candidate);
    }
  }
  return out;
}

std::vector<Config> ConfigSpace::biased_sample(std::size_t count) const {
  const int n = cores_;
  std::vector<Config> points;
  // 3 pivots.
  points.push_back(Config{1, 1});
  points.push_back(Config{n, 1});
  points.push_back(Config{1, n});
  if (count >= 5) {
    points.push_back(Config{n - 1, 1});
    points.push_back(Config{1, n - 1});
  }
  if (count >= 7) {
    points.push_back(Config{2, 1});
    points.push_back(Config{1, 2});
  }
  if (count >= 9) {
    points.push_back(Config{n / 2, 2});
    points.push_back(Config{2, n / 2});
  }
  // Deduplicate (degenerate for tiny n) and keep only valid points.
  std::vector<Config> out;
  for (const Config& p : points) {
    if (!valid(p)) continue;
    bool seen = false;
    for (const Config& q : out) seen = seen || (q == p);
    if (!seen) out.push_back(p);
  }
  return out;
}

}  // namespace autopn::opt
