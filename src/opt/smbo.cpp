#include "opt/smbo.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "opt/ei.hpp"
#include "util/table.hpp"

namespace autopn::opt {

std::string EiThresholdStop::name() const {
  return "ei<" + util::fmt_percent(threshold_, 0);
}

bool NoImproveStop::should_stop(double, double last_kpi, double best_kpi) {
  if (first_) {
    tracked_best_ = best_kpi;
    stale_ = last_kpi > 0.0 ? 0 : 1;
    first_ = false;
    return false;
  }
  if (last_kpi > tracked_best_ * (1.0 + epsilon_)) {
    stale_ = 0;
  } else {
    ++stale_;
  }
  tracked_best_ = std::max(tracked_best_, last_kpi);
  return stale_ >= window_;
}

std::string NoImproveStop::name() const {
  return "no-improve(K=" + std::to_string(window_) + ")";
}

Smbo::Smbo(const ConfigSpace& space, std::vector<Config> initial_samples,
           std::unique_ptr<StopCriterion> stop, SmboParams params,
           std::uint64_t seed)
    : space_(&space),
      initial_(std::move(initial_samples)),
      stop_(std::move(stop)),
      params_(params),
      seed_(seed) {}

std::optional<Config> Smbo::propose() {
  if (done_) return std::nullopt;
  // Phase 1: evaluate the injected initial samples.
  while (initial_cursor_ < initial_.size()) {
    const Config candidate = initial_[initial_cursor_];
    if (explored(candidate)) {
      ++initial_cursor_;
      continue;
    }
    return candidate;
  }
  // Phase 2: model-driven exploration.
  if (iterations_ >= params_.max_iterations ||
      explored_count() >= space_->size()) {
    done_ = true;
    return std::nullopt;
  }
  auto next = model_step();
  if (!next.has_value()) done_ = true;
  return next;
}

std::optional<Config> Smbo::model_step() {
  // Train the surrogate on everything observed so far.
  ml::Dataset data{2};
  for (const Observation& obs : history()) {
    data.add(std::array{static_cast<double>(obs.config.t),
                        static_cast<double>(obs.config.c)},
             obs.kpi);
  }
  // Blend in the prior surface while live data is still scarce. Predicted
  // KPIs are rescaled to the live level via the ratio of sums over the
  // configurations present in both sets, so a model that gets the *shape*
  // right but the *scale* wrong still steers exploration correctly.
  if (prior_.has_value() && history().size() < prior_->decay_observations) {
    double observed_sum = 0.0;
    double predicted_sum = 0.0;
    for (const Observation& prior_obs : prior_->observations) {
      if (const auto live = kpi_of(prior_obs.config); live.has_value()) {
        observed_sum += *live;
        predicted_sum += prior_obs.kpi;
      }
    }
    const double scale =
        (observed_sum > 0.0 && predicted_sum > 0.0) ? observed_sum / predicted_sum
                                                    : 1.0;
    const std::size_t stride = std::max<std::size_t>(1, prior_->stride);
    for (const Observation& prior_obs : prior_->observations) {
      if (explored(prior_obs.config)) continue;  // live data wins outright
      // Coarse lattice only (see Prior::stride): the surrogate must keep
      // inter-lattice variance or EI dies and SMBO stops immediately.
      if ((static_cast<std::size_t>(prior_obs.config.t) - 1) % stride != 0 ||
          (static_cast<std::size_t>(prior_obs.config.c) - 1) % stride != 0) {
        continue;
      }
      data.add(std::array{static_cast<double>(prior_obs.config.t),
                          static_cast<double>(prior_obs.config.c)},
               prior_obs.kpi * scale);
    }
  }
  // A fresh sub-seed per refresh keeps bootstrap draws independent across
  // iterations while preserving overall determinism.
  std::optional<ml::BaggingEnsemble> ensemble;
  std::optional<ml::KnnRegressor> knn;
  if (params_.surrogate == SmboParams::Surrogate::kBaggedM5) {
    ensemble = ml::BaggingEnsemble::fit(data, params_.ensemble_size, params_.tree,
                                        seed_ + 0x9e37 * model_updates_);
  } else {
    knn.emplace(data, params_.knn_k);
  }
  ++model_updates_;

  auto posterior = [&](const Config& candidate) -> std::pair<double, double> {
    const std::array<double, 2> x{static_cast<double>(candidate.t),
                                  static_cast<double>(candidate.c)};
    if (ensemble.has_value()) {
      const auto p = ensemble->predict(x);
      return {p.mean, p.stddev()};
    }
    const auto p = knn->predict(x);
    return {p.mean, p.stddev()};
  };

  const double incumbent = best_kpi();
  double max_score = -1.0;
  std::optional<Config> argmax;
  for (const Config& candidate : space_->all()) {
    if (explored(candidate)) continue;
    const auto [mu, sigma] = posterior(candidate);
    double score = 0.0;
    switch (params_.acquisition) {
      case SmboParams::Acquisition::kEi:
        score = expected_improvement(mu, sigma, incumbent);
        break;
      case SmboParams::Acquisition::kPi:
        score = probability_of_improvement(mu, sigma, incumbent);
        break;
      case SmboParams::Acquisition::kUcb:
        score = mu + params_.ucb_beta * sigma;
        break;
    }
    if (score > max_score) {
      max_score = score;
      argmax = candidate;
    }
  }
  if (!argmax.has_value()) return std::nullopt;

  // Normalize the stop statistic by the incumbent so thresholds are
  // scale-free: EI is an expected gain; UCB's analogue is the optimistic
  // headroom above the incumbent; PI is already a probability.
  switch (params_.acquisition) {
    case SmboParams::Acquisition::kEi:
      last_max_ei_fraction_ = incumbent > 0.0 ? max_score / incumbent : 1.0;
      break;
    case SmboParams::Acquisition::kPi:
      last_max_ei_fraction_ = max_score;
      break;
    case SmboParams::Acquisition::kUcb:
      last_max_ei_fraction_ =
          incumbent > 0.0 ? std::max(0.0, max_score - incumbent) / incumbent : 1.0;
      break;
  }
  if (stop_->should_stop(last_max_ei_fraction_, last_kpi_, incumbent)) {
    return std::nullopt;
  }
  ++iterations_;
  return argmax;
}

void Smbo::on_observe(const Config& config, double kpi) {
  last_kpi_ = kpi;
  if (initial_cursor_ < initial_.size() && config == initial_[initial_cursor_]) {
    ++initial_cursor_;
  }
}

}  // namespace autopn::opt
