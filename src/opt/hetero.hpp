#pragma once
// Heterogeneous transaction types — the paper's §VIII future-work extension:
// "modeling the search space as a set of distinct (t_k, c_k) pairs for each
// type of top-level transaction, k".
//
// The joint space grows exponentially in the number of types, so exhaustive
// SMBO over the product lattice is impractical (the very dimensionality
// concern the paper raises). We implement the natural tractable design the
// paper's black-box architecture admits: coordinate descent over types —
// each round re-tunes one type's (t_k, c_k) with the standard AutoPN
// pipeline while the other types stay frozen, under a shared core budget
// sum_k t_k * c_k <= n. Rounds repeat until a full sweep changes nothing.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "opt/autopn_optimizer.hpp"
#include "opt/config_space.hpp"

namespace autopn::opt {

/// One (t_k, c_k) assignment per transaction type.
struct HeteroConfig {
  std::vector<Config> per_type;

  friend bool operator==(const HeteroConfig&, const HeteroConfig&) = default;
  [[nodiscard]] std::string to_string() const;
  /// Total cores consumed: sum of t_k * c_k.
  [[nodiscard]] long cores_used() const;
};

/// The joint admissible space: every type has t_k, c_k >= 1 and the shared
/// budget holds.
class HeteroSpace {
 public:
  HeteroSpace(int cores, std::size_t types);

  [[nodiscard]] int cores() const noexcept { return cores_; }
  [[nodiscard]] std::size_t types() const noexcept { return types_; }
  [[nodiscard]] bool valid(const HeteroConfig& cfg) const;

  /// The all-sequential starting point: (1,1) for every type.
  [[nodiscard]] HeteroConfig sequential() const;

  /// Core budget available to type k when the other types of `cfg` are
  /// frozen.
  [[nodiscard]] int budget_for(const HeteroConfig& cfg, std::size_t k) const;

 private:
  int cores_;
  std::size_t types_;
};

struct HeteroTunerParams {
  AutoPnParams autopn;
  /// Maximum coordinate-descent sweeps over the types.
  std::size_t max_rounds = 3;
};

/// Pull-driven coordinate-descent tuner over the heterogeneous space.
/// Proposals are full HeteroConfigs (the active type's candidate substituted
/// into the frozen assignment); feedback is the measured KPI of the whole
/// system under that joint configuration.
class HeteroCoordinateTuner {
 public:
  HeteroCoordinateTuner(const HeteroSpace& space, HeteroTunerParams params,
                        std::uint64_t seed);

  [[nodiscard]] std::optional<HeteroConfig> propose();
  void observe(const HeteroConfig& config, double kpi);

  /// Best joint configuration observed so far.
  [[nodiscard]] HeteroConfig best() const { return best_; }
  [[nodiscard]] double best_kpi() const noexcept { return best_kpi_; }
  [[nodiscard]] std::size_t rounds_completed() const noexcept { return round_; }

 private:
  /// Starts (or restarts) the inner AutoPN tuner for the active type.
  void start_inner();
  /// Advances to the next type / round; returns false when fully converged.
  bool advance();

  const HeteroSpace* space_;
  HeteroTunerParams params_;
  std::uint64_t seed_;

  HeteroConfig current_;  // frozen assignment (active type's slot is stale)
  std::size_t active_type_ = 0;
  std::size_t round_ = 0;
  bool round_changed_ = false;
  bool done_ = false;

  std::unique_ptr<ConfigSpace> inner_space_;
  std::unique_ptr<AutoPnOptimizer> inner_;
  std::optional<Config> inner_pending_;

  HeteroConfig best_;
  double best_kpi_ = 0.0;
  bool have_best_ = false;
};

}  // namespace autopn::opt
