#include "opt/baselines.hpp"

#include <algorithm>
#include <cmath>

namespace autopn::opt {

// ---- RandomSearch ----------------------------------------------------------

RandomSearch::RandomSearch(const ConfigSpace& space, std::uint64_t seed,
                           std::size_t no_improve_window, double no_improve_eps)
    : space_(&space),
      rng_(seed),
      stop_(no_improve_window, no_improve_eps),
      shuffled_(space.all()) {
  rng_.shuffle(shuffled_);
}

std::optional<Config> RandomSearch::propose() {
  if (stop_.should_stop() || cursor_ >= shuffled_.size()) return std::nullopt;
  return shuffled_[cursor_++];
}

void RandomSearch::on_observe(const Config& /*config*/, double kpi) { stop_.add(kpi); }

// ---- GridSearch ------------------------------------------------------------

GridSearch::GridSearch(const ConfigSpace& space, std::size_t no_improve_window,
                       double no_improve_eps)
    : space_(&space), stop_(no_improve_window, no_improve_eps) {}

std::optional<Config> GridSearch::propose() {
  if (stop_.should_stop() || cursor_ >= space_->size()) return std::nullopt;
  // ConfigSpace enumerates configurations with c sweeping fastest within
  // each t — exactly the paper's "first c, then t" progressive sweep.
  return space_->at(cursor_++);
}

void GridSearch::on_observe(const Config& /*config*/, double kpi) { stop_.add(kpi); }

// ---- HillClimbing ----------------------------------------------------------

HillClimbing::HillClimbing(const ConfigSpace& space, std::uint64_t seed,
                           std::optional<Config> start, bool diagonal_moves)
    : space_(&space), rng_(seed), diagonal_moves_(diagonal_moves), start_(start) {}

void HillClimbing::seed(const Config& config, double kpi) {
  current_ = config;
  current_kpi_ = kpi;
  have_current_ = true;
  // Also feed the base bookkeeping so best() reflects the seed.
  BaseOptimizer::observe(config, kpi);
  refill_frontier();
}

void HillClimbing::refill_frontier() {
  frontier_.clear();
  round_.clear();
  for (const Config& n : space_->neighbors(current_, diagonal_moves_)) {
    if (!explored(n)) frontier_.push_back(n);
  }
}

std::optional<Config> HillClimbing::propose() {
  if (done_) return std::nullopt;
  if (!have_current_) {
    if (start_.has_value()) return *start_;
    return space_->at(rng_.uniform_index(space_->size()));
  }
  if (!frontier_.empty()) {
    const Config next = frontier_.front();
    frontier_.pop_front();
    return next;
  }
  // Round complete: move to the best measured neighbour if it improves.
  const Observation* best_neighbor = nullptr;
  for (const Observation& obs : round_) {
    if (best_neighbor == nullptr || obs.kpi > best_neighbor->kpi) {
      best_neighbor = &obs;
    }
  }
  if (best_neighbor != nullptr && best_neighbor->kpi > current_kpi_) {
    current_ = best_neighbor->config;
    current_kpi_ = best_neighbor->kpi;
    refill_frontier();
    if (!frontier_.empty()) {
      const Config next = frontier_.front();
      frontier_.pop_front();
      return next;
    }
    // All neighbours of the new incumbent already known: recurse into the
    // move decision on the next propose() call.
    round_.clear();
    for (const Config& n : space_->neighbors(current_, diagonal_moves_)) {
      round_.push_back(Observation{n, kpi_of(n).value()});
    }
    return propose();
  }
  done_ = true;  // local optimum
  return std::nullopt;
}

void HillClimbing::on_observe(const Config& config, double kpi) {
  if (!have_current_) {
    current_ = config;
    current_kpi_ = kpi;
    have_current_ = true;
    refill_frontier();
    return;
  }
  round_.push_back(Observation{config, kpi});
}

// ---- SimulatedAnnealing ----------------------------------------------------

SimulatedAnnealing::SimulatedAnnealing(const ConfigSpace& space, std::uint64_t seed,
                                       SaParams params)
    : space_(&space),
      rng_(seed),
      params_(params),
      temperature_(params.initial_temperature),
      stop_(params.no_improve_window, params.no_improve_eps) {}

std::optional<Config> SimulatedAnnealing::propose() {
  if (stop_.should_stop()) return std::nullopt;
  if (!have_current_) return space_->at(rng_.uniform_index(space_->size()));
  if (temperature_ < params_.min_temperature && stop_.should_stop()) {
    return std::nullopt;
  }
  const auto neighbors = space_->neighbors(current_);
  if (neighbors.empty()) return std::nullopt;
  return neighbors[rng_.uniform_index(neighbors.size())];
}

void SimulatedAnnealing::on_observe(const Config& config, double kpi) {
  stop_.add(kpi);
  if (!have_current_) {
    current_ = config;
    current_kpi_ = kpi;
    have_current_ = true;
    return;
  }
  bool accept = kpi >= current_kpi_;
  if (!accept && current_kpi_ > 0.0) {
    const double relative_loss = (current_kpi_ - kpi) / current_kpi_;
    accept = rng_.bernoulli(std::exp(-relative_loss / std::max(temperature_, 1e-9)));
  }
  if (accept) {
    current_ = config;
    current_kpi_ = kpi;
  }
  temperature_ *= params_.cooling;
}

// ---- GeneticAlgorithm ------------------------------------------------------

namespace {
constexpr std::uint32_t kCoordBits = 6;  // encodes t-1 and c-1 in [0, 63]
constexpr std::uint32_t kCoordMask = (1u << kCoordBits) - 1;
}  // namespace

GeneticAlgorithm::GeneticAlgorithm(const ConfigSpace& space, std::uint64_t seed,
                                   GaParams params)
    : space_(&space), rng_(seed), params_(params) {
  // Initial population: uniform random configurations (distinct where
  // possible).
  pending_.reserve(params_.population);
  while (pending_.size() < params_.population) {
    const Config candidate = space_->at(rng_.uniform_index(space_->size()));
    const bool duplicate =
        std::find(pending_.begin(), pending_.end(), candidate) != pending_.end();
    if (!duplicate || pending_.size() + 1 >= space_->size()) {
      pending_.push_back(candidate);
    }
  }
}

std::uint32_t GeneticAlgorithm::encode(const Config& config) {
  const auto t = static_cast<std::uint32_t>(config.t - 1) & kCoordMask;
  const auto c = static_cast<std::uint32_t>(config.c - 1) & kCoordMask;
  return (t << kCoordBits) | c;
}

Config GeneticAlgorithm::decode_and_repair(std::uint32_t chromosome) const {
  int t = static_cast<int>((chromosome >> kCoordBits) & kCoordMask) + 1;
  int c = static_cast<int>(chromosome & kCoordMask) + 1;
  t = std::min(t, space_->cores());
  c = std::min(c, space_->cores());
  // Repair over-subscribed offspring by shrinking c (keeps the t gene).
  while (static_cast<long>(t) * c > space_->cores() && c > 1) --c;
  return Config{t, c};
}

std::optional<Config> GeneticAlgorithm::propose() {
  if (done_) return std::nullopt;
  while (cursor_ < pending_.size()) {
    const Config candidate = pending_[cursor_];
    if (auto known = kpi_of(candidate)) {
      // Already measured in an earlier generation: recycle the observation
      // without spending an exploration.
      generation_.push_back(Observation{candidate, *known});
      ++cursor_;
      continue;
    }
    return candidate;
  }
  spawn_next_generation();
  if (done_) return std::nullopt;
  return propose();
}

void GeneticAlgorithm::on_observe(const Config& config, double kpi) {
  generation_.push_back(Observation{config, kpi});
  ++cursor_;
}

void GeneticAlgorithm::spawn_next_generation() {
  // Generation fully evaluated (measured or recycled): update the stale-
  // generation stop statistic, then breed.
  const double gen_best =
      std::max_element(generation_.begin(), generation_.end(),
                       [](const Observation& a, const Observation& b) {
                         return a.kpi < b.kpi;
                       })
          ->kpi;
  if (last_generation_best_ > 0.0 && gen_best <= last_generation_best_ * 1.0001) {
    ++stale_generations_;
  } else {
    stale_generations_ = 0;
  }
  last_generation_best_ = std::max(last_generation_best_, gen_best);
  if (stale_generations_ >= params_.no_improve_generations) {
    done_ = true;
    return;
  }
  // Rank current generation.
  std::vector<Observation> ranked = generation_;
  std::sort(ranked.begin(), ranked.end(),
            [](const Observation& a, const Observation& b) { return a.kpi > b.kpi; });

  std::vector<Config> next;
  next.reserve(params_.population);
  for (std::size_t i = 0; i < std::min(params_.elites, ranked.size()); ++i) {
    next.push_back(ranked[i].config);
  }
  // Random immigrants keep the broad search going (the "data greedy"
  // behaviour the paper observes in GA).
  for (std::size_t i = 0;
       i < params_.random_immigrants && next.size() < params_.population; ++i) {
    next.push_back(space_->at(rng_.uniform_index(space_->size())));
  }
  // Fitness-proportional (rank-based) parent selection.
  auto pick_parent = [&]() -> const Config& {
    // Tournament of 2 over the ranked list.
    const std::size_t a = rng_.uniform_index(ranked.size());
    const std::size_t b = rng_.uniform_index(ranked.size());
    return ranked[std::min(a, b)].config;
  };
  while (next.size() < params_.population) {
    std::uint32_t child = encode(pick_parent());
    if (rng_.bernoulli(params_.crossover_rate)) {
      const std::uint32_t other = encode(pick_parent());
      const std::uint32_t cut = 1 + static_cast<std::uint32_t>(
                                        rng_.uniform_index(2 * kCoordBits - 1));
      const std::uint32_t mask = (1u << cut) - 1;
      child = (child & ~mask) | (other & mask);
    }
    for (std::uint32_t bit = 0; bit < 2 * kCoordBits; ++bit) {
      if (rng_.bernoulli(params_.mutation_rate)) child ^= (1u << bit);
    }
    next.push_back(decode_and_repair(child));
  }
  pending_ = std::move(next);
  generation_.clear();
  cursor_ = 0;
}

}  // namespace autopn::opt
