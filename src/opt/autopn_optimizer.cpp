#include "opt/autopn_optimizer.hpp"

namespace autopn::opt {

AutoPnOptimizer::AutoPnOptimizer(const ConfigSpace& space, AutoPnParams params,
                                 std::uint64_t seed)
    : AutoPnOptimizer(space, params, seed,
                      std::make_unique<EiThresholdStop>(params.ei_threshold)) {}

AutoPnOptimizer::AutoPnOptimizer(const ConfigSpace& space, AutoPnParams params,
                                 std::uint64_t seed,
                                 std::unique_ptr<StopCriterion> stop)
    : space_(&space), params_(params), seed_(seed) {
  const std::size_t points = params_.prior.has_value()
                                 ? params_.warm_bootstrap_points
                                 : params_.bootstrap_points;
  smbo_ = std::make_unique<Smbo>(space, space.biased_sample(points),
                                 std::move(stop), params_.smbo, seed);
  if (params_.prior.has_value()) smbo_->set_prior(*params_.prior);
}

std::optional<Config> AutoPnOptimizer::propose() {
  if (phase_ == 1) {
    if (auto next = smbo_->propose()) return next;
    if (!params_.hill_climb_refinement) {
      phase_ = 3;
      return std::nullopt;
    }
    enter_refinement();
  }
  if (phase_ == 2) {
    while (auto next = climber_->propose()) {
      // The climber may ask for points the SMBO phase already measured;
      // recycle those observations without spending a new exploration.
      if (auto known = kpi_of(*next)) {
        climber_->observe(*next, *known);
        continue;
      }
      return next;
    }
    phase_ = 3;
  }
  return std::nullopt;
}

void AutoPnOptimizer::enter_refinement() {
  phase_ = 2;
  climber_ = std::make_unique<HillClimbing>(*space_, seed_ ^ 0xc1f651c67c62c6e0ULL,
                                            smbo_->best(), /*diagonal_moves=*/true);
  climber_->seed(smbo_->best(), smbo_->best_kpi());
}

void AutoPnOptimizer::on_observe(const Config& config, double kpi) {
  if (phase_ == 1) {
    ++smbo_explorations_;
    smbo_->observe(config, kpi);
  } else if (phase_ == 2) {
    climber_->observe(config, kpi);
  }
}

}  // namespace autopn::opt
