#pragma once
// AUTOPN — the paper's self-tuning optimizer (§V). Three phases, one
// pull-driven state machine:
//
//   1. biased initial sampling of up to 9 boundary configurations (§V-A);
//   2. SMBO with a bagged-M5 surrogate and EI acquisition until max EI falls
//      below a threshold (§V-B) — quickly prunes unpromising macro-regions;
//   3. hill-climbing refinement from the SMBO incumbent (§V), correcting the
//      model's long-sightedness with a cheap local search.

#include <cstdint>
#include <memory>
#include <optional>

#include "opt/baselines.hpp"
#include "opt/optimizer.hpp"
#include "opt/smbo.hpp"

namespace autopn::opt {

struct AutoPnParams {
  /// Initial biased boundary samples: 3, 5, 7 or 9 (paper default 9).
  std::size_t bootstrap_points = 9;
  /// Optional warm-start prior (a model- or history-predicted KPI surface,
  /// see opt::Prior). When set, the blind bootstrap shrinks to
  /// `warm_bootstrap_points` pivot probes — the prior already encodes the
  /// macro-shape the 9-point grid exists to discover — and the prior shapes
  /// every surrogate fit until it decays.
  std::optional<Prior> prior;
  /// Bootstrap size used when `prior` is set (the three §V-A pivots).
  std::size_t warm_bootstrap_points = 3;
  /// EI stop threshold as a fraction of the incumbent (paper: 1%-10%,
  /// default evaluation setting 10%).
  double ei_threshold = 0.10;
  /// Skip phase 3 (the "AutoPN w/o local search" variant of Fig 5).
  bool hill_climb_refinement = true;
  SmboParams smbo;
};

class AutoPnOptimizer final : public BaseOptimizer {
 public:
  AutoPnOptimizer(const ConfigSpace& space, AutoPnParams params, std::uint64_t seed);

  /// Variant with a custom SMBO stop criterion (Fig 6 stop-condition study);
  /// overrides the ei_threshold-derived default.
  AutoPnOptimizer(const ConfigSpace& space, AutoPnParams params, std::uint64_t seed,
                  std::unique_ptr<StopCriterion> stop);

  [[nodiscard]] std::optional<Config> propose() override;
  [[nodiscard]] std::string name() const override { return "autopn"; }

  /// Which phase the tuner is in (diagnostics; 1 = initial+SMBO, 2 = hill
  /// climbing, 3 = done).
  [[nodiscard]] int phase() const noexcept { return phase_; }

  /// Explorations spent in the SMBO phase (incl. initial samples).
  [[nodiscard]] std::size_t smbo_explorations() const noexcept {
    return smbo_explorations_;
  }

 private:
  void on_observe(const Config& config, double kpi) override;
  void enter_refinement();

  const ConfigSpace* space_;
  AutoPnParams params_;
  std::uint64_t seed_;
  std::unique_ptr<Smbo> smbo_;
  std::unique_ptr<HillClimbing> climber_;
  int phase_ = 1;
  std::size_t smbo_explorations_ = 0;
};

}  // namespace autopn::opt
