#pragma once
// The bi-dimensional search space of parallel-nesting configurations
// (paper §III-B): S = { (t, c) : t, c >= 1 and t * c <= n }, where t is the
// number of concurrent top-level transactions, c the number of concurrent
// nested transactions per tree, and n the core count. For n = 48 the space
// holds exactly 198 configurations, matching the paper's evaluation.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace autopn::opt {

/// One parallelism configuration.
struct Config {
  int t = 1;  ///< concurrent top-level transactions
  int c = 1;  ///< concurrent nested transactions per tree

  friend bool operator==(const Config&, const Config&) = default;
  [[nodiscard]] std::string to_string() const;
};

struct ConfigHash {
  [[nodiscard]] std::size_t operator()(const Config& cfg) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cfg.t)) << 32) |
        static_cast<std::uint32_t>(cfg.c));
  }
};

/// Enumeration, validity and neighbourhood structure of S.
class ConfigSpace {
 public:
  /// Builds the space for an n-core machine (n >= 1).
  explicit ConfigSpace(int cores);

  [[nodiscard]] int cores() const noexcept { return cores_; }
  [[nodiscard]] std::size_t size() const noexcept { return all_.size(); }
  [[nodiscard]] const std::vector<Config>& all() const noexcept { return all_; }
  [[nodiscard]] const Config& at(std::size_t index) const { return all_.at(index); }

  [[nodiscard]] bool valid(const Config& cfg) const noexcept {
    return cfg.t >= 1 && cfg.c >= 1 &&
           static_cast<long>(cfg.t) * cfg.c <= static_cast<long>(cores_);
  }

  /// Index of a configuration in all(), if valid.
  [[nodiscard]] std::optional<std::size_t> index_of(const Config& cfg) const;

  /// Valid lattice neighbours at Chebyshev distance 1 (up to 8), or only the
  /// four axis-aligned moves when `include_diagonals` is false.
  [[nodiscard]] std::vector<Config> neighbors(const Config& cfg,
                                              bool include_diagonals = true) const;

  // ---- the paper's biased initial-sampling sets (§V-A) -----------------
  //
  // Three pivots anchor the extremes of inter-/intra-transaction
  // parallelism: (1,1) sequential, (n,1) all-top-level, (1,n) all-nested.
  // The 5- and 7-point sets add the pivots' axis neighbours (per the paper's
  // footnote); the full 9-point set adds one boundary neighbour of each
  // saturated pivot along the t*c = n hyperbola, completing "3 points per
  // boundary region" (documented inference, see DESIGN.md).

  [[nodiscard]] std::vector<Config> biased_sample(std::size_t count) const;

 private:
  int cores_;
  std::vector<Config> all_;
};

}  // namespace autopn::opt
