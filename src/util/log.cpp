#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace autopn::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kOff)};
std::mutex g_log_mutex;
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void log_line(LogLevel level, std::string_view tag, const std::string& message) {
  const char* prefix = "";
  switch (level) {
    case LogLevel::kError: prefix = "E"; break;
    case LogLevel::kInfo: prefix = "I"; break;
    case LogLevel::kDebug: prefix = "D"; break;
    case LogLevel::kOff: return;
  }
  std::scoped_lock lock{g_log_mutex};
  std::cerr << '[' << prefix << "][" << tag << "] " << message << '\n';
}

}  // namespace detail

}  // namespace autopn::util
