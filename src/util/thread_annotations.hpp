#pragma once
// Thread-safety annotation macros — the vocabulary autopn-lint's guarded-by
// rule checks (tools/lint/autopn_lint.py) and clang's -Wthread-safety
// analysis verifies when a clang toolchain is available.
//
// Every class that owns a mutex annotates the fields that mutex protects:
//
//   std::mutex mutex_;
//   std::deque<Request> queue_ AUTOPN_GUARDED_BY(mutex_);
//
// Under clang the macros expand to the thread-safety attributes, so
// `clang++ -Wthread-safety` proves every access happens with the named
// capability held. Under gcc (our default toolchain) they expand to nothing
// — but autopn-lint still enforces, textually, that every mutable field of a
// mutex-owning class either carries an annotation or appears in
// tools/lint/allow_unguarded.txt with a justification. The discipline is
// machine-checked either way; clang merely upgrades it to a proof.

#if defined(__clang__) && (!defined(SWIG))
#define AUTOPN_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AUTOPN_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Field is protected by the given capability (mutex): every read or write
/// must happen with `x` held.
#define AUTOPN_GUARDED_BY(x) AUTOPN_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is protected by `x` (the pointer itself may
/// be read freely).
#define AUTOPN_PT_GUARDED_BY(x) AUTOPN_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define AUTOPN_REQUIRES(...) \
  AUTOPN_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires / releases the capability.
#define AUTOPN_ACQUIRE(...) \
  AUTOPN_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AUTOPN_RELEASE(...) \
  AUTOPN_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function must be called *without* the capability held (it acquires it
/// internally; calling with it held would deadlock).
#define AUTOPN_EXCLUDES(...) \
  AUTOPN_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch for code clang's analysis cannot follow (lambda captures,
/// two-phase locking). Prefer an allow_unguarded.txt entry for fields.
#define AUTOPN_NO_THREAD_SAFETY_ANALYSIS \
  AUTOPN_THREAD_ANNOTATION_(no_thread_safety_analysis)
