#pragma once
// Failpoint injection framework — named fault-injection sites compiled into
// the hot paths of the STM, the tuning runtime, and the serving engine so
// chaos tests and the chaos_soak bench can provoke the failure modes the
// self-healing machinery (retry-budget escalation, request deadlines, the
// controller watchdog) exists to absorb.
//
// A site is declared in place with the AUTOPN_FAILPOINT macro:
//
//   AUTOPN_FAILPOINT("stm.commit.validate",
//                    throw ConflictError{ConflictKind::kInjected});
//
// The action statement runs only when the failpoint is armed in kError mode
// and its probability/fire-budget evaluation fires; kDelay mode injects a
// sleep and never executes the action, so every site doubles as a pure
// latency-injection point. Disarmed cost is one relaxed atomic load (plus
// the function-local static's initialization guard), and when the build
// compiles failpoints out (CMake option AUTOPN_FAILPOINTS=OFF, the Release
// preset) the macro expands to nothing.
//
// Arming:
//   * programmatic — FailpointRegistry::instance().arm(name, spec);
//   * environment  — AUTOPN_FAILPOINTS="a=error(p=0.5,n=3);b=delay(d=2ms)"
//                    parsed on first registry access;
//   * CLI          — `autopn serve --failpoints "<same syntax>"`.
// Spec syntax: name=kind[(arg,...)] separated by ';' (or ','  between
// specs is not allowed — ',' separates args). kind ∈ {error, delay, off};
// args: p=<probability>, n=<max fires; 1 = one-shot>, d=<delay, e.g. 500us,
// 2ms, 1s>. Sites not yet reached keep their spec pending and pick it up at
// registration, so env/CLI arming works before any code path runs.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace autopn::util {

/// What an armed failpoint does when its evaluation fires.
enum class FailpointMode {
  kOff,    ///< disarmed
  kError,  ///< sleep the configured delay (if any), then run the site action
  kDelay,  ///< sleep the configured delay only; the site action never runs
};

/// Arming parameters of one failpoint.
struct FailpointSpec {
  FailpointMode mode = FailpointMode::kOff;
  /// Chance each evaluation fires, in [0, 1].
  double probability = 1.0;
  /// Injected sleep when the evaluation fires (both modes).
  std::uint64_t delay_us = 0;
  /// Total evaluations allowed to fire; -1 = unlimited, 1 = one-shot. The
  /// failpoint disarms itself once the budget is exhausted.
  std::int64_t max_fires = -1;
};

/// One named injection site. Instances are function-local statics created by
/// AUTOPN_FAILPOINT; they register with the global registry on first
/// execution and stay registered for the life of the process.
class Failpoint {
 public:
  explicit Failpoint(std::string_view name);
  ~Failpoint();

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// Evaluates the site. Returns true when the site's error action must run.
  /// Disarmed fast path: one relaxed load.
  [[nodiscard]] bool should_fail() {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return evaluate_slow();
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Evaluations that fired (slept and/or triggered the action).
  [[nodiscard]] std::uint64_t fire_count() const noexcept {
    return fires_.load(std::memory_order_relaxed);
  }
  /// Evaluations while armed (fired or not).
  [[nodiscard]] std::uint64_t hit_count() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  friend class FailpointRegistry;

  /// Armed path: checks probability and the fire budget, applies the delay.
  bool evaluate_slow();

  void apply(const FailpointSpec& spec);

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> fires_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::mutex mutex_;  ///< guards spec_/remaining_ (armed path only)
  FailpointSpec spec_ AUTOPN_GUARDED_BY(mutex_);
  std::int64_t remaining_ AUTOPN_GUARDED_BY(mutex_) = -1;  ///< fires left
};

/// Process-wide failpoint directory: arming by name, env-var bootstrap, and
/// introspection for the chaos driver. Singleton; never destroyed.
class FailpointRegistry {
 public:
  struct Entry {
    std::string name;
    bool armed = false;
    std::uint64_t fires = 0;
    std::uint64_t hits = 0;
  };

  static FailpointRegistry& instance();

  /// Arms (or re-arms) `name`. Unknown names are kept pending and applied
  /// when the site first registers, so arming works before any code runs.
  void arm(const std::string& name, FailpointSpec spec);
  /// Disarms `name` (and clears any pending spec). Unknown names are a no-op.
  void disarm(const std::string& name);
  /// Disarms every registered failpoint and clears all pending specs.
  void disarm_all();

  /// Parses and applies an arming string (see file comment for the syntax).
  /// Throws std::invalid_argument on malformed input.
  void arm_from_string(const std::string& specs);

  /// Fires recorded for `name` (0 if never registered).
  [[nodiscard]] std::uint64_t fire_count(const std::string& name) const;

  /// Snapshot of every registered site.
  [[nodiscard]] std::vector<Entry> list() const;

  /// True when AUTOPN_FAILPOINT sites are compiled into this build. Chaos
  /// tests skip themselves when false.
  [[nodiscard]] static constexpr bool compiled_in() noexcept {
#ifdef AUTOPN_FAILPOINTS_ENABLED
    return true;
#else
    return false;
#endif
  }

 private:
  friend class Failpoint;

  FailpointRegistry();

  void register_site(Failpoint* site);
  void unregister_site(Failpoint* site);

  mutable std::mutex mutex_;
  std::map<std::string, Failpoint*> sites_ AUTOPN_GUARDED_BY(mutex_);
  std::map<std::string, FailpointSpec> pending_ AUTOPN_GUARDED_BY(mutex_);
};

/// Parses one spec's textual form ("error(p=0.5,n=3,d=2ms)") into a
/// FailpointSpec. Exposed for tests. Throws std::invalid_argument.
[[nodiscard]] FailpointSpec parse_failpoint_spec(std::string_view text);

#ifdef AUTOPN_FAILPOINTS_ENABLED
// `action` runs only when the failpoint is armed in kError mode and fires.
// Delay-only sites pass `;` (or nothing) as the action.
#define AUTOPN_FAILPOINT(name_literal, ...)                       \
  do {                                                            \
    static ::autopn::util::Failpoint autopn_failpoint_site_{      \
        name_literal};                                            \
    if (autopn_failpoint_site_.should_fail()) {                   \
      __VA_ARGS__;                                                \
    }                                                             \
  } while (0)
#else
#define AUTOPN_FAILPOINT(name_literal, ...) \
  do {                                      \
  } while (0)
#endif

}  // namespace autopn::util
