#pragma once
// The virtualized synchronization seam (docs/MODEL_CHECKING.md). Components
// on the model-checking port list (tools/lint/mc_ported.txt) spell every
// synchronization primitive through these names instead of std:: directly:
//
//   sync::Atomic<T>    — std::atomic<T>
//   sync::Mutex        — std::mutex
//   sync::CondVar      — std::condition_variable
//   sync::UniqueLock   — std::unique_lock<sync::Mutex>
//   sync::ScopedLock   — std::scoped_lock<sync::Mutex>
//   sync::Shared<T>    — a plain T cell whose cross-thread accesses are
//                        ordered by some *other* primitive (a release store,
//                        a mutex). read()/write() return references.
//
// Production builds: every alias IS the raw std primitive (verified by
// static_asserts in tests/util_sync_test.cpp) and Shared<T> is a transparent
// zero-size-overhead wrapper — the seam costs nothing and changes no codegen.
//
// AUTOPN_MC builds (cmake -DAUTOPN_MC=ON, the `mc` preset): the aliases
// resolve to the model-checker primitives in src/mc/model_sync.hpp instead.
// Every operation becomes a scheduling point of the cooperative exhaustive
// scheduler, the spelled memory order feeds a vector-clock happens-before
// engine, and Shared<T> accesses are race-checked against it — so an
// annotation that is too weak surfaces as a reported race with a replayable
// schedule, not as a once-in-a-million production hang.

#include <condition_variable>
#include <mutex>

#if defined(AUTOPN_MC) && AUTOPN_MC
#include "mc/model_sync.hpp"
#else
#include <atomic>
#include <utility>
#endif

namespace autopn::sync {

#if defined(AUTOPN_MC) && AUTOPN_MC

template <typename T>
using Atomic = mc::ModelAtomic<T>;
using Mutex = mc::ModelMutex;
using CondVar = mc::ModelCondVar;
template <typename T>
using Shared = mc::ModelShared<T>;

#else

template <typename T>
using Atomic = std::atomic<T>;
using Mutex = std::mutex;
using CondVar = std::condition_variable;

/// Transparent cell for non-atomic state shared across threads under some
/// external ordering discipline. In production it is layout-identical to a
/// bare T; under AUTOPN_MC each read()/write() is checked for a
/// happens-before edge to the last conflicting access.
template <typename T>
class Shared {
 public:
  constexpr Shared() = default;
  constexpr Shared(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr const T& read() const noexcept { return value_; }
  [[nodiscard]] constexpr T& write() noexcept { return value_; }

 private:
  T value_;
};

#endif

using UniqueLock = std::unique_lock<Mutex>;
using ScopedLock = std::scoped_lock<Mutex>;

}  // namespace autopn::sync
