#pragma once
// Minimal leveled logger. Off by default so the STM hot path and benches are
// silent; tests and examples can raise the level for diagnosis.

#include <sstream>
#include <string>
#include <string_view>

namespace autopn::util {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Global log level; plain function interface to avoid static-init ordering
/// issues across translation units.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view tag, const std::string& message);
}

/// Logs `message` at the given level if enabled. The message is built lazily
/// by the caller via an ostringstream in the macro below.
template <typename Fn>
void log_if(LogLevel level, std::string_view tag, Fn&& build_message) {
  if (static_cast<int>(level) <= static_cast<int>(log_level())) {
    std::ostringstream os;
    build_message(os);
    detail::log_line(level, tag, os.str());
  }
}

}  // namespace autopn::util

#define AUTOPN_LOG(level, tag, expr)                                        \
  ::autopn::util::log_if((level), (tag),                                    \
                         [&](std::ostringstream& os_) { os_ << expr; })
#define AUTOPN_LOG_INFO(tag, expr) \
  AUTOPN_LOG(::autopn::util::LogLevel::kInfo, (tag), expr)
#define AUTOPN_LOG_DEBUG(tag, expr) \
  AUTOPN_LOG(::autopn::util::LogLevel::kDebug, (tag), expr)
#define AUTOPN_LOG_ERROR(tag, expr) \
  AUTOPN_LOG(::autopn::util::LogLevel::kError, (tag), expr)
