#pragma once
// Resizable counting semaphore — the actuator's primitive (paper §VI).
//
// The actuator bounds the number of concurrent top-level transactions (t) and
// concurrent nested transactions per tree (c) by intercepting begin/commit.
// Unlike std::counting_semaphore, the capacity here can be changed at
// run-time: growing releases waiters immediately, shrinking lets in-flight
// holders drain naturally (no transaction is ever interrupted).

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace autopn::util {

class ResizableSemaphore {
 public:
  explicit ResizableSemaphore(std::size_t capacity) : capacity_(capacity) {}

  ResizableSemaphore(const ResizableSemaphore&) = delete;
  ResizableSemaphore& operator=(const ResizableSemaphore&) = delete;

  /// Blocks until a permit is available.
  void acquire() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [this] { return in_use_ < capacity_; });
    ++in_use_;
  }

  /// Non-blocking acquire; returns false if no permit is free.
  [[nodiscard]] bool try_acquire() {
    std::scoped_lock lock{mutex_};
    if (in_use_ >= capacity_) return false;
    ++in_use_;
    return true;
  }

  void release() {
    // Notify under the lock (see WaitGroup::done): a waiter that observes
    // the freed permit may own the semaphore's lifetime and destroy it as
    // soon as it can re-acquire the mutex.
    std::scoped_lock lock{mutex_};
    --in_use_;
    cv_.notify_one();
  }

  /// Changes the permit capacity. Growing wakes waiters; shrinking never
  /// revokes permits already held — in_use_ may temporarily exceed capacity
  /// until holders release.
  void set_capacity(std::size_t capacity) {
    std::scoped_lock lock{mutex_};
    capacity_ = capacity;
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const {
    std::scoped_lock lock{mutex_};
    return capacity_;
  }

  [[nodiscard]] std::size_t in_use() const {
    std::scoped_lock lock{mutex_};
    return in_use_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t capacity_ AUTOPN_GUARDED_BY(mutex_);
  std::size_t in_use_ AUTOPN_GUARDED_BY(mutex_) = 0;
};

/// RAII permit holder (CP.20: never plain acquire/release).
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(ResizableSemaphore& sem) : sem_(&sem) { sem_->acquire(); }
  ~SemaphoreGuard() {
    if (sem_ != nullptr) sem_->release();
  }

  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  SemaphoreGuard(SemaphoreGuard&& other) noexcept : sem_(other.sem_) {
    other.sem_ = nullptr;
  }
  SemaphoreGuard& operator=(SemaphoreGuard&&) = delete;

 private:
  ResizableSemaphore* sem_;
};

}  // namespace autopn::util
