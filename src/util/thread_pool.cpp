#include "util/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace autopn::util {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock{mutex_};
    stopping_ = true;
  }
  cv_.notify_all();
  // jthread joins in its destructor.
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock{mutex_};
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::pop_task(std::function<void()>& task, bool block) {
  std::unique_lock lock{mutex_};
  if (block) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  }
  if (queue_.empty()) return false;
  task = std::move(queue_.front());
  queue_.pop_front();
  return true;
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  if (!pop_task(task, /*block=*/false)) return false;
  task();
  return true;
}

void ThreadPool::worker_loop() {
  std::function<void()> task;
  while (pop_task(task, /*block=*/true)) {
    task();
    task = nullptr;
  }
}

void ThreadPool::run_and_wait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto wg = std::make_shared<WaitGroup>();
  wg->add(tasks.size());
  for (auto& t : tasks) {
    submit([wg, body = std::move(t)] {
      body();
      wg->done();
    });
  }
  // Help drain the queue while waiting (steal any queued task; helping others
  // still makes global progress and avoids deadlock when callers block inside
  // workers).
  using namespace std::chrono_literals;
  while (!wg->wait_for(200us)) {
    while (try_run_one()) {
    }
  }
}

}  // namespace autopn::util
