#pragma once
// Streaming and batch statistics used throughout AutoPN: the KPI monitor's
// coefficient-of-variation test (paper §VI), distance-from-optimum summaries
// in the benches (paper §VII), and the bagging ensemble's mean/variance
// aggregation (paper §V-B).

#include <cstddef>
#include <vector>

namespace autopn::util {

/// Welford's online algorithm for mean/variance; numerically stable and O(1)
/// per sample, suitable for per-commit updates on the STM hot path.
class RunningStats {
 public:
  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Coefficient of variation, stddev/mean; 0 when the mean is 0.
  [[nodiscard]] double cv() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation between closest ranks; `q` in [0,1].
/// Sorts a copy; intended for offline summaries, not hot paths.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Arithmetic mean of a vector; 0 for an empty vector.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Sample standard deviation of a vector; 0 for fewer than two values.
[[nodiscard]] double stddev_of(const std::vector<double>& values);

/// Fixed-bin histogram over [lo, hi); samples outside are clamped to the
/// boundary bins. Used by benches to summarize distance-from-optimum spreads.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Lower edge of the given bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace autopn::util
