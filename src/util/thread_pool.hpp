#pragma once
// Fixed-size worker pool executing queued tasks, plus a WaitGroup for
// fork/join over task batches. This is the substrate for the PN-STM's shared
// nested-transaction thread set P (paper §III-A): child transactions of all
// families are executed by this pool while the per-tree concurrency limit c
// is enforced separately by the actuator's semaphores.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace autopn::util {

/// Counts outstanding tasks; wait() blocks until the count returns to zero.
/// Mirrors Go's sync.WaitGroup, restricted to add-before-submit usage.
class WaitGroup {
 public:
  void add(std::size_t n = 1) {
    std::scoped_lock lock{mutex_};
    pending_ += n;
  }

  void done() {
    // Notify while holding the mutex: the waiter may destroy this WaitGroup
    // the moment it observes pending_ == 0 (it can wake through a timed
    // re-check without ever consuming the notification), so signalling after
    // unlocking would touch a potentially destroyed condition variable.
    // Notifying under the lock makes destruction safe: the waiter cannot
    // re-acquire the mutex — and therefore cannot return and destroy us —
    // until this critical section is complete.
    std::scoped_lock lock{mutex_};
    if (--pending_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock{mutex_};
    cv_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Waits up to `timeout`; returns true once the count reached zero. Used by
  /// helpers that interleave waiting with draining a task queue.
  template <typename Rep, typename Period>
  [[nodiscard]] bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock{mutex_};
    return cv_.wait_for(lock, timeout, [this] { return pending_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ AUTOPN_GUARDED_BY(mutex_) = 0;
};

/// Fixed worker pool over a FIFO queue. Tasks must not throw (wrap anything
/// that can fail); exceptions escaping a task terminate, per CP.42.
class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution by any worker.
  void submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is immediately
  /// available; returns false when the queue is empty. This is the "helping"
  /// primitive: a thread blocked on a fork/join drains the queue instead of
  /// idling, which keeps nested spawns deadlock-free even on a single-worker
  /// pool.
  bool try_run_one();

  /// Runs every task in `tasks` on the pool and blocks until all complete,
  /// helping to drain the queue while waiting.
  void run_and_wait(std::vector<std::function<void()>> tasks);

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

 private:
  /// Pops one task; returns false if the pool is stopping and the queue is
  /// empty. `block` selects waiting vs. immediate return on an empty queue.
  bool pop_task(std::function<void()>& task, bool block);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ AUTOPN_GUARDED_BY(mutex_);
  bool stopping_ AUTOPN_GUARDED_BY(mutex_) = false;
  std::vector<std::jthread> threads_;
};

}  // namespace autopn::util
