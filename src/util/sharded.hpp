#pragma once
// Cache-line padding and sharded (striped) counters — the building blocks for
// removing serialization points from hot paths. A ShardedCounter spreads
// increments over per-shard cache lines indexed by a stable per-thread token,
// so concurrent writers never bounce one line between cores; reads aggregate
// across shards (exact with respect to completed adds).

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#if defined(AUTOPN_MC) && AUTOPN_MC
#include "mc/scheduler.hpp"
#endif

namespace autopn::util {

/// Upper bound for destructive interference. std::hardware_destructive_
/// interference_size is still flaky across toolchains; 64 is correct for every
/// target we build on (and merely wasteful, never wrong, elsewhere).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value in its own cache line so neighbouring array elements never
/// false-share.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};
};

/// Small, stable, dense per-thread token for shard selection. Dense tokens
/// (0, 1, 2, ...) beat hashed thread ids: with S shards and <= S threads every
/// thread lands on its own shard instead of colliding at random.
[[nodiscard]] inline std::size_t thread_shard_token() noexcept {
#if defined(AUTOPN_MC) && AUTOPN_MC
  // Under the model checker the token must be a pure function of the model
  // thread id: the process-global counter below keeps growing across
  // schedules (every schedule spawns fresh OS threads), so shard/slot
  // selection would drift between a recorded failure and its --replay.
  if (mc::Execution* ex = mc::Execution::current(); ex != nullptr) {
    return static_cast<std::size_t>(ex->self());
  }
#endif
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t token =
      next.fetch_add(1, std::memory_order_relaxed);
  return token;
}

/// Rounds up to a power of two (minimum 1).
[[nodiscard]] constexpr std::size_t ceil_pow2(std::size_t n) noexcept {
  return std::bit_ceil(n == 0 ? std::size_t{1} : n);
}

/// Striped monotone counter. add() is one relaxed fetch_add on a private
/// cache line; load() sums the shards (exact for all adds that happened-before
/// the read; concurrent adds may or may not be included, exactly as with a
/// single relaxed atomic).
class ShardedCounter {
 public:
  explicit ShardedCounter(std::size_t shards = default_shards())
      : shards_(ceil_pow2(shards)), mask_(shards_.size() - 1) {}

  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_shard_token() & mask_].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t load() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Zeroes every shard. Adds racing with a reset may survive it (the same
  /// contract a single relaxed store-0 reset has).
  void reset() noexcept {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }

  /// Default shard count: enough stripes that a full machine's threads rarely
  /// collide, bounded so per-counter memory stays trivial.
  [[nodiscard]] static std::size_t default_shards() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t want = ceil_pow2(hw == 0 ? 8 : hw * 2);
    return want < 8 ? 8 : (want > 64 ? 64 : want);
  }

 private:
  std::vector<Padded<std::atomic<std::uint64_t>>> shards_;
  std::size_t mask_;
};

}  // namespace autopn::util
