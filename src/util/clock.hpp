#pragma once
// Time sources. The KPI monitor (paper §VI) is written against the abstract
// Clock interface so the same policy code runs both live (WallClock, inside
// the STM runtime) and in virtual time (VirtualClock, driven by sim::EventSim
// for the Fig 7 monitoring experiments).

#include <atomic>
#include <chrono>

namespace autopn::util {

/// Monotonic time source measured in seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual double now() const = 0;
};

/// Wraps std::chrono::steady_clock.
class WallClock final : public Clock {
 public:
  WallClock() : origin_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double>(elapsed).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Manually advanced clock for discrete-event simulation. Thread-safe reads;
/// advancing is the simulator's responsibility (single driver thread).
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] double now() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// Moves time forward by `dt` seconds (must be >= 0).
  void advance(double dt) {
    now_.store(now_.load(std::memory_order_relaxed) + dt, std::memory_order_release);
  }

  /// Jumps to an absolute time (must not move backwards).
  void set(double t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<double> now_{0.0};
};

/// RAII stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}

  [[nodiscard]] double elapsed() const { return clock_->now() - start_; }
  void restart() { start_ = clock_->now(); }

 private:
  const Clock* clock_;
  double start_;
};

}  // namespace autopn::util
