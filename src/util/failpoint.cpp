#include "util/failpoint.hpp"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace autopn::util {

namespace {

/// Deterministic-per-process probability stream shared by every failpoint:
/// one atomic splitmix64 state, so firing decisions cost one relaxed RMW and
/// never touch thread-local setup.
double next_uniform() {
  static std::atomic<std::uint64_t> state{0x8f1e3a2bc45d9701ULL};
  std::uint64_t z = state.fetch_add(0x9e3779b97f4a7c15ULL,
                                    std::memory_order_relaxed) +
                    0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// Parses "500us" / "2ms" / "1s" / bare "250" (microseconds) into µs.
std::uint64_t parse_duration_us(std::string_view text) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[digits])) != 0 ||
          text[digits] == '.')) {
    ++digits;
  }
  if (digits == 0) throw std::invalid_argument{"failpoint delay: no digits"};
  const double value = std::stod(std::string{text.substr(0, digits)});
  const std::string_view unit = text.substr(digits);
  double scale = 1.0;  // bare numbers are microseconds
  if (unit == "us" || unit.empty()) {
    scale = 1.0;
  } else if (unit == "ms") {
    scale = 1e3;
  } else if (unit == "s") {
    scale = 1e6;
  } else {
    throw std::invalid_argument{"failpoint delay: unknown unit '" +
                                std::string{unit} + "'"};
  }
  return static_cast<std::uint64_t>(value * scale);
}

}  // namespace

FailpointSpec parse_failpoint_spec(std::string_view text) {
  FailpointSpec spec;
  std::string_view kind = text;
  std::string_view args;
  if (const auto open = text.find('('); open != std::string_view::npos) {
    if (text.back() != ')') {
      throw std::invalid_argument{"failpoint spec: missing ')' in '" +
                                  std::string{text} + "'"};
    }
    kind = text.substr(0, open);
    args = text.substr(open + 1, text.size() - open - 2);
  }
  if (kind == "error") {
    spec.mode = FailpointMode::kError;
  } else if (kind == "delay" || kind == "sleep") {
    spec.mode = FailpointMode::kDelay;
  } else if (kind == "off") {
    spec.mode = FailpointMode::kOff;
  } else {
    throw std::invalid_argument{"failpoint spec: unknown kind '" +
                                std::string{kind} + "'"};
  }
  while (!args.empty()) {
    const auto comma = args.find(',');
    const std::string_view arg = args.substr(0, comma);
    args = comma == std::string_view::npos ? std::string_view{}
                                           : args.substr(comma + 1);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos || eq + 1 >= arg.size()) {
      throw std::invalid_argument{"failpoint spec: malformed arg '" +
                                  std::string{arg} + "'"};
    }
    const std::string_view key = arg.substr(0, eq);
    const std::string value{arg.substr(eq + 1)};
    if (key == "p") {
      spec.probability = std::stod(value);
      if (spec.probability < 0.0 || spec.probability > 1.0) {
        throw std::invalid_argument{"failpoint spec: p outside [0,1]"};
      }
    } else if (key == "n") {
      spec.max_fires = std::stoll(value);
    } else if (key == "d") {
      spec.delay_us = parse_duration_us(value);
    } else {
      throw std::invalid_argument{"failpoint spec: unknown arg '" +
                                  std::string{key} + "'"};
    }
  }
  if (spec.mode == FailpointMode::kDelay && spec.delay_us == 0) {
    throw std::invalid_argument{"failpoint spec: delay mode needs d=<time>"};
  }
  return spec;
}

// ---- Failpoint -------------------------------------------------------------

Failpoint::Failpoint(std::string_view name) : name_(name) {
  FailpointRegistry::instance().register_site(this);
}

Failpoint::~Failpoint() { FailpointRegistry::instance().unregister_site(this); }

void Failpoint::apply(const FailpointSpec& spec) {
  std::scoped_lock lock{mutex_};
  spec_ = spec;
  remaining_ = spec.max_fires;
  armed_.store(spec.mode != FailpointMode::kOff, std::memory_order_relaxed);
}

bool Failpoint::evaluate_slow() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  FailpointMode mode;
  std::uint64_t delay_us;
  {
    std::scoped_lock lock{mutex_};
    if (spec_.mode == FailpointMode::kOff) return false;
    if (spec_.probability < 1.0 && next_uniform() >= spec_.probability) {
      return false;
    }
    if (remaining_ == 0) return false;
    if (remaining_ > 0 && --remaining_ == 0) {
      // Budget exhausted by this fire: self-disarm so one-shot faults cannot
      // recur even if evaluations race past the decrement.
      armed_.store(false, std::memory_order_relaxed);
    }
    mode = spec_.mode;
    delay_us = spec_.delay_us;
  }
  fires_.fetch_add(1, std::memory_order_relaxed);
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds{delay_us});
  }
  return mode == FailpointMode::kError;
}

// ---- FailpointRegistry -----------------------------------------------------

FailpointRegistry& FailpointRegistry::instance() {
  // Leaked: failpoint sites are function-local statics whose destructors run
  // at exit in unknowable order relative to any non-leaked singleton.
  static auto* registry = new FailpointRegistry;
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  if (const char* env = std::getenv("AUTOPN_FAILPOINTS");
      env != nullptr && *env != '\0') {
    arm_from_string(env);
  }
}

void FailpointRegistry::register_site(Failpoint* site) {
  FailpointSpec pending_spec;
  bool has_pending = false;
  {
    std::scoped_lock lock{mutex_};
    sites_[site->name()] = site;
    if (auto it = pending_.find(site->name()); it != pending_.end()) {
      pending_spec = it->second;
      has_pending = true;
      pending_.erase(it);
    }
  }
  if (has_pending) site->apply(pending_spec);
}

void FailpointRegistry::unregister_site(Failpoint* site) {
  std::scoped_lock lock{mutex_};
  if (auto it = sites_.find(site->name());
      it != sites_.end() && it->second == site) {
    sites_.erase(it);
  }
}

void FailpointRegistry::arm(const std::string& name, FailpointSpec spec) {
  Failpoint* site = nullptr;
  {
    std::scoped_lock lock{mutex_};
    if (auto it = sites_.find(name); it != sites_.end()) {
      site = it->second;
    } else {
      pending_[name] = spec;
    }
  }
  if (site != nullptr) site->apply(spec);
}

void FailpointRegistry::disarm(const std::string& name) {
  arm(name, FailpointSpec{});
  std::scoped_lock lock{mutex_};
  pending_.erase(name);
}

void FailpointRegistry::disarm_all() {
  std::vector<Failpoint*> sites;
  {
    std::scoped_lock lock{mutex_};
    pending_.clear();
    sites.reserve(sites_.size());
    for (auto& [name, site] : sites_) sites.push_back(site);
  }
  for (Failpoint* site : sites) site->apply(FailpointSpec{});
}

void FailpointRegistry::arm_from_string(const std::string& specs) {
  std::string_view rest{specs};
  while (!rest.empty()) {
    const auto semi = rest.find(';');
    const std::string_view one = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (one.empty()) continue;
    const auto eq = one.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= one.size()) {
      throw std::invalid_argument{"failpoint arming: expected name=spec, got '" +
                                  std::string{one} + "'"};
    }
    arm(std::string{one.substr(0, eq)},
        parse_failpoint_spec(one.substr(eq + 1)));
  }
}

std::uint64_t FailpointRegistry::fire_count(const std::string& name) const {
  std::scoped_lock lock{mutex_};
  if (auto it = sites_.find(name); it != sites_.end()) {
    return it->second->fire_count();
  }
  return 0;
}

std::vector<FailpointRegistry::Entry> FailpointRegistry::list() const {
  std::scoped_lock lock{mutex_};
  std::vector<Entry> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    out.push_back(Entry{name, site->armed_.load(std::memory_order_relaxed),
                        site->fire_count(), site->hit_count()});
  }
  return out;
}

}  // namespace autopn::util
