#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace autopn::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument{"table needs at least one column"};
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument{"row arity does not match header"};
  }
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      if (i + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    rule.append(widths[i], '-');
    if (i + 1 < widths.size()) rule.append("  ");
  }
  out << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    const bool needs_quote =
        f.find_first_of(",\"\n") != std::string::npos;
    if (needs_quote) {
      *out_ << '"';
      for (char ch : f) {
        if (ch == '"') *out_ << '"';
        *out_ << ch;
      }
      *out_ << '"';
    } else {
      *out_ << f;
    }
    if (i + 1 < fields.size()) *out_ << ',';
  }
  *out_ << '\n';
}

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

}  // namespace autopn::util
