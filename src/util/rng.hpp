#pragma once
// Deterministic pseudo-random number generation for AutoPN.
//
// Every stochastic component in the library (optimizers, noise models,
// workload generators) takes an explicit 64-bit seed so that experiments are
// reproducible run-to-run. The generator is xoshiro256**, seeded through
// splitmix64 as recommended by its authors; it is small, fast, and of far
// higher quality than std::minstd_rand while avoiding the heavy state of
// std::mt19937_64.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace autopn::util {

/// splitmix64 step; used for seed expansion and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the convenience members below are
/// preferred inside the library (they are portable across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
    has_gauss_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t uniform_index(std::size_t n) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  [[nodiscard]] double gaussian() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept;

  /// Exponential deviate with the given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform_index(i)]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) noexcept {
    return items[uniform_index(items.size())];
  }

  /// Derives an independent child generator; used to give each parallel task
  /// its own stream without sharing mutable state.
  [[nodiscard]] Rng split() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_gauss_ = 0.0;
  bool has_gauss_ = false;
};

}  // namespace autopn::util
