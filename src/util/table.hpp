#pragma once
// Plain-text table and CSV emitters used by the bench harness to print the
// rows/series of each paper figure in a reproducible, diff-friendly format.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace autopn::util {

/// Column-aligned text table. Collects rows of strings and renders with
/// per-column width alignment. Numbers should be pre-formatted by callers
/// (see fmt_double) so that benches control precision explicitly.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Renders with two-space column separation.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// CSV writer with minimal quoting (fields containing comma/quote/newline).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
};

/// Formats a double with fixed precision, trimming to a compact form.
[[nodiscard]] std::string fmt_double(double value, int precision = 3);

/// Formats a fraction as a percentage string, e.g. 0.218 -> "21.8%".
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

}  // namespace autopn::util
