#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autopn::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / std::abs(m);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument{"percentile of empty vector"};
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev_of(const std::vector<double>& values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument{"bad histogram bounds"};
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

}  // namespace autopn::util
