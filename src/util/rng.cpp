#include "util/rng.hpp"

#include <cmath>

namespace autopn::util {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

std::size_t Rng::uniform_index(std::size_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling with rejection; unbiased.
  const auto bound = static_cast<std::uint64_t>(n);
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::size_t>(m >> 64);
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::gaussian() noexcept {
  if (has_gauss_) {
    has_gauss_ = false;
    return cached_gauss_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gauss_ = v * factor;
  has_gauss_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double Rng::exponential(double rate) noexcept {
  // -log(1 - U) avoids log(0) since uniform() < 1.
  return -std::log1p(-uniform()) / rate;
}

}  // namespace autopn::util
