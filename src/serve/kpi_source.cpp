#include "serve/kpi_source.hpp"

namespace autopn::serve {

ServiceKpiSource::ServiceKpiSource(std::size_t stripes)
    : recorder_(stripes),
      queue_wait_(stripes),
      service_(stripes),
      buffers_(util::ceil_pow2(stripes == 0 ? 1 : stripes)),
      mask_(buffers_.size() - 1) {
  tenants_.reserve(kTenantSlots);
  for (std::size_t i = 0; i < kTenantSlots; ++i) {
    tenants_.push_back(std::make_unique<LatencyRecorder>(4));
  }
}

void ServiceKpiSource::record(double latency_seconds, std::uint16_t tenant_id) {
  recorder_.record(latency_seconds);
  tenants_[tenant_slot(tenant_id)]->record(latency_seconds);
  completed_.add(1);
  auto& buffer = buffers_[util::thread_shard_token() & mask_].value;
  std::scoped_lock lock{buffer.mutex};
  if (buffer.samples.size() < kMaxBufferedSamples) {
    buffer.samples.push_back(latency_seconds);
  }
}

void ServiceKpiSource::record_stages(double queue_wait_seconds,
                                     double service_seconds) {
  queue_wait_.record(queue_wait_seconds);
  service_.record(service_seconds);
}

std::vector<double> ServiceKpiSource::drain_latencies() {
  std::vector<double> all;
  for (auto& padded : buffers_) {
    auto& buffer = padded.value;
    std::scoped_lock lock{buffer.mutex};
    all.insert(all.end(), buffer.samples.begin(), buffer.samples.end());
    buffer.samples.clear();
  }
  return all;
}

double ServiceKpiSource::completion_rate(double now) const {
  const double start = start_time_.load(std::memory_order_relaxed);
  const double elapsed = now - start;
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(completed_.load()) / elapsed;
}

}  // namespace autopn::serve
