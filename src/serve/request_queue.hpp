#pragma once
// Bounded MPMC admission queue with watermark load-shedding — the front door
// of the serving engine. Producers (load generators, eventually a network
// front-end) push requests; the engine's workers pop them FIFO. When the
// backlog reaches the shed watermark the queue rejects new requests instead
// of queueing them into an ever-growing latency bomb: the caller receives a
// shed decision and (from the engine) a retry-after hint. close() stops
// admission but lets poppers drain the backlog — the shutdown path never
// drops an admitted request.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::serve {

namespace sync = autopn::sync;

/// How one admitted request ended.
enum class RequestOutcome : std::uint8_t {
  kCompleted,  ///< handler ran to completion (latency recorded)
  kExpired,    ///< deadline passed before or during execution
  kFailed,     ///< handler threw
};

/// Delivered to `Request::on_complete` exactly once per admitted request —
/// the network front-end turns this into the wire response, so it carries
/// everything a protocol edge needs: verdict, measured latency, tenant.
struct RequestResult {
  RequestOutcome outcome = RequestOutcome::kCompleted;
  double latency = 0.0;  ///< enqueue→completion seconds (all outcomes)
  std::uint16_t tenant_id = 0;
};

/// Completion hook; fires on the worker after execution — even when the
/// handler throws or the deadline expired — so callers (closed-loop clients,
/// socket connections) never hang on a lost request.
using CompletionFn = std::function<void(const RequestResult&)>;

/// One unit of admitted work. `work` runs on an engine worker (empty means
/// the engine's default handler).
struct Request {
  std::function<void(util::Rng&)> work;
  CompletionFn on_complete;
  double enqueue_time = 0.0;  ///< clock timestamp at admission
  /// Absolute clock time after which the request must not start executing
  /// (workers drop it as expired at dequeue, and an in-flight transaction
  /// retry loop gives up via ScopedDeadline). 0 = no deadline.
  double deadline = 0.0;
  std::uint64_t id = 0;
  /// Originating tenant — selects the per-tenant latency recorder so
  /// noisy-neighbour effects are visible per SLO, not only in the global mix.
  std::uint16_t tenant_id = 0;
};

class RequestQueue {
 public:
  enum class Admit {
    kAdmitted,  ///< queued; a worker will execute it
    kShed,      ///< backlog at or above the watermark — load-shed
    kClosed,    ///< queue closed (engine draining/stopped)
  };

  /// `shed_watermark` = 0 derives 3/4 of capacity; it is clamped to
  /// [1, capacity].
  RequestQueue(std::size_t capacity, std::size_t shed_watermark = 0);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  [[nodiscard]] Admit try_push(Request request);

  /// Blocks for the next request; std::nullopt once the queue is closed and
  /// fully drained.
  [[nodiscard]] std::optional<Request> pop();

  /// Stops admission and wakes all poppers; already-queued requests remain
  /// poppable (drain semantics).
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t watermark() const noexcept { return watermark_; }

  // Admission counters (offered == admitted + shed; kClosed counts as shed).
  [[nodiscard]] std::uint64_t offered() const;
  [[nodiscard]] std::uint64_t admitted() const;
  [[nodiscard]] std::uint64_t shed() const;

 private:
  const std::size_t capacity_;
  const std::size_t watermark_;

  mutable sync::Mutex mutex_;
  sync::CondVar cv_;
  sync::Shared<std::deque<Request>> queue_ AUTOPN_GUARDED_BY(mutex_);
  sync::Shared<bool> closed_ AUTOPN_GUARDED_BY(mutex_) = false;
  sync::Shared<std::uint64_t> offered_ AUTOPN_GUARDED_BY(mutex_) = 0;
  sync::Shared<std::uint64_t> admitted_ AUTOPN_GUARDED_BY(mutex_) = 0;
  sync::Shared<std::uint64_t> shed_ AUTOPN_GUARDED_BY(mutex_) = 0;
};

}  // namespace autopn::serve
