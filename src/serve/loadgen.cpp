#include "serve/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/thread_pool.hpp"

namespace autopn::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double>(std::max(seconds, 0.0)));
}

double elapsed_seconds(SteadyClock::time_point since) {
  return std::chrono::duration<double>(SteadyClock::now() - since).count();
}

}  // namespace

OpenLoopResult run_open_loop(ServeEngine& engine, const OpenLoopParams& params) {
  PoissonArrivals arrivals{params.rate, params.seed};
  OpenLoopResult result;
  const auto start = SteadyClock::now();
  const auto deadline = start + to_duration(params.duration);
  auto next_arrival = start;
  double depth_sum = 0.0;
  for (;;) {
    next_arrival += to_duration(arrivals.next_gap());
    if (next_arrival >= deadline) break;
    // When the generator falls behind schedule (offered rate above what one
    // thread can submit), sleep_until returns immediately and arrivals
    // degrade to back-to-back — still an open loop, just rate-capped.
    std::this_thread::sleep_until(next_arrival);
    const SubmitResult r = engine.submit();
    ++result.offered;
    if (r.admitted) {
      ++result.admitted;
    } else {
      ++result.shed;
    }
    depth_sum += static_cast<double>(r.queue_depth);
    result.max_queue_depth = std::max(result.max_queue_depth, r.queue_depth);
  }
  result.duration = elapsed_seconds(start);
  result.mean_queue_depth =
      result.offered > 0 ? depth_sum / static_cast<double>(result.offered) : 0.0;
  return result;
}

ClosedLoopResult run_closed_loop(ServeEngine& engine,
                                 const ClosedLoopParams& params) {
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  const auto start = SteadyClock::now();
  const auto deadline = start + to_duration(params.duration);
  {
    std::vector<std::jthread> clients;
    clients.reserve(params.clients);
    for (std::size_t i = 0; i < params.clients; ++i) {
      clients.emplace_back([&, i] {
        util::Rng rng{params.seed + 7919 * (i + 1)};
        while (SteadyClock::now() < deadline) {
          util::WaitGroup done;
          done.add(1);
          const SubmitResult r =
              engine.submit({}, [&done](const RequestResult&) { done.done(); });
          issued.fetch_add(1, std::memory_order_relaxed);
          if (r.admitted) {
            done.wait();
            completed.fetch_add(1, std::memory_order_relaxed);
          } else {
            shed.fetch_add(1, std::memory_order_relaxed);
            // Honor the engine's backoff hint, bounded so a client never
            // sleeps past the end of the run by much.
            std::this_thread::sleep_for(
                to_duration(std::min(r.retry_after, 0.050)));
          }
          if (params.think_time > 0.0) {
            std::this_thread::sleep_for(
                to_duration(rng.exponential(1.0 / params.think_time)));
          }
        }
      });
    }
  }  // join
  ClosedLoopResult result;
  result.issued = issued.load(std::memory_order_relaxed);
  result.completed = completed.load(std::memory_order_relaxed);
  result.shed = shed.load(std::memory_order_relaxed);
  result.duration = elapsed_seconds(start);
  return result;
}

}  // namespace autopn::serve
