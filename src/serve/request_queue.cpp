#include "serve/request_queue.hpp"

#include <algorithm>

#include "util/failpoint.hpp"

namespace autopn::serve {

namespace {
std::size_t derive_watermark(std::size_t capacity, std::size_t watermark) {
  if (watermark == 0) watermark = capacity - capacity / 4;
  return std::clamp<std::size_t>(watermark, 1, capacity);
}
}  // namespace

RequestQueue::RequestQueue(std::size_t capacity, std::size_t shed_watermark)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      watermark_(derive_watermark(capacity_, shed_watermark)) {}

RequestQueue::Admit RequestQueue::try_push(Request request) {
  // Chaos hook (delay mode): hold the producer between its admission
  // decision upstream and the queue lock, widening the submit/close race.
  AUTOPN_FAILPOINT("serve.queue.push");
  sync::ScopedLock lock{mutex_};
  ++offered_.write();
  if (closed_.read()) {
    ++shed_.write();
    return Admit::kClosed;
  }
  if (queue_.read().size() >= watermark_) {
    ++shed_.write();
    return Admit::kShed;
  }
  queue_.write().push_back(std::move(request));
  ++admitted_.write();
  cv_.notify_one();
  return Admit::kAdmitted;
}

std::optional<Request> RequestQueue::pop() {
  sync::UniqueLock lock{mutex_};
  cv_.wait(lock, [this] { return closed_.read() || !queue_.read().empty(); });
  if (queue_.read().empty()) return std::nullopt;
  Request request = std::move(queue_.write().front());
  queue_.write().pop_front();
  return request;
}

void RequestQueue::close() {
  // Chaos hook (delay mode): stall shutdown before admission stops, letting
  // producers keep racing pushes against the imminent close.
  AUTOPN_FAILPOINT("serve.queue.close");
  sync::ScopedLock lock{mutex_};
  closed_.write() = true;
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  sync::ScopedLock lock{mutex_};
  return closed_.read();
}

std::size_t RequestQueue::depth() const {
  sync::ScopedLock lock{mutex_};
  return queue_.read().size();
}

std::uint64_t RequestQueue::offered() const {
  sync::ScopedLock lock{mutex_};
  return offered_.read();
}

std::uint64_t RequestQueue::admitted() const {
  sync::ScopedLock lock{mutex_};
  return admitted_.read();
}

std::uint64_t RequestQueue::shed() const {
  sync::ScopedLock lock{mutex_};
  return shed_.read();
}

}  // namespace autopn::serve
