#include "serve/request_queue.hpp"

#include <algorithm>

#include "util/failpoint.hpp"

namespace autopn::serve {

namespace {
std::size_t derive_watermark(std::size_t capacity, std::size_t watermark) {
  if (watermark == 0) watermark = capacity - capacity / 4;
  return std::clamp<std::size_t>(watermark, 1, capacity);
}
}  // namespace

RequestQueue::RequestQueue(std::size_t capacity, std::size_t shed_watermark)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      watermark_(derive_watermark(capacity_, shed_watermark)) {}

RequestQueue::Admit RequestQueue::try_push(Request request) {
  // Chaos hook (delay mode): hold the producer between its admission
  // decision upstream and the queue lock, widening the submit/close race.
  AUTOPN_FAILPOINT("serve.queue.push");
  std::scoped_lock lock{mutex_};
  ++offered_;
  if (closed_) {
    ++shed_;
    return Admit::kClosed;
  }
  if (queue_.size() >= watermark_) {
    ++shed_;
    return Admit::kShed;
  }
  queue_.push_back(std::move(request));
  ++admitted_;
  cv_.notify_one();
  return Admit::kAdmitted;
}

std::optional<Request> RequestQueue::pop() {
  std::unique_lock lock{mutex_};
  cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;
  Request request = std::move(queue_.front());
  queue_.pop_front();
  return request;
}

void RequestQueue::close() {
  // Chaos hook (delay mode): stall shutdown before admission stops, letting
  // producers keep racing pushes against the imminent close.
  AUTOPN_FAILPOINT("serve.queue.close");
  std::scoped_lock lock{mutex_};
  closed_ = true;
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::scoped_lock lock{mutex_};
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::scoped_lock lock{mutex_};
  return queue_.size();
}

std::uint64_t RequestQueue::offered() const {
  std::scoped_lock lock{mutex_};
  return offered_;
}

std::uint64_t RequestQueue::admitted() const {
  std::scoped_lock lock{mutex_};
  return admitted_;
}

std::uint64_t RequestQueue::shed() const {
  std::scoped_lock lock{mutex_};
  return shed_;
}

}  // namespace autopn::serve
