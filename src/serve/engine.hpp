#pragma once
// ServeEngine — the request-serving front of the PN-STM. Producers submit
// requests through the bounded admission queue (backpressure + load-shedding
// with a retry-after hint); a pool of worker threads executes each admitted
// request as a top-level parallel-nesting transaction — the workload handler
// calls Stm::run_top internally, so every request passes through the
// actuator's t/c gates and the AutoPN tuner shapes live service parallelism.
// Per-request latency (enqueue→commit) lands in the ServiceKpiSource, which
// feeds the TuningController real latency KPIs and the engine's SLO report.
//
// Dataflow:
//   loadgen/clients → submit() → RequestQueue → workers → Stm.run_top
//        → commit → ServiceKpiSource → TuningController → Actuator → gates

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "serve/kpi_source.hpp"
#include "serve/request_queue.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::serve {

/// A request handler: executes one unit of application work, typically one
/// or more top-level transactions on the engine's Stm.
using RequestHandler = std::function<void(util::Rng&)>;

struct ServeConfig {
  std::size_t workers = 4;
  std::size_t queue_capacity = 256;
  /// Depth at which admission starts shedding; 0 derives 3/4 of capacity.
  std::size_t shed_watermark = 0;
  std::uint64_t seed = 7;
  /// Per-request deadline, seconds from submit; 0 = none. An expired request
  /// is dropped at dequeue without executing, and a request whose deadline
  /// passes mid-retry gives up through the transaction layer's ambient
  /// ScopedDeadline — either way it counts as `expired`, never `completed`.
  double request_timeout = 0.0;
};

/// Outcome of one submit().
struct SubmitResult {
  bool admitted = false;
  /// Backoff hint (seconds) when shed: expected time for the backlog above
  /// the watermark to drain at the observed service rate.
  double retry_after = 0.0;
  std::size_t queue_depth = 0;
};

/// Cumulative service statistics. Accounting invariant (exact after
/// drain_and_stop): offered == admitted + shed and
/// admitted == completed + expired + failed — no request is ever lost.
struct ServeReport {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;  ///< deadline passed before/during execution
  std::uint64_t failed = 0;  ///< handler threw (request counted, no latency)
  std::size_t queue_depth = 0;
  double shed_fraction = 0.0;
  /// Backoff a request shed at the current depth would be told to wait —
  /// the same clamped [1 ms, 5 s] hint SubmitResult carries at shed time,
  /// surfaced continuously so SLO reports and the wire can see it.
  double retry_after_hint = 0.0;
  LatencyRecorder::Summary latency;  ///< enqueue→commit, seconds
  /// Per-stage breakdown of the end-to-end latency (completed requests):
  /// latency ≈ queue_wait + service. These are the production counters the
  /// compositional model fits its queue and service submodels from
  /// (DESIGN.md §14) — no bench run needed.
  LatencyRecorder::Summary queue_wait;  ///< enqueue→dequeue, seconds
  LatencyRecorder::Summary service;     ///< dequeue→commit, seconds

  /// Per-tenant latency (only slots that completed ≥ 1 request). `tenant`
  /// is the KPI source's slot index (tenant id modulo its slot count).
  struct TenantLatency {
    std::uint16_t tenant = 0;
    LatencyRecorder::Summary latency;
  };
  std::vector<TenantLatency> tenants;
};

class ServeEngine {
 public:
  /// The engine borrows the Stm and clock (both must outlive it) and spawns
  /// its workers immediately.
  ServeEngine(stm::Stm& stm, RequestHandler default_handler,
              const util::Clock& clock, ServeConfig config = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Submits a request for the default handler.
  SubmitResult submit() { return submit({}, {}); }

  /// Submits custom work (empty = default handler) with an optional
  /// completion hook (runs on the worker after execution — even when the
  /// handler throws — so closed-loop clients never hang) on behalf of
  /// `tenant_id` (0 = the anonymous/default tenant). `timeout_seconds`
  /// overrides the engine-wide request deadline for this request (the wire
  /// protocol carries client deadlines); 0 keeps the configured default,
  /// and the effective deadline is the tighter of the two.
  SubmitResult submit(RequestHandler work, CompletionFn on_complete,
                      std::uint16_t tenant_id = 0,
                      double timeout_seconds = 0.0);

  /// Stops admission, lets the workers drain the backlog, and joins them.
  /// After return no worker is running and every admitted request's
  /// on_complete has fired — a network front-end can rely on this to drain
  /// posted responses deterministically. Idempotent; the destructor calls
  /// it.
  void drain_and_stop();

  [[nodiscard]] ServeReport report() const;

  [[nodiscard]] ServiceKpiSource& kpi_source() noexcept { return kpi_; }
  [[nodiscard]] const RequestQueue& queue() const noexcept { return queue_; }
  [[nodiscard]] stm::Stm& stm() noexcept { return *stm_; }

 private:
  void worker_loop(std::size_t index);
  [[nodiscard]] double retry_after_hint(std::size_t depth) const;

  stm::Stm* stm_;
  RequestHandler default_handler_;
  const util::Clock* clock_;
  ServeConfig config_;

  RequestQueue queue_;
  ServiceKpiSource kpi_;
  util::ShardedCounter failed_;
  util::ShardedCounter expired_;
  std::atomic<std::uint64_t> next_id_{0};

  std::mutex stop_mutex_;  ///< serializes drain_and_stop against itself
  std::vector<std::jthread> workers_ AUTOPN_GUARDED_BY(stop_mutex_);
};

}  // namespace autopn::serve
