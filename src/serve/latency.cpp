#include "serve/latency.hpp"

#include <algorithm>
#include <cmath>

namespace autopn::serve {

LatencyRecorder::LatencyRecorder(std::size_t stripes)
    : stripes_(util::ceil_pow2(stripes == 0 ? 1 : stripes)),
      mask_(stripes_.size() - 1) {}

std::size_t LatencyRecorder::bin_of(double seconds) noexcept {
  if (!(seconds > kMinLatency)) return 0;  // also catches NaN
  const double decades = std::log10(seconds / kMinLatency);
  const auto bin = static_cast<long>(decades * kBinsPerDecade);
  return std::min(static_cast<std::size_t>(std::max(bin, 0L)), kBins - 1);
}

double LatencyRecorder::bin_value(std::size_t bin) noexcept {
  return kMinLatency *
         std::pow(10.0, (static_cast<double>(bin) + 0.5) / kBinsPerDecade);
}

void LatencyRecorder::record(double seconds) noexcept {
  auto& stripe = stripes_[util::thread_shard_token() & mask_].value;
  stripe.bins[bin_of(seconds)].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  const double nanos = std::max(seconds, 0.0) * 1e9;
  stripe.sum_nanos.fetch_add(static_cast<std::uint64_t>(nanos),
                             std::memory_order_relaxed);
}

std::uint64_t LatencyRecorder::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    total += stripe.value.count.load(std::memory_order_relaxed);
  }
  return total;
}

LatencyRecorder::Summary LatencyRecorder::summary() const {
  std::array<std::uint64_t, kBins> bins{};
  Summary out;
  std::uint64_t sum_nanos = 0;
  for (const auto& stripe : stripes_) {
    out.count += stripe.value.count.load(std::memory_order_relaxed);
    sum_nanos += stripe.value.sum_nanos.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kBins; ++b) {
      bins[b] += stripe.value.bins[b].load(std::memory_order_relaxed);
    }
  }
  if (out.count == 0) return out;
  out.mean = static_cast<double>(sum_nanos) * 1e-9 / static_cast<double>(out.count);
  const auto percentile_of = [&](double q) {
    // Smallest bin whose cumulative count covers rank ceil(q * count).
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(out.count))));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBins; ++b) {
      cumulative += bins[b];
      if (cumulative >= rank) return bin_value(b);
    }
    return bin_value(kBins - 1);
  };
  out.p50 = percentile_of(0.50);
  out.p95 = percentile_of(0.95);
  out.p99 = percentile_of(0.99);
  return out;
}

void LatencyRecorder::reset() noexcept {
  for (auto& stripe : stripes_) {
    stripe.value.count.store(0, std::memory_order_relaxed);
    stripe.value.sum_nanos.store(0, std::memory_order_relaxed);
    for (auto& bin : stripe.value.bins) bin.store(0, std::memory_order_relaxed);
  }
}

}  // namespace autopn::serve
