#pragma once
// Load generators for the serving engine (wall-clock driven).
//
//  * Open loop — Poisson arrivals at a target rate, independent of service
//    progress: the canonical model of internet traffic, and the one that
//    exposes queue growth and load-shedding when the offered rate exceeds
//    capacity (an open loop never self-throttles).
//  * Closed loop — N simulated clients that submit, wait for their request
//    to complete, think (exponential think time), and repeat: throughput
//    self-limits at N / (latency + think), the classic interactive model.
//
// Both return admission/occupancy summaries; latency and throughput come
// from the engine's own report.

#include <algorithm>
#include <cstdint>

#include "serve/engine.hpp"

namespace autopn::serve {

/// Poisson arrival schedule — the open-loop arrival process shared by the
/// in-process generator below and the network generator (src/net/netload):
/// independent exponential gaps at a mean `rate` per second.
class PoissonArrivals {
 public:
  PoissonArrivals(double rate, std::uint64_t seed)
      : rng_(seed), rate_(std::max(rate, 1e-9)) {}

  /// Seconds until the next arrival.
  [[nodiscard]] double next_gap() { return rng_.exponential(rate_); }

 private:
  util::Rng rng_;
  double rate_;
};

struct OpenLoopParams {
  double rate = 100.0;    ///< mean arrivals per second (Poisson)
  double duration = 1.0;  ///< seconds of wall time to generate for
  std::uint64_t seed = 1;
};

struct OpenLoopResult {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  double duration = 0.0;  ///< actual generation time (seconds)
  std::size_t max_queue_depth = 0;
  double mean_queue_depth = 0.0;  ///< sampled at each arrival

  [[nodiscard]] double shed_fraction() const {
    return offered > 0
               ? static_cast<double>(shed) / static_cast<double>(offered)
               : 0.0;
  }
};

/// Drives the engine open-loop from the calling thread until `duration`
/// elapses. Arrivals the engine sheds are counted, not retried (open-loop
/// semantics: the offered load does not care about the system's state).
OpenLoopResult run_open_loop(ServeEngine& engine, const OpenLoopParams& params);

struct ClosedLoopParams {
  std::size_t clients = 8;
  double think_time = 0.001;  ///< mean think time (seconds, exponential)
  double duration = 1.0;      ///< seconds of wall time per client
  std::uint64_t seed = 1;
};

struct ClosedLoopResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;  ///< admitted requests waited to completion
  std::uint64_t shed = 0;       ///< rejections (client backs off retry_after)
  double duration = 0.0;
};

/// Spawns `clients` threads, each running the submit→wait→think loop until
/// `duration` elapses; blocks until all clients finish.
ClosedLoopResult run_closed_loop(ServeEngine& engine,
                                 const ClosedLoopParams& params);

}  // namespace autopn::serve
