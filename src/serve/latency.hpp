#pragma once
// Lock-free striped latency histogram — the serving engine's per-request
// tracker. record() is two relaxed fetch_adds on a stripe private to the
// calling thread (no mutex, no allocation), so workers can stamp every
// request on the commit path. Bins are log-spaced (16 per decade from 1 µs
// to 1000 s), which bounds the relative error of extracted percentiles to
// one bin width (10^(1/16) ≈ 15%) — the right trade-off for SLO reporting,
// where p99 magnitude matters and exact rank statistics do not.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/sharded.hpp"

namespace autopn::serve {

class LatencyRecorder {
 public:
  static constexpr double kMinLatency = 1e-6;  ///< left edge of bin 0 (1 µs)
  static constexpr std::size_t kBinsPerDecade = 16;
  static constexpr std::size_t kDecades = 9;  ///< covers up to 1000 s
  static constexpr std::size_t kBins = kBinsPerDecade * kDecades + 1;

  explicit LatencyRecorder(std::size_t stripes = 8);

  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  /// Records one latency sample (seconds; clamped into the bin range).
  void record(double seconds) noexcept;

  struct Summary {
    std::uint64_t count = 0;
    double mean = 0.0;  ///< exact (from a striped sum, not the bins)
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Aggregates all stripes. Exact for samples that happened-before the
  /// call; concurrent records may or may not be included.
  [[nodiscard]] Summary summary() const;

  [[nodiscard]] std::uint64_t count() const noexcept;

  void reset() noexcept;

 private:
  struct Stripe {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_nanos{0};
    std::array<std::atomic<std::uint64_t>, kBins> bins{};
  };

  [[nodiscard]] static std::size_t bin_of(double seconds) noexcept;
  /// Representative latency of a bin (geometric midpoint of its edges).
  [[nodiscard]] static double bin_value(std::size_t bin) noexcept;

  std::vector<util::Padded<Stripe>> stripes_;
  std::size_t mask_;
};

}  // namespace autopn::serve
