#pragma once
// Request-handler adapters: wrap the benchmark workloads (Array, Vacation,
// TPC-C) as serving-engine handlers. Each handler executes one transaction
// from the workload's configured mix — exactly what run_one does — so a
// request admitted by the engine becomes one top-level parallel-nesting
// transaction behind the actuator gates.

#include <functional>
#include <memory>
#include <string>

#include "serve/engine.hpp"
#include "workloads/array_bench.hpp"
#include "workloads/tpcc.hpp"
#include "workloads/vacation.hpp"

namespace autopn::serve {

[[nodiscard]] RequestHandler make_array_handler(workloads::ArrayBenchmark& bench);
[[nodiscard]] RequestHandler make_vacation_handler(
    workloads::VacationBenchmark& bench);
[[nodiscard]] RequestHandler make_tpcc_handler(workloads::TpccBenchmark& bench);

/// A workload instance bundled with its handler and consistency check —
/// what the CLI and benches need to put "tpcc" behind the engine in one
/// call. `state` owns the benchmark; `handler` and `verify` borrow it.
struct ServableWorkload {
  std::string name;
  RequestHandler handler;
  std::function<bool()> verify;  ///< transactional consistency check
  std::shared_ptr<void> state;
};

/// Builds a servable workload by name: "array" (1% updates),
/// "array-high" (90% updates), "vacation", or "tpcc". Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] ServableWorkload make_servable_workload(const std::string& name,
                                                      stm::Stm& stm,
                                                      std::uint64_t seed = 11);

}  // namespace autopn::serve
