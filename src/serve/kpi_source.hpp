#pragma once
// ServiceKpiSource — the bridge from the serving engine to the AutoPN tuning
// loop. Workers record every request's enqueue→commit latency here; the
// TuningController (via the runtime::LatencySource interface) drains the
// per-window sample buffers so KpiKind::kLatency optimizes real request
// latency, while throughput continues to flow through the STM's commit
// callback that the controller already installs. The cumulative striped
// histogram additionally backs the engine's SLO report (p50/p95/p99).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/monitor.hpp"
#include "serve/latency.hpp"
#include "util/sharded.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::serve {

class ServiceKpiSource final : public runtime::LatencySource {
 public:
  /// Fixed number of per-tenant latency slots; tenant ids map onto slots by
  /// modulo. Small on purpose: the point is isolating a handful of SLO
  /// classes (noisy neighbour vs victim), not an unbounded tenant directory.
  static constexpr std::size_t kTenantSlots = 8;

  explicit ServiceKpiSource(std::size_t stripes = 8);

  /// Called by a worker after a request's transaction committed. Lock-free
  /// on the histograms (global + the tenant's slot); one striped mutex push
  /// for the window buffer.
  void record(double latency_seconds, std::uint16_t tenant_id = 0);

  /// Per-stage breakdown of one completed request: time spent waiting in the
  /// admission queue (enqueue→dequeue) and in execution (dequeue→commit).
  /// Recorded alongside record(); separate call so callers without stage
  /// stamps (tests, synthetic sources) keep the simple signature.
  void record_stages(double queue_wait_seconds, double service_seconds);

  /// runtime::LatencySource: hands over (and clears) the samples recorded
  /// since the previous drain.
  [[nodiscard]] std::vector<double> drain_latencies() override;

  [[nodiscard]] std::uint64_t completed() const { return completed_.load(); }
  [[nodiscard]] LatencyRecorder::Summary latency_summary() const {
    return recorder_.summary();
  }
  /// Cumulative enqueue→dequeue waiting time of completed requests.
  [[nodiscard]] LatencyRecorder::Summary queue_wait_summary() const {
    return queue_wait_.summary();
  }
  /// Cumulative dequeue→commit execution time of completed requests.
  [[nodiscard]] LatencyRecorder::Summary service_summary() const {
    return service_.summary();
  }

  [[nodiscard]] static constexpr std::size_t tenant_slot(
      std::uint16_t tenant_id) noexcept {
    return tenant_id % kTenantSlots;
  }
  /// Cumulative latency of one tenant slot (count == 0 when unused).
  [[nodiscard]] LatencyRecorder::Summary tenant_summary(std::size_t slot) const {
    return tenants_[slot % kTenantSlots]->summary();
  }

  /// Clears the cumulative histograms (not the window buffers or the
  /// completion counter) — benches use it to measure steady-state SLOs
  /// after a tuning transient.
  void reset_latency_histogram() {
    recorder_.reset();
    queue_wait_.reset();
    service_.reset();
  }

  /// Mean completion rate (requests/s) since mark_start; the engine's
  /// retry-after hints are derived from it.
  void mark_start(double now) {
    start_time_.store(now, std::memory_order_relaxed);
  }
  [[nodiscard]] double completion_rate(double now) const;

 private:
  /// Per-stripe buffer cap: a window that nobody drains (tuner idle) must
  /// not grow without bound; excess samples only fall out of the *window*
  /// statistics — the histogram still sees every request.
  static constexpr std::size_t kMaxBufferedSamples = 8192;

  struct Buffer {
    std::mutex mutex;
    std::vector<double> samples AUTOPN_GUARDED_BY(mutex);
  };

  LatencyRecorder recorder_;
  /// Stage histograms behind record_stages() (same striping as recorder_).
  LatencyRecorder queue_wait_;
  LatencyRecorder service_;
  /// Per-tenant recorders, fewer stripes than the global one (per-tenant
  /// traffic is a fraction of the total). unique_ptr because LatencyRecorder
  /// is neither copyable nor movable.
  std::vector<std::unique_ptr<LatencyRecorder>> tenants_;
  util::ShardedCounter completed_;
  std::vector<util::Padded<Buffer>> buffers_;
  std::size_t mask_;
  std::atomic<double> start_time_{0.0};
};

}  // namespace autopn::serve
