#include "serve/handlers.hpp"

#include <stdexcept>

namespace autopn::serve {

RequestHandler make_array_handler(workloads::ArrayBenchmark& bench) {
  return [&bench](util::Rng& rng) { bench.run_one(rng); };
}

RequestHandler make_vacation_handler(workloads::VacationBenchmark& bench) {
  return [&bench](util::Rng& rng) { bench.run_one(rng); };
}

RequestHandler make_tpcc_handler(workloads::TpccBenchmark& bench) {
  return [&bench](util::Rng& rng) { bench.run_one(rng); };
}

ServableWorkload make_servable_workload(const std::string& name, stm::Stm& stm,
                                        std::uint64_t seed) {
  ServableWorkload out;
  out.name = name;
  if (name == "array" || name == "array-high") {
    workloads::ArrayConfig cfg;
    cfg.array_size = 256;
    cfg.update_fraction = name == "array-high" ? 0.9 : 0.01;
    cfg.seed = seed;
    auto bench = std::make_shared<workloads::ArrayBenchmark>(stm, cfg);
    out.handler = make_array_handler(*bench);
    out.verify = [bench] { return bench->checksum() >= 0; };
    out.state = std::move(bench);
    return out;
  }
  if (name == "vacation") {
    workloads::VacationConfig cfg;
    cfg.seed = seed;
    auto bench = std::make_shared<workloads::VacationBenchmark>(stm, cfg);
    out.handler = make_vacation_handler(*bench);
    out.verify = [bench] { return bench->verify_consistency(); };
    out.state = std::move(bench);
    return out;
  }
  if (name == "tpcc") {
    workloads::TpccConfig cfg;
    cfg.warehouses = 2;
    cfg.seed = seed;
    auto bench = std::make_shared<workloads::TpccBenchmark>(stm, cfg);
    out.handler = make_tpcc_handler(*bench);
    out.verify = [bench] { return bench->verify_consistency(); };
    out.state = std::move(bench);
    return out;
  }
  throw std::invalid_argument{"unknown servable workload " + name};
}

}  // namespace autopn::serve
