#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "stm/exceptions.hpp"
#include "util/failpoint.hpp"

namespace autopn::serve {

ServeEngine::ServeEngine(stm::Stm& stm, RequestHandler default_handler,
                         const util::Clock& clock, ServeConfig config)
    : stm_(&stm),
      default_handler_(std::move(default_handler)),
      clock_(&clock),
      config_(config),
      queue_(config.queue_capacity, config.shed_watermark) {
  kpi_.mark_start(clock_->now());
  const std::size_t workers = std::max<std::size_t>(config_.workers, 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServeEngine::~ServeEngine() { drain_and_stop(); }

SubmitResult ServeEngine::submit(RequestHandler work, CompletionFn on_complete,
                                 std::uint16_t tenant_id,
                                 double timeout_seconds) {
  Request request;
  request.work = std::move(work);
  request.on_complete = std::move(on_complete);
  request.tenant_id = tenant_id;
  request.enqueue_time = clock_->now();
  double timeout = config_.request_timeout;
  if (timeout_seconds > 0.0 && (timeout <= 0.0 || timeout_seconds < timeout)) {
    timeout = timeout_seconds;
  }
  if (timeout > 0.0) {
    request.deadline = request.enqueue_time + timeout;
  }
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const RequestQueue::Admit admit = queue_.try_push(std::move(request));

  SubmitResult result;
  result.queue_depth = queue_.depth();
  result.admitted = admit == RequestQueue::Admit::kAdmitted;
  if (!result.admitted) result.retry_after = retry_after_hint(result.queue_depth);
  return result;
}

double ServeEngine::retry_after_hint(std::size_t depth) const {
  // Backlog that must drain before admission reopens, served at the engine's
  // observed completion rate. The rate estimate is trusted only after enough
  // completions: right after start (or during a stall) a handful of commits
  // over a long elapsed time yields a near-zero rate whose excess/rate hint
  // explodes, and a burst over a tiny elapsed time yields a huge rate whose
  // hint collapses to ~0 and invites a thundering-herd resubmit. Until then,
  // fall back to a nominal 10 ms per excess request; either way the hint is
  // clamped to [1 ms, 5 s].
  constexpr std::uint64_t kMinCompletionsForRate = 8;
  constexpr double kFallbackSecondsPerRequest = 0.010;
  constexpr double kMinHint = 0.001;
  constexpr double kMaxHint = 5.0;
  const double excess = std::max(
      static_cast<double>(depth) - static_cast<double>(queue_.watermark()) + 1.0,
      1.0);
  const double rate = kpi_.completion_rate(clock_->now());
  const bool rate_trustworthy =
      kpi_.completed() >= kMinCompletionsForRate && rate > 0.0;
  const double hint = rate_trustworthy ? excess / rate
                                       : kFallbackSecondsPerRequest * excess;
  return std::clamp(hint, kMinHint, kMaxHint);
}

void ServeEngine::worker_loop(std::size_t index) {
  util::Rng rng{config_.seed + 0x9e3779b9ULL * (index + 1)};
  while (auto request = queue_.pop()) {
    // Chaos hook (delay mode): stall the worker between dequeue and
    // execution — queued deadlines keep ticking, driving requests expired.
    AUTOPN_FAILPOINT("serve.worker.begin");
    // Stage stamp: everything before this point is queue wait (an injected
    // pre-execution stall counts as wait — it delays service, it is not
    // service), everything after is execution.
    const double dequeued = clock_->now();
    const double deadline = request->deadline;
    RequestResult result;
    result.tenant_id = request->tenant_id;
    if (deadline > 0.0 && clock_->now() >= deadline) {
      // Expired while queued: never execute it (running doomed work only
      // steals service capacity from requests that can still make it).
      expired_.add(1);
      result.outcome = RequestOutcome::kExpired;
      result.latency = clock_->now() - request->enqueue_time;
      if (request->on_complete) request->on_complete(result);
      continue;
    }
    RequestOutcome outcome = RequestOutcome::kCompleted;
    try {
      // Propagate the deadline into every Stm::run_top retry loop the
      // handler enters on this thread; an expired predicate surfaces here as
      // DeadlineExceeded between attempts.
      stm::ScopedDeadline scoped{
          deadline > 0.0 ? std::function<bool()>{[this, deadline] {
            return clock_->now() >= deadline;
          }}
                         : std::function<bool()>{}};
      // Chaos hook: make the handler itself throw.
      AUTOPN_FAILPOINT("serve.worker.fail",
                       throw std::runtime_error{"injected handler failure"});
      if (request->work) {
        request->work(rng);
      } else {
        default_handler_(rng);
      }
    } catch (const stm::DeadlineExceeded&) {
      outcome = RequestOutcome::kExpired;
      expired_.add(1);
    } catch (...) {
      // A failing handler must not take down the engine; the request counts
      // as failed and contributes no latency sample.
      outcome = RequestOutcome::kFailed;
      failed_.add(1);
    }
    result.outcome = outcome;
    const double finished = clock_->now();
    result.latency = finished - request->enqueue_time;
    if (outcome == RequestOutcome::kCompleted) {
      kpi_.record(result.latency, request->tenant_id);
      kpi_.record_stages(dequeued - request->enqueue_time, finished - dequeued);
    }
    if (request->on_complete) request->on_complete(result);
  }
}

void ServeEngine::drain_and_stop() {
  std::scoped_lock lock{stop_mutex_};
  if (workers_.empty()) return;
  queue_.close();
  workers_.clear();  // joins; workers exit once the backlog is drained
}

ServeReport ServeEngine::report() const {
  ServeReport r;
  r.offered = queue_.offered();
  r.admitted = queue_.admitted();
  r.shed = queue_.shed();
  r.completed = kpi_.completed();
  r.expired = expired_.load();
  r.failed = failed_.load();
  r.queue_depth = queue_.depth();
  r.shed_fraction =
      r.offered > 0 ? static_cast<double>(r.shed) / static_cast<double>(r.offered)
                    : 0.0;
  r.retry_after_hint = retry_after_hint(r.queue_depth);
  r.latency = kpi_.latency_summary();
  r.queue_wait = kpi_.queue_wait_summary();
  r.service = kpi_.service_summary();
  for (std::size_t slot = 0; slot < ServiceKpiSource::kTenantSlots; ++slot) {
    auto summary = kpi_.tenant_summary(slot);
    if (summary.count == 0) continue;
    r.tenants.push_back({static_cast<std::uint16_t>(slot), summary});
  }
  return r;
}

}  // namespace autopn::serve
