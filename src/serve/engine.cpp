#include "serve/engine.hpp"

#include <algorithm>

namespace autopn::serve {

ServeEngine::ServeEngine(stm::Stm& stm, RequestHandler default_handler,
                         const util::Clock& clock, ServeConfig config)
    : stm_(&stm),
      default_handler_(std::move(default_handler)),
      clock_(&clock),
      config_(config),
      queue_(config.queue_capacity, config.shed_watermark) {
  kpi_.mark_start(clock_->now());
  const std::size_t workers = std::max<std::size_t>(config_.workers, 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ServeEngine::~ServeEngine() { drain_and_stop(); }

SubmitResult ServeEngine::submit(RequestHandler work,
                                 std::function<void()> on_complete) {
  Request request;
  request.work = std::move(work);
  request.on_complete = std::move(on_complete);
  request.enqueue_time = clock_->now();
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const RequestQueue::Admit admit = queue_.try_push(std::move(request));

  SubmitResult result;
  result.queue_depth = queue_.depth();
  result.admitted = admit == RequestQueue::Admit::kAdmitted;
  if (!result.admitted) result.retry_after = retry_after_hint(result.queue_depth);
  return result;
}

double ServeEngine::retry_after_hint(std::size_t depth) const {
  // Backlog that must drain before admission reopens, served at the engine's
  // observed completion rate. Before any completion has been observed, fall
  // back to a nominal 10 ms per excess request. Capped so clients never
  // stall on a transient estimate.
  const double excess = std::max(
      static_cast<double>(depth) - static_cast<double>(queue_.watermark()) + 1.0,
      1.0);
  const double rate = kpi_.completion_rate(clock_->now());
  const double hint = rate > 0.0 ? excess / rate : 0.010 * excess;
  return std::min(hint, 5.0);
}

void ServeEngine::worker_loop(std::size_t index) {
  util::Rng rng{config_.seed + 0x9e3779b9ULL * (index + 1)};
  while (auto request = queue_.pop()) {
    bool ok = true;
    try {
      if (request->work) {
        request->work(rng);
      } else {
        default_handler_(rng);
      }
    } catch (...) {
      // A failing handler must not take down the engine; the request counts
      // as failed and contributes no latency sample.
      ok = false;
      failed_.add(1);
    }
    if (ok) kpi_.record(clock_->now() - request->enqueue_time);
    if (request->on_complete) request->on_complete();
  }
}

void ServeEngine::drain_and_stop() {
  std::scoped_lock lock{stop_mutex_};
  if (workers_.empty()) return;
  queue_.close();
  workers_.clear();  // joins; workers exit once the backlog is drained
}

ServeReport ServeEngine::report() const {
  ServeReport r;
  r.offered = queue_.offered();
  r.admitted = queue_.admitted();
  r.shed = queue_.shed();
  r.completed = kpi_.completed();
  r.failed = failed_.load();
  r.queue_depth = queue_.depth();
  r.shed_fraction =
      r.offered > 0 ? static_cast<double>(r.shed) / static_cast<double>(r.offered)
                    : 0.0;
  r.latency = kpi_.latency_summary();
  return r;
}

}  // namespace autopn::serve
