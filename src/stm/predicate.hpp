#pragma once
// Semantic conflict detection: the type-erased delta and predicate layer
// that turns the read/write sets from box-granularity into datatype-aware
// tracking (the STO idiom ported onto the multi-version PN-STM).
//
// Box granularity makes two inserts of *different* keys that share a TMap
// bucket abort each other: the loser's read of the bucket box is stale even
// though no value it observed changed. That inflates the abort rate the
// parallelism-degree tuner optimizes against and warps the (t, c) surface
// the SMBO explores. The fix is to record *what the transaction actually
// depends on* instead of *which box it touched*:
//
//  * a PredicateBase is a semantic assertion over a box's value — "key k is
//    absent", "entry k is still at entry-version e", "cursor >= n" — checked
//    by re-evaluating it against the then-current value at every
//    serialization point the transaction passes (sibling merge, top-level
//    commit) instead of comparing box versions;
//  * a DeltaBase is a logged sequence of datatype operations (map upsert /
//    erase, ...) applied to the newest committed value at install time
//    (commit-time delta install), so a transaction's write no longer
//    overwrites the whole container snapshot it happened to start from.
//
// Both are type-erased here so Tx, the child-merge path, and the commit
// managers can carry them without knowing container types; the typed
// implementations live with the containers (stm/containers.hpp).
//
// Validation contract (see DESIGN.md "Semantic validation"):
//  * predicates anchored on committed state are re-evaluated by the commit
//    manager against the box's newest committed body, inside the commit
//    serialization protocol, *before* any install;
//  * predicates that consumed an ancestor's tentative write are re-checked
//    under that ancestor's merge mutex when the reading child commits into
//    it (overlaps() against the ops merged since, or holds() against a full
//    overwrite), and are discharged at the level that owns the write;
//  * deltas compose upward through the child-merge path: merging re-stamps
//    the child's ops with a fresh parent stamp so sibling predicates can
//    tell which ops post-date their reads.

#include <cstdint>
#include <memory>

namespace autopn::stm {

/// Conflict-unit policy of a transactional container, selectable per
/// instance so box vs semantic behaviour can be A/B-measured
/// (bench/container_sweep).
enum class ContainerPolicy {
  /// The whole versioned box is the conflict unit (copy-on-write buckets;
  /// every cursor access is an exact read). The conservative baseline.
  kBoxGranularity,
  /// Datatype-aware tracking: per-entry versions, absent-key/cursor-bound
  /// predicates, commit-time delta install. Disjoint-key operations on one
  /// bucket never conflict.
  kSemantic,
};

class DeltaBase;

/// Tentative entry-version bit: entry versions at or above this value stamp
/// not-yet-committed materializations (the low bits carry the writing
/// level's merge stamp); committed entries carry the installing commit's
/// clock version. The two ranges never collide because the clock is a small
/// monotone counter.
inline constexpr std::uint64_t kTentativeEver = std::uint64_t{1} << 63;

/// A logged sequence of datatype operations against one box, applied to the
/// current value at install (or materialization) time. Implementations are
/// owned by one transaction at a time and mutated only under the owning
/// level's merge mutex; once handed to a CommitRequest they are immutable.
class DeltaBase {
 public:
  virtual ~DeltaBase() = default;

  /// Applies the ops, in log order, to `base` (nullptr = the datatype's
  /// empty value) and returns the new value. `commit_version` != 0 stamps
  /// every touched entry with that committed clock version; 0 marks a
  /// tentative materialization, stamping touched entries with
  /// kTentativeEver | op.stamp so sibling predicates can detect overwrites
  /// at per-key precision.
  [[nodiscard]] virtual std::shared_ptr<const void> apply(
      const void* base, std::uint64_t commit_version) const = 0;

  /// Deep copy. Readers clone an ancestor's delta under that ancestor's
  /// merge mutex, then materialize outside the lock — the live delta keeps
  /// growing as siblings merge, so sharing the object would race.
  [[nodiscard]] virtual std::unique_ptr<DeltaBase> clone() const = 0;

  /// Appends `other`'s ops (same dynamic type) after this delta's ops,
  /// re-stamping them with `stamp` — the child-merge composition step.
  virtual void absorb(const DeltaBase& other, std::uint64_t stamp) = 0;

  /// Re-stamps every op with `stamp` (used when a delta moves into a write
  /// set whole, e.g. the first merge of a child's delta into its parent).
  virtual void restamp(std::uint64_t stamp) = 0;

  /// Ops logged (diagnostics).
  [[nodiscard]] virtual std::size_t op_count() const noexcept = 0;
};

class VBoxBase;

/// A semantic assertion over one box's value, registered by a container
/// read in place of an exact version read and re-evaluated at every
/// serialization point the transaction passes.
class PredicateBase {
 public:
  explicit PredicateBase(const VBoxBase& box) : box_(&box) {}
  virtual ~PredicateBase() = default;

  /// The box this predicate is anchored at.
  [[nodiscard]] const VBoxBase* box() const noexcept { return box_; }

  /// Re-evaluates against a concrete value of the box (never nullptr).
  [[nodiscard]] virtual bool holds(const void* value) const noexcept = 0;

  /// True when any op of `delta` with stamp > `after_stamp` could change
  /// this predicate's truth (per-key precision for map deltas). Unknown
  /// delta types must return true — conservative, an extra abort is sound,
  /// a missed conflict is not.
  [[nodiscard]] virtual bool overlaps(const DeltaBase& delta,
                                      std::uint64_t after_stamp) const noexcept = 0;

  /// Structural equality, used to deduplicate repeated registrations of the
  /// same assertion within one transaction.
  [[nodiscard]] virtual bool same_as(const PredicateBase& other) const noexcept = 0;

  /// Sub-box hotspot id for per-key contention attribution (the key for map
  /// predicates); kNoSubKey when the predicate spans the whole box.
  static constexpr std::uint64_t kNoSubKey = ~std::uint64_t{0};
  [[nodiscard]] virtual std::uint64_t profile_key() const noexcept {
    return kNoSubKey;
  }

 private:
  const VBoxBase* box_;
};

}  // namespace autopn::stm
