#pragma once
// Lock-free active-snapshot registry. Every top-level transaction publishes
// the clock value it reads from (its snapshot) so that committers can compute
// the oldest snapshot any active transaction may still need
// (min_active()) and prune version-chain bodies nothing can reach.
//
// The registry replaces a global mutex + std::multiset that serialized every
// top-level begin/end. Structure: a fixed array of cache-line-padded atomic
// slots (one store to register, one store to deregister, a wait-free scan for
// the minimum) plus a mutex-protected overflow multiset used only when more
// transactions are simultaneously active than there are slots.
//
// Correctness (the pruning race of DESIGN.md §8 bug 2, restated): a snapshot
// `s` must never be invisible to a committer whose pruning minimum exceeds
// `s`. The old design made read-clock-and-register atomic under the registry
// mutex. Lock-free, the same guarantee comes from a publish-and-validate
// handshake with seq_cst ordering:
//
//   register:           min_active (committer):
//     s = clock            floor = clock        // clock FIRST, then slots
//     slot = s             for each slot: m = min(m, slot)
//     if clock != s:       return min(floor, m)
//       retry with new s
//
// If a committer's scan misses our slot (reads it before our store in the
// seq_cst total order), then its floor-read of the clock precedes our
// validation re-read; so either its floor <= s (its minimum cannot exceed s:
// safe), or some version > s was already published before our re-read — and
// then the re-read observes clock != s and we retry with the newer value.
// Conversely a scan after our store sees the slot. Deregistration is a single
// release of the slot: removing a snapshot only raises future minima, which
// prunes more, never less. All registry and clock-publish operations use
// seq_cst so the total-order argument holds; they run once per transaction
// and once per commit, never on the read path.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "util/sharded.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::stm {

namespace sync = autopn::sync;

class SnapshotRegistry {
 public:
  /// `clock` is the runtime's global version clock (must outlive the
  /// registry); `slots` is rounded up to a power of two. Transactions beyond
  /// the slot capacity fall back to the mutex-protected overflow set.
  explicit SnapshotRegistry(const sync::Atomic<std::uint64_t>& clock,
                            std::size_t slots = kDefaultSlots);

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  static constexpr std::size_t kDefaultSlots = 64;

  /// RAII registration: holds the snapshot alive in the registry until
  /// destroyed (or release()d).
  class Handle {
   public:
    Handle() = default;
    ~Handle() { release(); }

    Handle(Handle&& other) noexcept
        : registry_(other.registry_),
          slot_(other.slot_),
          snapshot_(other.snapshot_) {
      other.registry_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        registry_ = other.registry_;
        slot_ = other.slot_;
        snapshot_ = other.snapshot_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    /// The registered snapshot (valid while the handle is live).
    [[nodiscard]] std::uint64_t snapshot() const noexcept { return snapshot_; }
    [[nodiscard]] bool live() const noexcept { return registry_ != nullptr; }
    /// True when this registration landed in the overflow set (diagnostics).
    [[nodiscard]] bool overflowed() const noexcept {
      return registry_ != nullptr && slot_ == kOverflowSlot;
    }

    /// Deregisters early; idempotent.
    void release() noexcept;

   private:
    friend class SnapshotRegistry;
    static constexpr std::size_t kOverflowSlot = ~std::size_t{0};

    SnapshotRegistry* registry_ = nullptr;
    std::size_t slot_ = kOverflowSlot;
    std::uint64_t snapshot_ = 0;
  };

  /// Registers the calling transaction at the current clock value and returns
  /// the handle carrying the snapshot it must read from.
  [[nodiscard]] Handle acquire();

  /// Smallest snapshot any active transaction may read from; the current
  /// clock value when none is active. Wait-free over the slot array (the
  /// overflow set is consulted, under its mutex, only while it is non-empty).
  /// The result is a safe pruning bound: it never exceeds the snapshot of any
  /// transaction whose registration completed.
  [[nodiscard]] std::uint64_t min_active() const;

  // ---- diagnostics ------------------------------------------------------

  [[nodiscard]] std::size_t slot_count() const noexcept {
    return slots_.size();
  }
  /// Registrations currently active (racy snapshot; exact at quiescence).
  [[nodiscard]] std::size_t active_count() const;
  /// Registrations currently parked in the overflow set.
  [[nodiscard]] std::size_t overflow_count() const;

 private:
  /// Slot value meaning "free". The clock would need 2^64 - 1 commits to
  /// collide with it.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  void release_slot(std::size_t slot) noexcept;
  void release_overflow(std::uint64_t snapshot) noexcept;

  const sync::Atomic<std::uint64_t>* clock_;
  std::vector<util::Padded<sync::Atomic<std::uint64_t>>> slots_;
  std::size_t slot_mask_;

  /// Count of overflow registrations, bumped BEFORE the protected insert so a
  /// committer that reads 0 is ordered before any overflow entry it could
  /// have missed (same publish-and-validate argument as the slots).
  sync::Atomic<std::size_t> overflow_active_{0};
  mutable sync::Mutex overflow_mutex_;
  std::multiset<std::uint64_t> overflow_ AUTOPN_GUARDED_BY(overflow_mutex_);
};

}  // namespace autopn::stm
