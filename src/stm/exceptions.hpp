#pragma once
// Control-flow exceptions of the PN-STM. A ConflictError unwinds one
// transaction attempt; the runtime's retry loops catch it and re-execute the
// aborted transaction (the whole tree for a top-level conflict, just the
// child for a sibling conflict — the partial-abort benefit of closed
// nesting).

#include <exception>

namespace autopn::stm {

/// Where a conflict was detected; recorded in statistics.
enum class ConflictKind {
  kTopLevelValidation,  ///< top-level read set stale at global commit
  kSiblingWrite,        ///< a sibling committed a write this child had read
  kStaleReRead,         ///< re-read observed a changed ancestor entry
  kPredicate,           ///< a semantic predicate no longer holds
  kExplicitRetry,       ///< user-requested retry
  kInjected,            ///< fault injected by an armed failpoint (chaos tests)
};

class ConflictError final : public std::exception {
 public:
  explicit ConflictError(ConflictKind kind) noexcept : kind_(kind) {}

  [[nodiscard]] ConflictKind kind() const noexcept { return kind_; }

  [[nodiscard]] const char* what() const noexcept override {
    switch (kind_) {
      case ConflictKind::kTopLevelValidation: return "top-level validation conflict";
      case ConflictKind::kSiblingWrite: return "sibling write conflict";
      case ConflictKind::kStaleReRead: return "stale re-read conflict";
      case ConflictKind::kPredicate: return "semantic predicate conflict";
      case ConflictKind::kExplicitRetry: return "explicit retry";
      case ConflictKind::kInjected: return "injected fault";
    }
    return "conflict";
  }

 private:
  ConflictKind kind_;
};

/// Thrown by Stm::run_top when a give-up predicate (an explicit
/// RunOptions::give_up or the thread-ambient ScopedDeadline installed by the
/// serving layer) reports the caller's deadline passed between retry
/// attempts. The transaction has NOT committed; nothing was installed.
class DeadlineExceeded final : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "transaction deadline exceeded before commit";
  }
};

}  // namespace autopn::stm
