#include "stm/vbox.hpp"

#include "util/failpoint.hpp"

namespace autopn::stm {

VBoxBase::~VBoxBase() {
  Body* b = head_.load(std::memory_order_relaxed);
  while (b != nullptr) {
    Body* next = b->next.load(std::memory_order_relaxed);
    delete b;
    b = next;
  }
}

const Body* VBoxBase::body_at(std::uint64_t snapshot) const noexcept {
  const Body* b = head_.load(std::memory_order_acquire);
  while (b != nullptr && b->version.read() > snapshot) {
    b = b->next.load(std::memory_order_acquire);
  }
  return b;
}

void VBoxBase::prune(Body* from, std::uint64_t min_active_snapshot) noexcept {
  // At most one pruner per box: a helper delayed inside an older version's
  // install could otherwise traverse the tail while the newer version's
  // installer truncates and frees it. Pruning is an optimization, so on
  // contention we simply skip — the next install retries with a fresher
  // (larger) min_active_snapshot and reclaims strictly more.
  if (prune_busy_.exchange(true, std::memory_order_acquire)) return;
  // Chaos hook (delay mode): hold the prune guard longer, forcing concurrent
  // installers to skip pruning and stressing chain growth + deferred reclaim.
  AUTOPN_FAILPOINT("stm.vbox.prune");
  Body* keep = from;
  for (;;) {
    Body* next = keep->next.load(std::memory_order_relaxed);
    if (next == nullptr || keep->version.read() <= min_active_snapshot) break;
    keep = next;
  }
  Body* doomed = keep->next.exchange(nullptr, std::memory_order_release);
  while (doomed != nullptr) {
    Body* next = doomed->next.load(std::memory_order_relaxed);
    delete doomed;
    doomed = next;
  }
  prune_busy_.store(false, std::memory_order_release);
}

void VBoxBase::install(std::shared_ptr<const void> value, std::uint64_t version,
                       std::uint64_t min_active_snapshot) {
  Body* old_head = head_.load(std::memory_order_relaxed);
  auto* body = new Body{version, std::move(value), old_head};
  head_.store(body, std::memory_order_release);

  // Prune bodies unreachable by any active snapshot: keep every body newer
  // than min_active_snapshot plus the newest body at or below it. A reader
  // with snapshot s >= min_active_snapshot stops its traversal on a retained
  // body, so freeing older ones is safe (see header contract).
  prune(body, min_active_snapshot);
}

bool VBoxBase::install_cas(const std::shared_ptr<const void>& value,
                           std::uint64_t version,
                           std::uint64_t min_active_snapshot) {
  Body* old_head = head_.load(std::memory_order_acquire);
  for (;;) {
    if (old_head != nullptr && old_head->version.read() >= version) {
      return false;  // another helper already installed this (or a newer) body
    }
    auto* body = new Body{version, value, old_head};
    if (head_.compare_exchange_weak(old_head, body, std::memory_order_release,
                                    std::memory_order_acquire)) {
      // We own this version's installation; prune opportunistically (skipped
      // if a helper delayed in an older version's install still holds the
      // box's prune guard).
      prune(body, min_active_snapshot);
      return true;
    }
    delete body;  // lost the race; re-examine the new head
  }
}

std::size_t VBoxBase::chain_length() const noexcept {
  std::size_t n = 0;
  for (const Body* b = newest(); b != nullptr;
       b = b->next.load(std::memory_order_acquire)) {
    ++n;
  }
  return n;
}

}  // namespace autopn::stm
