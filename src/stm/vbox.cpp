#include "stm/vbox.hpp"

namespace autopn::stm {

VBoxBase::~VBoxBase() {
  Body* b = head_.load(std::memory_order_relaxed);
  while (b != nullptr) {
    Body* next = b->next;
    delete b;
    b = next;
  }
}

const Body* VBoxBase::body_at(std::uint64_t snapshot) const noexcept {
  const Body* b = head_.load(std::memory_order_acquire);
  while (b != nullptr && b->version > snapshot) b = b->next;
  return b;
}

void VBoxBase::install(std::shared_ptr<const void> value, std::uint64_t version,
                       std::uint64_t min_active_snapshot) {
  Body* old_head = head_.load(std::memory_order_relaxed);
  auto* body = new Body{version, std::move(value), old_head};
  head_.store(body, std::memory_order_release);

  // Prune bodies unreachable by any active snapshot: keep every body newer
  // than min_active_snapshot plus the newest body at or below it. A reader
  // with snapshot s >= min_active_snapshot stops its traversal on a retained
  // body, so freeing older ones is safe (see header contract).
  Body* keep = body;
  while (keep->next != nullptr && keep->version > min_active_snapshot) keep = keep->next;
  Body* doomed = keep->next;
  keep->next = nullptr;
  while (doomed != nullptr) {
    Body* next = doomed->next;
    delete doomed;
    doomed = next;
  }
}

bool VBoxBase::install_cas(const std::shared_ptr<const void>& value,
                           std::uint64_t version,
                           std::uint64_t min_active_snapshot) {
  Body* old_head = head_.load(std::memory_order_acquire);
  for (;;) {
    if (old_head != nullptr && old_head->version >= version) {
      return false;  // another helper already installed this (or a newer) body
    }
    auto* body = new Body{version, value, old_head};
    if (head_.compare_exchange_weak(old_head, body, std::memory_order_release,
                                    std::memory_order_acquire)) {
      // We own this version's installation: prune exactly as install() does.
      // Record ordering guarantees no concurrent install/prune of another
      // version on this box (version v+1's writeback starts only after v's
      // record is done).
      Body* keep = body;
      while (keep->next != nullptr && keep->version > min_active_snapshot) {
        keep = keep->next;
      }
      Body* doomed = keep->next;
      keep->next = nullptr;
      while (doomed != nullptr) {
        Body* next = doomed->next;
        delete doomed;
        doomed = next;
      }
      return true;
    }
    delete body;  // lost the race; re-examine the new head
  }
}

std::size_t VBoxBase::chain_length() const noexcept {
  std::size_t n = 0;
  for (const Body* b = newest(); b != nullptr; b = b->next) ++n;
  return n;
}

}  // namespace autopn::stm
