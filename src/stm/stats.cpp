#include "stm/stats.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "stm/vbox.hpp"

namespace autopn::stm {

StmStats::StmStats(std::size_t shards)
    : top_commits_(shards),
      top_aborts_(shards),
      child_commits_(shards),
      child_aborts_(shards),
      reads_(shards),
      writes_(shards),
      aborts_validation_(shards),
      aborts_sibling_(shards),
      aborts_explicit_(shards),
      aborts_injected_(shards),
      top_escalations_(shards) {}

void StmStats::bump_conflict_kind(ConflictKind kind) noexcept {
  switch (kind) {
    case ConflictKind::kTopLevelValidation:
      aborts_validation_.add();
      break;
    case ConflictKind::kSiblingWrite:
    case ConflictKind::kStaleReRead:
      aborts_sibling_.add();
      break;
    case ConflictKind::kExplicitRetry:
      aborts_explicit_.add();
      break;
    case ConflictKind::kInjected:
      aborts_injected_.add();
      break;
  }
}

StmStatsSnapshot StmStats::snapshot() const {
  StmStatsSnapshot snap;
  snap.top_commits = top_commits_.load();
  snap.top_aborts = top_aborts_.load();
  snap.child_commits = child_commits_.load();
  snap.child_aborts = child_aborts_.load();
  snap.reads = reads_.load();
  snap.writes = writes_.load();
  snap.aborts_validation = aborts_validation_.load();
  snap.aborts_sibling = aborts_sibling_.load();
  snap.aborts_explicit = aborts_explicit_.load();
  snap.aborts_injected = aborts_injected_.load();
  snap.top_escalations = top_escalations_.load();
  return snap;
}

void StmStats::reset() noexcept {
  top_commits_.reset();
  top_aborts_.reset();
  child_commits_.reset();
  child_aborts_.reset();
  reads_.reset();
  writes_.reset();
  aborts_validation_.reset();
  aborts_sibling_.reset();
  aborts_explicit_.reset();
  aborts_injected_.reset();
  top_escalations_.reset();
}

ContentionProfiler::ContentionProfiler(std::size_t capacity)
    : slots_(util::ceil_pow2(std::max<std::size_t>(2, capacity))),
      mask_(slots_.size() - 1) {}

void ContentionProfiler::note(const VBoxBase* box) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  // libstdc++'s pointer hash is the identity; fold the high bits down and
  // drop alignment zeros so heap neighbours don't all probe the same run.
  const auto raw = reinterpret_cast<std::uintptr_t>(box);
  const std::size_t hash = static_cast<std::size_t>((raw >> 4) ^ (raw >> 20));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[(hash + i) & mask_];
    const VBoxBase* key = slot.key.load(std::memory_order_acquire);
    if (key == nullptr) {
      // Claim the empty slot; a losing racer just re-examines it.
      if (!slot.key.compare_exchange_strong(key, box,
                                            std::memory_order_acq_rel)) {
        if (key != box) continue;
      }
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (key == box) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ContentionProfiler::Hotspot> ContentionProfiler::hotspots(
    std::size_t top_n) const {
  std::vector<Hotspot> out;
  for (const Slot& slot : slots_) {
    const VBoxBase* key = slot.key.load(std::memory_order_acquire);
    if (key == nullptr) continue;
    const std::uint64_t count = slot.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    Hotspot entry;
    entry.conflicts = count;
    if (const std::string* label = key->label()) {
      entry.label = *label;
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "box@%p",
                    static_cast<const void*>(key));
      entry.label = buffer;
    }
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    return a.conflicts > b.conflicts;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

void ContentionProfiler::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.key.store(nullptr, std::memory_order_release);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace autopn::stm
