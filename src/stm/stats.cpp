#include "stm/stats.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>

#include "stm/vbox.hpp"

namespace autopn::stm {

StmStats::StmStats(std::size_t shards)
    : top_commits_(shards),
      top_aborts_(shards),
      child_commits_(shards),
      child_aborts_(shards),
      reads_(shards),
      writes_(shards),
      aborts_validation_(shards),
      aborts_sibling_(shards),
      aborts_predicate_(shards),
      aborts_explicit_(shards),
      aborts_injected_(shards),
      top_escalations_(shards) {}

void StmStats::bump_conflict_kind(ConflictKind kind) noexcept {
  switch (kind) {
    case ConflictKind::kTopLevelValidation:
      aborts_validation_.add();
      break;
    case ConflictKind::kSiblingWrite:
    case ConflictKind::kStaleReRead:
      aborts_sibling_.add();
      break;
    case ConflictKind::kPredicate:
      aborts_predicate_.add();
      break;
    case ConflictKind::kExplicitRetry:
      aborts_explicit_.add();
      break;
    case ConflictKind::kInjected:
      aborts_injected_.add();
      break;
  }
}

StmStatsSnapshot StmStats::snapshot() const {
  StmStatsSnapshot snap;
  snap.top_commits = top_commits_.load();
  snap.top_aborts = top_aborts_.load();
  snap.child_commits = child_commits_.load();
  snap.child_aborts = child_aborts_.load();
  snap.reads = reads_.load();
  snap.writes = writes_.load();
  snap.aborts_validation = aborts_validation_.load();
  snap.aborts_sibling = aborts_sibling_.load();
  snap.aborts_predicate = aborts_predicate_.load();
  snap.aborts_explicit = aborts_explicit_.load();
  snap.aborts_injected = aborts_injected_.load();
  snap.top_escalations = top_escalations_.load();
  return snap;
}

void StmStats::reset() noexcept {
  top_commits_.reset();
  top_aborts_.reset();
  child_commits_.reset();
  child_aborts_.reset();
  reads_.reset();
  writes_.reset();
  aborts_validation_.reset();
  aborts_sibling_.reset();
  aborts_predicate_.reset();
  aborts_explicit_.reset();
  aborts_injected_.reset();
  top_escalations_.reset();
}

ContentionProfiler::ContentionProfiler(std::size_t capacity)
    : slots_(util::ceil_pow2(std::max<std::size_t>(2, capacity))),
      mask_(slots_.size() - 1) {}

void ContentionProfiler::note(const VBoxBase* box, std::uint64_t sub_key) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  // libstdc++'s pointer hash is the identity; fold the high bits down and
  // drop alignment zeros so heap neighbours don't all probe the same run.
  // The sub-key is mixed in so per-key samples of one hot bucket spread out.
  const auto raw = reinterpret_cast<std::uintptr_t>(box);
  std::size_t hash = static_cast<std::size_t>((raw >> 4) ^ (raw >> 20));
  if (sub_key != kWholeBox) {
    hash ^= static_cast<std::size_t>(sub_key * 0x9e3779b97f4a7c15ULL);
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[(hash + i) & mask_];
    const VBoxBase* key = slot.key.load(std::memory_order_acquire);
    if (key == nullptr) {
      // Claim the empty slot; a losing racer just re-examines it.
      if (slot.key.compare_exchange_strong(key, box,
                                           std::memory_order_acq_rel)) {
        slot.sub.store(sub_key, std::memory_order_relaxed);
        slot.sub_ready.store(true, std::memory_order_release);
        slot.count.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (key != box) continue;
    }
    if (key == box && slot.sub_ready.load(std::memory_order_acquire) &&
        slot.sub.load(std::memory_order_relaxed) == sub_key) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Occupied by another unit (or same box mid-claim): probe on. A mid-
    // claim miss can create a duplicate slot for this unit; hotspots()
    // re-aggregates duplicates by label, so only a probe step is wasted.
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<ContentionProfiler::Hotspot> ContentionProfiler::hotspots(
    std::size_t top_n) const {
  // Aggregate by rendered label: duplicate slots for one (box, sub) unit
  // (claim races) and distinct units sharing a label both fold together.
  std::unordered_map<std::string, std::uint64_t> by_label;
  for (const Slot& slot : slots_) {
    const VBoxBase* key = slot.key.load(std::memory_order_acquire);
    if (key == nullptr || !slot.sub_ready.load(std::memory_order_acquire)) {
      continue;
    }
    const std::uint64_t count = slot.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    std::string label;
    if (const std::string* box_label = key->label()) {
      label = *box_label;
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "box@%p",
                    static_cast<const void*>(key));
      label = buffer;
    }
    const std::uint64_t sub = slot.sub.load(std::memory_order_relaxed);
    if (sub != kWholeBox) {
      label += ".key=";
      label += std::to_string(sub);
    }
    by_label[std::move(label)] += count;
  }
  std::vector<Hotspot> out;
  out.reserve(by_label.size());
  for (auto& [label, count] : by_label) {
    out.push_back(Hotspot{label, count});
  }
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    return a.conflicts > b.conflicts;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

void ContentionProfiler::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sub_ready.store(false, std::memory_order_relaxed);
    slot.sub.store(0, std::memory_order_relaxed);
    slot.key.store(nullptr, std::memory_order_release);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace autopn::stm
