#pragma once
// Transactional containers built on versioned boxes. These are the building
// blocks the benchmark ports use: TArray backs the Array microbenchmark,
// TMap backs Vacation's reservation tables and TPC-C's relations, TQueue the
// producer/consumer hotspots.
//
// TMap and TQueue implement both conflict-unit policies of
// stm/predicate.hpp, selectable per instance:
//
//  * kBoxGranularity — the conservative baseline: whole-bucket copy-on-write
//    for TMap, exact cursor reads for TQueue. Every access is an exact read
//    of the enclosing box, so two inserts of *different* keys sharing a
//    bucket (or a push and a pop on a mid-full queue) abort each other.
//  * kSemantic — datatype-aware tracking (the STO idiom): TMap keeps a
//    per-entry version ("ever"), logs insert/erase/update ops into a delta
//    applied to the newest committed bucket at install time, and registers
//    key-absent / key-version predicates instead of bucket reads; TQueue
//    guards push's fullness check and pop's emptiness check with monotone
//    cursor-bound predicates instead of exact cursor reads. Disjoint-key
//    operations in one bucket, and disjoint push/pop on a mid-full queue,
//    never conflict.
//
// bench/container_sweep measures the two policies against each other;
// DESIGN.md "Semantic validation" specifies the predicate grammar and the
// merge/commit rules the deltas and predicates obey.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "stm/predicate.hpp"
#include "stm/tx.hpp"

namespace autopn::stm {

namespace detail {

/// Sub-box id of a key for per-key contention attribution: the key itself
/// for integral keys (readable in hotspot labels), its hash otherwise.
template <typename Key, typename Hash>
[[nodiscard]] std::uint64_t sub_key_of(const Key& key) noexcept {
  if constexpr (std::is_integral_v<Key>) {
    return static_cast<std::uint64_t>(key);
  } else {
    return static_cast<std::uint64_t>(Hash{}(key));
  }
}

/// "name" or, when no name was given, a pointer-derived fallback so labels
/// of unnamed containers stay distinguishable in hotspot reports.
[[nodiscard]] inline std::string label_prefix(const std::string& name,
                                              const void* self,
                                              const char* kind) {
  if (!name.empty()) return name;
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%s@%p", kind, self);
  return buffer;
}

}  // namespace detail

/// Fixed-size transactional array. Each slot is an independent VBox, so
/// disjoint-slot accesses never conflict. `name`, when given, labels every
/// slot ("name[i]") for the contention profiler.
template <typename T>
class TArray {
 public:
  TArray(std::size_t size, const T& initial, const std::string& name = {}) {
    slots_.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      slots_.push_back(std::make_unique<VBox<T>>(initial));
      if (!name.empty()) {
        slots_.back()->set_label(name + "[" + std::to_string(i) + "]");
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  [[nodiscard]] T read(Tx& tx, std::size_t index) const {
    return slot(index).read(tx);
  }

  void write(Tx& tx, std::size_t index, T value) const {
    slot(index).write(tx, std::move(value));
  }

  /// Non-transactional read of the newest committed value (verification).
  [[nodiscard]] T peek(std::size_t index) const { return slot(index).peek(); }

  [[nodiscard]] const VBox<T>& slot(std::size_t index) const {
    return *slots_.at(index);
  }

 private:
  std::vector<std::unique_ptr<VBox<T>>> slots_;
};

/// Transactional hash map with a fixed bucket array. Each bucket is a VBox
/// holding an immutable vector of entries; the conflict unit depends on the
/// policy (see file comment). Sized so the expected bucket population stays
/// small, this matches the red-black-tree tables of the original STAMP
/// Vacation port in access behaviour while remaining simple to reason about.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class TMap {
 public:
  /// One committed (or tentatively materialized) map entry. `ever` is the
  /// entry version: the installing commit's clock version, or
  /// kTentativeEver | merge-stamp for not-yet-committed materializations.
  struct Entry {
    Key key;
    Value value;
    std::uint64_t ever = 0;
  };
  using Bucket = std::vector<Entry>;

  /// The op log of one transaction against one bucket: blind upserts and
  /// erases, applied to the newest committed bucket at install time. An op
  /// on a key fully determines that key's subsequent state, which is what
  /// makes disjoint-key logs commute.
  class Delta final : public DeltaBase {
   public:
    struct Op {
      bool erase = false;
      Key key;
      std::optional<Value> value;  ///< engaged for upserts
      std::uint64_t stamp = 0;     ///< owning level's merge stamp
    };

    void add_upsert(Key key, Value value) {
      ops_.push_back(Op{false, std::move(key), std::move(value), 0});
    }
    void add_erase(Key key) {
      ops_.push_back(Op{true, std::move(key), std::nullopt, 0});
    }

    [[nodiscard]] std::shared_ptr<const void> apply(
        const void* base, std::uint64_t commit_version) const override {
      auto out = base != nullptr
                     ? std::make_shared<Bucket>(*static_cast<const Bucket*>(base))
                     : std::make_shared<Bucket>();
      for (const Op& op : ops_) {
        auto it = std::find_if(out->begin(), out->end(), [&](const Entry& e) {
          return e.key == op.key;
        });
        if (op.erase) {
          if (it != out->end()) out->erase(it);
          continue;
        }
        const std::uint64_t ever =
            commit_version != 0 ? commit_version : (kTentativeEver | op.stamp);
        if (it != out->end()) {
          it->value = *op.value;
          it->ever = ever;
        } else {
          out->push_back(Entry{op.key, *op.value, ever});
        }
      }
      return out;
    }

    [[nodiscard]] std::unique_ptr<DeltaBase> clone() const override {
      return std::make_unique<Delta>(*this);
    }

    void absorb(const DeltaBase& other, std::uint64_t stamp) override {
      const auto& delta = static_cast<const Delta&>(other);
      ops_.reserve(ops_.size() + delta.ops_.size());
      for (const Op& op : delta.ops_) {
        ops_.push_back(op);
        ops_.back().stamp = stamp;
      }
    }

    void restamp(std::uint64_t stamp) override {
      for (Op& op : ops_) op.stamp = stamp;
    }

    [[nodiscard]] std::size_t op_count() const noexcept override {
      return ops_.size();
    }

    /// The op that decides `key`'s state in this log (latest wins), or
    /// nullptr when the log does not touch the key.
    [[nodiscard]] const Op* last_op_for(const Key& key) const noexcept {
      for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
        if (it->key == key) return &*it;
      }
      return nullptr;
    }

    /// Whether any op with stamp > `after_stamp` touches `key`.
    [[nodiscard]] bool touches(const Key& key,
                               std::uint64_t after_stamp) const noexcept {
      for (const Op& op : ops_) {
        if (op.stamp > after_stamp && op.key == key) return true;
      }
      return false;
    }

   private:
    std::vector<Op> ops_;
  };

  /// "Key k is absent" (ever_ disengaged) or "key k is present at entry
  /// version e" — the two predicate forms a map read registers in place of
  /// an exact bucket read.
  class KeyPredicate final : public PredicateBase {
   public:
    KeyPredicate(const VBoxBase& box, Key key, std::optional<std::uint64_t> ever)
        : PredicateBase(box), key_(std::move(key)), ever_(ever) {}

    [[nodiscard]] bool holds(const void* value) const noexcept override {
      const auto& bucket = *static_cast<const Bucket*>(value);
      for (const Entry& entry : bucket) {
        if (entry.key == key_) {
          return ever_.has_value() && entry.ever == *ever_;
        }
      }
      return !ever_.has_value();
    }

    [[nodiscard]] bool overlaps(const DeltaBase& delta,
                                std::uint64_t after_stamp) const noexcept override {
      const auto* map_delta = dynamic_cast<const Delta*>(&delta);
      if (map_delta == nullptr) return true;  // foreign type: conservative
      return map_delta->touches(key_, after_stamp);
    }

    [[nodiscard]] bool same_as(const PredicateBase& other) const noexcept override {
      const auto* pred = dynamic_cast<const KeyPredicate*>(&other);
      return pred != nullptr && pred->key_ == key_ && pred->ever_ == ever_;
    }

    [[nodiscard]] std::uint64_t profile_key() const noexcept override {
      return detail::sub_key_of<Key, Hash>(key_);
    }

   private:
    Key key_;
    std::optional<std::uint64_t> ever_;
  };

  /// `name`, when given, labels every bucket ("name[i]") for the contention
  /// profiler (Stm::contention_hotspots); per-key predicate conflicts are
  /// further attributed as "name[i].key=<k>".
  explicit TMap(std::size_t bucket_count, const std::string& name = {},
                ContainerPolicy policy = ContainerPolicy::kSemantic)
      : policy_(policy) {
    if (bucket_count == 0) throw std::invalid_argument{"TMap needs >= 1 bucket"};
    buckets_.reserve(bucket_count);
    for (std::size_t i = 0; i < bucket_count; ++i) {
      buckets_.push_back(std::make_unique<VBox<Bucket>>(Bucket{}));
      if (!name.empty()) {
        buckets_.back()->set_label(name + "[" + std::to_string(i) + "]");
      }
    }
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] ContainerPolicy policy() const noexcept { return policy_; }

  /// Looks a key up; std::nullopt when absent. Under kSemantic this
  /// registers a key predicate (or nothing at all when this transaction's
  /// own pending ops decide the key) instead of an exact bucket read.
  [[nodiscard]] std::optional<Value> get(Tx& tx, const Key& key) const {
    const VBox<Bucket>& box = box_for(key);
    if (policy_ == ContainerPolicy::kBoxGranularity) {
      const auto bucket = tx.read_raw(box);
      return copy_value(find_entry(*cast(bucket), key));
    }
    // Own pending ops decide first — and need no tracking at all: a
    // self-determined fact cannot be invalidated.
    if (const auto* own = static_cast<const Delta*>(tx.pending_delta(box))) {
      if (const auto* op = own->last_op_for(key)) {
        if (op->erase) return std::nullopt;
        return *op->value;
      }
    }
    const auto resolved = tx.read_semantic(box);
    const Bucket& bucket = *cast(resolved);
    const Entry* entry = find_entry(bucket, key);
    if (!tx.has_pending_overwrite(box)) {
      tx.add_predicate(box, std::make_shared<KeyPredicate>(
                                box, key,
                                entry != nullptr
                                    ? std::optional<std::uint64_t>{entry->ever}
                                    : std::nullopt));
    }
    return copy_value(entry);
  }

  [[nodiscard]] bool contains(Tx& tx, const Key& key) const {
    return get(tx, key).has_value();
  }

  /// Inserts or overwrites. Under kSemantic this is a *blind upsert*: no
  /// read, no predicate, just an op logged for commit-time install — two
  /// puts of different keys never conflict, whatever bucket they share.
  void put(Tx& tx, const Key& key, Value value) const {
    const VBox<Bucket>& box = box_for(key);
    if (policy_ == ContainerPolicy::kBoxGranularity) {
      const auto read = tx.read_raw(box);
      Bucket bucket = *cast(read);
      if (Entry* entry = find_entry(bucket, key)) {
        entry->value = std::move(value);
      } else {
        bucket.push_back(Entry{key, std::move(value), 0});
      }
      tx.write_raw(box, std::make_shared<const Bucket>(std::move(bucket)));
      return;
    }
    auto delta = std::make_unique<Delta>();
    delta->add_upsert(key, std::move(value));
    tx.write_delta(box, std::move(delta));
  }

  /// Removes a key; returns whether it was present. The presence check
  /// registers a key predicate (semantic) or an exact bucket read (box).
  bool erase(Tx& tx, const Key& key) const {
    const VBox<Bucket>& box = box_for(key);
    if (policy_ == ContainerPolicy::kBoxGranularity) {
      const auto read = tx.read_raw(box);
      Bucket bucket = *cast(read);
      auto it = std::find_if(bucket.begin(), bucket.end(),
                             [&](const Entry& e) { return e.key == key; });
      if (it == bucket.end()) return false;
      bucket.erase(it);
      tx.write_raw(box, std::make_shared<const Bucket>(std::move(bucket)));
      return true;
    }
    if (!contains(tx, key)) return false;
    auto delta = std::make_unique<Delta>();
    delta->add_erase(key);
    tx.write_delta(box, std::move(delta));
    return true;
  }

  /// Applies `fn(key, value)` to every entry visible to the transaction
  /// (scans every bucket; O(capacity)). A whole-map scan genuinely depends
  /// on every bucket, so it records exact reads under either policy.
  void for_each(Tx& tx, const std::function<void(const Key&, const Value&)>& fn) const {
    for (const auto& box : buckets_) {
      const auto bucket = tx.read_raw(*box);
      for (const Entry& entry : *cast(bucket)) fn(entry.key, entry.value);
    }
  }

  /// Number of entries visible to the transaction (O(capacity); exact reads
  /// — the count depends on every bucket).
  [[nodiscard]] std::size_t size(Tx& tx) const {
    std::size_t n = 0;
    for (const auto& box : buckets_) n += cast(tx.read_raw(*box))->size();
    return n;
  }

 private:
  [[nodiscard]] static const Bucket* cast(const std::shared_ptr<const void>& p) {
    return static_cast<const Bucket*>(p.get());
  }

  [[nodiscard]] static const Entry* find_entry(const Bucket& bucket,
                                               const Key& key) {
    for (const Entry& entry : bucket) {
      if (entry.key == key) return &entry;
    }
    return nullptr;
  }
  [[nodiscard]] static Entry* find_entry(Bucket& bucket, const Key& key) {
    for (Entry& entry : bucket) {
      if (entry.key == key) return &entry;
    }
    return nullptr;
  }

  [[nodiscard]] static std::optional<Value> copy_value(const Entry* entry) {
    if (entry == nullptr) return std::nullopt;
    return entry->value;
  }

  [[nodiscard]] const VBox<Bucket>& box_for(const Key& key) const {
    return *buckets_[Hash{}(key) % buckets_.size()];
  }

  ContainerPolicy policy_;
  std::vector<std::unique_ptr<VBox<Bucket>>> buckets_;
};

/// A monotone bound on a queue cursor: "cursor >= bound" (kAtLeast) or
/// "cursor <= bound" (kAtMost). Cursors only grow, so kAtLeast predicates —
/// push's "enough pops have happened that I fit" and pop's "a push has
/// happened at my position" — can never be invalidated by more of the same
/// traffic; kAtMost captures an observed empty/full verdict, which any
/// opposite-end commit rightly invalidates.
class CursorPredicate final : public PredicateBase {
 public:
  enum class Kind { kAtLeast, kAtMost };

  CursorPredicate(const VBoxBase& box, Kind kind, std::size_t bound)
      : PredicateBase(box), kind_(kind), bound_(bound) {}

  [[nodiscard]] bool holds(const void* value) const noexcept override {
    const std::size_t cursor = *static_cast<const std::size_t*>(value);
    return kind_ == Kind::kAtLeast ? cursor >= bound_ : cursor <= bound_;
  }

  [[nodiscard]] bool overlaps(const DeltaBase& /*delta*/,
                              std::uint64_t /*after_stamp*/) const noexcept override {
    return true;  // cursors take full-value writes; a delta here is foreign
  }

  [[nodiscard]] bool same_as(const PredicateBase& other) const noexcept override {
    const auto* pred = dynamic_cast<const CursorPredicate*>(&other);
    return pred != nullptr && pred->kind_ == kind_ && pred->bound_ == bound_;
  }

 private:
  Kind kind_;
  std::size_t bound_;
};

/// Bounded transactional FIFO queue over a ring of VBox slots. Head and tail
/// cursors are independent boxes. Under kBoxGranularity, push exactly reads
/// both cursors, so every pop (which advances head) aborts every concurrent
/// push even on a mid-full queue; under kSemantic the fullness/emptiness
/// checks become monotone cursor-bound predicates and disjoint push/pop
/// commit conflict-free. Two pushes (or two pops) still conflict on their
/// shared cursor — the genuine queue hotspot.
template <typename T>
class TQueue {
 public:
  explicit TQueue(std::size_t capacity, const std::string& name = {},
                  ContainerPolicy policy = ContainerPolicy::kSemantic)
      : capacity_(capacity),
        policy_(policy),
        slots_(std::max<std::size_t>(capacity, 1), T{},
               detail::label_prefix(name, this, "tqueue") + ".slot"),
        head_(0),
        tail_(0) {
    if (capacity == 0) throw std::invalid_argument{"TQueue needs capacity >= 1"};
    const std::string prefix = detail::label_prefix(name, this, "tqueue");
    head_.set_label(prefix + ".head");
    tail_.set_label(prefix + ".tail");
  }

  /// Appends an element; returns false when the queue is full. The fullness
  /// check against head is a semantic cursor-bound read under kSemantic.
  bool push(Tx& tx, T value) const {
    const std::size_t tail = tail_.read(tx);  // pushes serialize on tail
    if (policy_ == ContainerPolicy::kBoxGranularity) {
      const std::size_t head = head_.read(tx);
      if (tail - head >= capacity_) return false;
    } else {
      const auto head_read = tx.read_semantic(head_);
      const std::size_t head = *static_cast<const std::size_t*>(head_read.get());
      const bool self = tx.has_pending_overwrite(head_);
      if (tail - head >= capacity_) {
        // Observed full: depends on head <= tail - capacity; any pop breaks
        // it (and must — a pop makes room this push should have taken).
        if (!self) {
          tx.add_predicate(head_, std::make_shared<CursorPredicate>(
                                      head_, CursorPredicate::Kind::kAtMost,
                                      tail - capacity_));
        }
        return false;
      }
      // Observed room: head >= tail + 1 - capacity, monotone under pops —
      // this is the predicate that makes pops stop aborting pushes.
      // Trivially true for the first `capacity` pushes (bound would be 0).
      if (!self && tail + 1 > capacity_) {
        tx.add_predicate(head_, std::make_shared<CursorPredicate>(
                                    head_, CursorPredicate::Kind::kAtLeast,
                                    tail + 1 - capacity_));
      }
    }
    slots_.write(tx, tail % capacity_, std::move(value));
    tail_.write(tx, tail + 1);
    return true;
  }

  /// Removes the oldest element; std::nullopt when empty. The emptiness
  /// check against tail is a semantic cursor-bound read under kSemantic.
  [[nodiscard]] std::optional<T> pop(Tx& tx) const {
    const std::size_t head = head_.read(tx);  // pops serialize on head
    if (policy_ == ContainerPolicy::kBoxGranularity) {
      const std::size_t tail = tail_.read(tx);
      if (head == tail) return std::nullopt;
    } else {
      const auto tail_read = tx.read_semantic(tail_);
      const std::size_t tail = *static_cast<const std::size_t*>(tail_read.get());
      const bool self = tx.has_pending_overwrite(tail_);
      if (head == tail) {
        // Observed empty: depends on tail <= head; any push breaks it.
        if (!self) {
          tx.add_predicate(tail_, std::make_shared<CursorPredicate>(
                                      tail_, CursorPredicate::Kind::kAtMost, head));
        }
        return std::nullopt;
      }
      // Observed an element at head: tail >= head + 1, monotone under
      // pushes — pushes stop aborting pops.
      if (!self) {
        tx.add_predicate(tail_, std::make_shared<CursorPredicate>(
                                    tail_, CursorPredicate::Kind::kAtLeast,
                                    head + 1));
      }
    }
    T value = slots_.read(tx, head % capacity_);
    head_.write(tx, head + 1);
    return value;
  }

  /// Oldest element without removing it; std::nullopt when empty. Exact
  /// reads: observing the element genuinely pins both cursors.
  [[nodiscard]] std::optional<T> front(Tx& tx) const {
    const std::size_t head = head_.read(tx);
    if (head == tail_.read(tx)) return std::nullopt;
    return slots_.read(tx, head % capacity_);
  }

  [[nodiscard]] std::size_t size(Tx& tx) const {
    return tail_.read(tx) - head_.read(tx);
  }
  [[nodiscard]] bool empty(Tx& tx) const { return size(tx) == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] ContainerPolicy policy() const noexcept { return policy_; }

  /// Committed element count outside any transaction (verification).
  [[nodiscard]] std::size_t peek_size() const {
    return tail_.peek() - head_.peek();
  }

 private:
  std::size_t capacity_;
  ContainerPolicy policy_;
  TArray<T> slots_;
  VBox<std::size_t> head_;
  VBox<std::size_t> tail_;
};

}  // namespace autopn::stm
