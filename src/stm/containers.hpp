#pragma once
// Transactional containers built on versioned boxes. These are the building
// blocks the benchmark ports use: TArray backs the Array microbenchmark,
// TMap backs Vacation's reservation tables and TPC-C's relations.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "stm/tx.hpp"

namespace autopn::stm {

/// Fixed-size transactional array. Each slot is an independent VBox, so
/// disjoint-slot accesses never conflict.
template <typename T>
class TArray {
 public:
  TArray(std::size_t size, const T& initial) {
    slots_.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      slots_.push_back(std::make_unique<VBox<T>>(initial));
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

  [[nodiscard]] T read(Tx& tx, std::size_t index) const {
    return slot(index).read(tx);
  }

  void write(Tx& tx, std::size_t index, T value) const {
    slot(index).write(tx, std::move(value));
  }

  /// Non-transactional read of the newest committed value (verification).
  [[nodiscard]] T peek(std::size_t index) const { return slot(index).peek(); }

  [[nodiscard]] const VBox<T>& slot(std::size_t index) const {
    return *slots_.at(index);
  }

 private:
  std::vector<std::unique_ptr<VBox<T>>> slots_;
};

/// Transactional hash map with a fixed bucket array. Each bucket is a VBox
/// holding an immutable vector of key/value pairs; writers copy the bucket
/// (copy-on-write), so bucket granularity is the conflict unit. Sized so the
/// expected bucket population stays small, this matches the red-black-tree
/// tables of the original STAMP Vacation port in conflict behaviour while
/// remaining simple to reason about.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class TMap {
 public:
  /// `name`, when given, labels every bucket ("name[i]") for the contention
  /// profiler (Stm::contention_hotspots).
  explicit TMap(std::size_t bucket_count, const std::string& name = {})
      : buckets_() {
    if (bucket_count == 0) throw std::invalid_argument{"TMap needs >= 1 bucket"};
    buckets_.reserve(bucket_count);
    for (std::size_t i = 0; i < bucket_count; ++i) {
      buckets_.push_back(std::make_unique<VBox<Bucket>>(Bucket{}));
      if (!name.empty()) {
        buckets_.back()->set_label(name + "[" + std::to_string(i) + "]");
      }
    }
  }

  [[nodiscard]] std::size_t bucket_count() const noexcept { return buckets_.size(); }

  /// Looks a key up; std::nullopt when absent.
  [[nodiscard]] std::optional<Value> get(Tx& tx, const Key& key) const {
    const Bucket bucket = box_for(key).read(tx);
    for (const auto& [k, v] : bucket) {
      if (k == key) return v;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool contains(Tx& tx, const Key& key) const {
    return get(tx, key).has_value();
  }

  /// Inserts or overwrites.
  void put(Tx& tx, const Key& key, Value value) const {
    const VBox<Bucket>& box = box_for(key);
    Bucket bucket = box.read(tx);
    for (auto& [k, v] : bucket) {
      if (k == key) {
        v = std::move(value);
        box.write(tx, std::move(bucket));
        return;
      }
    }
    bucket.emplace_back(key, std::move(value));
    box.write(tx, std::move(bucket));
  }

  /// Removes a key; returns whether it was present.
  bool erase(Tx& tx, const Key& key) const {
    const VBox<Bucket>& box = box_for(key);
    Bucket bucket = box.read(tx);
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].first == key) {
        bucket.erase(bucket.begin() + static_cast<std::ptrdiff_t>(i));
        box.write(tx, std::move(bucket));
        return true;
      }
    }
    return false;
  }

  /// Applies `fn(key, value)` to every committed entry, newest versions,
  /// inside the given transaction (scans every bucket; O(capacity)).
  void for_each(Tx& tx, const std::function<void(const Key&, const Value&)>& fn) const {
    for (const auto& box : buckets_) {
      const Bucket bucket = box->read(tx);
      for (const auto& [k, v] : bucket) fn(k, v);
    }
  }

  /// Number of entries visible to the transaction (O(capacity)).
  [[nodiscard]] std::size_t size(Tx& tx) const {
    std::size_t n = 0;
    for (const auto& box : buckets_) n += box->read(tx).size();
    return n;
  }

 private:
  using Bucket = std::vector<std::pair<Key, Value>>;

  [[nodiscard]] const VBox<Bucket>& box_for(const Key& key) const {
    return *buckets_[Hash{}(key) % buckets_.size()];
  }

  std::vector<std::unique_ptr<VBox<Bucket>>> buckets_;
};

/// Bounded transactional FIFO queue over a ring of VBox slots. Head and tail
/// cursors are independent boxes, so a push and a pop at different ends do
/// not conflict unless the queue is near-empty/near-full; two pushes (or two
/// pops) conflict on the shared cursor, giving the usual queue hotspot
/// semantics.
template <typename T>
class TQueue {
 public:
  explicit TQueue(std::size_t capacity)
      : capacity_(capacity), slots_(capacity, T{}), head_(0), tail_(0) {
    if (capacity == 0) throw std::invalid_argument{"TQueue needs capacity >= 1"};
  }

  /// Appends an element; returns false when the queue is full.
  bool push(Tx& tx, T value) const {
    const std::size_t head = head_.read(tx);
    const std::size_t tail = tail_.read(tx);
    if (tail - head >= capacity_) return false;
    slots_.write(tx, tail % capacity_, std::move(value));
    tail_.write(tx, tail + 1);
    return true;
  }

  /// Removes the oldest element; std::nullopt when empty.
  [[nodiscard]] std::optional<T> pop(Tx& tx) const {
    const std::size_t head = head_.read(tx);
    const std::size_t tail = tail_.read(tx);
    if (head == tail) return std::nullopt;
    T value = slots_.read(tx, head % capacity_);
    head_.write(tx, head + 1);
    return value;
  }

  /// Oldest element without removing it; std::nullopt when empty.
  [[nodiscard]] std::optional<T> front(Tx& tx) const {
    const std::size_t head = head_.read(tx);
    if (head == tail_.read(tx)) return std::nullopt;
    return slots_.read(tx, head % capacity_);
  }

  [[nodiscard]] std::size_t size(Tx& tx) const {
    return tail_.read(tx) - head_.read(tx);
  }
  [[nodiscard]] bool empty(Tx& tx) const { return size(tx) == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Committed element count outside any transaction (verification).
  [[nodiscard]] std::size_t peek_size() const {
    return tail_.peek() - head_.peek();
  }

 private:
  std::size_t capacity_;
  TArray<T> slots_;
  VBox<std::size_t> head_;
  VBox<std::size_t> tail_;
};

}  // namespace autopn::stm
