#pragma once
// Pluggable top-level commit protocols. A CommitManager owns the STM's
// serialization point: it validates a transaction's global read set against
// the version chains and installs its write set at a fresh clock version.
// Two protocols are provided, selected by StmConfig::commit_strategy at
// construction:
//
//  * GlobalLockCommitManager — validate + install under one commit mutex
//    (simple, predictable; the conservative baseline);
//  * LockFreeCommitManager — JVSTM-style helping commit: commit records are
//    CAS'd onto a chain and written back cooperatively (any thread may help
//    complete the latest record), so no thread ever blocks on a lock to
//    commit. Caveat measured by bench/stm_scaling and documented in
//    DESIGN.md §6: std::atomic<std::shared_ptr> is itself lock-BASED on
//    libstdc++, so the chain head CAS degrades to a tiny spinlock there;
//    serialization_lock_free() reports the truth for the build platform.
//
// Both managers depend only on the narrow runtime environment they are
// constructed with (clock, snapshot registry for pruning bounds, contention
// profiler for conflict attribution), never on Stm itself — they are
// independently constructible and unit-tested (tests/stm_commit_manager_test).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "stm/predicate.hpp"
#include "stm/snapshot_registry.hpp"
#include "stm/stats.hpp"
#include "stm/vbox.hpp"
#include "util/sync.hpp"

namespace autopn::stm {

namespace detail {
/// Memory order of the CAS that publishes a freshly chained CommitRecord
/// (LockFreeCommitManager::commit). A constant in production. Under AUTOPN_MC
/// the mc_commit_helping fixture flips `mc_weaken_record_publish` (before any
/// model thread spawns) to prove the checker reports the resulting
/// publication race on the record's non-atomic fields — the "annotations are
/// sufficient, not just explicit" demonstration of docs/MODEL_CHECKING.md.
#if defined(AUTOPN_MC) && AUTOPN_MC
inline bool mc_weaken_record_publish = false;
inline std::memory_order record_publish_order() noexcept {
  return mc_weaken_record_publish ? std::memory_order_relaxed
                                  : std::memory_order_acq_rel;
}
#else
constexpr std::memory_order record_publish_order() noexcept {
  return std::memory_order_acq_rel;
}
#endif
}  // namespace detail

/// How top-level commits serialize.
enum class CommitStrategy {
  /// Validate + install under a global commit mutex (simple, predictable).
  kGlobalLock,
  /// JVSTM-style lock-free commit: commit records are CAS'd onto a chain and
  /// written back cooperatively (any thread may help complete the latest
  /// record), so no thread ever blocks on a lock to commit.
  kLockFree,
};

/// One write to install: either a full value (box-granularity overwrite) or
/// a datatype op log applied to the newest committed value inside the commit
/// serialization — commit-time delta install, the reason two disjoint-key
/// transactions can both commit into one bucket without either clobbering
/// the other's entries.
struct CommitWrite {
  VBoxBase* box = nullptr;
  std::shared_ptr<const void> value;        ///< full overwrite (delta null)
  std::shared_ptr<const DeltaBase> delta;   ///< op log (value null)
};

/// One top-level commit, materialized from the transaction's read/write/
/// predicate sets.
struct CommitRequest {
  /// The root snapshot the transaction read from.
  std::uint64_t snapshot = 0;
  /// Boxes read exactly from the global version chain; the commit is valid
  /// only while each still has newest_version() <= snapshot at serialization
  /// time.
  std::vector<const VBoxBase*> read_boxes;
  /// Semantic predicates anchored on committed state; each must still
  /// holds() over its box's newest committed value at serialization time.
  /// Unlike read_boxes this tolerates the box having moved on — only changes
  /// that flip the predicate (the guarded key, the guarded cursor bound)
  /// abort.
  std::vector<std::shared_ptr<const PredicateBase>> predicates;
  /// New values / op logs to install, one entry per written box.
  std::vector<CommitWrite> writes;
};

class CommitManager {
 public:
  virtual ~CommitManager() = default;

  CommitManager(const CommitManager&) = delete;
  CommitManager& operator=(const CommitManager&) = delete;

  /// Serializes one top-level commit: validates `req.read_boxes` and
  /// `req.predicates`, then installs `req.writes` at a fresh version,
  /// publishing it to the clock. Throws ConflictError{kTopLevelValidation}
  /// when an exact read is stale and ConflictError{kPredicate} when a
  /// predicate no longer holds (the failing box — with the predicate's
  /// sub-key, where it has one — is reported to the contention profiler
  /// first). `req.writes` may be consumed even on failure; the caller
  /// rebuilds it on retry.
  virtual void commit(CommitRequest& req) = 0;

  /// Protocol name for diagnostics and bench labels.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Whether the serialization point is genuinely lock-free *on this build
  /// platform* (see file comment; false for kGlobalLock by construction, and
  /// false for kLockFree when atomic<shared_ptr> is lock-based).
  [[nodiscard]] virtual bool serialization_lock_free() const noexcept = 0;

 protected:
  CommitManager(sync::Atomic<std::uint64_t>& clock, SnapshotRegistry& snapshots,
                ContentionProfiler& profiler)
      : clock_(&clock), snapshots_(&snapshots), profiler_(&profiler) {}

  /// Shared validation: every read box's newest version must still be at or
  /// below the snapshot, and every predicate must still hold over its box's
  /// newest committed value. Reports the first failing box and throws.
  void validate_or_throw(const CommitRequest& req) const;

  /// Materializes one write for installation at `version`: the full value,
  /// or the delta applied to the box's newest committed value. Must run
  /// inside the serialization protocol, after validation.
  [[nodiscard]] static std::shared_ptr<const void> materialize(
      const CommitWrite& write, std::uint64_t version);

  sync::Atomic<std::uint64_t>* clock_;
  SnapshotRegistry* snapshots_;
  ContentionProfiler* profiler_;
};

/// Strategy kGlobalLock: one mutex serializes validate + install.
class GlobalLockCommitManager final : public CommitManager {
 public:
  GlobalLockCommitManager(sync::Atomic<std::uint64_t>& clock,
                          SnapshotRegistry& snapshots,
                          ContentionProfiler& profiler)
      : CommitManager(clock, snapshots, profiler) {}

  void commit(CommitRequest& req) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "global-lock";
  }
  [[nodiscard]] bool serialization_lock_free() const noexcept override {
    return false;
  }

 private:
  sync::Mutex mutex_;
};

/// Strategy kLockFree: JVSTM-style commit-record chain with helping.
class LockFreeCommitManager final : public CommitManager {
 public:
  LockFreeCommitManager(sync::Atomic<std::uint64_t>& clock,
                        SnapshotRegistry& snapshots,
                        ContentionProfiler& profiler);

  void commit(CommitRequest& req) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lock-free";
  }
  [[nodiscard]] bool serialization_lock_free() const noexcept override {
    return latest_.is_lock_free();
  }

 private:
  /// One commit's payload: the version it claims and the write set to
  /// install. `done` flips after every body is (idempotently) installed.
  /// Delta writes are materialized by whichever helper performs them — safe
  /// because the helping invariant pins each written box's newest committed
  /// body until this record's version is installed, so racing helpers
  /// compute the same value and install_cas arbitrates.
  struct CommitRecord {
    sync::Shared<std::uint64_t> version{0};
    sync::Shared<std::vector<CommitWrite>> writes;
    sync::Atomic<bool> done{true};
  };

  /// Completes a record's writeback (idempotent; any thread may help) and
  /// publishes its version to the clock.
  void help_commit(CommitRecord& record);

  sync::Atomic<std::shared_ptr<CommitRecord>> latest_;
};

/// Builds the manager for `strategy` over the given runtime environment.
[[nodiscard]] std::unique_ptr<CommitManager> make_commit_manager(
    CommitStrategy strategy, sync::Atomic<std::uint64_t>& clock,
    SnapshotRegistry& snapshots, ContentionProfiler& profiler);

}  // namespace autopn::stm
