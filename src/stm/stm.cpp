#include "stm/stm.hpp"

#include "stm/exceptions.hpp"

#include <algorithm>
#include <cstdio>
#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace autopn::stm {

/// Runtime counters; padded to distinct cache lines to avoid false sharing
/// between the hot read/write counters and the commit counters (Per.16/19).
struct Stm::Counters {
  alignas(64) std::atomic<std::uint64_t> top_commits{0};
  alignas(64) std::atomic<std::uint64_t> top_aborts{0};
  alignas(64) std::atomic<std::uint64_t> child_commits{0};
  alignas(64) std::atomic<std::uint64_t> child_aborts{0};
  alignas(64) std::atomic<std::uint64_t> reads{0};
  alignas(64) std::atomic<std::uint64_t> writes{0};
  // Abort breakdown; colder counters share a line.
  alignas(64) std::atomic<std::uint64_t> aborts_validation{0};
  std::atomic<std::uint64_t> aborts_sibling{0};
  std::atomic<std::uint64_t> aborts_explicit{0};
};

namespace {
/// RAII registration of a root snapshot in the active-snapshot registry.
///
/// The snapshot MUST be taken from the clock while holding the registry
/// mutex: reading the clock first and registering afterwards opens a window
/// in which a committer computes min_active_snapshot() without this
/// transaction, advances past its snapshot and prunes the very bodies it
/// needs (observed in the wild as "read of an uninitialized VBox" under
/// load). With the atomic read-and-register, any committer either sees this
/// snapshot in the registry or computed its minimum from a clock value that
/// is <= this snapshot — both retain every body the snapshot can reach.
class SnapshotGuard {
 public:
  SnapshotGuard(std::mutex& mutex, std::multiset<std::uint64_t>& registry,
                const std::atomic<std::uint64_t>& clock)
      : mutex_(&mutex), registry_(&registry) {
    std::scoped_lock lock{*mutex_};
    snapshot_ = clock.load(std::memory_order_acquire);
    it_ = registry_->insert(snapshot_);
  }
  ~SnapshotGuard() {
    std::scoped_lock lock{*mutex_};
    registry_->erase(it_);
  }
  SnapshotGuard(const SnapshotGuard&) = delete;
  SnapshotGuard& operator=(const SnapshotGuard&) = delete;

  [[nodiscard]] std::uint64_t snapshot() const noexcept { return snapshot_; }

 private:
  std::mutex* mutex_;
  std::multiset<std::uint64_t>* registry_;
  std::uint64_t snapshot_ = 0;
  std::multiset<std::uint64_t>::iterator it_;
};
}  // namespace

Stm::Stm(StmConfig config)
    : config_(config),
      top_gate_(std::max<std::size_t>(1, config.initial_top)),
      child_limit_(std::max<std::size_t>(1, config.initial_children)),
      pool_(std::max<std::size_t>(1, config.pool_threads)),
      counters_(std::make_unique<Counters>()) {
  // Sentinel record: version 0, already written back.
  latest_record_.store(std::make_shared<CommitRecord>());
}

void Stm::help_commit(CommitRecord& record) {
  if (!record.done.load(std::memory_order_acquire)) {
    const std::uint64_t min_active = min_active_snapshot();
    for (const auto& [box, value] : record.writes) {
      (void)box->install_cas(value, record.version, min_active);
    }
    record.done.store(true, std::memory_order_release);
  }
  // Publish the version (monotone max; helpers may race with later records).
  std::uint64_t current = clock_.load(std::memory_order_relaxed);
  while (current < record.version &&
         !clock_.compare_exchange_weak(current, record.version,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
}

Stm::~Stm() = default;

void Stm::run_top(const std::function<void(Tx&)>& body) {
  util::SemaphoreGuard top_permit{top_gate_};
  unsigned attempt = 0;
  for (;;) {
    SnapshotGuard snapshot_guard{snap_mutex_, active_snapshots_, clock_};
    Tx root{*this, nullptr, snapshot_guard.snapshot()};
    root.tree_gate_ = std::make_unique<util::ResizableSemaphore>(
        child_limit_.load(std::memory_order_relaxed));
    try {
      body(root);
      root.commit_top_level();
    } catch (const ConflictError& conflict) {
      counters_->top_aborts.fetch_add(1, std::memory_order_relaxed);
      detail::bump_conflict_kind(*this, conflict.kind());
      backoff(attempt++);
      continue;
    }
    counters_->top_commits.fetch_add(1, std::memory_order_relaxed);
    if (auto cb = commit_cb_.load(std::memory_order_acquire); cb && *cb) (*cb)();
    return;
  }
}

void Stm::run_read_only_impl(const std::function<void(Tx&)>& body) {
  util::SemaphoreGuard top_permit{top_gate_};
  SnapshotGuard snapshot_guard{snap_mutex_, active_snapshots_, clock_};
  Tx root{*this, nullptr, snapshot_guard.snapshot()};
  root.read_only_ = true;
  root.tree_gate_ = std::make_unique<util::ResizableSemaphore>(
      child_limit_.load(std::memory_order_relaxed));
  body(root);  // snapshot reads cannot conflict: no retry loop, no validation
  counters_->top_commits.fetch_add(1, std::memory_order_relaxed);
  if (auto cb = commit_cb_.load(std::memory_order_acquire); cb && *cb) (*cb)();
}

void Stm::set_top_limit(std::size_t t) {
  top_gate_.set_capacity(std::max<std::size_t>(1, t));
}

void Stm::set_child_limit(std::size_t c) {
  child_limit_.store(std::max<std::size_t>(1, c), std::memory_order_relaxed);
}

void Stm::set_commit_callback(std::shared_ptr<const std::function<void()>> cb) {
  commit_cb_.store(std::move(cb), std::memory_order_release);
}

StmStatsSnapshot Stm::stats() const {
  StmStatsSnapshot snap;
  snap.top_commits = counters_->top_commits.load(std::memory_order_relaxed);
  snap.top_aborts = counters_->top_aborts.load(std::memory_order_relaxed);
  snap.child_commits = counters_->child_commits.load(std::memory_order_relaxed);
  snap.child_aborts = counters_->child_aborts.load(std::memory_order_relaxed);
  snap.reads = counters_->reads.load(std::memory_order_relaxed);
  snap.writes = counters_->writes.load(std::memory_order_relaxed);
  snap.aborts_validation = counters_->aborts_validation.load(std::memory_order_relaxed);
  snap.aborts_sibling = counters_->aborts_sibling.load(std::memory_order_relaxed);
  snap.aborts_explicit = counters_->aborts_explicit.load(std::memory_order_relaxed);
  return snap;
}

void Stm::reset_stats() {
  counters_->top_commits.store(0, std::memory_order_relaxed);
  counters_->top_aborts.store(0, std::memory_order_relaxed);
  counters_->child_commits.store(0, std::memory_order_relaxed);
  counters_->child_aborts.store(0, std::memory_order_relaxed);
  counters_->reads.store(0, std::memory_order_relaxed);
  counters_->writes.store(0, std::memory_order_relaxed);
  counters_->aborts_validation.store(0, std::memory_order_relaxed);
  counters_->aborts_sibling.store(0, std::memory_order_relaxed);
  counters_->aborts_explicit.store(0, std::memory_order_relaxed);
}

void Stm::set_contention_profiling(bool enabled) {
  profiling_.store(enabled, std::memory_order_relaxed);
}

void Stm::note_conflict(const VBoxBase* box) {
  if (!profiling_.load(std::memory_order_relaxed)) return;
  std::scoped_lock lock{profile_mutex_};
  ++conflict_counts_[box];
}

std::vector<Stm::Hotspot> Stm::contention_hotspots(std::size_t top_n) const {
  std::vector<Hotspot> out;
  {
    std::scoped_lock lock{profile_mutex_};
    out.reserve(conflict_counts_.size());
    for (const auto& [box, count] : conflict_counts_) {
      Hotspot entry;
      entry.conflicts = count;
      if (const std::string* label = box->label()) {
        entry.label = *label;
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof buffer, "box@%p", static_cast<const void*>(box));
        entry.label = buffer;
      }
      out.push_back(std::move(entry));
    }
  }
  std::sort(out.begin(), out.end(), [](const Hotspot& a, const Hotspot& b) {
    return a.conflicts > b.conflicts;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

void Stm::reset_contention_profile() {
  std::scoped_lock lock{profile_mutex_};
  conflict_counts_.clear();
}

std::uint64_t Stm::min_active_snapshot() {
  std::scoped_lock lock{snap_mutex_};
  if (active_snapshots_.empty()) return clock_.load(std::memory_order_relaxed);
  return *active_snapshots_.begin();
}

void Stm::acquire_child_token(util::ResizableSemaphore& gate) {
  using namespace std::chrono_literals;
  while (!gate.try_acquire()) {
    if (!pool_.try_run_one()) std::this_thread::sleep_for(50us);
  }
}

void Stm::backoff(unsigned attempt) {
  using namespace std::chrono_literals;
  thread_local util::Rng rng{0x5bd1e995u ^
                             std::hash<std::thread::id>{}(std::this_thread::get_id())};
  const unsigned capped = std::min(attempt, 6u);
  const auto ceiling = std::chrono::microseconds{(1u << capped) * 20u};
  std::this_thread::sleep_for(ceiling * rng.uniform(0.5, 1.0));
}

namespace detail {
void bump_reads(Stm& stm) {
  stm.counters_->reads.fetch_add(1, std::memory_order_relaxed);
}
void bump_writes(Stm& stm) {
  stm.counters_->writes.fetch_add(1, std::memory_order_relaxed);
}
void bump_child_commit(Stm& stm) {
  stm.counters_->child_commits.fetch_add(1, std::memory_order_relaxed);
}
void bump_conflict_kind(Stm& stm, ConflictKind kind) {
  auto& counters = *stm.counters_;
  switch (kind) {
    case ConflictKind::kTopLevelValidation:
      counters.aborts_validation.fetch_add(1, std::memory_order_relaxed);
      break;
    case ConflictKind::kSiblingWrite:
    case ConflictKind::kStaleReRead:
      counters.aborts_sibling.fetch_add(1, std::memory_order_relaxed);
      break;
    case ConflictKind::kExplicitRetry:
      counters.aborts_explicit.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}
void bump_child_abort(Stm& stm, ConflictKind kind) {
  stm.counters_->child_aborts.fetch_add(1, std::memory_order_relaxed);
  bump_conflict_kind(stm, kind);
}
}  // namespace detail

}  // namespace autopn::stm
