#include "stm/stm.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "stm/exceptions.hpp"
#include "util/rng.hpp"

namespace autopn::stm {

namespace {

/// Thread-ambient give-up predicate; see ScopedDeadline.
thread_local const std::function<bool()>* ambient_deadline = nullptr;

/// RAII share of the normal commit phase. Construction waits out any
/// announced escalation (rare path: yield/sleep); the share is held across
/// one attempt's body + commit and dropped before any backoff sleep, so a
/// retrier never blocks an escalator while sleeping.
class NormalPhaseShare {
 public:
  explicit NormalPhaseShare(std::atomic<int>& normal_phase,
                           std::atomic<int>& escalated_waiting)
      : normal_phase_(normal_phase) {
    using namespace std::chrono_literals;
    for (;;) {
      // seq_cst: ordered against the announce
      normal_phase_.fetch_add(1, std::memory_order_seq_cst);
      if (escalated_waiting.load(std::memory_order_seq_cst) == 0) return;
      // An escalated attempt is draining the phase; step aside until it has
      // finished (it holds exclusivity only briefly — one serialized tx).
      normal_phase_.fetch_sub(1, std::memory_order_seq_cst);
      std::this_thread::sleep_for(20us);
    }
  }
  ~NormalPhaseShare() { normal_phase_.fetch_sub(1, std::memory_order_seq_cst); }

  NormalPhaseShare(const NormalPhaseShare&) = delete;
  NormalPhaseShare& operator=(const NormalPhaseShare&) = delete;

 private:
  std::atomic<int>& normal_phase_;
};

bool give_up_expired(const std::function<bool()>* give_up) {
  if (give_up != nullptr && *give_up) return (*give_up)();
  return ScopedDeadline::expired_now();
}

}  // namespace

// ---- ScopedDeadline --------------------------------------------------------

ScopedDeadline::ScopedDeadline(std::function<bool()> expired)
    : expired_(std::move(expired)), previous_(ambient_deadline) {
  ambient_deadline = expired_ ? &expired_ : nullptr;
}

ScopedDeadline::~ScopedDeadline() { ambient_deadline = previous_; }

bool ScopedDeadline::expired_now() {
  return ambient_deadline != nullptr && (*ambient_deadline)();
}

// ---- backoff ---------------------------------------------------------------

std::chrono::microseconds backoff_delay(unsigned attempt,
                                        util::Rng& rng) noexcept {
  const unsigned capped = std::min(attempt, kBackoffCapAttempt);
  const auto ceiling = kBackoffBase * (1u << capped);
  // Multiplicative jitter in [0.5, 1.0): colliding transactions that aborted
  // together spread over half the ceiling instead of retrying in lockstep.
  return std::chrono::duration_cast<std::chrono::microseconds>(
      ceiling * rng.uniform(0.5, 1.0));
}

// ---- Stm -------------------------------------------------------------------

Stm::Stm(StmConfig config)
    : config_(config),
      snapshots_(clock_, config.snapshot_slots),
      commit_manager_(make_commit_manager(config.commit_strategy, clock_,
                                          snapshots_, profiler_)),
      top_gate_(std::max<std::size_t>(1, config.initial_top)),
      child_limit_(std::max<std::size_t>(1, config.initial_children)),
      pool_(std::max<std::size_t>(1, config.pool_threads)) {}

Stm::~Stm() = default;

void Stm::run_top(const std::function<void(Tx&)>& body,
                  const RunOptions& options) {
  util::SemaphoreGuard top_permit{top_gate_};
  const unsigned budget =
      options.retry_budget != 0 ? options.retry_budget : config_.retry_budget;
  const std::function<bool()>* give_up =
      options.give_up ? &options.give_up : nullptr;
  unsigned attempt = 0;
  for (;;) {
    if (budget != 0 && attempt >= budget) {
      // Retry budget exhausted: this transaction is starving. Run the next
      // attempt serialized against every other commit — guaranteed to
      // validate, so it finishes.
      run_top_escalated(body, give_up);
      return;
    }
    std::optional<NormalPhaseShare> phase;
    phase.emplace(normal_phase_, escalated_waiting_);
    SnapshotRegistry::Handle snapshot = snapshots_.acquire();
    Tx root{*this, nullptr, snapshot.snapshot()};
    root.tree_gate_ = std::make_unique<util::ResizableSemaphore>(
        child_limit_.load(std::memory_order_relaxed));
    try {
      body(root);
      root.commit_top_level();
    } catch (const ConflictError& conflict) {
      stats_.bump_top_abort(conflict.kind());
      // Release the snapshot registration and the phase share before
      // sleeping: the registry gates version pruning, and a pending
      // escalation must never wait on a retrier's backoff.
      snapshot.release();
      phase.reset();
      if (give_up_expired(give_up)) throw DeadlineExceeded{};
      backoff(attempt++);
      continue;
    }
    stats_.bump_top_commit();
    notify_commit();
    return;
  }
}

void Stm::run_top_escalated(const std::function<void(Tx&)>& body,
                            const std::function<bool()>* give_up) {
  using namespace std::chrono_literals;
  std::scoped_lock serialize{escalation_mutex_};
  // seq_cst announce (Dekker, see header)
  escalated_waiting_.fetch_add(1, std::memory_order_seq_cst);
  struct Withdraw {
    std::atomic<int>& waiting;
    ~Withdraw() { waiting.fetch_sub(1, std::memory_order_seq_cst); }
  } withdraw{escalated_waiting_};
  // Drain in-flight normal attempts; new ones step aside once they observe
  // the announcement, so this wait is bounded by one attempt's duration.
  while (normal_phase_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::sleep_for(20us);

  stats_.bump_top_escalation();
  for (;;) {
    SnapshotRegistry::Handle snapshot = snapshots_.acquire();
    Tx root{*this, nullptr, snapshot.snapshot()};
    root.escalated_ = true;
    root.tree_gate_ = std::make_unique<util::ResizableSemaphore>(
        child_limit_.load(std::memory_order_relaxed));
    try {
      body(root);
      root.commit_top_level();
    } catch (const ConflictError& conflict) {
      // Under exclusivity validation cannot fail; only an explicit user
      // retry() (or a child-level conflict surfacing through the body)
      // lands here. Keep the exclusive slot and retry serialized.
      stats_.bump_top_abort(conflict.kind());
      snapshot.release();
      if (give_up_expired(give_up)) throw DeadlineExceeded{};
      continue;
    }
    break;
  }
  stats_.bump_top_commit();
  notify_commit();
}

void Stm::run_read_only_impl(const std::function<void(Tx&)>& body) {
  util::SemaphoreGuard top_permit{top_gate_};
  SnapshotRegistry::Handle snapshot = snapshots_.acquire();
  Tx root{*this, nullptr, snapshot.snapshot()};
  root.read_only_ = true;
  root.tree_gate_ = std::make_unique<util::ResizableSemaphore>(
      child_limit_.load(std::memory_order_relaxed));
  body(root);  // snapshot reads cannot conflict: no retry loop, no validation
  stats_.bump_top_commit();
  notify_commit();
}

void Stm::notify_commit() {
  if (!has_commit_cb_.load(std::memory_order_acquire)) return;
  // seq_cst RMW: orders against set_commit_callback's nullptr store, so a
  // committer that increments after the removal necessarily reloads null
  // below, and one that loaded a live callback is visible to the remover's
  // quiescence spin.
  commit_cb_inflight_.fetch_add(1, std::memory_order_seq_cst);
  if (const auto* cb = commit_cb_.load(std::memory_order_seq_cst); cb && *cb)
    (*cb)();
  commit_cb_inflight_.fetch_sub(1, std::memory_order_seq_cst);
}

void Stm::set_top_limit(std::size_t t) {
  top_gate_.set_capacity(std::max<std::size_t>(1, t));
}

void Stm::set_child_limit(std::size_t c) {
  child_limit_.store(std::max<std::size_t>(1, c), std::memory_order_relaxed);
}

void Stm::set_commit_callback(std::shared_ptr<const std::function<void()>> cb) {
  // Retire whatever is currently installed first: committers that already
  // loaded the raw pointer may still be inside the callback, so quiesce
  // before dropping the owning reference. Only then install the replacement
  // (pointer before flag, so a committer that observes the flag always finds
  // it). A commit racing with installation may miss one notification; the
  // monitor's windows tolerate that.
  has_commit_cb_.store(false, std::memory_order_seq_cst);
  commit_cb_.store(nullptr, std::memory_order_seq_cst);
  while (commit_cb_inflight_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  commit_cb_owner_ = std::move(cb);
  if (commit_cb_owner_) {
    commit_cb_.store(commit_cb_owner_.get(), std::memory_order_seq_cst);
    has_commit_cb_.store(true, std::memory_order_release);
  }
}

void Stm::acquire_child_token(util::ResizableSemaphore& gate) {
  using namespace std::chrono_literals;
  while (!gate.try_acquire()) {
    if (!pool_.try_run_one()) std::this_thread::sleep_for(50us);
  }
}

void Stm::backoff(unsigned attempt) {
  thread_local util::Rng rng{0x5bd1e995u ^
                             std::hash<std::thread::id>{}(std::this_thread::get_id())};
  std::this_thread::sleep_for(backoff_delay(attempt, rng));
}

}  // namespace autopn::stm
