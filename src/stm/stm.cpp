#include "stm/stm.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "stm/exceptions.hpp"
#include "util/rng.hpp"

namespace autopn::stm {

Stm::Stm(StmConfig config)
    : config_(config),
      snapshots_(clock_, config.snapshot_slots),
      commit_manager_(make_commit_manager(config.commit_strategy, clock_,
                                          snapshots_, profiler_)),
      top_gate_(std::max<std::size_t>(1, config.initial_top)),
      child_limit_(std::max<std::size_t>(1, config.initial_children)),
      pool_(std::max<std::size_t>(1, config.pool_threads)) {}

Stm::~Stm() = default;

void Stm::run_top(const std::function<void(Tx&)>& body) {
  util::SemaphoreGuard top_permit{top_gate_};
  unsigned attempt = 0;
  for (;;) {
    SnapshotRegistry::Handle snapshot = snapshots_.acquire();
    Tx root{*this, nullptr, snapshot.snapshot()};
    root.tree_gate_ = std::make_unique<util::ResizableSemaphore>(
        child_limit_.load(std::memory_order_relaxed));
    try {
      body(root);
      root.commit_top_level();
    } catch (const ConflictError& conflict) {
      stats_.bump_top_abort(conflict.kind());
      backoff(attempt++);
      continue;
    }
    stats_.bump_top_commit();
    notify_commit();
    return;
  }
}

void Stm::run_read_only_impl(const std::function<void(Tx&)>& body) {
  util::SemaphoreGuard top_permit{top_gate_};
  SnapshotRegistry::Handle snapshot = snapshots_.acquire();
  Tx root{*this, nullptr, snapshot.snapshot()};
  root.read_only_ = true;
  root.tree_gate_ = std::make_unique<util::ResizableSemaphore>(
      child_limit_.load(std::memory_order_relaxed));
  body(root);  // snapshot reads cannot conflict: no retry loop, no validation
  stats_.bump_top_commit();
  notify_commit();
}

void Stm::notify_commit() {
  if (!has_commit_cb_.load(std::memory_order_acquire)) return;
  // seq_cst RMW: orders against set_commit_callback's nullptr store, so a
  // committer that increments after the removal necessarily reloads null
  // below, and one that loaded a live callback is visible to the remover's
  // quiescence spin.
  commit_cb_inflight_.fetch_add(1);
  if (auto cb = commit_cb_.load(); cb && *cb) (*cb)();
  commit_cb_inflight_.fetch_sub(1);
}

void Stm::set_top_limit(std::size_t t) {
  top_gate_.set_capacity(std::max<std::size_t>(1, t));
}

void Stm::set_child_limit(std::size_t c) {
  child_limit_.store(std::max<std::size_t>(1, c), std::memory_order_relaxed);
}

void Stm::set_commit_callback(std::shared_ptr<const std::function<void()>> cb) {
  // Store the callback before raising the flag so a committer that observes
  // the flag always finds the callback. A commit racing with installation may
  // miss one notification; the monitor's windows tolerate that.
  const bool installed = cb != nullptr;
  commit_cb_.store(std::move(cb));
  has_commit_cb_.store(installed, std::memory_order_release);
  if (!installed) {
    // Quiesce removal: committers that loaded the old callback may still be
    // inside it; wait them out so the caller can safely tear down whatever
    // the callback captured.
    while (commit_cb_inflight_.load() != 0) std::this_thread::yield();
  }
}

void Stm::acquire_child_token(util::ResizableSemaphore& gate) {
  using namespace std::chrono_literals;
  while (!gate.try_acquire()) {
    if (!pool_.try_run_one()) std::this_thread::sleep_for(50us);
  }
}

void Stm::backoff(unsigned attempt) {
  using namespace std::chrono_literals;
  thread_local util::Rng rng{0x5bd1e995u ^
                             std::hash<std::thread::id>{}(std::this_thread::get_id())};
  const unsigned capped = std::min(attempt, 6u);
  const auto ceiling = std::chrono::microseconds{(1u << capped) * 20u};
  std::this_thread::sleep_for(ceiling * rng.uniform(0.5, 1.0));
}

}  // namespace autopn::stm
