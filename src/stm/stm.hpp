#pragma once
// The PN-STM runtime: global version clock, commit serialization, active-
// snapshot registry (for version pruning), the shared nested-transaction
// thread pool (set P of paper §III-A), the actuator gates bounding top-level
// (t) and per-tree nested (c) concurrency, and statistics.
//
// This is the C++ counterpart of JVSTM extended with the paper's actuator
// hooks: begin/commit of top-level transactions pass through a resizable
// semaphore of capacity t; child spawns pass through a per-tree semaphore of
// capacity c (created per top-level attempt from the current setting, so
// reconfigurations drain naturally and never interrupt running transactions).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "stm/tx.hpp"
#include "util/semaphore.hpp"
#include "util/thread_pool.hpp"

namespace autopn::stm {

class Stm;

enum class ConflictKind;

namespace detail {
// Counter shims used by Tx (keeps the padded counter block private to Stm).
void bump_reads(Stm& stm);
void bump_writes(Stm& stm);
void bump_child_commit(Stm& stm);
void bump_child_abort(Stm& stm, ConflictKind kind);
void bump_conflict_kind(Stm& stm, ConflictKind kind);
}  // namespace detail

/// How top-level commits serialize.
enum class CommitStrategy {
  /// Validate + install under a global commit mutex (simple, predictable).
  kGlobalLock,
  /// JVSTM-style lock-free commit: commit records are CAS'd onto a chain and
  /// written back cooperatively (any thread may help complete the latest
  /// record), so no thread ever blocks on a lock to commit.
  kLockFree,
};

/// Construction-time parameters of the runtime.
struct StmConfig {
  /// n: total cores of the (possibly simulated) machine; bounds t*c in the
  /// admissible configuration space but is not enforced by the runtime
  /// itself — enforcing it is the optimizer's job.
  std::size_t max_cores = 48;
  /// |P|: worker threads shared by all nested transactions.
  std::size_t pool_threads = 4;
  /// Initial actuator settings (t, c).
  std::size_t initial_top = 1;
  std::size_t initial_children = 1;
  /// Top-level commit serialization (paper-faithful default: lock-free, as
  /// JVSTM; kGlobalLock is the conservative alternative).
  CommitStrategy commit_strategy = CommitStrategy::kLockFree;
};

/// Point-in-time copy of the runtime counters.
struct StmStatsSnapshot {
  std::uint64_t top_commits = 0;
  std::uint64_t top_aborts = 0;
  std::uint64_t child_commits = 0;
  std::uint64_t child_aborts = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  // Abort breakdown by conflict kind (top_aborts + child_aborts ==
  // validation + sibling + explicit).
  std::uint64_t aborts_validation = 0;  ///< top-level read-set validation
  std::uint64_t aborts_sibling = 0;     ///< child vs sibling merge conflicts
  std::uint64_t aborts_explicit = 0;    ///< user-requested retry()

  [[nodiscard]] double top_abort_rate() const {
    const double attempts = static_cast<double>(top_commits + top_aborts);
    return attempts > 0 ? static_cast<double>(top_aborts) / attempts : 0.0;
  }
};

class Stm {
 public:
  explicit Stm(StmConfig config);
  ~Stm();

  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;

  /// Executes `body` as a top-level transaction, retrying on conflicts until
  /// it commits. Blocks at the actuator's t-gate while the configured number
  /// of concurrent top-level transactions is reached. User exceptions abort
  /// the transaction and propagate.
  void run_top(const std::function<void(Tx&)>& body);

  /// Convenience wrapper returning a value computed inside the transaction.
  template <typename T>
  [[nodiscard]] T run_top_returning(const std::function<T(Tx&)>& body) {
    T result{};
    run_top([&](Tx& tx) { result = body(tx); });
    return result;
  }

  /// Read-only transaction fast path: in a multi-version STM a snapshot read
  /// can never conflict, so there is no retry loop and no commit validation.
  /// The body MUST NOT write (enforced: a write throws std::logic_error).
  template <typename T>
  [[nodiscard]] T read_only(const std::function<T(Tx&)>& body);

  // ---- actuator interface ---------------------------------------------

  /// Sets the maximum number of concurrent top-level transactions (t >= 1).
  void set_top_limit(std::size_t t);
  /// Sets the maximum number of concurrent nested transactions per tree
  /// (c >= 1); applies to trees started after the call.
  void set_child_limit(std::size_t c);
  [[nodiscard]] std::size_t top_limit() const { return top_gate_.capacity(); }
  [[nodiscard]] std::size_t child_limit() const {
    return child_limit_.load(std::memory_order_relaxed);
  }

  // ---- monitoring interface -------------------------------------------

  /// Installs a callback invoked after every successful top-level commit
  /// (outside the commit lock). Pass nullptr to remove. The KPI monitor uses
  /// this to timestamp commit events (paper §VI).
  void set_commit_callback(std::shared_ptr<const std::function<void()>> cb);

  [[nodiscard]] StmStatsSnapshot stats() const;
  void reset_stats();

  // ---- contention profiling ---------------------------------------------

  /// One hotspot entry: a box (by label, or pointer rendering when
  /// unlabeled) and how many validation conflicts it caused.
  struct Hotspot {
    std::string label;
    std::uint64_t conflicts = 0;
  };

  /// Enables/disables recording of which box failed validation on each
  /// top-level abort (off by default; the check is one relaxed atomic load
  /// on the abort path only).
  void set_contention_profiling(bool enabled);
  [[nodiscard]] bool contention_profiling() const {
    return profiling_.load(std::memory_order_relaxed);
  }

  /// The `top_n` most conflict-prone boxes observed since profiling was
  /// enabled (descending).
  [[nodiscard]] std::vector<Hotspot> contention_hotspots(std::size_t top_n = 10) const;
  void reset_contention_profile();

  /// Current global version clock value.
  [[nodiscard]] std::uint64_t clock() const {
    return clock_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const StmConfig& config() const noexcept { return config_; }
  [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }

 private:
  friend class Tx;
  friend void detail::bump_reads(Stm&);
  friend void detail::bump_writes(Stm&);
  friend void detail::bump_child_commit(Stm&);
  friend void detail::bump_child_abort(Stm&, ConflictKind);
  friend void detail::bump_conflict_kind(Stm&, ConflictKind);

  /// Smallest snapshot any active transaction may read from (the clock value
  /// if none is active); versions older than the newest body at or below this
  /// are pruned at install time.
  [[nodiscard]] std::uint64_t min_active_snapshot();

  /// Acquires a child-gate token, helping to drain the nested pool while
  /// waiting so fork/join never deadlocks on a small pool.
  void acquire_child_token(util::ResizableSemaphore& gate);

  /// Exponential backoff with jitter between transaction retries.
  void backoff(unsigned attempt);

  /// Non-template body of read_only().
  void run_read_only_impl(const std::function<void(Tx&)>& body);

  /// Records a validation conflict on `box` (no-op unless profiling).
  void note_conflict(const VBoxBase* box);

  struct Counters;

  /// One lock-free commit's payload: the version it claims and the write set
  /// to install. `done` flips after every body is (idempotently) installed.
  struct CommitRecord {
    std::uint64_t version = 0;
    std::vector<std::pair<VBoxBase*, std::shared_ptr<const void>>> writes;
    std::atomic<bool> done{true};
  };

  /// Completes a record's writeback (idempotent; any thread may help) and
  /// publishes its version to the clock.
  void help_commit(CommitRecord& record);

  StmConfig config_;
  std::atomic<std::uint64_t> clock_{0};
  std::mutex commit_mutex_;
  std::atomic<std::shared_ptr<CommitRecord>> latest_record_;

  std::mutex snap_mutex_;
  std::multiset<std::uint64_t> active_snapshots_;

  util::ResizableSemaphore top_gate_;
  std::atomic<std::size_t> child_limit_;
  util::ThreadPool pool_;

  std::unique_ptr<Counters> counters_;
  std::atomic<std::shared_ptr<const std::function<void()>>> commit_cb_{nullptr};

  std::atomic<bool> profiling_{false};
  mutable std::mutex profile_mutex_;
  std::unordered_map<const VBoxBase*, std::uint64_t> conflict_counts_;
};

template <typename T>
T Stm::read_only(const std::function<T(Tx&)>& body) {
  T result{};
  run_read_only_impl([&](Tx& tx) { result = body(tx); });
  return result;
}

}  // namespace autopn::stm
