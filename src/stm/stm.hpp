#pragma once
// The PN-STM runtime, composed from independently testable components: a
// global version clock, a pluggable CommitManager (commit serialization), a
// lock-free SnapshotRegistry (active snapshots for version pruning), sharded
// StmStats/ContentionProfiler (statistics and hotspot profiling), the shared
// nested-transaction thread pool (set P of paper §III-A), and the actuator
// gates bounding top-level (t) and per-tree nested (c) concurrency.
//
// This is the C++ counterpart of JVSTM extended with the paper's actuator
// hooks: begin/commit of top-level transactions pass through a resizable
// semaphore of capacity t; child spawns pass through a per-tree semaphore of
// capacity c (created per top-level attempt from the current setting, so
// reconfigurations drain naturally and never interrupt running transactions).
//
// Stm itself owns no serialization state: commit ordering lives in the
// CommitManager, snapshot tracking in the SnapshotRegistry, and statistics
// in sharded per-thread counters, so nothing here globally serializes
// run_top beyond the actuator's own t-gate.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "stm/commit_manager.hpp"
#include "stm/snapshot_registry.hpp"
#include "stm/stats.hpp"
#include "stm/tx.hpp"
#include "util/semaphore.hpp"
#include "util/thread_pool.hpp"

namespace autopn::util {
class Rng;
}  // namespace autopn::util

namespace autopn::stm {

/// Construction-time parameters of the runtime.
struct StmConfig {
  /// n: total cores of the (possibly simulated) machine; bounds t*c in the
  /// admissible configuration space but is not enforced by the runtime
  /// itself — enforcing it is the optimizer's job.
  std::size_t max_cores = 48;
  /// |P|: worker threads shared by all nested transactions.
  std::size_t pool_threads = 4;
  /// Initial actuator settings (t, c).
  std::size_t initial_top = 1;
  std::size_t initial_children = 1;
  /// Top-level commit serialization (paper-faithful default: lock-free, as
  /// JVSTM; kGlobalLock is the conservative alternative).
  CommitStrategy commit_strategy = CommitStrategy::kLockFree;
  /// Slots in the lock-free active-snapshot registry; transactions beyond
  /// this many simultaneously active fall back to a mutex-protected overflow
  /// path (see SnapshotRegistry).
  std::size_t snapshot_slots = SnapshotRegistry::kDefaultSlots;
  /// Self-healing guardrail: conflict-aborts a top-level transaction may
  /// suffer before its next attempt runs escalated — exclusive of all other
  /// commits, so validation cannot fail and the starved transaction is
  /// guaranteed to finish. 0 disables escalation (retry forever, the old
  /// behavior).
  unsigned retry_budget = 16;
};

/// Per-call knobs of Stm::run_top.
struct RunOptions {
  /// Overrides StmConfig::retry_budget when nonzero.
  unsigned retry_budget = 0;
  /// Checked between retry attempts (never mid-attempt); when it returns
  /// true the run stops retrying and throws DeadlineExceeded. Empty falls
  /// back to the thread-ambient predicate installed by ScopedDeadline.
  std::function<bool()> give_up;
};

/// Installs a thread-ambient give-up predicate consulted by every
/// Stm::run_top retry loop on this thread while the scope is alive — how the
/// serving layer propagates a request's deadline into transaction retry
/// loops without threading options through handler signatures. Scopes nest;
/// the innermost wins and the previous predicate is restored on destruction.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(std::function<bool()> expired);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

  /// The calling thread's current predicate result (false when none).
  [[nodiscard]] static bool expired_now();

 private:
  std::function<bool()> expired_;
  const std::function<bool()>* previous_;
};

/// Backoff schedule between top-level retry attempts: exponential in the
/// attempt number with the growth capped (kBackoffCapAttempt doublings of
/// kBackoffBase) and multiplicative per-call jitter in [0.5, 1.0) so
/// colliding transactions do not retry in lockstep. Pure — unit-testable.
inline constexpr std::chrono::microseconds kBackoffBase{20};
inline constexpr unsigned kBackoffCapAttempt = 6;
[[nodiscard]] std::chrono::microseconds backoff_delay(unsigned attempt,
                                                      util::Rng& rng) noexcept;

class Stm {
 public:
  explicit Stm(StmConfig config);
  ~Stm();

  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;

  /// Executes `body` as a top-level transaction, retrying on conflicts with
  /// capped+jittered backoff. After the retry budget is exhausted the next
  /// attempt runs escalated — serialized exclusively against all other
  /// commits — so a starved transaction is guaranteed to finish. Blocks at
  /// the actuator's t-gate while the configured number of concurrent
  /// top-level transactions is reached. User exceptions abort the
  /// transaction and propagate; an expired give-up predicate (explicit or
  /// ambient ScopedDeadline) throws DeadlineExceeded between attempts.
  void run_top(const std::function<void(Tx&)>& body,
               const RunOptions& options = {});

  /// Convenience wrapper returning a value computed inside the transaction.
  /// T needs no default constructor; the result of the committed attempt is
  /// moved out (earlier aborted attempts overwrite theirs).
  template <typename T>
  [[nodiscard]] T run_top_returning(const std::function<T(Tx&)>& body) {
    std::optional<T> result;
    run_top([&](Tx& tx) { result.emplace(body(tx)); });
    return std::move(*result);
  }

  /// Read-only transaction fast path: in a multi-version STM a snapshot read
  /// can never conflict, so there is no retry loop and no commit validation.
  /// The body MUST NOT write (enforced: a write throws std::logic_error).
  template <typename T>
  [[nodiscard]] T read_only(const std::function<T(Tx&)>& body) {
    std::optional<T> result;
    run_read_only_impl([&](Tx& tx) { result.emplace(body(tx)); });
    return std::move(*result);
  }

  // ---- actuator interface ---------------------------------------------

  /// Sets the maximum number of concurrent top-level transactions (t >= 1).
  void set_top_limit(std::size_t t);
  /// Sets the maximum number of concurrent nested transactions per tree
  /// (c >= 1); applies to trees started after the call.
  void set_child_limit(std::size_t c);
  [[nodiscard]] std::size_t top_limit() const { return top_gate_.capacity(); }
  [[nodiscard]] std::size_t child_limit() const {
    return child_limit_.load(std::memory_order_relaxed);
  }

  // ---- monitoring interface -------------------------------------------

  /// Installs a callback invoked after every successful top-level commit
  /// (outside the commit serialization). Pass nullptr to remove. The KPI
  /// monitor uses this to timestamp commit events (paper §VI).
  /// Removal quiesces: when the call returns, no invocation of the previous
  /// callback is still running, so the caller may destroy state the
  /// callback captured (the controller's condition variable, for one).
  void set_commit_callback(std::shared_ptr<const std::function<void()>> cb);

  [[nodiscard]] StmStatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }

  // ---- contention profiling -------------------------------------------

  using Hotspot = ContentionProfiler::Hotspot;

  /// Enables/disables recording of which box failed validation on each
  /// top-level abort (off by default; the check is one relaxed atomic load
  /// on the abort path only).
  void set_contention_profiling(bool enabled) {
    profiler_.set_enabled(enabled);
  }
  [[nodiscard]] bool contention_profiling() const {
    return profiler_.enabled();
  }

  /// The `top_n` most conflict-prone boxes observed since profiling was
  /// enabled (descending).
  [[nodiscard]] std::vector<Hotspot> contention_hotspots(
      std::size_t top_n = 10) const {
    return profiler_.hotspots(top_n);
  }
  void reset_contention_profile() { profiler_.reset(); }

  // ---- component access -----------------------------------------------

  /// Current global version clock value.
  [[nodiscard]] std::uint64_t clock() const {
    return clock_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const StmConfig& config() const noexcept { return config_; }
  [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] CommitManager& commit_manager() noexcept {
    return *commit_manager_;
  }
  [[nodiscard]] SnapshotRegistry& snapshots() noexcept { return snapshots_; }
  [[nodiscard]] StmStats& counters() noexcept { return stats_; }
  [[nodiscard]] ContentionProfiler& profiler() noexcept { return profiler_; }

 private:
  friend class Tx;

  /// Acquires a child-gate token, helping to drain the nested pool while
  /// waiting so fork/join never deadlocks on a small pool.
  void acquire_child_token(util::ResizableSemaphore& gate);

  /// Exponential backoff with jitter between transaction retries
  /// (backoff_delay applied to a per-thread Rng).
  void backoff(unsigned attempt);

  /// One escalated attempt: waits until no normal-phase attempt is in
  /// flight, then runs body + commit exclusively. Loops on the (rare)
  /// conflicts still possible under exclusivity (explicit user retry).
  void run_top_escalated(const std::function<void(Tx&)>& body,
                         const std::function<bool()>* give_up);

  /// Non-template body of read_only().
  void run_read_only_impl(const std::function<void(Tx&)>& body);

  /// Fires the commit callback if one is installed. The common no-callback
  /// case is a single acquire load of a plain bool; the callback pointer
  /// itself is a raw-pointer atomic (atomic<shared_ptr> is lock-based on
  /// libstdc++ and opaque to TSan), with ownership pinned in
  /// commit_cb_owner_ until set_commit_callback quiesces in-flight callers.
  void notify_commit();

  StmConfig config_;
  sync::Atomic<std::uint64_t> clock_{0};
  SnapshotRegistry snapshots_;
  StmStats stats_;
  ContentionProfiler profiler_;
  std::unique_ptr<CommitManager> commit_manager_;

  util::ResizableSemaphore top_gate_;
  std::atomic<std::size_t> child_limit_;
  util::ThreadPool pool_;

  std::atomic<bool> has_commit_cb_{false};
  std::atomic<const std::function<void()>*> commit_cb_{nullptr};
  std::atomic<int> commit_cb_inflight_{0};
  /// Keeps the installed callback alive while committers may hold the raw
  /// pointer. Written only by set_commit_callback (single installer — the
  /// tuning controller), after quiescing the previous callback.
  std::shared_ptr<const std::function<void()>> commit_cb_owner_;

  // Starvation-escalation gate (a hand-rolled writer-preferring rwlock whose
  // read side is two seq_cst RMWs, so the normal path never touches a
  // mutex): normal attempts hold a "normal phase" share across body+commit;
  // an escalated attempt announces itself in escalated_waiting_, drains the
  // shares, and then runs body+commit exclusively — no concurrent commit can
  // invalidate its reads, so it commits on the first try. seq_cst on both
  // sides closes the Dekker race (normal: add share, then check waiting;
  // escalated: announce, then check shares).
  std::atomic<int> escalated_waiting_{0};
  std::atomic<int> normal_phase_{0};
  std::mutex escalation_mutex_;  ///< serializes escalated attempts
};

}  // namespace autopn::stm
