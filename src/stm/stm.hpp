#pragma once
// The PN-STM runtime, composed from independently testable components: a
// global version clock, a pluggable CommitManager (commit serialization), a
// lock-free SnapshotRegistry (active snapshots for version pruning), sharded
// StmStats/ContentionProfiler (statistics and hotspot profiling), the shared
// nested-transaction thread pool (set P of paper §III-A), and the actuator
// gates bounding top-level (t) and per-tree nested (c) concurrency.
//
// This is the C++ counterpart of JVSTM extended with the paper's actuator
// hooks: begin/commit of top-level transactions pass through a resizable
// semaphore of capacity t; child spawns pass through a per-tree semaphore of
// capacity c (created per top-level attempt from the current setting, so
// reconfigurations drain naturally and never interrupt running transactions).
//
// Stm itself owns no serialization state: commit ordering lives in the
// CommitManager, snapshot tracking in the SnapshotRegistry, and statistics
// in sharded per-thread counters, so nothing here globally serializes
// run_top beyond the actuator's own t-gate.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "stm/commit_manager.hpp"
#include "stm/snapshot_registry.hpp"
#include "stm/stats.hpp"
#include "stm/tx.hpp"
#include "util/semaphore.hpp"
#include "util/thread_pool.hpp"

namespace autopn::stm {

/// Construction-time parameters of the runtime.
struct StmConfig {
  /// n: total cores of the (possibly simulated) machine; bounds t*c in the
  /// admissible configuration space but is not enforced by the runtime
  /// itself — enforcing it is the optimizer's job.
  std::size_t max_cores = 48;
  /// |P|: worker threads shared by all nested transactions.
  std::size_t pool_threads = 4;
  /// Initial actuator settings (t, c).
  std::size_t initial_top = 1;
  std::size_t initial_children = 1;
  /// Top-level commit serialization (paper-faithful default: lock-free, as
  /// JVSTM; kGlobalLock is the conservative alternative).
  CommitStrategy commit_strategy = CommitStrategy::kLockFree;
  /// Slots in the lock-free active-snapshot registry; transactions beyond
  /// this many simultaneously active fall back to a mutex-protected overflow
  /// path (see SnapshotRegistry).
  std::size_t snapshot_slots = SnapshotRegistry::kDefaultSlots;
};

class Stm {
 public:
  explicit Stm(StmConfig config);
  ~Stm();

  Stm(const Stm&) = delete;
  Stm& operator=(const Stm&) = delete;

  /// Executes `body` as a top-level transaction, retrying on conflicts until
  /// it commits. Blocks at the actuator's t-gate while the configured number
  /// of concurrent top-level transactions is reached. User exceptions abort
  /// the transaction and propagate.
  void run_top(const std::function<void(Tx&)>& body);

  /// Convenience wrapper returning a value computed inside the transaction.
  /// T needs no default constructor; the result of the committed attempt is
  /// moved out (earlier aborted attempts overwrite theirs).
  template <typename T>
  [[nodiscard]] T run_top_returning(const std::function<T(Tx&)>& body) {
    std::optional<T> result;
    run_top([&](Tx& tx) { result.emplace(body(tx)); });
    return std::move(*result);
  }

  /// Read-only transaction fast path: in a multi-version STM a snapshot read
  /// can never conflict, so there is no retry loop and no commit validation.
  /// The body MUST NOT write (enforced: a write throws std::logic_error).
  template <typename T>
  [[nodiscard]] T read_only(const std::function<T(Tx&)>& body) {
    std::optional<T> result;
    run_read_only_impl([&](Tx& tx) { result.emplace(body(tx)); });
    return std::move(*result);
  }

  // ---- actuator interface ---------------------------------------------

  /// Sets the maximum number of concurrent top-level transactions (t >= 1).
  void set_top_limit(std::size_t t);
  /// Sets the maximum number of concurrent nested transactions per tree
  /// (c >= 1); applies to trees started after the call.
  void set_child_limit(std::size_t c);
  [[nodiscard]] std::size_t top_limit() const { return top_gate_.capacity(); }
  [[nodiscard]] std::size_t child_limit() const {
    return child_limit_.load(std::memory_order_relaxed);
  }

  // ---- monitoring interface -------------------------------------------

  /// Installs a callback invoked after every successful top-level commit
  /// (outside the commit serialization). Pass nullptr to remove. The KPI
  /// monitor uses this to timestamp commit events (paper §VI).
  /// Removal quiesces: when the call returns, no invocation of the previous
  /// callback is still running, so the caller may destroy state the
  /// callback captured (the controller's condition variable, for one).
  void set_commit_callback(std::shared_ptr<const std::function<void()>> cb);

  [[nodiscard]] StmStatsSnapshot stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }

  // ---- contention profiling -------------------------------------------

  using Hotspot = ContentionProfiler::Hotspot;

  /// Enables/disables recording of which box failed validation on each
  /// top-level abort (off by default; the check is one relaxed atomic load
  /// on the abort path only).
  void set_contention_profiling(bool enabled) {
    profiler_.set_enabled(enabled);
  }
  [[nodiscard]] bool contention_profiling() const {
    return profiler_.enabled();
  }

  /// The `top_n` most conflict-prone boxes observed since profiling was
  /// enabled (descending).
  [[nodiscard]] std::vector<Hotspot> contention_hotspots(
      std::size_t top_n = 10) const {
    return profiler_.hotspots(top_n);
  }
  void reset_contention_profile() { profiler_.reset(); }

  // ---- component access -----------------------------------------------

  /// Current global version clock value.
  [[nodiscard]] std::uint64_t clock() const {
    return clock_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const StmConfig& config() const noexcept { return config_; }
  [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] CommitManager& commit_manager() noexcept {
    return *commit_manager_;
  }
  [[nodiscard]] SnapshotRegistry& snapshots() noexcept { return snapshots_; }
  [[nodiscard]] StmStats& counters() noexcept { return stats_; }
  [[nodiscard]] ContentionProfiler& profiler() noexcept { return profiler_; }

 private:
  friend class Tx;

  /// Acquires a child-gate token, helping to drain the nested pool while
  /// waiting so fork/join never deadlocks on a small pool.
  void acquire_child_token(util::ResizableSemaphore& gate);

  /// Exponential backoff with jitter between transaction retries.
  void backoff(unsigned attempt);

  /// Non-template body of read_only().
  void run_read_only_impl(const std::function<void(Tx&)>& body);

  /// Fires the commit callback if one is installed. The common no-callback
  /// case is a single acquire load of a plain bool: the callback itself lives
  /// in an atomic<shared_ptr>, which is lock-BASED on libstdc++ (measured in
  /// bench/stm_scaling, documented in DESIGN.md §6), so its load must stay
  /// off the fast path.
  void notify_commit();

  StmConfig config_;
  std::atomic<std::uint64_t> clock_{0};
  SnapshotRegistry snapshots_;
  StmStats stats_;
  ContentionProfiler profiler_;
  std::unique_ptr<CommitManager> commit_manager_;

  util::ResizableSemaphore top_gate_;
  std::atomic<std::size_t> child_limit_;
  util::ThreadPool pool_;

  std::atomic<bool> has_commit_cb_{false};
  std::atomic<std::shared_ptr<const std::function<void()>>> commit_cb_{nullptr};
  std::atomic<int> commit_cb_inflight_{0};
};

}  // namespace autopn::stm
