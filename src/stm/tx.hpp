#pragma once
// Transaction contexts for the multi-version PN-STM with closed parallel
// nesting (paper §III-A).
//
// Model: a top-level (root) transaction takes a snapshot of the global
// version clock; all reads in its tree resolve against that snapshot plus the
// tree's tentative writes, so snapshots are always consistent and no
// read-time validation is needed. A transaction may spawn children that run
// in parallel with one another (never with their parent — the parent blocks
// in run_children, matching the nested transaction model where only
// childless transactions access data).
//
// Read resolution order for a transaction X reading box B:
//   1. X's own write set (deltas materialized over the levels below);
//   2. X's cached reads (repeatable reads within one attempt);
//   3. nearest-ancestor write sets, walking towards the root (each guarded by
//      the ancestor's merge mutex, since X's siblings commit-merge into those
//      sets concurrently);
//   4. the global version chain at the root snapshot.
//
// Two kinds of read are tracked (stm/predicate.hpp):
//   * exact reads (read_raw) — the classic box-granularity entry: the read
//     entry remembers every ancestor write it consumed (owner + stamp) and
//     whether it bottomed out in the global chain, and commit-time
//     revalidation requires the box untouched (stamp equality at each merge
//     level, version <= snapshot at top level);
//   * semantic reads (read_semantic + add_predicate) — the container
//     registers a PredicateBase instead; revalidation re-evaluates the
//     predicate against the then-current value at each serialization point,
//     so disjoint-key operations on a shared box no longer conflict.
//
// Child commit merges the child's write set into the parent under the
// parent's merge mutex after validating the child's exact reads (stamps) and
// predicates (overlaps/holds against what siblings merged since) — deltas
// compose by op-log concatenation with fresh stamps. Reads and predicates of
// higher ancestors and of global state are propagated upwards and validated
// when the enclosing transaction itself commits (compositional validation).
// Top-level commit materializes the global read set, the predicate set and
// the write set (values and deltas) into a CommitRequest and hands it to the
// Stm's pluggable CommitManager, which validates both against the version
// chains / newest committed values and installs new versions under its
// serialization protocol (global lock or lock-free helping — see
// stm/commit_manager.hpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <mutex>
#include <utility>
#include <vector>

#include "stm/exceptions.hpp"
#include "stm/predicate.hpp"
#include "stm/vbox.hpp"
#include "util/semaphore.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::stm {

class Stm;

/// Transaction handle passed to user code. Created and retried by the Stm
/// runtime (top-level) or by Tx::run_children (nested); never constructed by
/// applications directly.
class Tx {
 public:
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  /// Runs each body as a child transaction of this transaction. Children of
  /// one batch execute in parallel with each other on the Stm's nested-
  /// transaction pool, subject to the actuator's per-tree concurrency limit
  /// `c`; the caller blocks (helping to drain the pool) until all children
  /// have committed. A child that hits a sibling conflict is retried alone.
  void run_children(std::vector<std::function<void(Tx&)>> bodies);

  /// Requests an abort-and-retry of this transaction attempt.
  [[noreturn]] void retry() { throw ConflictError{ConflictKind::kExplicitRetry}; }

  /// True for a top-level transaction.
  [[nodiscard]] bool is_top_level() const noexcept { return parent_ == nullptr; }

  /// Nesting depth: 0 for top-level, 1 for its children, ...
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// The root snapshot all global reads in this tree resolve against.
  [[nodiscard]] std::uint64_t snapshot() const noexcept { return snapshot_; }

  /// Untyped transactional read; returns the value's erased pointer and
  /// records an exact (box-granularity) read. VBox<T>::read is the typed
  /// entry point.
  [[nodiscard]] std::shared_ptr<const void> read_raw(const VBoxBase& box);

  /// Untyped transactional write (buffered full overwrite).
  void write_raw(const VBoxBase& box, std::shared_ptr<const void> value);

  // ---- semantic (datatype-aware) tracking -----------------------------

  /// Semantic read: resolves the value visible to this transaction (pending
  /// deltas materialized) WITHOUT recording an exact read. The caller must
  /// follow up with add_predicate() describing what it actually depends on;
  /// the resolution provenance is cached so the predicate can be anchored at
  /// the level whose tentative write it consumed.
  [[nodiscard]] std::shared_ptr<const void> read_semantic(const VBoxBase& box);

  /// Appends a datatype op log to the box's write entry (composing with any
  /// pending delta or materializing over a pending full value). The delta is
  /// applied to the newest committed value at install time.
  void write_delta(const VBoxBase& box, std::unique_ptr<DeltaBase> delta);

  /// Registers a semantic predicate for a box previously resolved with
  /// read_semantic, anchored at the levels that resolution consumed. No-ops
  /// when the box is already covered by an exact read (strictly stronger).
  /// When an ancestor's *tentative* op may have determined the guarded fact
  /// (the predicate overlaps() one of the resolution's ancestor deltas), the
  /// predicate becomes tree-local: validated at each merge level but never
  /// against committed state — by top-level commit the deciding op has
  /// merged into the root's own write set and will install, so a
  /// committed-state check would always falsely fail.
  void add_predicate(const VBoxBase& box,
                     std::shared_ptr<const PredicateBase> predicate);

  /// This transaction's own pending delta on `box` (nullptr when none, or
  /// when the pending write is a full value). Containers use it to tell
  /// self-determined facts (no predicate needed) from inherited ones.
  [[nodiscard]] const DeltaBase* pending_delta(const VBoxBase& box) const;

  /// True when this transaction has a pending *full overwrite* of `box` —
  /// every fact about the box is then self-determined and needs no
  /// predicate.
  [[nodiscard]] bool has_pending_overwrite(const VBoxBase& box) const;

  /// Number of entries in the write set (diagnostics).
  [[nodiscard]] std::size_t write_set_size() const noexcept { return writes_.size(); }

  /// Number of exact read-set entries (diagnostics).
  [[nodiscard]] std::size_t read_set_size() const noexcept { return reads_.size(); }

  /// Number of registered semantic predicates (diagnostics).
  [[nodiscard]] std::size_t predicate_count() const noexcept { return preds_.size(); }

 private:
  friend class Stm;

  struct WriteEntry {
    /// Pending full overwrite; null for delta-only entries. A full value
    /// always subsumes (drops) any older delta on the same box.
    std::shared_ptr<const void> value;
    /// Pending op log, applied to the newest committed value at install
    /// time; null for full-value entries.
    std::shared_ptr<DeltaBase> delta;
    std::uint64_t stamp;  ///< parent-local monotone stamp; bumped on merge
  };

  /// Levels whose pending write entries a resolution consumed, nearest
  /// first: (owning transaction, its entry's stamp at read time).
  using OwnerList = std::vector<std::pair<Tx*, std::uint64_t>>;

  /// One resolved read: the cached materialized value (repeatable within the
  /// attempt) plus provenance for commit-time revalidation. Exact entries
  /// revalidate structurally (stamp per owner level, version at top);
  /// semantic resolutions share the struct but live in sem_reads_ and are
  /// revalidated through predicates instead.
  struct ReadEntry {
    std::shared_ptr<const void> value;
    OwnerList owners;
    bool global_base = false;  ///< resolution reached the global chain
    /// Snapshots (clones) of the ancestor deltas the resolution applied,
    /// kept so add_predicate can ask a predicate whether a tentative op may
    /// have determined its fact (the tree-local test).
    std::vector<std::shared_ptr<const DeltaBase>> anc_deltas;
  };

  struct PredEntry {
    std::shared_ptr<const PredicateBase> pred;
    OwnerList owners;
    bool global_base = false;
  };

  Tx(Stm& stm, Tx* parent, std::uint64_t snapshot);

  /// Resolves the value visible to this transaction ABOVE its own write set:
  /// nearest-ancestor entries (materializing pending deltas) down to the
  /// global chain at the root snapshot. Fills owners/global_base provenance.
  [[nodiscard]] ReadEntry resolve_above(VBoxBase* box);

  /// Shared body of read_raw/read_semantic: the cached-or-resolved base
  /// value for `box` from the given cache map, with this tx's own pending
  /// delta (if any) materialized on top of the returned value by the caller.
  [[nodiscard]] const ReadEntry& base_entry(
      VBoxBase* box, std::unordered_map<VBoxBase*, ReadEntry>& cache);

  /// Validates this child's exact reads and predicates against the parent's
  /// current write set and merges writes/reads/predicates upwards. Throws
  /// ConflictError on a sibling conflict.
  void commit_into_parent();

  /// Top-level commit: validate global reads + predicates, install writes
  /// (values and deltas). Throws ConflictError on validation failure.
  void commit_top_level();

  Stm* stm_;
  Tx* parent_;
  Tx* root_;
  std::uint64_t snapshot_;
  int depth_;

  // merge_mutex_ guards writes_/reads_/sem_reads_/preds_/next_stamp_ when
  // the transaction is suspended in run_children and its children read from
  // or merge into it. While the transaction itself runs, nobody else touches
  // its sets, but children lock unconditionally for simplicity (uncontended
  // fast path).
  std::mutex merge_mutex_;
  std::unordered_map<VBoxBase*, WriteEntry> writes_ AUTOPN_GUARDED_BY(merge_mutex_);
  std::unordered_map<VBoxBase*, ReadEntry> reads_ AUTOPN_GUARDED_BY(merge_mutex_);
  /// Semantic resolution cache: same shape as reads_, but carries no
  /// revalidation duty itself (the registered predicates do) and is never
  /// propagated — it only pins repeatable reads and provenance.
  std::unordered_map<VBoxBase*, ReadEntry> sem_reads_ AUTOPN_GUARDED_BY(merge_mutex_);
  std::vector<PredEntry> preds_ AUTOPN_GUARDED_BY(merge_mutex_);
  std::uint64_t next_stamp_ AUTOPN_GUARDED_BY(merge_mutex_) = 1;

  /// Per-tree child-concurrency gate (capacity c); owned by the root.
  std::unique_ptr<util::ResizableSemaphore> tree_gate_;

  /// Set on roots created by Stm::read_only(); writes anywhere in the tree
  /// then throw std::logic_error (checked in write_raw via the root).
  bool read_only_ = false;

  /// Set on roots running the starvation-escalation path (exclusive of all
  /// other commits). Failpoint sites skip injection for escalated trees so
  /// an armed fault cannot sabotage the guaranteed-completion path.
  bool escalated_ = false;
};

// ---- typed VBox accessors (need the full Tx definition) --------------------

template <typename T>
T VBox<T>::read(Tx& tx) const {
  return *static_cast<const T*>(tx.read_raw(*this).get());
}

template <typename T>
void VBox<T>::write(Tx& tx, T value) const {
  tx.write_raw(*this, std::make_shared<const T>(std::move(value)));
}

}  // namespace autopn::stm
