#pragma once
// Transaction contexts for the multi-version PN-STM with closed parallel
// nesting (paper §III-A).
//
// Model: a top-level (root) transaction takes a snapshot of the global
// version clock; all reads in its tree resolve against that snapshot plus the
// tree's tentative writes, so snapshots are always consistent and no
// read-time validation is needed. A transaction may spawn children that run
// in parallel with one another (never with their parent — the parent blocks
// in run_children, matching the nested transaction model where only
// childless transactions access data).
//
// Read resolution order for a transaction X reading box B:
//   1. X's own write set;
//   2. X's cached reads (repeatable reads within one attempt);
//   3. nearest-ancestor write sets, walking towards the root (each guarded by
//      the ancestor's merge mutex, since X's siblings commit-merge into those
//      sets concurrently);
//   4. the global version chain at the root snapshot.
//
// Child commit merges the child's write set into the parent under the
// parent's merge mutex after validating the child's reads against sibling
// updates; reads of higher ancestors and of global state are propagated
// upwards and validated when the enclosing transaction itself commits
// (compositional validation). Top-level commit materializes the global read
// and write sets into a CommitRequest and hands it to the Stm's pluggable
// CommitManager, which validates against the version chains and installs new
// versions under its serialization protocol (global lock or lock-free
// helping — see stm/commit_manager.hpp).

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <mutex>
#include <vector>

#include "stm/exceptions.hpp"
#include "stm/vbox.hpp"
#include "util/semaphore.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::stm {

class Stm;

/// Transaction handle passed to user code. Created and retried by the Stm
/// runtime (top-level) or by Tx::run_children (nested); never constructed by
/// applications directly.
class Tx {
 public:
  Tx(const Tx&) = delete;
  Tx& operator=(const Tx&) = delete;

  /// Runs each body as a child transaction of this transaction. Children of
  /// one batch execute in parallel with each other on the Stm's nested-
  /// transaction pool, subject to the actuator's per-tree concurrency limit
  /// `c`; the caller blocks (helping to drain the pool) until all children
  /// have committed. A child that hits a sibling conflict is retried alone.
  void run_children(std::vector<std::function<void(Tx&)>> bodies);

  /// Requests an abort-and-retry of this transaction attempt.
  [[noreturn]] void retry() { throw ConflictError{ConflictKind::kExplicitRetry}; }

  /// True for a top-level transaction.
  [[nodiscard]] bool is_top_level() const noexcept { return parent_ == nullptr; }

  /// Nesting depth: 0 for top-level, 1 for its children, ...
  [[nodiscard]] int depth() const noexcept { return depth_; }

  /// The root snapshot all global reads in this tree resolve against.
  [[nodiscard]] std::uint64_t snapshot() const noexcept { return snapshot_; }

  /// Untyped transactional read; returns the value's erased pointer.
  /// VBox<T>::read is the typed entry point.
  [[nodiscard]] std::shared_ptr<const void> read_raw(const VBoxBase& box);

  /// Untyped transactional write (buffered).
  void write_raw(const VBoxBase& box, std::shared_ptr<const void> value);

  /// Number of entries in the write set (diagnostics).
  [[nodiscard]] std::size_t write_set_size() const noexcept { return writes_.size(); }

  /// Number of global read-set entries (diagnostics).
  [[nodiscard]] std::size_t read_set_size() const noexcept { return global_reads_.size(); }

 private:
  friend class Stm;

  struct WriteEntry {
    std::shared_ptr<const void> value;
    std::uint64_t stamp;  ///< parent-local monotone stamp; bumped on merge
  };
  struct GlobalRead {
    std::uint64_t version;
    std::shared_ptr<const void> value;  ///< cached for repeatable reads
  };
  struct AncestorRead {
    Tx* owner;
    std::uint64_t stamp;
    std::shared_ptr<const void> value;
  };

  Tx(Stm& stm, Tx* parent, std::uint64_t snapshot);

  /// Validates this child's reads against the parent's current write set and
  /// merges writes/reads upwards. Throws ConflictError on a sibling conflict.
  void commit_into_parent();

  /// Top-level commit: validate global reads, install writes. Throws
  /// ConflictError on validation failure.
  void commit_top_level();

  Stm* stm_;
  Tx* parent_;
  Tx* root_;
  std::uint64_t snapshot_;
  int depth_;

  // merge_mutex_ guards writes_/global_reads_/anc_reads_/next_stamp_ when the
  // transaction is suspended in run_children and its children read from or
  // merge into it. While the transaction itself runs, nobody else touches its
  // sets, but children lock unconditionally for simplicity (uncontended fast
  // path).
  std::mutex merge_mutex_;
  std::unordered_map<VBoxBase*, WriteEntry> writes_ AUTOPN_GUARDED_BY(merge_mutex_);
  std::unordered_map<VBoxBase*, GlobalRead> global_reads_ AUTOPN_GUARDED_BY(merge_mutex_);
  std::unordered_map<VBoxBase*, AncestorRead> anc_reads_ AUTOPN_GUARDED_BY(merge_mutex_);
  std::uint64_t next_stamp_ AUTOPN_GUARDED_BY(merge_mutex_) = 1;

  /// Per-tree child-concurrency gate (capacity c); owned by the root.
  std::unique_ptr<util::ResizableSemaphore> tree_gate_;

  /// Set on roots created by Stm::read_only(); writes anywhere in the tree
  /// then throw std::logic_error (checked in write_raw via the root).
  bool read_only_ = false;

  /// Set on roots running the starvation-escalation path (exclusive of all
  /// other commits). Failpoint sites skip injection for escalated trees so
  /// an armed fault cannot sabotage the guaranteed-completion path.
  bool escalated_ = false;
};

// ---- typed VBox accessors (need the full Tx definition) --------------------

template <typename T>
T VBox<T>::read(Tx& tx) const {
  return *static_cast<const T*>(tx.read_raw(*this).get());
}

template <typename T>
void VBox<T>::write(Tx& tx, T value) const {
  tx.write_raw(*this, std::make_shared<const T>(std::move(value)));
}

}  // namespace autopn::stm
