#include "stm/commit_manager.hpp"

#include "stm/exceptions.hpp"
#include "util/failpoint.hpp"

namespace autopn::stm {

void CommitManager::validate_or_throw(const CommitRequest& req) const {
  for (const VBoxBase* box : req.read_boxes) {
    if (box->newest_version() > req.snapshot) {
      profiler_->note(box);
      throw ConflictError{ConflictKind::kTopLevelValidation};
    }
  }
  // Predicates re-evaluate against the newest *committed* value rather than
  // comparing versions: the box may have moved past the snapshot, but only a
  // change that flips the guarded fact (the key's entry version, a cursor
  // bound) aborts. This is where disjoint-key updates to one bucket stop
  // costing false aborts.
  for (const auto& pred : req.predicates) {
    const Body* newest = pred->box()->newest();
    if (newest == nullptr || !pred->holds(newest->value.read().get())) {
      profiler_->note(pred->box(), pred->profile_key());
      throw ConflictError{ConflictKind::kPredicate};
    }
  }
}

std::shared_ptr<const void> CommitManager::materialize(const CommitWrite& write,
                                                       std::uint64_t version) {
  if (write.delta == nullptr) return write.value;
  // Chaos hook (delay-only): stall between reading the install base and
  // producing the new value, widening the helper-race window in the
  // lock-free protocol and the hold time of the global commit lock.
  AUTOPN_FAILPOINT("stm.map.install");
  const Body* newest = write.box->newest();
  return write.delta->apply(
      newest != nullptr ? newest->value.read().get() : nullptr, version);
}

void GlobalLockCommitManager::commit(CommitRequest& req) {
  sync::ScopedLock lock{mutex_};
  validate_or_throw(req);
  const std::uint64_t version = clock_->load(std::memory_order_relaxed) + 1;
  const std::uint64_t min_active = snapshots_->min_active();
  for (auto& write : req.writes) {
    write.box->install(materialize(write, version), version, min_active);
  }
  // seq_cst publish so the snapshot registry's publish-and-validate handshake
  // (snapshot_registry.hpp) totally orders this against registrations.
  clock_->store(version, std::memory_order_seq_cst);
}

LockFreeCommitManager::LockFreeCommitManager(sync::Atomic<std::uint64_t>& clock,
                                             SnapshotRegistry& snapshots,
                                             ContentionProfiler& profiler)
    : CommitManager(clock, snapshots, profiler) {
  // Sentinel record: version 0, already written back. release: publishes the
  // record's fields to the first helper that acquires `latest_`.
  latest_.store(std::make_shared<CommitRecord>(), std::memory_order_release);
}

void LockFreeCommitManager::help_commit(CommitRecord& record) {
  const std::uint64_t version = record.version.read();
  if (!record.done.load(std::memory_order_acquire)) {
    const std::uint64_t min_active = snapshots_->min_active();
    for (const auto& write : record.writes.read()) {
      // Delta bases are stable here: the helping invariant says record v-1
      // finished writeback before record v was chained, and no later record
      // installs until v is done — so between those points the box's newest
      // committed body is fixed, every racing helper materializes the same
      // value, and install_cas rejects any helper that observed a later
      // body (its version check fails).
      if (write.delta != nullptr && write.box->newest_version() >= version) {
        continue;  // another helper already installed this write
      }
      (void)write.box->install_cas(materialize(write, version), version,
                                   min_active);
    }
    record.done.store(true, std::memory_order_release);
  }
  // Publish the version (monotone max; helpers may race with later records).
  // seq_cst for the registry handshake, as in the global-lock manager.
  std::uint64_t current = clock_->load(std::memory_order_relaxed);
  while (current < version &&
         !clock_->compare_exchange_weak(current, version,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
  }
}

void LockFreeCommitManager::commit(CommitRequest& req) {
  // Loop invariant maintained by helping: whenever a record for version v+1
  // is CAS'd onto the chain, the record for version v has completed its
  // writeback — so after help_commit(current) every committed version is
  // visible and validation against the boxes' newest versions is exact.
  auto record = std::make_shared<CommitRecord>();
  record->writes.write() = std::move(req.writes);
  for (;;) {
    auto current = latest_.load(std::memory_order_acquire);
    // Chaos hook (delay mode): stall this committer between loading the chain
    // head and helping it, widening the window in which concurrent commits
    // CAS past us and force helping/re-validation.
    AUTOPN_FAILPOINT("stm.commit.helping");
    help_commit(*current);
    validate_or_throw(req);
    record->version.write() = current->version.read() + 1;
    record->done.store(false, std::memory_order_relaxed);
    // Success order detail::record_publish_order() is acq_rel: the release
    // half publishes the record's plain fields (version, writes) to every
    // helper that acquire-loads `latest_` — the edge the model checker
    // verifies (and reports as a race when the mc fixture weakens it).
    if (latest_.compare_exchange_strong(current, record,
                                        detail::record_publish_order(),
                                        std::memory_order_acquire)) {
      help_commit(*record);
      return;
    }
    // Lost the race: a concurrent commit claimed the version. Help it and
    // re-validate against the new state.
  }
}

std::unique_ptr<CommitManager> make_commit_manager(
    CommitStrategy strategy, sync::Atomic<std::uint64_t>& clock,
    SnapshotRegistry& snapshots, ContentionProfiler& profiler) {
  switch (strategy) {
    case CommitStrategy::kGlobalLock:
      return std::make_unique<GlobalLockCommitManager>(clock, snapshots,
                                                       profiler);
    case CommitStrategy::kLockFree:
      return std::make_unique<LockFreeCommitManager>(clock, snapshots,
                                                     profiler);
  }
  return std::make_unique<LockFreeCommitManager>(clock, snapshots, profiler);
}

}  // namespace autopn::stm
