#pragma once
// Runtime statistics and contention profiling for the STM, factored out of
// the Stm god-class and sharded so neither ever serializes a hot path:
//
//  * StmStats — the begin/commit/read/write/abort counters, each a
//    util::ShardedCounter (per-shard cache-line-padded relaxed atomics,
//    aggregate-on-read), so concurrent transactions never contend on one
//    counter line;
//  * ContentionProfiler — the "which box keeps failing validation" profiler.
//    The abort path previously took a global mutex around an unordered_map;
//    it is now a fixed-capacity lock-free open-addressed table of
//    (box, count) pairs — one hash probe + one relaxed fetch_add per sample,
//    with an explicit dropped() counter if the table ever fills.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stm/exceptions.hpp"
#include "util/sharded.hpp"

namespace autopn::stm {

class VBoxBase;

/// Point-in-time copy of the runtime counters.
struct StmStatsSnapshot {
  std::uint64_t top_commits = 0;
  std::uint64_t top_aborts = 0;
  std::uint64_t child_commits = 0;
  std::uint64_t child_aborts = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  // Abort breakdown by conflict kind (top_aborts + child_aborts ==
  // validation + sibling + explicit + injected).
  std::uint64_t aborts_validation = 0;  ///< top-level read-set validation
  std::uint64_t aborts_sibling = 0;     ///< child vs sibling merge conflicts
  std::uint64_t aborts_predicate = 0;   ///< semantic predicate re-evaluation failed
  std::uint64_t aborts_explicit = 0;    ///< user-requested retry()
  std::uint64_t aborts_injected = 0;    ///< failpoint-injected faults
  /// Top-level transactions that exhausted their retry budget and completed
  /// through exclusive serialized execution (the starvation-escalation path).
  std::uint64_t top_escalations = 0;

  [[nodiscard]] double top_abort_rate() const {
    const double attempts = static_cast<double>(top_commits + top_aborts);
    return attempts > 0 ? static_cast<double>(top_aborts) / attempts : 0.0;
  }
};

/// Sharded runtime counters. Every bump is one relaxed fetch_add on a
/// thread-private cache line; snapshot() aggregates across shards.
class StmStats {
 public:
  explicit StmStats(
      std::size_t shards = util::ShardedCounter::default_shards());

  StmStats(const StmStats&) = delete;
  StmStats& operator=(const StmStats&) = delete;

  void bump_read() noexcept { reads_.add(); }
  void bump_write() noexcept { writes_.add(); }
  void bump_top_commit() noexcept { top_commits_.add(); }
  void bump_top_abort(ConflictKind kind) noexcept {
    top_aborts_.add();
    bump_conflict_kind(kind);
  }
  void bump_child_commit() noexcept { child_commits_.add(); }
  void bump_child_abort(ConflictKind kind) noexcept {
    child_aborts_.add();
    bump_conflict_kind(kind);
  }
  void bump_top_escalation() noexcept { top_escalations_.add(); }

  [[nodiscard]] StmStatsSnapshot snapshot() const;
  void reset() noexcept;

 private:
  void bump_conflict_kind(ConflictKind kind) noexcept;

  util::ShardedCounter top_commits_;
  util::ShardedCounter top_aborts_;
  util::ShardedCounter child_commits_;
  util::ShardedCounter child_aborts_;
  util::ShardedCounter reads_;
  util::ShardedCounter writes_;
  util::ShardedCounter aborts_validation_;
  util::ShardedCounter aborts_sibling_;
  util::ShardedCounter aborts_predicate_;
  util::ShardedCounter aborts_explicit_;
  util::ShardedCounter aborts_injected_;
  util::ShardedCounter top_escalations_;
};

/// Lock-free contention-hotspot profiler: counts, per VBox, how many
/// top-level validation conflicts it caused. Off by default; while disabled,
/// note() is a single relaxed load.
///
/// Implementation: open-addressed table of (atomic key, atomic count) slots,
/// linear probing, keys claimed by CAS and never unclaimed while profiling
/// runs. If more distinct boxes conflict than the table holds, further
/// samples of unseen boxes are counted in dropped() instead of silently
/// vanishing. reset() clears the table; resetting while transactions are
/// actively aborting may misattribute a handful of in-flight samples (the
/// profiler is a diagnostic, not an accounting ledger).
class ContentionProfiler {
 public:
  struct Hotspot {
    std::string label;
    std::uint64_t conflicts = 0;
  };

  explicit ContentionProfiler(std::size_t capacity = kDefaultCapacity);

  ContentionProfiler(const ContentionProfiler&) = delete;
  ContentionProfiler& operator=(const ContentionProfiler&) = delete;

  static constexpr std::size_t kDefaultCapacity = 1024;

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Marks a sample that spans the whole box (no sub-key attribution).
  static constexpr std::uint64_t kWholeBox = ~std::uint64_t{0};

  /// Records one validation conflict on `box`. No-op unless enabled.
  /// `sub_key` attributes the sample to a unit *inside* the box — the map
  /// key a failing predicate guarded, say — so semantic containers report
  /// "table[3].key=42" hotspots instead of anonymous whole-bucket blame.
  void note(const VBoxBase* box, std::uint64_t sub_key = kWholeBox) noexcept;

  /// The `top_n` most conflict-prone (box, sub-key) units observed since the
  /// last reset (descending). Labels come from VBoxBase::set_label (with a
  /// ".key=<sub>" suffix for sub-key samples), falling back to a pointer
  /// rendering; counts landing in duplicate slots for one unit (a benign
  /// claim race) are aggregated by label here.
  [[nodiscard]] std::vector<Hotspot> hotspots(std::size_t top_n = 10) const;

  void reset() noexcept;

  /// Samples dropped because the table was full (0 in healthy use).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  // Slot claim protocol: CAS `key` nullptr -> box, then publish `sub` with
  // `sub_ready` (release). Probers treat a claimed-but-unpublished slot as
  // non-matching and move on; the worst case is one duplicate slot for the
  // same (box, sub) unit, which hotspots() re-aggregates by label.
  struct Slot {
    std::atomic<const VBoxBase*> key{nullptr};
    std::atomic<std::uint64_t> sub{0};
    std::atomic<bool> sub_ready{false};
    std::atomic<std::uint64_t> count{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<Slot> slots_;
  std::size_t mask_;
};

}  // namespace autopn::stm
