#include "stm/tx.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "stm/commit_manager.hpp"
#include "stm/stm.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace autopn::stm {

Tx::Tx(Stm& stm, Tx* parent, std::uint64_t snapshot)
    : stm_(&stm),
      parent_(parent),
      root_(parent != nullptr ? parent->root_ : this),
      snapshot_(snapshot),
      depth_(parent != nullptr ? parent->depth_ + 1 : 0) {}

std::shared_ptr<const void> Tx::read_raw(const VBoxBase& cbox) {
  auto* box = const_cast<VBoxBase*>(&cbox);
  stm_->counters().bump_read();

  // 1. own (tentative) writes win.
  if (auto it = writes_.find(box); it != writes_.end()) return it->second.value;
  // 2. cached reads: repeatable within one attempt regardless of concurrent
  //    sibling merges (the conflict surfaces at commit-time validation).
  if (auto it = anc_reads_.find(box); it != anc_reads_.end()) return it->second.value;
  if (auto it = global_reads_.find(box); it != global_reads_.end()) return it->second.value;
  // 3. nearest-ancestor writes, towards the root.
  for (Tx* anc = parent_; anc != nullptr; anc = anc->parent_) {
    std::scoped_lock lock{anc->merge_mutex_};
    if (auto it = anc->writes_.find(box); it != anc->writes_.end()) {
      anc_reads_.emplace(box, AncestorRead{anc, it->second.stamp, it->second.value});
      return it->second.value;
    }
  }
  // 4. global version chain at the root snapshot.
  const Body* body = box->body_at(root_->snapshot_);
  if (body == nullptr) {
    throw std::logic_error{"transactional read of an uninitialized VBox"};
  }
  global_reads_.emplace(box, GlobalRead{body->version, body->value});
  return body->value;
}

void Tx::write_raw(const VBoxBase& cbox, std::shared_ptr<const void> value) {
  if (root_->read_only_) {
    throw std::logic_error{"write inside a read-only transaction"};
  }
  auto* box = const_cast<VBoxBase*>(&cbox);
  stm_->counters().bump_write();
  auto [it, inserted] = writes_.try_emplace(box, WriteEntry{nullptr, next_stamp_});
  if (inserted) {
    ++next_stamp_;
  }
  it->second.value = std::move(value);
}

void Tx::commit_into_parent() {
  // Chaos hook: forge a sibling conflict on the child merge path. Escalated
  // trees are exempt so the guaranteed-completion path cannot be sabotaged.
  if (!root_->escalated_) {
    AUTOPN_FAILPOINT("stm.child.merge",
                     throw ConflictError{ConflictKind::kInjected});
  }
  Tx* parent = parent_;
  std::scoped_lock lock{parent->merge_mutex_};

  // Validate reads against sibling commits that merged into the parent since
  // this child started:
  //  * entries this child read *from the parent* must carry an unchanged
  //    writer stamp;
  //  * boxes this child read from higher ancestors or from the global chain
  //    must not have appeared in the parent's write set at all (had they been
  //    there at read time, the ancestor walk would have found them first, so
  //    presence now proves a sibling wrote after our read).
  for (const auto& [box, ancestor_read] : anc_reads_) {
    if (ancestor_read.owner == parent) {
      auto it = parent->writes_.find(box);
      if (it == parent->writes_.end() || it->second.stamp != ancestor_read.stamp) {
        throw ConflictError{ConflictKind::kSiblingWrite};
      }
    } else if (parent->writes_.contains(box)) {
      throw ConflictError{ConflictKind::kSiblingWrite};
    }
  }
  for (const auto& [box, global_read] : global_reads_) {
    if (parent->writes_.contains(box)) {
      throw ConflictError{ConflictKind::kSiblingWrite};
    }
  }

  // Merge tentative writes into the parent with fresh stamps (this is the
  // serialization point of the child among its siblings).
  for (auto& [box, write_entry] : writes_) {
    auto& slot = parent->writes_[box];
    slot.value = std::move(write_entry.value);
    slot.stamp = parent->next_stamp_++;
  }
  // Propagate non-parent reads upwards; they are validated when the parent
  // itself commits one level up (compositional validation). Existing entries
  // are kept: within one tree all global reads resolve against the same root
  // snapshot, so duplicates agree.
  for (const auto& [box, global_read] : global_reads_) {
    parent->global_reads_.emplace(box, global_read);
  }
  for (const auto& [box, ancestor_read] : anc_reads_) {
    if (ancestor_read.owner != parent) {
      parent->anc_reads_.emplace(box, ancestor_read);
    }
  }
}

void Tx::run_children(std::vector<std::function<void(Tx&)>> bodies) {
  if (bodies.empty()) return;
  using namespace std::chrono_literals;

  util::WaitGroup wait_group;
  wait_group.add(bodies.size());

  // A nested caller holds a tree-gate token itself; release it while blocked
  // waiting for children so the configured limit c counts *running* nested
  // transactions (and so c == 1 cannot self-deadlock on deeper nests).
  const bool released_own_token = !is_top_level();
  if (released_own_token) root_->tree_gate_->release();

  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (auto& body : bodies) {
    stm_->acquire_child_token(*root_->tree_gate_);
    stm_->pool().submit([this, task = std::move(body), &wait_group, &error_mutex,
                         &first_error] {
      unsigned attempt = 0;
      const unsigned budget = stm_->config().retry_budget;
      for (;;) {
        Tx child{*stm_, this, snapshot_};
        try {
          task(child);
          child.commit_into_parent();
          stm_->counters().bump_child_commit();
          break;
        } catch (const ConflictError& conflict) {
          stm_->counters().bump_child_abort(conflict.kind());
          ++attempt;
          if (budget != 0 && attempt >= budget) {
            // The child is starving among its siblings: give up on the
            // partial-abort retry and surface the conflict to the top level,
            // whose own budget guarantees completion (escalated, if need
            // be). Without this bound a pathologically conflicting child
            // pins its whole tree in run_children forever.
            std::scoped_lock lock{error_mutex};
            if (!first_error) first_error = std::current_exception();
            break;
          }
          stm_->backoff(attempt);
        } catch (...) {
          std::scoped_lock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
          break;
        }
      }
      root_->tree_gate_->release();
      wait_group.done();
    });
  }

  // Help drain the nested pool while waiting; required for progress when the
  // pool is smaller than the fan-out (e.g. single-core machines).
  while (!wait_group.wait_for(200us)) {
    while (stm_->pool().try_run_one()) {
    }
  }

  if (released_own_token) stm_->acquire_child_token(*root_->tree_gate_);
  if (first_error) std::rethrow_exception(first_error);
}

void Tx::commit_top_level() {
  // Read-only transactions commit trivially: their snapshot is a consistent
  // cut of the multi-version store.
  if (writes_.empty()) return;

  // Chaos hook: forge a top-level validation failure just before the commit
  // manager runs the real protocol. Skipped for escalated attempts — under
  // exclusivity the retry loop relies on commits not failing.
  if (!escalated_) {
    AUTOPN_FAILPOINT("stm.commit.validate",
                     throw ConflictError{ConflictKind::kInjected});
  }

  // Materialize the read/write sets once and hand the request to the commit
  // manager; the serialization protocol (global lock vs lock-free helping) is
  // entirely the manager's concern.
  CommitRequest request;
  request.snapshot = snapshot_;
  request.read_boxes.reserve(global_reads_.size());
  for (const auto& [box, global_read] : global_reads_) {
    request.read_boxes.push_back(box);
  }
  request.writes.reserve(writes_.size());
  for (auto& [box, write_entry] : writes_) {
    request.writes.emplace_back(box, std::move(write_entry.value));
  }
  stm_->commit_manager().commit(request);
}

}  // namespace autopn::stm
