#include "stm/tx.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "stm/stm.hpp"
#include "util/thread_pool.hpp"

namespace autopn::stm {

// Counter definitions live in stm.cpp; Tx bumps them through these hooks.
namespace detail {
void bump_reads(Stm& stm);
void bump_writes(Stm& stm);
void bump_child_commit(Stm& stm);
void bump_child_abort(Stm& stm, ConflictKind kind);
}  // namespace detail

Tx::Tx(Stm& stm, Tx* parent, std::uint64_t snapshot)
    : stm_(&stm),
      parent_(parent),
      root_(parent != nullptr ? parent->root_ : this),
      snapshot_(snapshot),
      depth_(parent != nullptr ? parent->depth_ + 1 : 0) {}

std::shared_ptr<const void> Tx::read_raw(const VBoxBase& cbox) {
  auto* box = const_cast<VBoxBase*>(&cbox);
  detail::bump_reads(*stm_);

  // 1. own (tentative) writes win.
  if (auto it = writes_.find(box); it != writes_.end()) return it->second.value;
  // 2. cached reads: repeatable within one attempt regardless of concurrent
  //    sibling merges (the conflict surfaces at commit-time validation).
  if (auto it = anc_reads_.find(box); it != anc_reads_.end()) return it->second.value;
  if (auto it = global_reads_.find(box); it != global_reads_.end()) return it->second.value;
  // 3. nearest-ancestor writes, towards the root.
  for (Tx* anc = parent_; anc != nullptr; anc = anc->parent_) {
    std::scoped_lock lock{anc->merge_mutex_};
    if (auto it = anc->writes_.find(box); it != anc->writes_.end()) {
      anc_reads_.emplace(box, AncestorRead{anc, it->second.stamp, it->second.value});
      return it->second.value;
    }
  }
  // 4. global version chain at the root snapshot.
  const Body* body = box->body_at(root_->snapshot_);
  if (body == nullptr) {
    throw std::logic_error{"transactional read of an uninitialized VBox"};
  }
  global_reads_.emplace(box, GlobalRead{body->version, body->value});
  return body->value;
}

void Tx::write_raw(const VBoxBase& cbox, std::shared_ptr<const void> value) {
  if (root_->read_only_) {
    throw std::logic_error{"write inside a read-only transaction"};
  }
  auto* box = const_cast<VBoxBase*>(&cbox);
  detail::bump_writes(*stm_);
  auto [it, inserted] = writes_.try_emplace(box, WriteEntry{nullptr, next_stamp_});
  if (inserted) {
    ++next_stamp_;
  }
  it->second.value = std::move(value);
}

void Tx::commit_into_parent() {
  Tx* parent = parent_;
  std::scoped_lock lock{parent->merge_mutex_};

  // Validate reads against sibling commits that merged into the parent since
  // this child started:
  //  * entries this child read *from the parent* must carry an unchanged
  //    writer stamp;
  //  * boxes this child read from higher ancestors or from the global chain
  //    must not have appeared in the parent's write set at all (had they been
  //    there at read time, the ancestor walk would have found them first, so
  //    presence now proves a sibling wrote after our read).
  for (const auto& [box, ancestor_read] : anc_reads_) {
    if (ancestor_read.owner == parent) {
      auto it = parent->writes_.find(box);
      if (it == parent->writes_.end() || it->second.stamp != ancestor_read.stamp) {
        throw ConflictError{ConflictKind::kSiblingWrite};
      }
    } else if (parent->writes_.contains(box)) {
      throw ConflictError{ConflictKind::kSiblingWrite};
    }
  }
  for (const auto& [box, global_read] : global_reads_) {
    if (parent->writes_.contains(box)) {
      throw ConflictError{ConflictKind::kSiblingWrite};
    }
  }

  // Merge tentative writes into the parent with fresh stamps (this is the
  // serialization point of the child among its siblings).
  for (auto& [box, write_entry] : writes_) {
    auto& slot = parent->writes_[box];
    slot.value = std::move(write_entry.value);
    slot.stamp = parent->next_stamp_++;
  }
  // Propagate non-parent reads upwards; they are validated when the parent
  // itself commits one level up (compositional validation). Existing entries
  // are kept: within one tree all global reads resolve against the same root
  // snapshot, so duplicates agree.
  for (const auto& [box, global_read] : global_reads_) {
    parent->global_reads_.emplace(box, global_read);
  }
  for (const auto& [box, ancestor_read] : anc_reads_) {
    if (ancestor_read.owner != parent) {
      parent->anc_reads_.emplace(box, ancestor_read);
    }
  }
}

void Tx::run_children(std::vector<std::function<void(Tx&)>> bodies) {
  if (bodies.empty()) return;
  using namespace std::chrono_literals;

  util::WaitGroup wait_group;
  wait_group.add(bodies.size());

  // A nested caller holds a tree-gate token itself; release it while blocked
  // waiting for children so the configured limit c counts *running* nested
  // transactions (and so c == 1 cannot self-deadlock on deeper nests).
  const bool released_own_token = !is_top_level();
  if (released_own_token) root_->tree_gate_->release();

  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (auto& body : bodies) {
    stm_->acquire_child_token(*root_->tree_gate_);
    stm_->pool().submit([this, task = std::move(body), &wait_group, &error_mutex,
                         &first_error] {
      unsigned attempt = 0;
      for (;;) {
        Tx child{*stm_, this, snapshot_};
        try {
          task(child);
          child.commit_into_parent();
          detail::bump_child_commit(*stm_);
          break;
        } catch (const ConflictError& conflict) {
          detail::bump_child_abort(*stm_, conflict.kind());
          stm_->backoff(attempt++);
        } catch (...) {
          std::scoped_lock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
          break;
        }
      }
      root_->tree_gate_->release();
      wait_group.done();
    });
  }

  // Help drain the nested pool while waiting; required for progress when the
  // pool is smaller than the fan-out (e.g. single-core machines).
  while (!wait_group.wait_for(200us)) {
    while (stm_->pool().try_run_one()) {
    }
  }

  if (released_own_token) stm_->acquire_child_token(*root_->tree_gate_);
  if (first_error) std::rethrow_exception(first_error);
}

void Tx::commit_top_level() {
  // Read-only transactions commit trivially: their snapshot is a consistent
  // cut of the multi-version store.
  if (writes_.empty()) return;

  if (stm_->config_.commit_strategy == CommitStrategy::kGlobalLock) {
    std::scoped_lock lock{stm_->commit_mutex_};
    for (const auto& [box, global_read] : global_reads_) {
      if (box->newest_version() > snapshot_) {
        stm_->note_conflict(box);
        throw ConflictError{ConflictKind::kTopLevelValidation};
      }
    }
    const std::uint64_t version = stm_->clock_.load(std::memory_order_relaxed) + 1;
    const std::uint64_t min_active = stm_->min_active_snapshot();
    for (const auto& [box, write_entry] : writes_) {
      box->install(write_entry.value, version, min_active);
    }
    stm_->clock_.store(version, std::memory_order_release);
    return;
  }

  // Lock-free commit (JVSTM-style). Loop invariant maintained by helping:
  // whenever a record for version v+1 is CAS'd onto the chain, the record
  // for version v has completed its writeback — so after help_commit(cur)
  // every committed version is visible and validation against the boxes'
  // newest versions is exact.
  auto record = std::make_shared<Stm::CommitRecord>();
  record->writes.reserve(writes_.size());
  for (const auto& [box, write_entry] : writes_) {
    record->writes.emplace_back(box, write_entry.value);
  }
  for (;;) {
    auto current = stm_->latest_record_.load(std::memory_order_acquire);
    stm_->help_commit(*current);
    for (const auto& [box, global_read] : global_reads_) {
      if (box->newest_version() > snapshot_) {
        stm_->note_conflict(box);
        throw ConflictError{ConflictKind::kTopLevelValidation};
      }
    }
    record->version = current->version + 1;
    record->done.store(false, std::memory_order_relaxed);
    if (stm_->latest_record_.compare_exchange_strong(
            current, record, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      stm_->help_commit(*record);
      return;
    }
    // Lost the race: a concurrent commit claimed the version. Help it and
    // re-validate against the new state.
  }
}

}  // namespace autopn::stm
