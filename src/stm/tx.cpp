#include "stm/tx.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "stm/commit_manager.hpp"
#include "stm/stm.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace autopn::stm {

namespace {

/// Finds the (owner, stamp) pair for `owner` in an owner list.
template <typename Owners>
auto find_owner(Owners& owners, const void* owner) {
  return std::find_if(owners.begin(), owners.end(),
                      [owner](const auto& pair) { return pair.first == owner; });
}

}  // namespace

Tx::Tx(Stm& stm, Tx* parent, std::uint64_t snapshot)
    : stm_(&stm),
      parent_(parent),
      root_(parent != nullptr ? parent->root_ : this),
      snapshot_(snapshot),
      depth_(parent != nullptr ? parent->depth_ + 1 : 0) {}

Tx::ReadEntry Tx::resolve_above(VBoxBase* box) {
  ReadEntry entry;
  // Deltas found on the way down to a base value, nearest ancestor first.
  // Cloned under the owning ancestor's mutex: the live object keeps growing
  // as that ancestor's other children merge ops into it.
  std::vector<std::unique_ptr<DeltaBase>> pending;
  std::shared_ptr<const void> base;
  bool have_base = false;
  for (Tx* anc = parent_; anc != nullptr; anc = anc->parent_) {
    std::scoped_lock lock{anc->merge_mutex_};
    auto it = anc->writes_.find(box);
    if (it == anc->writes_.end()) continue;
    entry.owners.emplace_back(anc, it->second.stamp);
    if (it->second.delta != nullptr) {
      pending.push_back(it->second.delta->clone());
      continue;  // a delta needs the base beneath it
    }
    base = it->second.value;
    have_base = true;
    break;
  }
  if (!have_base) {
    const Body* body = box->body_at(root_->snapshot_);
    if (body == nullptr && pending.empty()) {
      throw std::logic_error{"transactional read of an uninitialized VBox"};
    }
    if (body != nullptr) base = body->value.read();
    entry.global_base = true;
  }
  // Materialize outermost-first so ops apply in tree serialization order;
  // commit_version 0 stamps touched entries as tentative (kTentativeEver).
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    base = (*it)->apply(base.get(), 0);
  }
  entry.anc_deltas.reserve(pending.size());
  for (auto& delta : pending) {
    entry.anc_deltas.emplace_back(std::move(delta));
  }
  entry.value = std::move(base);
  return entry;
}

const Tx::ReadEntry& Tx::base_entry(
    VBoxBase* box, std::unordered_map<VBoxBase*, ReadEntry>& cache) {
  if (auto it = cache.find(box); it != cache.end()) return it->second;
  // The sibling cache may already pin a resolution for this box; reuse it so
  // exact and semantic reads within one attempt always agree (and an exact
  // read silently promotes an earlier semantic resolution).
  auto& other = (&cache == &reads_) ? sem_reads_ : reads_;
  if (auto it = other.find(box); it != other.end()) {
    return cache.emplace(box, it->second).first->second;
  }
  return cache.emplace(box, resolve_above(box)).first->second;
}

std::shared_ptr<const void> Tx::read_raw(const VBoxBase& cbox) {
  auto* box = const_cast<VBoxBase*>(&cbox);
  stm_->counters().bump_read();

  // 1. own (tentative) writes win.
  if (auto it = writes_.find(box); it != writes_.end()) {
    if (it->second.delta == nullptr) return it->second.value;
    // Delta-only entry: the result also depends on the base beneath it, so
    // an exact read of the base is recorded.
    const ReadEntry& base = base_entry(box, reads_);
    return it->second.delta->apply(base.value.get(), 0);
  }
  // 2.–4. cached (repeatable within one attempt regardless of concurrent
  // sibling merges — the conflict surfaces at commit-time validation), else
  // nearest-ancestor writes towards the root, else the global chain.
  return base_entry(box, reads_).value;
}

std::shared_ptr<const void> Tx::read_semantic(const VBoxBase& cbox) {
  auto* box = const_cast<VBoxBase*>(&cbox);
  stm_->counters().bump_read();

  if (auto it = writes_.find(box); it != writes_.end()) {
    if (it->second.delta == nullptr) return it->second.value;
    const ReadEntry& base = base_entry(box, sem_reads_);
    return it->second.delta->apply(base.value.get(), 0);
  }
  return base_entry(box, sem_reads_).value;
}

void Tx::write_raw(const VBoxBase& cbox, std::shared_ptr<const void> value) {
  if (root_->read_only_) {
    throw std::logic_error{"write inside a read-only transaction"};
  }
  auto* box = const_cast<VBoxBase*>(&cbox);
  stm_->counters().bump_write();
  auto [it, inserted] = writes_.try_emplace(box, WriteEntry{nullptr, nullptr, next_stamp_});
  if (inserted) {
    ++next_stamp_;
  }
  it->second.value = std::move(value);
  it->second.delta = nullptr;  // a full value subsumes any pending delta
}

void Tx::write_delta(const VBoxBase& cbox, std::unique_ptr<DeltaBase> delta) {
  if (root_->read_only_) {
    throw std::logic_error{"write inside a read-only transaction"};
  }
  auto* box = const_cast<VBoxBase*>(&cbox);
  stm_->counters().bump_write();
  auto it = writes_.find(box);
  if (it == writes_.end()) {
    const std::uint64_t stamp = next_stamp_++;
    delta->restamp(stamp);
    writes_.emplace(box, WriteEntry{nullptr, std::move(delta), stamp});
    return;
  }
  if (it->second.value != nullptr) {
    // Delta over our own full value: materialize immediately — the entry
    // stays a full overwrite, which subsumes the op.
    it->second.value = delta->apply(it->second.value.get(), 0);
    return;
  }
  it->second.delta->absorb(*delta, it->second.stamp);
}

void Tx::add_predicate(const VBoxBase& cbox,
                       std::shared_ptr<const PredicateBase> predicate) {
  auto* box = const_cast<VBoxBase*>(&cbox);
  // An exact read of the box subsumes any predicate over its value.
  if (reads_.contains(box)) return;
  auto it = sem_reads_.find(box);
  if (it == sem_reads_.end()) {
    throw std::logic_error{"add_predicate without a prior read_semantic"};
  }
  // Tree-local test: if any ancestor op the resolution applied may have
  // determined this fact (map ops are blind upserts/erases, so an op on the
  // guarded key *fully* determines its state), the fact is justified by the
  // tree's own pending write — it must not be checked against committed
  // state, where that write has not landed yet.
  bool tree_local = false;
  for (const auto& delta : it->second.anc_deltas) {
    if (predicate->overlaps(*delta, 0)) {
      tree_local = true;
      break;
    }
  }
  PredEntry entry{std::move(predicate), it->second.owners,
                  tree_local ? false : it->second.global_base};
  if (entry.owners.empty() && !entry.global_base) return;  // nothing to validate
  for (const auto& existing : preds_) {
    if (existing.pred->box() == box && existing.pred->same_as(*entry.pred) &&
        existing.owners == entry.owners &&
        existing.global_base == entry.global_base) {
      return;
    }
  }
  preds_.push_back(std::move(entry));
}

const DeltaBase* Tx::pending_delta(const VBoxBase& cbox) const {
  auto* box = const_cast<VBoxBase*>(&cbox);
  auto it = writes_.find(box);
  return it != writes_.end() ? it->second.delta.get() : nullptr;
}

bool Tx::has_pending_overwrite(const VBoxBase& cbox) const {
  auto* box = const_cast<VBoxBase*>(&cbox);
  auto it = writes_.find(box);
  return it != writes_.end() && it->second.value != nullptr;
}

void Tx::commit_into_parent() {
  // Chaos hook: forge a sibling conflict on the child merge path. Escalated
  // trees are exempt so the guaranteed-completion path cannot be sabotaged.
  if (!root_->escalated_) {
    AUTOPN_FAILPOINT("stm.child.merge",
                     throw ConflictError{ConflictKind::kInjected});
  }
  Tx* parent = parent_;
  std::scoped_lock lock{parent->merge_mutex_};

  // ---- phase 1: validate (nothing mutated until everything passes) -----
  //
  // Exact reads against sibling commits that merged into the parent since
  // this child started:
  //  * a level this child consumed a parent entry from must carry an
  //    unchanged writer stamp;
  //  * boxes resolved without the parent's involvement must not have
  //    appeared in the parent's write set at all (had they been there at
  //    read time, the ancestor walk would have found them first, so presence
  //    now proves a sibling wrote after our read).
  for (auto& [box, read_entry] : reads_) {
    auto owner_it = find_owner(read_entry.owners, parent);
    auto write_it = parent->writes_.find(box);
    if (owner_it != read_entry.owners.end()) {
      if (write_it == parent->writes_.end() ||
          write_it->second.stamp != owner_it->second) {
        throw ConflictError{ConflictKind::kSiblingWrite};
      }
    } else if (write_it != parent->writes_.end()) {
      throw ConflictError{ConflictKind::kSiblingWrite};
    }
  }
  // Propagation-collision pre-check: if the parent already tracks a read of
  // the same box with *different* provenance, the tree observed the box in
  // two distinct states — retry this child so it re-reads the current one
  // (kStaleReRead). Checked before any mutation so the throw is clean.
  for (auto& [box, read_entry] : reads_) {
    OwnerList remaining = read_entry.owners;
    if (auto owner_it = find_owner(remaining, parent); owner_it != remaining.end()) {
      remaining.erase(owner_it);
    }
    if (remaining.empty() && !read_entry.global_base) continue;  // discharged
    if (auto it = parent->reads_.find(box); it != parent->reads_.end()) {
      if (it->second.owners != remaining ||
          it->second.global_base != read_entry.global_base) {
        throw ConflictError{ConflictKind::kStaleReRead};
      }
    }
  }
  // Predicates: re-evaluate semantically instead of comparing stamps. A
  // changed parent entry only aborts when the change can affect the
  // predicate's truth — ops on other keys (overlaps() == false) or a full
  // value the predicate still holds() over sail through. This is the whole
  // point of the refactor: sibling merges on shared boxes stop being
  // conflicts unless they touch what this child actually depends on.
  for (auto& pred_entry : preds_) {
    auto* box = const_cast<VBoxBase*>(pred_entry.pred->box());
    auto owner_it = find_owner(pred_entry.owners, parent);
    auto write_it = parent->writes_.find(box);
    if (owner_it != pred_entry.owners.end()) {
      if (write_it == parent->writes_.end()) {
        throw ConflictError{ConflictKind::kPredicate};  // entry vanished
      }
      if (write_it->second.stamp != owner_it->second) {
        const WriteEntry& we = write_it->second;
        const bool still_valid =
            we.delta != nullptr
                ? !pred_entry.pred->overlaps(*we.delta, owner_it->second)
                : pred_entry.pred->holds(we.value.get());
        if (!still_valid) throw ConflictError{ConflictKind::kPredicate};
      }
    } else if (write_it != parent->writes_.end()) {
      // Entry appeared after our read: every op in it postdates us.
      const WriteEntry& we = write_it->second;
      const bool still_valid = we.delta != nullptr
                                   ? !pred_entry.pred->overlaps(*we.delta, 0)
                                   : pred_entry.pred->holds(we.value.get());
      if (!still_valid) throw ConflictError{ConflictKind::kPredicate};
    }
  }

  // ---- phase 2: merge (this is the serialization point of the child
  // among its siblings) ---------------------------------------------------
  for (auto& [box, write_entry] : writes_) {
    const std::uint64_t stamp = parent->next_stamp_++;
    auto it = parent->writes_.find(box);
    if (write_entry.delta != nullptr) {
      if (it == parent->writes_.end()) {
        write_entry.delta->restamp(stamp);
        parent->writes_.emplace(
            box, WriteEntry{nullptr, std::move(write_entry.delta), stamp});
      } else if (it->second.delta != nullptr) {
        it->second.delta->absorb(*write_entry.delta, stamp);
        it->second.stamp = stamp;
      } else {
        // Delta over a sibling's full value: materialize now (still
        // tentative); the entry stays a full overwrite.
        write_entry.delta->restamp(stamp);
        it->second.value = write_entry.delta->apply(it->second.value.get(), 0);
        it->second.stamp = stamp;
      }
    } else {
      auto& slot = parent->writes_[box];
      slot.value = std::move(write_entry.value);
      slot.delta = nullptr;  // a full value subsumes any pending delta
      slot.stamp = stamp;
    }
  }
  // Propagate reads/predicates not fully anchored at the parent upwards;
  // they are validated when the parent itself commits one level up
  // (compositional validation). Entries whose only dependency was the
  // parent's own tentative write are discharged here: the stamp/overlap
  // check above was their last obligation — later siblings serialize after
  // this child, and the parent itself resumes only after all children join.
  for (auto& [box, read_entry] : reads_) {
    if (auto owner_it = find_owner(read_entry.owners, parent);
        owner_it != read_entry.owners.end()) {
      read_entry.owners.erase(owner_it);
    }
    if (read_entry.owners.empty() && !read_entry.global_base) continue;
    parent->reads_.emplace(box, std::move(read_entry));
  }
  for (auto& pred_entry : preds_) {
    if (auto owner_it = find_owner(pred_entry.owners, parent);
        owner_it != pred_entry.owners.end()) {
      pred_entry.owners.erase(owner_it);
    }
    if (pred_entry.owners.empty() && !pred_entry.global_base) continue;
    auto* box = pred_entry.pred->box();
    const bool duplicate = std::any_of(
        parent->preds_.begin(), parent->preds_.end(), [&](const PredEntry& p) {
          return p.pred->box() == box && p.pred->same_as(*pred_entry.pred) &&
                 p.owners == pred_entry.owners &&
                 p.global_base == pred_entry.global_base;
        });
    if (!duplicate) parent->preds_.push_back(std::move(pred_entry));
  }
}

void Tx::run_children(std::vector<std::function<void(Tx&)>> bodies) {
  if (bodies.empty()) return;
  using namespace std::chrono_literals;

  util::WaitGroup wait_group;
  wait_group.add(bodies.size());

  // A nested caller holds a tree-gate token itself; release it while blocked
  // waiting for children so the configured limit c counts *running* nested
  // transactions (and so c == 1 cannot self-deadlock on deeper nests).
  const bool released_own_token = !is_top_level();
  if (released_own_token) root_->tree_gate_->release();

  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (auto& body : bodies) {
    stm_->acquire_child_token(*root_->tree_gate_);
    stm_->pool().submit([this, task = std::move(body), &wait_group, &error_mutex,
                         &first_error] {
      unsigned attempt = 0;
      const unsigned budget = stm_->config().retry_budget;
      for (;;) {
        Tx child{*stm_, this, snapshot_};
        try {
          task(child);
          child.commit_into_parent();
          stm_->counters().bump_child_commit();
          break;
        } catch (const ConflictError& conflict) {
          stm_->counters().bump_child_abort(conflict.kind());
          ++attempt;
          if (budget != 0 && attempt >= budget) {
            // The child is starving among its siblings: give up on the
            // partial-abort retry and surface the conflict to the top level,
            // whose own budget guarantees completion (escalated, if need
            // be). Without this bound a pathologically conflicting child
            // pins its whole tree in run_children forever.
            std::scoped_lock lock{error_mutex};
            if (!first_error) first_error = std::current_exception();
            break;
          }
          stm_->backoff(attempt);
        } catch (...) {
          std::scoped_lock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
          break;
        }
      }
      root_->tree_gate_->release();
      wait_group.done();
    });
  }

  // Help drain the nested pool while waiting; required for progress when the
  // pool is smaller than the fan-out (e.g. single-core machines).
  while (!wait_group.wait_for(200us)) {
    while (stm_->pool().try_run_one()) {
    }
  }

  if (released_own_token) stm_->acquire_child_token(*root_->tree_gate_);
  if (first_error) std::rethrow_exception(first_error);
}

void Tx::commit_top_level() {
  // Transactions with no writes commit trivially: their snapshot is a
  // consistent cut of the multi-version store, and any predicates were
  // evaluated against that same cut.
  if (writes_.empty()) return;

  // Chaos hooks: forge a top-level validation failure just before the commit
  // manager runs the real protocol. Skipped for escalated attempts — under
  // exclusivity the retry loop relies on commits not failing.
  if (!escalated_) {
    AUTOPN_FAILPOINT("stm.commit.validate",
                     throw ConflictError{ConflictKind::kInjected});
    if (!preds_.empty()) {
      AUTOPN_FAILPOINT("stm.commit.validate_pred",
                       throw ConflictError{ConflictKind::kInjected});
    }
  }

  // Materialize the read/write/predicate sets once and hand the request to
  // the commit manager; the serialization protocol (global lock vs lock-free
  // helping) is entirely the manager's concern. By construction every
  // surviving entry at the root is anchored on committed state: owner lists
  // were popped level by level on the way up, and tree-local entries were
  // discharged at their owning level.
  CommitRequest request;
  request.snapshot = snapshot_;
  request.read_boxes.reserve(reads_.size());
  for (const auto& [box, read_entry] : reads_) {
    if (read_entry.global_base) request.read_boxes.push_back(box);
  }
  request.predicates.reserve(preds_.size());
  for (auto& pred_entry : preds_) {
    if (pred_entry.global_base) {
      request.predicates.push_back(std::move(pred_entry.pred));
    }
  }
  request.writes.reserve(writes_.size());
  for (auto& [box, write_entry] : writes_) {
    request.writes.push_back(CommitWrite{box, std::move(write_entry.value),
                                         std::move(write_entry.delta)});
  }
  stm_->commit_manager().commit(request);
}

}  // namespace autopn::stm
