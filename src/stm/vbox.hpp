#pragma once
// Versioned boxes — the multi-version storage cells of the PN-STM (the C++
// analogue of JVSTM's VBox). Each box keeps a chain of immutable bodies,
// newest first; a transaction reads the newest body whose version does not
// exceed its root snapshot, which makes every read set trivially consistent
// (multi-version snapshot reads) and confines validation to commit time.
//
// Concurrency contract:
//  * readers traverse the chain lock-free (acquire-load of the head);
//  * writers install new bodies only from within a CommitManager's
//    serialization protocol (under the global commit mutex, or as the
//    lock-free helping protocol's idempotent install_cas), and
//    opportunistically prune bodies no active snapshot can reach;
//  * values are immutable once published (held via shared_ptr<const void>).

#include <cstdint>
#include <memory>
#include <string>

#include "util/sync.hpp"

namespace autopn::stm {

namespace sync = autopn::sync;

class Tx;

/// One committed version of a box's value. `version` and `value` are written
/// once, before the body is published into the chain; readers reach them only
/// through the acquire edge of that publication — which is exactly what the
/// sync::Shared wrapper lets the model checker verify.
struct Body {
  sync::Shared<std::uint64_t> version;
  sync::Shared<std::shared_ptr<const void>> value;
  /// Next-older body. Atomic because pruning truncates it (stores nullptr)
  /// while readers traverse; a reader never follows it past a body at or
  /// below its snapshot, so truncated tails are unreachable to it.
  sync::Atomic<Body*> next;
};

/// Type-erased box base. All transactional machinery (read/write sets,
/// validation, installation) works on VBoxBase; VBox<T> adds the typed API.
class VBoxBase {
 public:
  VBoxBase() = default;
  ~VBoxBase();

  VBoxBase(const VBoxBase&) = delete;
  VBoxBase& operator=(const VBoxBase&) = delete;

  /// Newest committed body, or nullptr if the box was never initialized.
  [[nodiscard]] const Body* newest() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Newest body with version <= snapshot, or nullptr if none exists.
  [[nodiscard]] const Body* body_at(std::uint64_t snapshot) const noexcept;

  /// Version of the newest committed body (0 if never written).
  [[nodiscard]] std::uint64_t newest_version() const noexcept {
    const Body* b = newest();
    return b != nullptr ? b->version.read() : 0;
  }

  /// Installs a new body. Caller must hold the global commit mutex.
  /// `min_active_snapshot` lets the box prune bodies that no active or future
  /// transaction can observe (all bodies strictly older than the newest body
  /// with version <= min_active_snapshot).
  void install(std::shared_ptr<const void> value, std::uint64_t version,
               std::uint64_t min_active_snapshot);

  /// Lock-free idempotent installation for the helping commit protocol:
  /// succeeds (and prunes) only if this box's newest version is still older
  /// than `version`; returns false when the body is already present (another
  /// helper won). The commit-record chain guarantees versions are installed
  /// in increasing order, so a CAS loss implies the work is done.
  bool install_cas(const std::shared_ptr<const void>& value, std::uint64_t version,
                   std::uint64_t min_active_snapshot);

  /// Number of retained bodies (test/diagnostic helper; O(chain)). Requires
  /// quiescence: it walks the full chain, including bodies a concurrent
  /// pruner may free.
  [[nodiscard]] std::size_t chain_length() const noexcept;

  /// Optional diagnostic label shown by the contention profiler (e.g.
  /// "district[3]"). Not thread-safe; set during data-structure setup.
  void set_label(std::string label) {
    label_ = std::make_unique<std::string>(std::move(label));
  }
  [[nodiscard]] const std::string* label() const noexcept { return label_.get(); }

 private:
  /// Truncates and frees bodies older than the newest one at or below
  /// `min_active_snapshot`, starting the scan at `from`. Opportunistic: if
  /// another thread is already pruning this box (a delayed helper from an
  /// older commit record), skips — the next install will catch up.
  void prune(Body* from, std::uint64_t min_active_snapshot) noexcept;

  sync::Atomic<Body*> head_{nullptr};
  sync::Atomic<bool> prune_busy_{false};  ///< serializes pruning per box
  std::unique_ptr<std::string> label_;
};

/// Typed versioned box.
///
/// Transactional access goes through read(tx)/write(tx, v); `peek()` returns
/// the newest committed value without transactional bookkeeping (useful for
/// post-run verification), and `put_initial` seeds the box before concurrent
/// execution starts (requires quiescence).
template <typename T>
class VBox : public VBoxBase {
 public:
  VBox() = default;
  explicit VBox(T initial) { put_initial(std::move(initial)); }

  /// Transactional read; records the access in tx's read set.
  [[nodiscard]] T read(Tx& tx) const;

  /// Transactional write; buffered in tx's write set until commit.
  void write(Tx& tx, T value) const;

  /// Newest committed value. Requires the box to have been initialized.
  [[nodiscard]] T peek() const {
    return *static_cast<const T*>(newest()->value.read().get());
  }

  /// Seeds the box with an initial version-0 value. Not thread-safe; call
  /// before transactions touch the box.
  void put_initial(T value) {
    install(std::make_shared<const T>(std::move(value)), 0, 0);
  }
};

}  // namespace autopn::stm
