#include "stm/snapshot_registry.hpp"

#include <algorithm>

namespace autopn::stm {

SnapshotRegistry::SnapshotRegistry(const sync::Atomic<std::uint64_t>& clock,
                                   std::size_t slots)
    : clock_(&clock),
      slots_(util::ceil_pow2(std::max<std::size_t>(1, slots))),
      slot_mask_(slots_.size() - 1) {
  for (auto& slot : slots_) {
    slot.value.store(kEmpty, std::memory_order_relaxed);
  }
}

SnapshotRegistry::Handle SnapshotRegistry::acquire() {
  const std::size_t start = util::thread_shard_token() & slot_mask_;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::size_t index = (start + i) & slot_mask_;
    auto& slot = slots_[index].value;
    std::uint64_t expected = kEmpty;
    std::uint64_t snap = clock_->load(std::memory_order_seq_cst);
    if (!slot.compare_exchange_strong(expected, snap,
                                      std::memory_order_seq_cst)) {
      continue;  // occupied; probe the next slot
    }
    // Publish-and-validate: if the clock moved between our read and the slot
    // store, a committer may have computed a pruning minimum above `snap`
    // without seeing us — re-publish at the newer value until stable (see
    // header). Terminates because the clock only advances on commits.
    for (;;) {
      const std::uint64_t now = clock_->load(std::memory_order_seq_cst);
      if (now == snap) break;
      snap = now;
      slot.store(snap, std::memory_order_seq_cst);
    }
    Handle handle;
    handle.registry_ = this;
    handle.slot_ = index;
    handle.snapshot_ = snap;
    return handle;
  }

  // Every slot is busy: fall back to the overflow multiset. The counter is
  // bumped first so a committer that observes 0 is ordered before our insert
  // and its clock floor-read before our validation re-read.
  overflow_active_.fetch_add(1, std::memory_order_seq_cst);
  std::uint64_t snap;
  {
    sync::ScopedLock lock{overflow_mutex_};
    snap = clock_->load(std::memory_order_seq_cst);
    auto it = overflow_.insert(snap);
    for (;;) {
      const std::uint64_t now = clock_->load(std::memory_order_seq_cst);
      if (now == snap) break;
      overflow_.erase(it);
      snap = now;
      it = overflow_.insert(snap);
    }
  }
  Handle handle;
  handle.registry_ = this;
  handle.slot_ = Handle::kOverflowSlot;
  handle.snapshot_ = snap;
  return handle;
}

void SnapshotRegistry::Handle::release() noexcept {
  if (registry_ == nullptr) return;
  if (slot_ == kOverflowSlot) {
    registry_->release_overflow(snapshot_);
  } else {
    registry_->release_slot(slot_);
  }
  registry_ = nullptr;
}

void SnapshotRegistry::release_slot(std::size_t slot) noexcept {
  slots_[slot].value.store(kEmpty, std::memory_order_seq_cst);
}

void SnapshotRegistry::release_overflow(std::uint64_t snapshot) noexcept {
  {
    sync::ScopedLock lock{overflow_mutex_};
    overflow_.erase(overflow_.find(snapshot));
  }
  overflow_active_.fetch_sub(1, std::memory_order_seq_cst);
}

std::uint64_t SnapshotRegistry::min_active() const {
  // Clock floor FIRST, then the slots: a scan that misses a concurrent
  // registration at snapshot s is thereby guaranteed a floor <= s (header
  // argument), so the returned minimum can never prune a body a registered
  // snapshot still needs. Taking min(floor, slots) is conservative when both
  // are present — it can only retain more bodies than strictly necessary.
  std::uint64_t min = clock_->load(std::memory_order_seq_cst);
  for (const auto& slot : slots_) {
    const std::uint64_t v = slot.value.load(std::memory_order_seq_cst);
    if (v != kEmpty && v < min) min = v;
  }
  if (overflow_active_.load(std::memory_order_seq_cst) != 0) {
    sync::ScopedLock lock{overflow_mutex_};
    if (!overflow_.empty()) min = std::min(min, *overflow_.begin());
  }
  return min;
}

std::size_t SnapshotRegistry::active_count() const {
  std::size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot.value.load(std::memory_order_relaxed) != kEmpty) ++count;
  }
  return count + overflow_count();
}

std::size_t SnapshotRegistry::overflow_count() const {
  sync::ScopedLock lock{overflow_mutex_};
  return overflow_.size();
}

}  // namespace autopn::stm
