#pragma once
// Shard health state machine and the ordered membership log — the pure
// (no I/O, no clock) core of the router's elastic-membership tier. The
// Router owns one ShardHealth per member and feeds it one HealthObservation
// per stats-poll tick; the returned transition, if any, tells the Router
// what to do to the ring (evict a dead shard, readmit one that survived
// probation). Keeping the machine pure makes every edge deterministic and
// directly unit-testable without sockets or timers.
//
// States:
//
//            budget exhausted ─────────────────────────┐
//                 │                                    v
//   kHealthy ──misses──> kSuspect ──misses/budget──> kDead
//      ^                    │                          │ reconnect
//      │     poll ok        │                          v
//      ├────────────────────┘                     kProbation
//      │            probation_passes consecutive ok    │
//      └───────────────────────────────────────────────┘
//                                        (disconnect → back to kDead)
//
//   kRetiring is entered only administratively (Router::retire) and never
//   left by tick() — a retiring shard drains and is then forgotten.
//
// A "miss" is one poll tick where the link was disconnected or no fresh
// StatsFrame arrived since the previous tick. The redial budget
// (ShardLinkConfig::redial_budget) is the fast path to kDead: a backend
// whose address is gone fails the budget in a few seconds, while a merely
// slow one degrades through kSuspect on the miss counter.
//
// The membership log is the authority on ring contents: the live HashRing
// must always equal ring_members() folded over the log. kAdmit is
// administrative (the member exists, links dial) — only kJoin puts a shard
// in the ring, and kEvict/kRetire take it out. Two routers replaying the
// same log therefore agree on placement exactly (see
// router_membership_test's property test).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace autopn::router {

enum class HealthState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDead = 2,
  kProbation = 3,
  kRetiring = 4,
};

[[nodiscard]] std::string to_string(HealthState state);

struct HealthConfig {
  /// Consecutive poll misses before a healthy shard turns suspect.
  std::uint32_t suspect_after = 2;
  /// Consecutive poll misses (counted from the first) before a suspect
  /// shard is declared dead even if redials are still being attempted.
  std::uint32_t dead_after = 10;
  /// Consecutive successful polls a probationary shard must pass before it
  /// rejoins the ring as healthy.
  std::uint32_t probation_passes = 3;
};

/// What the Router observed about one member during one poll interval.
struct HealthObservation {
  bool connected = false;         ///< link has >=1 live channel right now
  bool poll_ok = false;           ///< a fresh StatsFrame arrived this tick
  bool budget_exhausted = false;  ///< link burned its redial budget
};

struct HealthTransition {
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
};

class ShardHealth {
 public:
  explicit ShardHealth(HealthConfig config = {}) : config_(config) {}

  /// Advances the machine by one poll tick. Returns the state change this
  /// observation caused, or std::nullopt when the state held.
  std::optional<HealthTransition> tick(const HealthObservation& observation);

  /// Administrative override (retire, or re-admit of a known id); resets
  /// the miss/pass counters so the new state starts from a clean slate.
  void force(HealthState state);

  [[nodiscard]] HealthState state() const noexcept { return state_; }
  [[nodiscard]] std::uint32_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint32_t passes() const noexcept { return passes_; }

 private:
  HealthConfig config_;
  HealthState state_ = HealthState::kHealthy;
  std::uint32_t misses_ = 0;  ///< consecutive failed polls (healthy/suspect)
  std::uint32_t passes_ = 0;  ///< consecutive ok polls (probation)
};

/// One entry of the ordered membership log. `seq` is assigned by the
/// Router, strictly increasing from 1.
enum class MembershipEvent : std::uint8_t {
  kAdmit = 0,   ///< member created (links dialing); NOT yet in the ring
  kRetire = 1,  ///< administratively removed from the ring (drains out)
  kEvict = 2,   ///< health-driven removal from the ring
  kJoin = 3,    ///< entered the ring (bootstrap, admit, or probation pass)
};

[[nodiscard]] std::string to_string(MembershipEvent event);

struct MembershipRecord {
  std::uint64_t seq = 0;
  MembershipEvent event = MembershipEvent::kAdmit;
  std::uint32_t shard_id = 0;
};

/// Folds the log into the set of in-ring shard ids (sorted ascending).
/// kJoin inserts, kEvict/kRetire erase, kAdmit is a no-op — so the result
/// is exactly what the live HashRing must contain, and two routers
/// replaying the same log place tenants identically.
[[nodiscard]] std::vector<std::uint32_t> ring_members(
    const std::vector<MembershipRecord>& log);

}  // namespace autopn::router
