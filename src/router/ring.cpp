#include "router/ring.hpp"

#include <algorithm>

namespace autopn::router {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

HashRing::HashRing(std::size_t vnodes_per_shard)
    : vnodes_(std::max<std::size_t>(vnodes_per_shard, 1)) {}

void HashRing::add_shard(std::uint32_t shard_id) {
  if (contains(shard_id)) return;
  points_.reserve(points_.size() + vnodes_);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // Mix the shard into the high bits and the vnode into the low bits so
    // adjacent (shard, vnode) pairs land on unrelated ring positions. The
    // salt domain-separates point hashes from key hashes: without it,
    // shard 0's vnode seeds are the bare integers 0..vnodes-1 — the same
    // mix64 inputs as small tenant keys — and every tenant id < vnodes
    // lands exactly ON a shard-0 point, pinning all of them there.
    constexpr std::uint64_t kPointSalt = 0x72696e675f707473ULL;  // "ring_pts"
    const std::uint64_t seed =
        (static_cast<std::uint64_t>(shard_id) << 32) | v;
    points_.push_back(Point{mix64(seed ^ kPointSalt), shard_id});
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

void HashRing::remove_shard(std::uint32_t shard_id) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard_id](const Point& p) {
                                 return p.shard == shard_id;
                               }),
                points_.end());
}

std::optional<std::uint32_t> HashRing::owner(std::uint64_t key) const {
  if (points_.empty()) return std::nullopt;
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.hash < k; });
  return it == points_.end() ? points_.front().shard : it->shard;
}

std::size_t HashRing::shard_count() const noexcept {
  return points_.size() / vnodes_;
}

std::vector<std::uint32_t> HashRing::shards() const {
  std::vector<std::uint32_t> ids;
  for (const Point& p : points_) ids.push_back(p.shard);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

bool HashRing::contains(std::uint32_t shard_id) const {
  return std::any_of(points_.begin(), points_.end(),
                     [shard_id](const Point& p) { return p.shard == shard_id; });
}

}  // namespace autopn::router
