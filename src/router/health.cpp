#include "router/health.hpp"

#include <algorithm>

namespace autopn::router {

std::string to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kSuspect:
      return "suspect";
    case HealthState::kDead:
      return "dead";
    case HealthState::kProbation:
      return "probation";
    case HealthState::kRetiring:
      return "retiring";
  }
  return "?";
}

std::string to_string(MembershipEvent event) {
  switch (event) {
    case MembershipEvent::kAdmit:
      return "admit";
    case MembershipEvent::kRetire:
      return "retire";
    case MembershipEvent::kEvict:
      return "evict";
    case MembershipEvent::kJoin:
      return "join";
  }
  return "?";
}

std::optional<HealthTransition> ShardHealth::tick(
    const HealthObservation& observation) {
  const HealthState from = state_;
  const bool ok = observation.connected && observation.poll_ok;
  switch (state_) {
    case HealthState::kHealthy:
      if (ok) {
        misses_ = 0;
        return std::nullopt;
      }
      ++misses_;
      if (observation.budget_exhausted) {
        state_ = HealthState::kDead;
      } else if (misses_ >= config_.suspect_after) {
        state_ = HealthState::kSuspect;
      }
      break;
    case HealthState::kSuspect:
      if (ok) {
        state_ = HealthState::kHealthy;
        misses_ = 0;
        break;
      }
      ++misses_;
      if (observation.budget_exhausted || misses_ >= config_.dead_after) {
        state_ = HealthState::kDead;
      }
      break;
    case HealthState::kDead:
      // Any sign of life starts probation; the ring stays untouched until
      // the shard proves itself with consecutive successful polls.
      if (observation.connected) {
        state_ = HealthState::kProbation;
        passes_ = 0;
      }
      break;
    case HealthState::kProbation:
      if (!observation.connected) {
        state_ = HealthState::kDead;
        break;
      }
      if (observation.poll_ok) {
        ++passes_;
        if (passes_ >= config_.probation_passes) {
          state_ = HealthState::kHealthy;
          misses_ = 0;
        }
      } else {
        passes_ = 0;  // consecutive means consecutive
      }
      break;
    case HealthState::kRetiring:
      break;  // administrative; tick() never leaves it
  }
  if (state_ == from) return std::nullopt;
  return HealthTransition{from, state_};
}

void ShardHealth::force(HealthState state) {
  state_ = state;
  misses_ = 0;
  passes_ = 0;
}

std::vector<std::uint32_t> ring_members(
    const std::vector<MembershipRecord>& log) {
  std::vector<std::uint32_t> members;
  for (const MembershipRecord& record : log) {
    const auto it =
        std::find(members.begin(), members.end(), record.shard_id);
    switch (record.event) {
      case MembershipEvent::kJoin:
        if (it == members.end()) members.push_back(record.shard_id);
        break;
      case MembershipEvent::kEvict:
      case MembershipEvent::kRetire:
        if (it != members.end()) members.erase(it);
        break;
      case MembershipEvent::kAdmit:
        break;
    }
  }
  std::sort(members.begin(), members.end());
  return members;
}

}  // namespace autopn::router
