#pragma once
// Rebalancer — the ContTune-style conservative placement policy, pure and
// side-effect free so it unit-tests without sockets. Each round the router
// hands it a snapshot of every shard's polled KPIs plus its own per-tenant
// request counts, and it proposes at most `max_moves_per_round` tenant
// migrations. The policy mirrors ContTune's "never regress a satisfied
// SLO" exploration rule, transposed from parallelism degrees to placement:
//
//   * never move a tenant whose own p99 (its latency slot on its current
//     shard) meets the SLO — a satisfied tenant is left alone even when
//     its shard is hot, because moving it risks the SLO it already has;
//   * only move tenants OFF a shard that is violating the SLO — placement
//     changes are a remedy, not an optimization, so a calm cluster never
//     churns;
//   * only move tenants ONTO a healthy shard with headroom (p99 below
//     slo × headroom_fraction, and strictly less loaded than the source) —
//     the receiving shard's satisfied tenants must not be regressed;
//   * prefer moving the busiest eligible tenant to the least-loaded
//     eligible target — the move with the best expected relief;
//   * require a minimum request count before trusting a tenant's signal —
//     a tenant with three samples has no p99 worth acting on.
//
// Caveat the router compensates for: shards report latency by tenant SLOT
// (tenant id mod 8), so two tenants sharing a slot share a p99. The router
// keys moves by true tenant id and uses the slot p99 as that tenant's
// SLO-class latency; the conservative rules make slot aliasing safe — a
// false "violating" read can only trigger a move to a strictly less
// loaded shard.

#include <cstdint>
#include <string>
#include <vector>

namespace autopn::router {

/// Per-tenant-slot KPIs as polled from one shard's StatsFrame.
struct SlotStat {
  std::uint16_t slot = 0;
  std::uint64_t count = 0;
  std::uint64_t p99_us = 0;
};

/// One shard's polled state, assembled by the router each rebalance round.
struct ShardSnapshot {
  std::uint32_t shard_id = 0;
  bool healthy = true;
  std::uint64_t p99_us = 0;  ///< shard-level (all tenants)
  std::uint32_t queue_depth = 0;
  std::vector<SlotStat> slots;
};

/// The router's own view of one tenant: where it routes and how much
/// traffic it has offered since the last round.
struct TenantLoad {
  std::uint16_t tenant_id = 0;
  std::uint32_t shard_id = 0;
  std::uint64_t requests = 0;
};

struct Move {
  std::uint16_t tenant_id = 0;
  std::uint32_t from_shard = 0;
  std::uint32_t to_shard = 0;
};

struct RebalanceConfig {
  std::uint64_t slo_p99_us = 50'000;
  /// A target shard qualifies only below slo × headroom_fraction.
  double headroom_fraction = 0.8;
  std::size_t max_moves_per_round = 1;
  std::uint64_t min_tenant_requests = 16;
  std::uint16_t tenant_slots = 8;  ///< shard KPI slot count (tenant % slots)
};

/// Capacity recommendation derived from the same snapshot propose() sees.
/// kAdd: every healthy shard violates the SLO — migration has nowhere to
/// move load, only new capacity helps. kRemove: the coolest healthy shard
/// could retire with everyone (it included) staying under slo × headroom.
enum class ScaleAction : std::uint8_t {
  kHold = 0,
  kAdd = 1,
  kRemove = 2,
};

struct ScaleProposal {
  ScaleAction action = ScaleAction::kHold;
  /// For kRemove: the shard proposed for retirement. Unused otherwise.
  std::uint32_t shard_id = 0;
};

[[nodiscard]] std::string to_string(ScaleAction action);

class Rebalancer {
 public:
  explicit Rebalancer(RebalanceConfig config = {});

  [[nodiscard]] const RebalanceConfig& config() const noexcept {
    return config_;
  }

  /// Proposes conservative moves for this round (possibly none). Pure:
  /// same inputs, same proposal.
  [[nodiscard]] std::vector<Move> propose(
      const std::vector<ShardSnapshot>& shards,
      const std::vector<TenantLoad>& tenants) const;

  /// Conservative capacity recommendation (see ScaleAction). Pure, and
  /// deliberately blunt: it fires only in regimes where tenant migration
  /// provably cannot help (all-hot → kAdd) or provably is not needed
  /// (enough slack to absorb the coolest shard → kRemove). Everything in
  /// between is kHold — the moves policy owns the middle ground.
  [[nodiscard]] ScaleProposal propose_scale(
      const std::vector<ShardSnapshot>& shards) const;

 private:
  RebalanceConfig config_;
};

}  // namespace autopn::router
