#pragma once
// ShardLink — the router's connection pool to one backend shard. Each link
// owns `channels` pooled net::Client connections plus one io thread per
// channel that receives responses and maps them back to router tokens.
//
// Threading contract (mirrors net::Client's 1-sender + 1-receiver rule):
//   * forward() and request_stats() are called from ONE thread (the
//     router's loop thread) — they are the channel's sender;
//   * each channel's io thread is its only receiver, and the only thread
//     that ever reseats the channel's client (reconnect);
//   * the channel mutex is held across send + in-flight-map insert, and by
//     the receiver across lookup — closing the race where a backend's
//     response overtakes the bookkeeping of the request that caused it.
//
// Health: a channel is up while its handshaken connection lives (the
// Hello/HelloAck handshake inside Client::connect IS the health check —
// a peer that accepts but speaks garbage fails it). On connection death
// the io thread synthesizes a router-origin kShed response for every
// in-flight token on that channel (the router's ledger stays exact: every
// forwarded request is answered by someone), then redials forever with
// capped-exponential backoff until shutdown. healthy() reports whether
// any channel is currently connected.
//
// Stats: request_stats() sends a kStatsRequest on channel 0; the channel's
// io thread parks the answer in latest_stats(), a cheap mutex-guarded slot
// the router reads at rebalance time.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.hpp"
#include "net/wire.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::router {

struct ShardAddress {
  std::uint32_t id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ShardLinkConfig {
  std::size_t channels = 1;
  net::BackoffPolicy backoff;  ///< per-redial-cycle schedule
  /// retry_after_us carried by synthesized backend-down sheds.
  std::uint64_t shed_retry_after_us = 20'000;
};

class ShardLink {
 public:
  /// Called for every forwarded token exactly once — with the shard's real
  /// response, or a synthesized router-origin kShed when the connection
  /// died first. Runs on an io thread; must be cheap and non-blocking.
  using ResponseFn =
      std::function<void(std::uint64_t token, net::ResponseFrame response)>;

  ShardLink(ShardAddress address, ShardLinkConfig config, ResponseFn on_response);
  ~ShardLink();

  ShardLink(const ShardLink&) = delete;
  ShardLink& operator=(const ShardLink&) = delete;

  /// Forwards one request (sender thread only). False when no channel is
  /// connected — the caller owns the response in that case; on_response
  /// will NOT fire for this token.
  bool forward(std::uint64_t token, const net::RequestFrame& frame);

  /// Best-effort stats poll on channel 0 (sender thread only).
  void request_stats();

  /// Latest StatsFrame received, if any (any thread).
  [[nodiscard]] std::optional<net::StatsFrame> latest_stats() const;

  [[nodiscard]] bool healthy() const noexcept {
    return connected_channels_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::uint32_t shard_id() const noexcept { return address_.id; }
  [[nodiscard]] const ShardAddress& address() const noexcept {
    return address_;
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }

  /// Stops io threads (waking any blocked receive), synthesizes responses
  /// for every remaining in-flight token, and joins. Idempotent; after it
  /// returns no further on_response callback can fire.
  void shutdown();

 private:
  struct Channel {
    mutable std::mutex mutex;
    /// Reseated only by the channel's io thread; senders use it under the
    /// mutex, the io thread receives without it (1-receiver rule).
    std::unique_ptr<net::Client> client AUTOPN_GUARDED_BY(mutex);
    /// Backend request id → router token for requests awaiting a response.
    std::unordered_map<std::uint64_t, std::uint64_t> inflight
        AUTOPN_GUARDED_BY(mutex);
    std::thread io;
  };

  void io_loop(Channel& channel);
  /// io thread: flush in-flight tokens as synthesized sheds, then redial.
  void handle_down(Channel& channel);
  void synthesize_all(Channel& channel);
  [[nodiscard]] net::ResponseFrame synthesized_shed() const;

  ShardAddress address_;
  ShardLinkConfig config_;
  ResponseFn on_response_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> connected_channels_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::vector<std::unique_ptr<Channel>> channels_;
  std::size_t next_channel_ = 0;  ///< sender thread only (round-robin)

  mutable std::mutex stats_mutex_;
  std::optional<net::StatsFrame> latest_stats_ AUTOPN_GUARDED_BY(stats_mutex_);
};

}  // namespace autopn::router
