#pragma once
// ShardLink — the router's connection pool to one backend shard. Each link
// owns `channels` pooled net::Client connections plus one io thread per
// channel that receives responses and maps them back to router tokens.
//
// Threading contract (mirrors net::Client's 1-sender + 1-receiver rule):
//   * forward() and request_stats() are called from ONE thread (the
//     router's loop thread) — they are the channel's sender;
//   * each channel's io thread is its only receiver, and the only thread
//     that ever reseats the channel's client (reconnect);
//   * the channel mutex is held across send + in-flight-map insert, and by
//     the receiver across lookup — closing the race where a backend's
//     response overtakes the bookkeeping of the request that caused it.
//
// Health: a channel is up while its handshaken connection lives (the
// Hello/HelloAck handshake inside Client::connect IS the health check —
// a peer that accepts but speaks garbage fails it). On connection death
// the io thread synthesizes a router-origin kShed response for every
// in-flight token on that channel (the router's ledger stays exact: every
// forwarded request is answered by someone), then redials with
// capped-exponential backoff. Redials are budgeted: after `redial_budget`
// consecutive failures in one outage the link flags budget_exhausted()
// (the router's health machine uses that to declare the shard dead) and
// drops to a slow probe every `dead_probe_seconds` — it never gives up
// entirely, so a resurrected backend is still detected, but it stops
// hammering a dead address. healthy() reports whether any channel is
// currently connected; redial_attempts()/last_error() surface the outage
// for operators (router-ctl status).
//
// Stats: request_stats() sends a kStatsRequest on channel 0; the channel's
// io thread parks the answer in latest_stats(), a cheap mutex-guarded slot
// the router reads at rebalance time.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/client.hpp"
#include "net/wire.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::router {

struct ShardAddress {
  std::uint32_t id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ShardLinkConfig {
  std::size_t channels = 1;
  net::BackoffPolicy backoff;  ///< per-redial-cycle schedule
  /// retry_after_us carried by synthesized backend-down sheds.
  std::uint64_t shed_retry_after_us = 20'000;
  /// Consecutive failed dials in one outage before the link flags
  /// budget_exhausted() and switches to the slow probe. 0 = unlimited
  /// (legacy redial-forever behaviour, full backoff schedule only).
  std::uint64_t redial_budget = 8;
  /// Probe cadence once the budget is exhausted — slow enough to leave a
  /// dead address alone, fast enough that recovery is noticed promptly.
  double dead_probe_seconds = 1.0;
};

class ShardLink {
 public:
  /// Called for every forwarded token exactly once — with the shard's real
  /// response, or a synthesized router-origin kShed when the connection
  /// died first. Runs on an io thread; must be cheap and non-blocking.
  using ResponseFn =
      std::function<void(std::uint64_t token, net::ResponseFrame response)>;

  ShardLink(ShardAddress address, ShardLinkConfig config, ResponseFn on_response);
  ~ShardLink();

  ShardLink(const ShardLink&) = delete;
  ShardLink& operator=(const ShardLink&) = delete;

  /// Forwards one request (sender thread only). False when no channel is
  /// connected — the caller owns the response in that case; on_response
  /// will NOT fire for this token.
  bool forward(std::uint64_t token, const net::RequestFrame& frame);

  /// Best-effort stats poll on channel 0 (sender thread only).
  void request_stats();

  /// Latest StatsFrame received, if any (any thread).
  [[nodiscard]] std::optional<net::StatsFrame> latest_stats() const;

  [[nodiscard]] bool healthy() const noexcept {
    return connected_channels_.load(std::memory_order_relaxed) > 0;
  }
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] std::uint32_t shard_id() const noexcept { return address_.id; }
  [[nodiscard]] const ShardAddress& address() const noexcept {
    return address_;
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Lifetime count of failed dial attempts (any channel, any outage).
  [[nodiscard]] std::uint64_t redial_attempts() const noexcept {
    return redial_attempts_.load(std::memory_order_relaxed);
  }
  /// True while some channel's current outage has burned its redial
  /// budget; cleared the moment any dial succeeds.
  [[nodiscard]] bool budget_exhausted() const noexcept {
    return budget_exhausted_.load(std::memory_order_relaxed);
  }
  /// Lifetime count of StatsFrames received — the router snapshots this
  /// each poll tick to decide poll_ok (did a fresh frame arrive?).
  [[nodiscard]] std::uint64_t stats_received() const noexcept {
    return stats_received_.load(std::memory_order_relaxed);
  }
  /// Human-readable reason of the most recent failed dial ("" if none).
  [[nodiscard]] std::string last_error() const;

  /// Stops io threads (waking any blocked receive), synthesizes responses
  /// for every remaining in-flight token, and joins. Idempotent; after it
  /// returns no further on_response callback can fire.
  void shutdown();

 private:
  struct Channel {
    mutable std::mutex mutex;
    /// Reseated only by the channel's io thread; senders use it under the
    /// mutex, the io thread receives without it (1-receiver rule).
    std::unique_ptr<net::Client> client AUTOPN_GUARDED_BY(mutex);
    /// Backend request id → router token for requests awaiting a response.
    std::unordered_map<std::uint64_t, std::uint64_t> inflight
        AUTOPN_GUARDED_BY(mutex);
    std::thread io;
  };

  void io_loop(Channel& channel);
  /// io thread: flush in-flight tokens as synthesized sheds, then redial.
  void handle_down(Channel& channel);
  void synthesize_all(Channel& channel);
  [[nodiscard]] net::ResponseFrame synthesized_shed() const;

  ShardAddress address_;
  ShardLinkConfig config_;
  ResponseFn on_response_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> connected_channels_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> redial_attempts_{0};
  std::atomic<std::uint64_t> stats_received_{0};
  std::atomic<bool> budget_exhausted_{false};
  std::vector<std::unique_ptr<Channel>> channels_;
  std::size_t next_channel_ = 0;  ///< sender thread only (round-robin)

  mutable std::mutex stats_mutex_;
  std::optional<net::StatsFrame> latest_stats_ AUTOPN_GUARDED_BY(stats_mutex_);
  std::string last_error_ AUTOPN_GUARDED_BY(stats_mutex_);
};

}  // namespace autopn::router
