#include "router/router.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "util/failpoint.hpp"

namespace autopn::router {

Router::Router(std::vector<ShardAddress> shards, RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.vnodes_per_shard),
      rebalancer_(config_.rebalance) {
  for (ShardAddress& shard : shards) {
    ring_.add_shard(shard.id);
    ShardLinkConfig link_config;
    link_config.channels = config_.channels_per_shard;
    link_config.backoff = config_.backoff;
    link_config.shed_retry_after_us = config_.shed_retry_after_us;
    // The callback reads server_ at completion time; no token can exist
    // before a dispatch, and dispatches only start once server_ is built.
    links_.emplace(
        shard.id,
        std::make_unique<ShardLink>(
            std::move(shard), link_config,
            [this](std::uint64_t token, net::ResponseFrame response) {
              server_->loop().post(
                  [this, token, moved = std::move(response)]() mutable {
                    complete(token, std::move(moved));
                  });
            }));
  }
  server_ = std::make_unique<net::NetServer>(*this, config_.server);
  server_->loop().post([this] {
    arm_stats_timer();
    arm_rebalance_timer();
  });
}

Router::~Router() { shutdown(); }

void Router::dispatch(net::RequestFrame frame, RespondFn respond) {
  // Invoked by the owned NetServer on its loop thread — which is what
  // makes the lock-free routing state below sound.
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (draining_) {
    respond_local_shed(respond, net::Status::kClosing);
    return;
  }
  AUTOPN_FAILPOINT("router.forward", {
    respond_local_shed(respond, net::Status::kShed);
    return;
  });
  const std::uint16_t tenant = frame.tenant_id;
  tenant_requests_[tenant] += 1;
  const auto migration = migrations_.find(tenant);
  if (migration != migrations_.end()) {
    if (migration->second.held.size() >= config_.max_held_per_tenant) {
      respond_local_shed(respond, net::Status::kShed);
      return;
    }
    held_.fetch_add(1, std::memory_order_relaxed);
    migration->second.held.push_back(
        Held{std::move(frame), std::move(respond)});
    return;
  }
  forward_or_shed(std::move(frame), std::move(respond));
}

void Router::forward_or_shed(net::RequestFrame frame, RespondFn respond) {
  const std::uint16_t tenant = frame.tenant_id;
  const auto it = links_.find(placement_of(tenant));
  if (it == links_.end()) {
    respond_local_shed(respond, net::Status::kShed);
    return;
  }
  const std::uint64_t token = next_token_++;
  if (!it->second->forward(token, frame)) {
    respond_local_shed(respond, net::Status::kShed);
    return;
  }
  // No insert-after-response race here: complete() runs on this same loop
  // thread via a posted task, which cannot execute until we return.
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  tenant_inflight_[tenant] += 1;
  flights_.emplace(token, Flight{std::move(respond), tenant});
}

void Router::complete(std::uint64_t token, net::ResponseFrame response) {
  const auto it = flights_.find(token);
  if (it == flights_.end()) {
    late_responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Flight flight = std::move(it->second);
  flights_.erase(it);
  returned_.fetch_add(1, std::memory_order_relaxed);
  if (response.shed_origin == net::ShedOrigin::kRouter) {
    synthesized_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto inflight = tenant_inflight_.find(flight.tenant);
  if (inflight != tenant_inflight_.end() && --inflight->second == 0) {
    tenant_inflight_.erase(inflight);
    if (migrations_.find(flight.tenant) != migrations_.end()) {
      cut_over(flight.tenant, /*forced=*/false);
    }
  }
  flight.respond(std::move(response));
}

void Router::start_migration(std::uint16_t tenant_id, std::uint32_t to_shard) {
  if (draining_) return;
  if (links_.find(to_shard) == links_.end()) return;
  if (migrations_.find(tenant_id) != migrations_.end()) return;
  if (placement_of(tenant_id) == to_shard) return;
  migrations_started_.fetch_add(1, std::memory_order_relaxed);
  Migration migration;
  migration.to_shard = to_shard;
  migration.force_cut_timer = server_->loop().add_timer(
      config_.migration_timeout_seconds, [this, tenant_id] {
        if (migrations_.find(tenant_id) != migrations_.end()) {
          forced_cuts_.fetch_add(1, std::memory_order_relaxed);
          cut_over(tenant_id, /*forced=*/true);
        }
      });
  migrations_.emplace(tenant_id, std::move(migration));
  if (tenant_inflight_.find(tenant_id) == tenant_inflight_.end()) {
    cut_over(tenant_id, /*forced=*/false);
  }
}

void Router::cut_over(std::uint16_t tenant_id, bool forced) {
  const auto it = migrations_.find(tenant_id);
  if (it == migrations_.end()) return;
  Migration migration = std::move(it->second);
  migrations_.erase(it);
  if (!forced) server_->loop().cancel_timer(migration.force_cut_timer);
  overrides_[tenant_id] = migration.to_shard;
  migrations_completed_.fetch_add(1, std::memory_order_relaxed);
  // Held frames go out in arrival order; a forced cut may interleave them
  // with stragglers still completing on the old shard, which is safe —
  // responses route by token, not placement.
  for (Held& held : migration.held) {
    forward_or_shed(std::move(held.frame), std::move(held.respond));
  }
}

void Router::respond_local_shed(const RespondFn& respond, net::Status status) {
  shed_local_.fetch_add(1, std::memory_order_relaxed);
  net::ResponseFrame response;
  response.status = status;
  response.retry_after_us = config_.shed_retry_after_us;
  response.shed_origin = net::ShedOrigin::kRouter;
  respond(std::move(response));
}

void Router::arm_stats_timer() {
  if (draining_) return;
  server_->loop().add_timer(config_.stats_poll_seconds, [this] {
    poll_shard_stats();
    arm_stats_timer();
  });
}

void Router::arm_rebalance_timer() {
  if (draining_ || !config_.rebalance_enabled) return;
  server_->loop().add_timer(config_.rebalance_seconds, [this] {
    rebalance_round();
    arm_rebalance_timer();
  });
}

void Router::poll_shard_stats() {
  if (draining_) return;
  for (auto& [id, link] : links_) link->request_stats();
}

void Router::rebalance_round() {
  if (draining_) return;
  AUTOPN_FAILPOINT("router.rebalance", return);
  rebalance_rounds_.fetch_add(1, std::memory_order_relaxed);
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(links_.size());
  for (auto& [id, link] : links_) {
    ShardSnapshot snapshot;
    snapshot.shard_id = id;
    snapshot.healthy = link->healthy();
    if (const std::optional<net::StatsFrame> stats = link->latest_stats()) {
      snapshot.p99_us = stats->p99_us;
      snapshot.queue_depth = stats->queue_depth;
      snapshot.slots.reserve(stats->tenants.size());
      for (const net::TenantStat& t : stats->tenants) {
        snapshot.slots.push_back(SlotStat{t.tenant, t.count, t.p99_us});
      }
    }
    snapshots.push_back(std::move(snapshot));
  }
  std::vector<TenantLoad> loads;
  loads.reserve(tenant_requests_.size());
  for (const auto& [tenant, requests] : tenant_requests_) {
    loads.push_back(TenantLoad{tenant, placement_of(tenant), requests});
  }
  for (const Move& move : rebalancer_.propose(snapshots, loads)) {
    start_migration(move.tenant_id, move.to_shard);
  }
  tenant_requests_.clear();  // each round judges a fresh traffic window
}

std::uint32_t Router::placement_of(std::uint16_t tenant_id) const {
  const auto it = overrides_.find(tenant_id);
  if (it != overrides_.end()) return it->second;
  return ring_.owner_of_tenant(tenant_id).value_or(0);
}

void Router::drain() {
  // Phase 1 (loop): stop routing, and answer everything parked in held
  // queues — those frames were dispatched but never forwarded, so they
  // settle as router-origin kClosing sheds.
  run_on_loop([this] {
    draining_ = true;
    for (auto& [tenant, migration] : migrations_) {
      server_->loop().cancel_timer(migration.force_cut_timer);
      for (Held& held : migration.held) {
        respond_local_shed(held.respond, net::Status::kClosing);
      }
    }
    migrations_.clear();
  });
  // Phase 2: shut every link down. Each joins its io threads after
  // synthesizing a router-origin shed for every in-flight token, and all
  // those completions are posted to the loop before shutdown() returns.
  for (auto& [id, link] : links_) link->shutdown();
  // Phase 3 (loop, FIFO after every posted completion): the flight table
  // must be empty now; any leftover would break exactly-once, so settle it
  // as returned (it WAS forwarded) rather than leak the respond callback.
  run_on_loop([this] {
    for (auto& [token, flight] : flights_) {
      returned_.fetch_add(1, std::memory_order_relaxed);
      synthesized_.fetch_add(1, std::memory_order_relaxed);
      net::ResponseFrame response;
      response.status = net::Status::kClosing;
      response.retry_after_us = config_.shed_retry_after_us;
      response.shed_origin = net::ShedOrigin::kRouter;
      flight.respond(std::move(response));
    }
    flights_.clear();
  });
}

net::StatsFrame Router::stats() {
  // Loop thread (the server answers kStatsRequest frames there). Counters
  // sum across shards; percentiles take the worst shard — the number an
  // SLO monitor wants from a tier, not a meaningless average of averages.
  net::StatsFrame out;
  std::unordered_map<std::uint16_t, net::TenantStat> slots;
  for (auto& [id, link] : links_) {
    const std::optional<net::StatsFrame> stats = link->latest_stats();
    if (!stats) continue;
    out.offered += stats->offered;
    out.completed += stats->completed;
    out.shed += stats->shed;
    out.expired += stats->expired;
    out.failed += stats->failed;
    out.queue_depth += stats->queue_depth;
    out.p50_us = std::max(out.p50_us, stats->p50_us);
    out.p95_us = std::max(out.p95_us, stats->p95_us);
    out.p99_us = std::max(out.p99_us, stats->p99_us);
    out.retry_after_us = std::max(out.retry_after_us, stats->retry_after_us);
    for (const net::TenantStat& t : stats->tenants) {
      net::TenantStat& slot = slots[t.tenant];
      slot.tenant = t.tenant;
      slot.count += t.count;
      slot.p99_us = std::max(slot.p99_us, t.p99_us);
    }
  }
  out.shed += shed_local_.load(std::memory_order_relaxed);
  out.tenants.reserve(slots.size());
  for (auto& [slot, stat] : slots) out.tenants.push_back(stat);
  std::sort(out.tenants.begin(), out.tenants.end(),
            [](const net::TenantStat& a, const net::TenantStat& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

void Router::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  server_->shutdown();  // runs drain(): flights settle, links shut down
  for (auto& [id, link] : links_) link->shutdown();  // no-op after drain
}

RouterReport Router::report() const {
  RouterReport report;
  report.dispatched = dispatched_.load(std::memory_order_relaxed);
  report.forwarded = forwarded_.load(std::memory_order_relaxed);
  report.shed_local = shed_local_.load(std::memory_order_relaxed);
  report.returned = returned_.load(std::memory_order_relaxed);
  report.synthesized = synthesized_.load(std::memory_order_relaxed);
  report.late_responses = late_responses_.load(std::memory_order_relaxed);
  report.held = held_.load(std::memory_order_relaxed);
  report.migrations_started =
      migrations_started_.load(std::memory_order_relaxed);
  report.migrations_completed =
      migrations_completed_.load(std::memory_order_relaxed);
  report.forced_cuts = forced_cuts_.load(std::memory_order_relaxed);
  report.rebalance_rounds = rebalance_rounds_.load(std::memory_order_relaxed);
  return report;
}

std::optional<std::uint32_t> Router::shard_of(std::uint16_t tenant_id) {
  if (shut_down_.load(std::memory_order_acquire)) return std::nullopt;
  std::uint32_t shard = 0;
  run_on_loop([this, tenant_id, &shard] { shard = placement_of(tenant_id); });
  return shard;
}

void Router::migrate_tenant(std::uint16_t tenant_id, std::uint32_t to_shard) {
  if (shut_down_.load(std::memory_order_acquire)) return;
  server_->loop().post(
      [this, tenant_id, to_shard] { start_migration(tenant_id, to_shard); });
}

std::vector<std::pair<std::uint32_t, bool>> Router::shard_health() const {
  // links_ is immutable after construction and healthy() is atomic, so no
  // loop round-trip is needed.
  std::vector<std::pair<std::uint32_t, bool>> health;
  health.reserve(links_.size());
  for (const auto& [id, link] : links_) {
    health.emplace_back(id, link->healthy());
  }
  std::sort(health.begin(), health.end());
  return health;
}

std::vector<Router::ShardStatus> Router::shard_status() const {
  std::vector<ShardStatus> status;
  status.reserve(links_.size());
  for (const auto& [id, link] : links_) {
    status.push_back(ShardStatus{id, link->healthy(), link->reconnects(),
                                 link->latest_stats()});
  }
  std::sort(status.begin(), status.end(),
            [](const ShardStatus& a, const ShardStatus& b) {
              return a.shard_id < b.shard_id;
            });
  return status;
}

void Router::run_on_loop(net::EventLoop::Task task) {
  std::promise<void> done;
  std::future<void> ran = done.get_future();
  server_->loop().post([&task, &done] {
    task();
    done.set_value();
  });
  ran.wait();
}

}  // namespace autopn::router
