#include "router/router.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "util/failpoint.hpp"

namespace autopn::router {

Router::Router(std::vector<ShardAddress> shards, RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.vnodes_per_shard),
      rebalancer_(config_.rebalance) {
  // Bootstrap shards skip probation: a router whose whole initial set sat
  // out N polls would serve nothing but sheds at startup. The health
  // machine demotes any of them that turn out to be down.
  for (ShardAddress& shard : shards) {
    const std::uint32_t id = shard.id;
    Member member;
    member.address = shard;
    member.link = make_link(std::move(shard));
    member.health = ShardHealth{config_.health};
    member.in_ring = true;
    ring_.add_shard(id);
    append_log(MembershipEvent::kAdmit, id);
    append_log(MembershipEvent::kJoin, id);
    members_.emplace(id, std::move(member));
  }
  server_ = std::make_unique<net::NetServer>(*this, config_.server);
  server_->loop().post([this] {
    arm_stats_timer();
    arm_rebalance_timer();
  });
}

Router::~Router() { shutdown(); }

std::unique_ptr<ShardLink> Router::make_link(ShardAddress address) {
  ShardLinkConfig link_config;
  link_config.channels = config_.channels_per_shard;
  link_config.backoff = config_.backoff;
  link_config.shed_retry_after_us = config_.shed_retry_after_us;
  link_config.redial_budget = config_.redial_budget;
  link_config.dead_probe_seconds = config_.dead_probe_seconds;
  // The callback reads server_ at completion time; no token can exist
  // before a dispatch, and dispatches only start once server_ is built.
  return std::make_unique<ShardLink>(
      std::move(address), link_config,
      [this](std::uint64_t token, net::ResponseFrame response) {
        server_->loop().post(
            [this, token, moved = std::move(response)]() mutable {
              complete(token, std::move(moved));
            });
      });
}

void Router::dispatch(net::RequestFrame frame, RespondFn respond) {
  // Invoked by the owned NetServer on its loop thread — which is what
  // makes the lock-free routing state below sound.
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (draining_) {
    respond_local_shed(respond, net::Status::kClosing);
    return;
  }
  AUTOPN_FAILPOINT("router.forward", {
    respond_local_shed(respond, net::Status::kShed);
    return;
  });
  const std::uint16_t tenant = frame.tenant_id;
  tenant_requests_[tenant] += 1;
  const auto migration = migrations_.find(tenant);
  if (migration != migrations_.end()) {
    if (migration->second.held.size() >= config_.max_held_per_tenant) {
      respond_local_shed(respond, net::Status::kShed);
      return;
    }
    held_.fetch_add(1, std::memory_order_relaxed);
    migration->second.held.push_back(
        Held{std::move(frame), std::move(respond)});
    return;
  }
  forward_or_shed(std::move(frame), std::move(respond));
}

void Router::forward_or_shed(net::RequestFrame frame, RespondFn respond) {
  const std::uint16_t tenant = frame.tenant_id;
  const auto it = members_.find(placement_of(tenant));
  if (it == members_.end()) {
    // No such backend (empty ring, or a stale override the eviction path
    // has not re-placed yet) — a dead-backend shed tells the client this
    // needs membership action, not a quick retry.
    respond_local_shed(respond, net::Status::kShed,
                       net::ShedDetail::kDeadBackend);
    return;
  }
  Member& member = it->second;
  if (member.health.state() == HealthState::kDead) {
    respond_local_shed(respond, net::Status::kShed,
                       net::ShedDetail::kDeadBackend);
    return;
  }
  const std::uint64_t token = next_token_++;
  if (!member.link->forward(token, frame)) {
    // A live-ish member whose channels are momentarily down: a blip.
    respond_local_shed(respond, net::Status::kShed,
                       net::ShedDetail::kTransient);
    return;
  }
  // No insert-after-response race here: complete() runs on this same loop
  // thread via a posted task, which cannot execute until we return.
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  tenant_inflight_[tenant] += 1;
  flights_.emplace(token, Flight{std::move(respond), tenant});
}

void Router::complete(std::uint64_t token, net::ResponseFrame response) {
  const auto it = flights_.find(token);
  if (it == flights_.end()) {
    late_responses_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Flight flight = std::move(it->second);
  flights_.erase(it);
  returned_.fetch_add(1, std::memory_order_relaxed);
  if (response.shed_origin == net::ShedOrigin::kRouter) {
    synthesized_.fetch_add(1, std::memory_order_relaxed);
  }
  const auto inflight = tenant_inflight_.find(flight.tenant);
  if (inflight != tenant_inflight_.end() && --inflight->second == 0) {
    tenant_inflight_.erase(inflight);
    if (migrations_.find(flight.tenant) != migrations_.end()) {
      cut_over(flight.tenant, /*forced=*/false);
    }
  }
  flight.respond(std::move(response));
}

void Router::start_migration(std::uint16_t tenant_id, std::uint32_t to_shard) {
  if (draining_) return;
  if (members_.find(to_shard) == members_.end()) return;
  if (migrations_.find(tenant_id) != migrations_.end()) return;
  if (placement_of(tenant_id) == to_shard) return;
  migrations_started_.fetch_add(1, std::memory_order_relaxed);
  Migration migration;
  migration.to_shard = to_shard;
  migration.force_cut_timer = server_->loop().add_timer(
      config_.migration_timeout_seconds, [this, tenant_id] {
        if (migrations_.find(tenant_id) != migrations_.end()) {
          forced_cuts_.fetch_add(1, std::memory_order_relaxed);
          cut_over(tenant_id, /*forced=*/true);
        }
      });
  migrations_.emplace(tenant_id, std::move(migration));
  if (tenant_inflight_.find(tenant_id) == tenant_inflight_.end()) {
    cut_over(tenant_id, /*forced=*/false);
  }
}

void Router::cut_over(std::uint16_t tenant_id, bool forced) {
  const auto it = migrations_.find(tenant_id);
  if (it == migrations_.end()) return;
  Migration migration = std::move(it->second);
  migrations_.erase(it);
  if (!forced) server_->loop().cancel_timer(migration.force_cut_timer);
  overrides_[tenant_id] = migration.to_shard;
  migrations_completed_.fetch_add(1, std::memory_order_relaxed);
  // Held frames go out in arrival order; a forced cut may interleave them
  // with stragglers still completing on the old shard, which is safe —
  // responses route by token, not placement.
  for (Held& held : migration.held) {
    forward_or_shed(std::move(held.frame), std::move(held.respond));
  }
}

void Router::respond_local_shed(const RespondFn& respond, net::Status status,
                                net::ShedDetail detail) {
  shed_local_.fetch_add(1, std::memory_order_relaxed);
  net::ResponseFrame response;
  response.status = status;
  response.retry_after_us = config_.shed_retry_after_us;
  response.shed_origin = net::ShedOrigin::kRouter;
  response.shed_detail = detail;
  respond(std::move(response));
}

void Router::arm_stats_timer() {
  if (draining_) return;
  server_->loop().add_timer(config_.stats_poll_seconds, [this] {
    poll_shard_stats();
    arm_stats_timer();
  });
}

void Router::arm_rebalance_timer() {
  if (draining_ || !config_.rebalance_enabled) return;
  server_->loop().add_timer(config_.rebalance_seconds, [this] {
    rebalance_round();
    arm_rebalance_timer();
  });
}

void Router::poll_shard_stats() {
  if (draining_) return;
  bool poll_timeout = false;
  AUTOPN_FAILPOINT("router.poll_timeout", poll_timeout = true);
  for (auto& [id, member] : members_) member.link->request_stats();
  // Health runs one tick behind the poll it just sent: poll_ok asks "did a
  // StatsFrame land since the LAST tick?", which makes the observation a
  // pure read — no waiting on the answer inside the loop thread.
  std::vector<std::uint32_t> retired;
  for (auto& [id, member] : members_) {
    if (member.retiring) {
      if (member.link->in_flight() == 0 ||
          std::chrono::steady_clock::now() >= member.retire_deadline) {
        retired.push_back(id);
      }
      continue;
    }
    HealthObservation observation;
    observation.connected = member.link->healthy();
    const std::uint64_t seen = member.link->stats_received();
    observation.poll_ok = !poll_timeout && seen > member.stats_seen;
    member.stats_seen = seen;
    observation.budget_exhausted = member.link->budget_exhausted();
    if (const auto transition = member.health.tick(observation)) {
      on_health_transition(id, member, *transition);
    }
  }
  for (const std::uint32_t id : retired) finalize_retire(id);
}

void Router::on_health_transition(std::uint32_t shard_id, Member& member,
                                  const HealthTransition& transition) {
  if (transition.to == HealthState::kDead && member.in_ring) {
    // Evict: take the dead shard's arcs away so placement converges, and
    // re-place whatever routed onto it by override. The member itself
    // stays — its link slow-probes, and any reconnect starts probation.
    member.in_ring = false;
    ring_.remove_shard(shard_id);
    append_log(MembershipEvent::kEvict, shard_id);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    migrate_off(shard_id);
  } else if (transition.to == HealthState::kHealthy && !member.in_ring) {
    // Probation passed — a recovered shard, or a fresh admit proving
    // itself. Joining the ring re-owns arcs instantly; in-flight requests
    // complete by token, so the join is drop-free by construction.
    member.in_ring = true;
    ring_.add_shard(shard_id);
    append_log(MembershipEvent::kJoin, shard_id);
    readmits_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Router::migrate_off(std::uint32_t shard_id) {
  // In-progress migrations aimed at the shard: redirect to the tenant's
  // ring owner (the shard no longer owns arcs, so the ring never picks it).
  for (auto& [tenant, migration] : migrations_) {
    if (migration.to_shard == shard_id) {
      migration.to_shard =
          ring_.owner_of_tenant(tenant).value_or(migration.to_shard);
    }
  }
  // Override tenants pinned to the shard: ordinary drain-then-cut back to
  // their ring owner. Ring-placed tenants re-owned implicitly above.
  std::vector<std::uint16_t> pinned;
  for (const auto& [tenant, shard] : overrides_) {
    if (shard == shard_id) pinned.push_back(tenant);
  }
  for (const std::uint16_t tenant : pinned) {
    if (const std::optional<std::uint32_t> owner =
            ring_.owner_of_tenant(tenant)) {
      start_migration(tenant, *owner);
    } else {
      overrides_.erase(tenant);  // empty ring; nothing to migrate onto
    }
  }
}

void Router::append_log(MembershipEvent event, std::uint32_t shard_id) {
  log_.push_back(MembershipRecord{next_log_seq_++, event, shard_id});
}

void Router::finalize_retire(std::uint32_t shard_id) {
  const auto it = members_.find(shard_id);
  if (it == members_.end()) return;
  // shutdown() synthesizes a completion for every stranded token; those
  // are posted to this loop and run after this task, touching only router
  // state — so destroying the link here cannot leak a flight.
  it->second.link->shutdown();
  members_.erase(it);
}

net::MembershipFrame Router::membership(const net::MembershipRequest& request) {
  // Loop thread: the owned NetServer answers kMembershipRequest inline.
  switch (request.op) {
    case net::MembershipOp::kAdd:
      return do_admit(request);
    case net::MembershipOp::kRemove:
      return do_retire(request.shard_id);
    case net::MembershipOp::kStatus:
      return do_status();
  }
  net::MembershipFrame reply;
  reply.ok = false;
  reply.message = "unknown membership op";
  return reply;
}

net::MembershipFrame Router::do_admit(const net::MembershipRequest& request) {
  net::MembershipFrame reply;
  if (draining_) {
    reply.ok = false;
    reply.message = "router is draining";
    return reply;
  }
  AUTOPN_FAILPOINT("router.admit", {
    reply.ok = false;
    reply.message = "injected fault: router.admit";
    populate_status(reply);
    return reply;
  });
  if (request.host.empty() || request.port == 0) {
    reply.ok = false;
    reply.message = "admit needs a host and a nonzero port";
    populate_status(reply);
    return reply;
  }
  if (members_.find(request.shard_id) != members_.end()) {
    reply.ok = false;
    reply.message = "shard id is already a member";
    populate_status(reply);
    return reply;
  }
  Member member;
  member.address = ShardAddress{request.shard_id, request.host, request.port};
  member.link = make_link(member.address);
  member.health = ShardHealth{config_.health};
  member.health.force(HealthState::kProbation);
  append_log(MembershipEvent::kAdmit, request.shard_id);
  members_.emplace(request.shard_id, std::move(member));
  admits_.fetch_add(1, std::memory_order_relaxed);
  reply.ok = true;
  reply.message = "admitted; joins the ring after probation";
  populate_status(reply);
  return reply;
}

net::MembershipFrame Router::do_retire(std::uint32_t shard_id) {
  net::MembershipFrame reply;
  if (draining_) {
    reply.ok = false;
    reply.message = "router is draining";
    return reply;
  }
  AUTOPN_FAILPOINT("router.retire", {
    reply.ok = false;
    reply.message = "injected fault: router.retire";
    populate_status(reply);
    return reply;
  });
  const auto it = members_.find(shard_id);
  if (it == members_.end()) {
    reply.ok = false;
    reply.message = "unknown shard id";
    populate_status(reply);
    return reply;
  }
  Member& member = it->second;
  if (member.retiring) {
    reply.ok = false;
    reply.message = "shard is already retiring";
    populate_status(reply);
    return reply;
  }
  if (member.in_ring) {
    member.in_ring = false;
    ring_.remove_shard(shard_id);
  }
  append_log(MembershipEvent::kRetire, shard_id);
  member.retiring = true;
  member.health.force(HealthState::kRetiring);
  member.retire_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.retire_timeout_seconds));
  retires_.fetch_add(1, std::memory_order_relaxed);
  migrate_off(shard_id);
  reply.ok = true;
  reply.message = "retiring; link closes once drained";
  populate_status(reply);
  return reply;
}

net::MembershipFrame Router::do_status() {
  net::MembershipFrame reply;
  reply.ok = true;
  populate_status(reply);
  return reply;
}

void Router::populate_status(net::MembershipFrame& reply) {
  const ScaleProposal scale = rebalancer_.propose_scale(build_snapshots());
  reply.scale_action = static_cast<std::uint8_t>(scale.action);
  reply.scale_shard = scale.shard_id;
  reply.members.reserve(members_.size());
  for (const auto& [id, member] : members_) {
    net::MemberInfo info;
    info.shard_id = id;
    info.host = member.address.host;
    info.port = member.address.port;
    info.health = static_cast<std::uint8_t>(member.health.state());
    info.in_ring = member.in_ring;
    info.redial_attempts = member.link->redial_attempts();
    info.reconnects = member.link->reconnects();
    info.last_error = member.link->last_error();
    reply.members.push_back(std::move(info));
  }
  std::sort(reply.members.begin(), reply.members.end(),
            [](const net::MemberInfo& a, const net::MemberInfo& b) {
              return a.shard_id < b.shard_id;
            });
  reply.log.reserve(log_.size());
  for (const MembershipRecord& record : log_) {
    reply.log.push_back(net::MembershipLogEntry{
        record.seq, static_cast<std::uint8_t>(record.event), record.shard_id});
  }
}

std::vector<ShardSnapshot> Router::build_snapshots() const {
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(members_.size());
  for (const auto& [id, member] : members_) {
    ShardSnapshot snapshot;
    snapshot.shard_id = id;
    // "Healthy" to the rebalancer means "a valid migration target": in the
    // ring, not on its way out, and actually connected.
    snapshot.healthy =
        member.in_ring && !member.retiring && member.link->healthy();
    if (const std::optional<net::StatsFrame> stats =
            member.link->latest_stats()) {
      snapshot.p99_us = stats->p99_us;
      snapshot.queue_depth = stats->queue_depth;
      snapshot.slots.reserve(stats->tenants.size());
      for (const net::TenantStat& t : stats->tenants) {
        snapshot.slots.push_back(SlotStat{t.tenant, t.count, t.p99_us});
      }
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

void Router::rebalance_round() {
  if (draining_) return;
  AUTOPN_FAILPOINT("router.rebalance", return);
  rebalance_rounds_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<ShardSnapshot> snapshots = build_snapshots();
  std::vector<TenantLoad> loads;
  loads.reserve(tenant_requests_.size());
  for (const auto& [tenant, requests] : tenant_requests_) {
    loads.push_back(TenantLoad{tenant, placement_of(tenant), requests});
  }
  for (const Move& move : rebalancer_.propose(snapshots, loads)) {
    start_migration(move.tenant_id, move.to_shard);
  }
  tenant_requests_.clear();  // each round judges a fresh traffic window
}

std::uint32_t Router::placement_of(std::uint16_t tenant_id) const {
  const auto it = overrides_.find(tenant_id);
  if (it != overrides_.end()) return it->second;
  return ring_.owner_of_tenant(tenant_id).value_or(0);
}

void Router::drain() {
  // Phase 1 (loop): stop routing — which also freezes membership (admit/
  // retire/health all check draining_), so the off-loop link iteration in
  // phase 2 sees a stable member table — and answer everything parked in
  // held queues: those frames were dispatched but never forwarded, so they
  // settle as router-origin kClosing sheds.
  run_on_loop([this] {
    draining_ = true;
    for (auto& [tenant, migration] : migrations_) {
      server_->loop().cancel_timer(migration.force_cut_timer);
      for (Held& held : migration.held) {
        respond_local_shed(held.respond, net::Status::kClosing);
      }
    }
    migrations_.clear();
  });
  // Phase 2: shut every link down. Each joins its io threads after
  // synthesizing a router-origin shed for every in-flight token, and all
  // those completions are posted to the loop before shutdown() returns.
  for (auto& [id, member] : members_) member.link->shutdown();
  // Phase 3 (loop, FIFO after every posted completion): the flight table
  // must be empty now; any leftover would break exactly-once, so settle it
  // as returned (it WAS forwarded) rather than leak the respond callback.
  run_on_loop([this] {
    for (auto& [token, flight] : flights_) {
      returned_.fetch_add(1, std::memory_order_relaxed);
      synthesized_.fetch_add(1, std::memory_order_relaxed);
      net::ResponseFrame response;
      response.status = net::Status::kClosing;
      response.retry_after_us = config_.shed_retry_after_us;
      response.shed_origin = net::ShedOrigin::kRouter;
      flight.respond(std::move(response));
    }
    flights_.clear();
  });
}

net::StatsFrame Router::stats() {
  // Loop thread (the server answers kStatsRequest frames there). Counters
  // sum across shards; percentiles take the worst shard — the number an
  // SLO monitor wants from a tier, not a meaningless average of averages.
  net::StatsFrame out;
  std::unordered_map<std::uint16_t, net::TenantStat> slots;
  for (auto& [id, member] : members_) {
    const std::optional<net::StatsFrame> stats = member.link->latest_stats();
    if (!stats) continue;
    out.offered += stats->offered;
    out.completed += stats->completed;
    out.shed += stats->shed;
    out.expired += stats->expired;
    out.failed += stats->failed;
    out.queue_depth += stats->queue_depth;
    out.p50_us = std::max(out.p50_us, stats->p50_us);
    out.p95_us = std::max(out.p95_us, stats->p95_us);
    out.p99_us = std::max(out.p99_us, stats->p99_us);
    out.retry_after_us = std::max(out.retry_after_us, stats->retry_after_us);
    for (const net::TenantStat& t : stats->tenants) {
      net::TenantStat& slot = slots[t.tenant];
      slot.tenant = t.tenant;
      slot.count += t.count;
      slot.p99_us = std::max(slot.p99_us, t.p99_us);
    }
  }
  out.shed += shed_local_.load(std::memory_order_relaxed);
  out.tenants.reserve(slots.size());
  for (auto& [slot, stat] : slots) out.tenants.push_back(stat);
  std::sort(out.tenants.begin(), out.tenants.end(),
            [](const net::TenantStat& a, const net::TenantStat& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

void Router::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) return;
  server_->shutdown();  // runs drain(): flights settle, links shut down
  for (auto& [id, member] : members_) {
    member.link->shutdown();  // no-op after drain
  }
}

RouterReport Router::report() const {
  RouterReport report;
  report.dispatched = dispatched_.load(std::memory_order_relaxed);
  report.forwarded = forwarded_.load(std::memory_order_relaxed);
  report.shed_local = shed_local_.load(std::memory_order_relaxed);
  report.returned = returned_.load(std::memory_order_relaxed);
  report.synthesized = synthesized_.load(std::memory_order_relaxed);
  report.late_responses = late_responses_.load(std::memory_order_relaxed);
  report.held = held_.load(std::memory_order_relaxed);
  report.migrations_started =
      migrations_started_.load(std::memory_order_relaxed);
  report.migrations_completed =
      migrations_completed_.load(std::memory_order_relaxed);
  report.forced_cuts = forced_cuts_.load(std::memory_order_relaxed);
  report.rebalance_rounds = rebalance_rounds_.load(std::memory_order_relaxed);
  report.admits = admits_.load(std::memory_order_relaxed);
  report.retires = retires_.load(std::memory_order_relaxed);
  report.evictions = evictions_.load(std::memory_order_relaxed);
  report.readmits = readmits_.load(std::memory_order_relaxed);
  return report;
}

std::optional<std::uint32_t> Router::shard_of(std::uint16_t tenant_id) {
  if (shut_down_.load(std::memory_order_acquire)) return std::nullopt;
  std::uint32_t shard = 0;
  run_on_loop([this, tenant_id, &shard] { shard = placement_of(tenant_id); });
  return shard;
}

void Router::migrate_tenant(std::uint16_t tenant_id, std::uint32_t to_shard) {
  if (shut_down_.load(std::memory_order_acquire)) return;
  server_->loop().post(
      [this, tenant_id, to_shard] { start_migration(tenant_id, to_shard); });
}

net::MembershipFrame Router::admit_shard(const ShardAddress& address) {
  net::MembershipFrame reply;
  if (shut_down_.load(std::memory_order_acquire)) {
    reply.ok = false;
    reply.message = "router is shut down";
    return reply;
  }
  net::MembershipRequest request;
  request.op = net::MembershipOp::kAdd;
  request.shard_id = address.id;
  request.host = address.host;
  request.port = address.port;
  run_on_loop([this, &request, &reply] { reply = membership(request); });
  return reply;
}

net::MembershipFrame Router::retire_shard(std::uint32_t shard_id) {
  net::MembershipFrame reply;
  if (shut_down_.load(std::memory_order_acquire)) {
    reply.ok = false;
    reply.message = "router is shut down";
    return reply;
  }
  run_on_loop([this, shard_id, &reply] { reply = do_retire(shard_id); });
  return reply;
}

net::MembershipFrame Router::membership_status() {
  net::MembershipFrame reply;
  if (shut_down_.load(std::memory_order_acquire)) {
    reply.ok = false;
    reply.message = "router is shut down";
    return reply;
  }
  run_on_loop([this, &reply] { reply = do_status(); });
  return reply;
}

ScaleProposal Router::scale_recommendation() {
  ScaleProposal proposal;
  if (shut_down_.load(std::memory_order_acquire)) return proposal;
  run_on_loop([this, &proposal] {
    proposal = rebalancer_.propose_scale(build_snapshots());
  });
  return proposal;
}

std::vector<std::pair<std::uint32_t, bool>> Router::shard_health() {
  std::vector<std::pair<std::uint32_t, bool>> health;
  if (shut_down_.load(std::memory_order_acquire)) return health;
  run_on_loop([this, &health] {
    health.reserve(members_.size());
    for (const auto& [id, member] : members_) {
      health.emplace_back(id, member.link->healthy());
    }
  });
  std::sort(health.begin(), health.end());
  return health;
}

std::vector<Router::ShardStatus> Router::shard_status() {
  std::vector<ShardStatus> status;
  if (shut_down_.load(std::memory_order_acquire)) return status;
  run_on_loop([this, &status] {
    status.reserve(members_.size());
    for (const auto& [id, member] : members_) {
      ShardStatus row;
      row.shard_id = id;
      row.healthy = member.link->healthy();
      row.health = member.health.state();
      row.in_ring = member.in_ring;
      row.reconnects = member.link->reconnects();
      row.redial_attempts = member.link->redial_attempts();
      row.last_error = member.link->last_error();
      row.stats = member.link->latest_stats();
      status.push_back(std::move(row));
    }
  });
  std::sort(status.begin(), status.end(),
            [](const ShardStatus& a, const ShardStatus& b) {
              return a.shard_id < b.shard_id;
            });
  return status;
}

void Router::run_on_loop(net::EventLoop::Task task) {
  std::promise<void> done;
  std::future<void> ran = done.get_future();
  server_->loop().post([&task, &done] {
    task();
    done.set_value();
  });
  ran.wait();
}

}  // namespace autopn::router
