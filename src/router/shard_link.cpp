#include "router/shard_link.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "util/failpoint.hpp"

namespace autopn::router {

namespace {

constexpr std::chrono::milliseconds kStopPollSlice{10};

}  // namespace

ShardLink::ShardLink(ShardAddress address, ShardLinkConfig config,
                     ResponseFn on_response)
    : address_(std::move(address)),
      config_(config),
      on_response_(std::move(on_response)) {
  const std::size_t count = std::max<std::size_t>(config_.channels, 1);
  channels_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
  // Dialing happens on the io threads (io_loop enters handle_down when it
  // finds no client), so construction never blocks on a dead backend.
  for (auto& channel : channels_) {
    Channel* raw = channel.get();
    raw->io = std::thread([this, raw] { io_loop(*raw); });
  }
}

ShardLink::~ShardLink() { shutdown(); }

bool ShardLink::forward(std::uint64_t token, const net::RequestFrame& frame) {
  AUTOPN_FAILPOINT("router.backend_down", return false);
  for (std::size_t probe = 0; probe < channels_.size(); ++probe) {
    Channel& channel = *channels_[(next_channel_ + probe) % channels_.size()];
    std::lock_guard<std::mutex> lock(channel.mutex);
    if (channel.client == nullptr || !channel.client->connected()) continue;
    const std::optional<std::uint64_t> backend_id = channel.client->send(
        frame.handler_id, frame.tenant_id, frame.deadline_us, frame.payload);
    if (!backend_id) continue;  // died mid-send; the io thread redials
    channel.inflight.emplace(*backend_id, token);
    next_channel_ = (next_channel_ + probe + 1) % channels_.size();
    return true;
  }
  return false;
}

void ShardLink::request_stats() {
  Channel& channel = *channels_.front();
  std::lock_guard<std::mutex> lock(channel.mutex);
  if (channel.client != nullptr && channel.client->connected()) {
    (void)channel.client->send_stats_request();
  }
}

std::optional<net::StatsFrame> ShardLink::latest_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return latest_stats_;
}

std::string ShardLink::last_error() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return last_error_;
}

std::size_t ShardLink::in_flight() const {
  std::size_t total = 0;
  for (const auto& channel : channels_) {
    std::lock_guard<std::mutex> lock(channel->mutex);
    total += channel->inflight.size();
  }
  return total;
}

void ShardLink::io_loop(Channel& channel) {
  while (!stopping_.load(std::memory_order_acquire)) {
    net::Client* client = nullptr;
    {
      std::lock_guard<std::mutex> lock(channel.mutex);
      client = channel.client.get();
    }
    // The raw pointer stays valid outside the lock because this io thread
    // is the only one that ever reseats channel.client.
    if (client == nullptr || client->closed()) {
      handle_down(channel);
      continue;
    }
    if (std::optional<net::ResponseFrame> response = client->recv(0.1)) {
      std::uint64_t token = 0;
      bool known = false;
      {
        std::lock_guard<std::mutex> lock(channel.mutex);
        const auto it = channel.inflight.find(response->request_id);
        if (it != channel.inflight.end()) {
          token = it->second;
          known = true;
          channel.inflight.erase(it);
        }
      }
      // Unknown id = a response for a request this link never sent; a
      // well-behaved shard cannot produce one, so it is dropped here
      // rather than forwarded to a token it does not own.
      if (known) on_response_(token, std::move(*response));
    }
    while (std::optional<net::StatsFrame> stats = client->poll_stats(0.0)) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        latest_stats_ = std::move(*stats);
      }
      stats_received_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ShardLink::handle_down(Channel& channel) {
  // Take the dead client out first so forward() fails fast for the whole
  // outage, then answer every stranded token — the router's ledger needs
  // every forwarded request answered by someone, and the shard no longer
  // can.
  bool was_connected = false;
  {
    std::lock_guard<std::mutex> lock(channel.mutex);
    was_connected = channel.client != nullptr;
    channel.client.reset();
  }
  if (was_connected) {
    connected_channels_.fetch_sub(1, std::memory_order_relaxed);
  }
  synthesize_all(channel);

  double backoff_seconds = config_.backoff.initial_backoff_seconds;
  std::uint64_t outage_failures = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    try {
      net::Client fresh = net::Client::connect(
          address_.host, address_.port, config_.backoff.attempt_timeout_seconds);
      {
        std::lock_guard<std::mutex> lock(channel.mutex);
        channel.client = std::make_unique<net::Client>(std::move(fresh));
      }
      connected_channels_.fetch_add(1, std::memory_order_relaxed);
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      budget_exhausted_.store(false, std::memory_order_relaxed);
      return;
    } catch (const std::exception& error) {
      ++outage_failures;
      redial_attempts_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        last_error_ = error.what();
      }
      // Once this outage burns the budget, stop escalating the backoff and
      // drop to the slow dead-probe cadence — the health machine reads
      // budget_exhausted() to declare the shard dead, but the probe keeps
      // running so a resurrected backend is still noticed.
      double wait_seconds = backoff_seconds;
      if (config_.redial_budget > 0 &&
          outage_failures >= config_.redial_budget) {
        budget_exhausted_.store(true, std::memory_order_relaxed);
        wait_seconds = std::max(config_.dead_probe_seconds,
                                config_.backoff.initial_backoff_seconds);
      } else {
        backoff_seconds = std::min(backoff_seconds * 2.0,
                                   config_.backoff.max_backoff_seconds);
      }
      // Capped wait, sliced so shutdown() stays prompt.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::duration<double>(wait_seconds);
      while (!stopping_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(kStopPollSlice);
      }
    }
  }
}

void ShardLink::synthesize_all(Channel& channel) {
  std::vector<std::uint64_t> tokens;
  {
    std::lock_guard<std::mutex> lock(channel.mutex);
    tokens.reserve(channel.inflight.size());
    for (const auto& [backend_id, token] : channel.inflight) {
      tokens.push_back(token);
    }
    channel.inflight.clear();
  }
  // Callbacks run outside the channel lock: once the client is gone,
  // forward() cannot add entries, so the extracted set is complete.
  for (const std::uint64_t token : tokens) {
    on_response_(token, synthesized_shed());
  }
}

net::ResponseFrame ShardLink::synthesized_shed() const {
  net::ResponseFrame response;
  response.status = net::Status::kShed;
  response.retry_after_us = config_.shed_retry_after_us;
  response.shed_origin = net::ShedOrigin::kRouter;
  // A link-level flush is a blip, not a verdict: the shard may be mid-
  // restart. Only the router's health machine escalates to kDeadBackend.
  response.shed_detail = net::ShedDetail::kTransient;
  return response;
}

void ShardLink::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& channel : channels_) {
    std::lock_guard<std::mutex> lock(channel->mutex);
    if (channel->client != nullptr) channel->client->shutdown_socket();
  }
  for (auto& channel : channels_) {
    if (channel->io.joinable()) channel->io.join();
  }
  for (auto& channel : channels_) {
    synthesize_all(*channel);
    std::lock_guard<std::mutex> lock(channel->mutex);
    channel->client.reset();
  }
  connected_channels_.store(0, std::memory_order_relaxed);
}

}  // namespace autopn::router
