#pragma once
// Router — the distributed serving tier's front end. One Router owns a
// NetServer facing clients (same wire protocol as a shard), a ShardLink per
// backend shard, a consistent-hash ring placing tenants onto shards, and a
// Rebalancer proposing conservative placement moves from polled shard KPIs.
//
// It implements net::RequestDispatcher: the owned NetServer hands it every
// decoded Request frame on the server's loop thread, and the Router either
// forwards the frame to the tenant's shard (tracking it as a "flight" keyed
// by a router token) or answers locally with a router-origin kShed. Shard
// responses come back on ShardLink io threads and are posted onto the same
// loop, so ALL routing state — flights, placement overrides, migrations,
// per-tenant counters — is loop-thread-only and lock-free.
//
// Ledger: the router extends the server's decoded == enqueued == written +
// dropped invariant across the hop. Internally, after shutdown:
//
//   dispatched == forwarded + shed_local     (every frame answered somewhere)
//   forwarded  == returned                   (every forward completed exactly
//                                             once — by the shard, or by a
//                                             synthesized backend-down shed)
//
// Responses route by token, never by placement, which is what makes tenant
// migration drop-free: a request in flight on the old shard completes to its
// original respond callback no matter where the tenant routes by then.
//
// Migration is drain-then-cut: new requests for a migrating tenant are held
// (bounded queue), the router waits for the tenant's in-flight count on the
// old shard to reach zero, then flips the override and forwards the held
// frames in arrival order to the new shard. A force-cut timer bounds the
// wait — cutting early is safe for the same token-routing reason.
//
// Membership is elastic: each backend is a Member carrying a ShardLink plus
// a ShardHealth machine ticked once per stats poll. A member that burns its
// link's redial budget (or racks up poll misses) is declared dead: evicted
// from the ring, its tenants re-placed through the ordinary drain-then-cut
// path, while the link keeps slow-probing so recovery is noticed — a
// returning shard re-enters through probation and rejoins the ring only
// after N clean polls. Shards can also be admitted and retired at runtime
// (v1.2 Membership frames / `autopn router-ctl`); every ring change is
// appended to an ordered membership log, and the ring is always exactly the
// fold of that log (see health.hpp) — which is what makes placement
// reproducible across routers. The ledger invariants hold across every
// transition because nothing about completion routing changes: responses
// route by token, and a link is only destroyed after its shutdown()
// synthesized an answer for every outstanding token.
//
// Failpoint sites: router.forward (dispatch-time forced local shed),
// router.backend_down (ShardLink::forward reports the backend unreachable),
// router.rebalance (skips a rebalance round), router.poll_timeout (a poll
// tick observes no stats from any shard — drives suspect/dead edges),
// router.admit / router.retire (membership ops rejected as if invalid).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/dispatcher.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "router/health.hpp"
#include "router/rebalancer.hpp"
#include "router/ring.hpp"
#include "router/shard_link.hpp"

namespace autopn::router {

struct RouterConfig {
  /// Client-facing listener (port 0 = kernel-assigned, see port()).
  net::NetServerConfig server;
  std::size_t channels_per_shard = 1;
  /// Redial schedule for downed shards; shapes each cycle's attempt
  /// timeout and backoff.
  net::BackoffPolicy backoff;
  /// Consecutive failed dials per outage before a link reports its budget
  /// exhausted — the fast path to declaring a shard dead (0 = never).
  std::uint64_t redial_budget = 8;
  /// Slow-probe cadence for a budget-exhausted (dead) backend.
  double dead_probe_seconds = 1.0;
  HealthConfig health;
  RebalanceConfig rebalance;
  bool rebalance_enabled = true;
  /// Per-shard KPI poll cadence. Keep above the link's ~0.1s receive
  /// window: a faster cadence observes the stats reply only every other
  /// tick, which health reads as alternating misses (probation's
  /// consecutive-pass counter then never fills).
  double stats_poll_seconds = 0.2;
  double rebalance_seconds = 1.0;    ///< placement decision cadence
  /// Held-frame cap per migrating tenant; overflow is a router-origin shed.
  std::size_t max_held_per_tenant = 256;
  /// Force-cut bound on drain-then-cut (seconds the router waits for a
  /// migrating tenant's in-flight count to reach zero).
  double migration_timeout_seconds = 1.0;
  /// Backoff hint carried by router-origin sheds.
  std::uint64_t shed_retry_after_us = 20'000;
  std::size_t vnodes_per_shard = 64;
  /// Bound on a retiring shard's drain: once its in-flight count reaches
  /// zero — or this many seconds pass — the link is closed and the member
  /// forgotten. Token routing makes the forced close drop-free (stranded
  /// flights settle as synthesized sheds).
  double retire_timeout_seconds = 1.0;
};

/// Router-side accounting; see the file comment for the invariants.
struct RouterReport {
  std::uint64_t dispatched = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t shed_local = 0;   ///< router-origin answers (no backend,
                                  ///< hold overflow, drain, failpoint)
  std::uint64_t returned = 0;     ///< flight completions delivered
  std::uint64_t synthesized = 0;  ///< subset of returned: backend-down sheds
  std::uint64_t late_responses = 0;  ///< completion for an unknown token
  std::uint64_t held = 0;            ///< frames parked during migrations
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t forced_cuts = 0;  ///< migrations cut by the timeout
  std::uint64_t rebalance_rounds = 0;
  // Membership churn (see the file comment):
  std::uint64_t admits = 0;     ///< members created at runtime
  std::uint64_t retires = 0;    ///< administrative removals accepted
  std::uint64_t evictions = 0;  ///< health-driven ring removals
  std::uint64_t readmits = 0;   ///< ring joins earned through probation
};

class Router final : public net::RequestDispatcher {
 public:
  /// Connects to nothing yet — ShardLink io threads dial in the background,
  /// so a Router starts serving (and shedding router-origin) immediately
  /// even when every shard is still down. Throws only if the client-facing
  /// listener cannot bind.
  explicit Router(std::vector<ShardAddress> shards, RouterConfig config = {});
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // RequestDispatcher — invoked by the owned NetServer on its loop thread.
  void dispatch(net::RequestFrame frame, RespondFn respond) override;
  void drain() override;
  [[nodiscard]] net::StatsFrame stats() override;
  [[nodiscard]] net::MembershipFrame membership(
      const net::MembershipRequest& request) override;

  /// Client-facing port (resolves config.server.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return server_->port(); }

  /// Ordered close: stops the client listener (which drains this dispatcher
  /// — every in-flight request is answered — then flushes), and shuts every
  /// shard link down. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] RouterReport report() const;
  [[nodiscard]] net::NetServerReport server_report() const {
    return server_->report();
  }

  /// The shard `tenant_id` currently routes to (override table, else ring).
  /// Synchronizes with the loop thread; any thread except the loop thread.
  [[nodiscard]] std::optional<std::uint32_t> shard_of(std::uint16_t tenant_id);

  /// Manually starts a drain-then-cut migration (same path the rebalancer
  /// takes); used by tests and the CLI. No-op if the tenant is already
  /// migrating or already routed to `to_shard`, or the shard is unknown.
  void migrate_tenant(std::uint16_t tenant_id, std::uint32_t to_shard);

  /// In-process membership control — the same operations the wire's
  /// Membership frames reach, for tests and embedding callers. All three
  /// synchronize with the loop thread; call from any thread EXCEPT the
  /// loop thread, and not after shutdown() (they return ok=false then).
  net::MembershipFrame admit_shard(const ShardAddress& address);
  net::MembershipFrame retire_shard(std::uint32_t shard_id);
  net::MembershipFrame membership_status();

  /// The rebalancer's capacity recommendation over the current snapshot
  /// (same thread rules as membership_status).
  [[nodiscard]] ScaleProposal scale_recommendation();

  /// Liveness per shard id: (id, link connected). Synchronizes with the
  /// loop thread (membership mutates at runtime); any thread except the
  /// loop thread. Empty after shutdown().
  [[nodiscard]] std::vector<std::pair<std::uint32_t, bool>> shard_health();

  /// Per-shard health + the latest polled KPIs — what the CLI renders as
  /// the tier's SLO table. Same thread rules as shard_health().
  struct ShardStatus {
    std::uint32_t shard_id = 0;
    bool healthy = false;  ///< link has a live connection
    HealthState health = HealthState::kHealthy;
    bool in_ring = false;
    std::uint64_t reconnects = 0;
    std::uint64_t redial_attempts = 0;
    std::string last_error;
    std::optional<net::StatsFrame> stats;
  };
  [[nodiscard]] std::vector<ShardStatus> shard_status();

 private:
  struct Flight {
    RespondFn respond;
    std::uint16_t tenant = 0;
  };
  struct Held {
    net::RequestFrame frame;
    RespondFn respond;
  };
  struct Migration {
    std::uint32_t to_shard = 0;
    std::deque<Held> held;
    net::EventLoop::TimerId force_cut_timer = 0;
  };
  /// One backend shard: its link plus all membership/health bookkeeping.
  /// Everything but `link` is loop-thread-only; the link pointer itself is
  /// also read off-loop by drain()/shutdown(), which is safe because by
  /// then draining_ has frozen all membership mutation.
  struct Member {
    ShardAddress address;
    std::unique_ptr<ShardLink> link;
    ShardHealth health;
    bool in_ring = false;
    bool retiring = false;
    /// link->stats_received() at the previous poll tick (poll_ok = grew).
    std::uint64_t stats_seen = 0;
    std::chrono::steady_clock::time_point retire_deadline{};
  };

  // Loop-thread-only paths.
  void forward_or_shed(net::RequestFrame frame, RespondFn respond);
  void complete(std::uint64_t token, net::ResponseFrame response);
  void start_migration(std::uint16_t tenant_id, std::uint32_t to_shard);
  void cut_over(std::uint16_t tenant_id, bool forced);
  void respond_local_shed(const RespondFn& respond, net::Status status,
                          net::ShedDetail detail = net::ShedDetail::kNone);
  void arm_stats_timer();
  void arm_rebalance_timer();
  void poll_shard_stats();
  void rebalance_round();
  [[nodiscard]] std::uint32_t placement_of(std::uint16_t tenant_id) const;

  // Membership paths (loop thread).
  [[nodiscard]] std::unique_ptr<ShardLink> make_link(ShardAddress address);
  void append_log(MembershipEvent event, std::uint32_t shard_id);
  void on_health_transition(std::uint32_t shard_id, Member& member,
                            const HealthTransition& transition);
  /// Re-places everything routed at `shard_id`: redirects in-progress
  /// migrations targeting it and drain-then-cuts override tenants to
  /// their ring owner. Ring-placed tenants re-own implicitly.
  void migrate_off(std::uint32_t shard_id);
  void finalize_retire(std::uint32_t shard_id);
  [[nodiscard]] net::MembershipFrame do_admit(
      const net::MembershipRequest& request);
  [[nodiscard]] net::MembershipFrame do_retire(std::uint32_t shard_id);
  [[nodiscard]] net::MembershipFrame do_status();
  /// Fills a reply's member table, log, and scale recommendation.
  void populate_status(net::MembershipFrame& reply);
  [[nodiscard]] std::vector<ShardSnapshot> build_snapshots() const;

  /// Posts `task` to the loop and blocks until it ran. Not from the loop
  /// thread.
  void run_on_loop(net::EventLoop::Task task);

  RouterConfig config_;
  HashRing ring_;
  Rebalancer rebalancer_;

  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> shed_local_{0};
  std::atomic<std::uint64_t> returned_{0};
  std::atomic<std::uint64_t> synthesized_{0};
  std::atomic<std::uint64_t> late_responses_{0};
  std::atomic<std::uint64_t> held_{0};
  std::atomic<std::uint64_t> migrations_started_{0};
  std::atomic<std::uint64_t> migrations_completed_{0};
  std::atomic<std::uint64_t> forced_cuts_{0};
  std::atomic<std::uint64_t> rebalance_rounds_{0};
  std::atomic<std::uint64_t> admits_{0};
  std::atomic<std::uint64_t> retires_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> readmits_{0};
  std::atomic<bool> shut_down_{false};

  // Loop-thread-only routing state (accessed on server_->loop()'s thread).
  std::uint64_t next_token_ = 1;
  bool draining_ = false;
  std::unordered_map<std::uint64_t, Flight> flights_;
  std::unordered_map<std::uint16_t, std::uint32_t> overrides_;
  std::unordered_map<std::uint16_t, Migration> migrations_;
  std::unordered_map<std::uint16_t, std::size_t> tenant_inflight_;
  std::unordered_map<std::uint16_t, std::uint64_t> tenant_requests_;
  std::vector<MembershipRecord> log_;  ///< ordered; ring == fold of log
  std::uint64_t next_log_seq_ = 1;

  /// Members outlive server_ (declared before it): NetServer's shutdown
  /// runs drain(), which still touches the links.
  std::unordered_map<std::uint32_t, Member> members_;
  std::unique_ptr<net::NetServer> server_;
};

}  // namespace autopn::router
