#pragma once
// HashRing — consistent hashing of tenants onto backend shards. Each shard
// contributes `vnodes_per_shard` virtual points (splitmix64 of shard id ×
// vnode index) on a 64-bit ring kept as a sorted vector; a key's owner is
// the first point clockwise from the key's hash (binary search + wrap).
//
// Why consistent hashing and not `tenant % shards`: adding or removing a
// shard must strand as few tenants as possible — with modulo, nearly every
// tenant changes owner on a membership change; on the ring only the arcs
// adjacent to the joining/leaving shard's points move, an expected K/N of
// the keys (router_ring_test pins this bound). Virtual nodes keep per-shard
// arc totals balanced; 64 per shard holds distribution skew within a few
// percent of even at the shard counts a single router fronts.
//
// Placement is deterministic: the same membership set yields the same
// points (and therefore the same owners) regardless of insertion order —
// two routers configured with the same shard list agree without talking.

#include <cstdint>
#include <optional>
#include <vector>

namespace autopn::router {

/// splitmix64 — the ring's hash for both virtual points and keys. Public
/// so tests (and the router's tenant hashing) use exactly the ring's view.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes_per_shard = 64);

  /// Idempotent: adding a present shard is a no-op.
  void add_shard(std::uint32_t shard_id);
  /// Idempotent: removing an absent shard is a no-op.
  void remove_shard(std::uint32_t shard_id);

  /// The shard owning `key` (clockwise successor point), or std::nullopt on
  /// an empty ring.
  [[nodiscard]] std::optional<std::uint32_t> owner(std::uint64_t key) const;

  /// Convenience: owner of a tenant id, hashed through mix64.
  [[nodiscard]] std::optional<std::uint32_t> owner_of_tenant(
      std::uint16_t tenant_id) const {
    return owner(mix64(tenant_id));
  }

  [[nodiscard]] std::size_t shard_count() const noexcept;
  [[nodiscard]] std::vector<std::uint32_t> shards() const;
  [[nodiscard]] bool contains(std::uint32_t shard_id) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::size_t vnodes_;
  std::vector<Point> points_;  ///< sorted by hash (shard breaks ties)
};

}  // namespace autopn::router
