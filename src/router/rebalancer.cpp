#include "router/rebalancer.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

namespace autopn::router {

Rebalancer::Rebalancer(RebalanceConfig config) : config_(config) {}

std::string to_string(ScaleAction action) {
  switch (action) {
    case ScaleAction::kHold:
      return "hold";
    case ScaleAction::kAdd:
      return "add";
    case ScaleAction::kRemove:
      return "remove";
  }
  return "?";
}

std::vector<Move> Rebalancer::propose(
    const std::vector<ShardSnapshot>& shards,
    const std::vector<TenantLoad>& tenants) const {
  std::vector<Move> moves;
  if (shards.size() < 2) return moves;

  std::unordered_map<std::uint32_t, const ShardSnapshot*> by_id;
  for (const ShardSnapshot& s : shards) by_id.emplace(s.shard_id, &s);

  // Targets: healthy shards with headroom, least-loaded first. A cluster
  // with no qualifying target proposes nothing — better to stay hot than
  // to regress a shard that is merely satisfied without slack.
  const auto headroom_limit = static_cast<std::uint64_t>(
      static_cast<double>(config_.slo_p99_us) * config_.headroom_fraction);
  std::vector<const ShardSnapshot*> targets;
  for (const ShardSnapshot& s : shards) {
    if (s.healthy && s.p99_us < headroom_limit) targets.push_back(&s);
  }
  std::sort(targets.begin(), targets.end(),
            [](const ShardSnapshot* a, const ShardSnapshot* b) {
              return a->p99_us != b->p99_us ? a->p99_us < b->p99_us
                                            : a->queue_depth < b->queue_depth;
            });
  if (targets.empty()) return moves;

  // Candidates: tenants with enough signal, routed to a violating shard,
  // whose own slot p99 also violates — busiest first (biggest relief).
  std::vector<TenantLoad> candidates;
  for (const TenantLoad& t : tenants) {
    if (t.requests < config_.min_tenant_requests) continue;
    const auto it = by_id.find(t.shard_id);
    if (it == by_id.end()) continue;
    const ShardSnapshot& home = *it->second;
    if (home.healthy && home.p99_us <= config_.slo_p99_us) continue;
    const std::uint16_t slot =
        static_cast<std::uint16_t>(t.tenant_id % config_.tenant_slots);
    std::optional<std::uint64_t> slot_p99;
    for (const SlotStat& s : home.slots) {
      if (s.slot == slot) slot_p99 = s.p99_us;
    }
    // "Never move a tenant whose SLO is satisfied": an unhealthy shard
    // reports no slots, which counts as violating (traffic is failing).
    if (home.healthy && slot_p99 && *slot_p99 <= config_.slo_p99_us) continue;
    candidates.push_back(t);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const TenantLoad& a, const TenantLoad& b) {
              return a.requests != b.requests ? a.requests > b.requests
                                              : a.tenant_id < b.tenant_id;
            });

  std::size_t target_idx = 0;
  for (const TenantLoad& t : candidates) {
    if (moves.size() >= config_.max_moves_per_round) break;
    // Round-robin over targets so a multi-move round doesn't dogpile the
    // single coolest shard; skip a target that is the tenant's own home
    // or not strictly less loaded than it.
    const ShardSnapshot& home = *by_id.at(t.shard_id);
    const ShardSnapshot* chosen = nullptr;
    for (std::size_t probe = 0; probe < targets.size(); ++probe) {
      const ShardSnapshot* cand = targets[(target_idx + probe) % targets.size()];
      const bool strictly_cooler = !home.healthy || cand->p99_us < home.p99_us;
      if (cand->shard_id != t.shard_id && strictly_cooler) {
        chosen = cand;
        target_idx = (target_idx + probe + 1) % targets.size();
        break;
      }
    }
    if (chosen == nullptr) continue;
    moves.push_back(Move{t.tenant_id, t.shard_id, chosen->shard_id});
  }
  return moves;
}

ScaleProposal Rebalancer::propose_scale(
    const std::vector<ShardSnapshot>& shards) const {
  std::vector<const ShardSnapshot*> healthy;
  for (const ShardSnapshot& s : shards) {
    if (s.healthy) healthy.push_back(&s);
  }
  if (healthy.empty()) return {};

  // kAdd: no healthy shard meets the SLO. propose() needs a satisfied
  // target with headroom to move anything; when none exists, migration is
  // a zero-sum shuffle and only capacity helps.
  const bool all_violating =
      std::all_of(healthy.begin(), healthy.end(), [this](const ShardSnapshot* s) {
        return s->p99_us > config_.slo_p99_us;
      });
  if (all_violating) return {ScaleAction::kAdd, 0};

  // kRemove: with >=2 healthy shards, retire the coolest if it AND every
  // other healthy shard sit under slo × headroom — the survivors have the
  // same slack a migration target must have, so absorbing the retiree's
  // tenants cannot regress a satisfied SLO.
  if (healthy.size() >= 2) {
    const auto headroom_limit = static_cast<std::uint64_t>(
        static_cast<double>(config_.slo_p99_us) * config_.headroom_fraction);
    const bool all_cool =
        std::all_of(healthy.begin(), healthy.end(),
                    [headroom_limit](const ShardSnapshot* s) {
                      return s->p99_us < headroom_limit;
                    });
    if (all_cool) {
      const ShardSnapshot* coolest = *std::min_element(
          healthy.begin(), healthy.end(),
          [](const ShardSnapshot* a, const ShardSnapshot* b) {
            if (a->p99_us != b->p99_us) return a->p99_us < b->p99_us;
            if (a->queue_depth != b->queue_depth) {
              return a->queue_depth < b->queue_depth;
            }
            return a->shard_id < b->shard_id;
          });
      return {ScaleAction::kRemove, coolest->shard_id};
    }
  }
  return {};
}

}  // namespace autopn::router
