#pragma once
// KPI monitoring policies (paper §VI). A policy decides when a measurement
// window has gathered enough evidence to report a throughput estimate to the
// optimizer — the central accuracy/reactiveness trade-off of the paper.
//
// Implemented policies:
//  * FixedTimePolicy     — static window duration (the fragile baseline of
//                          Fig 7a/7b; needs workload-specific tuning);
//  * FixedCommitsPolicy  — wait for N top-level commits (vulnerable to "bad"
//                          configurations that commit very slowly);
//  * CvAdaptivePolicy    — AutoPN's policy: per-commit throughput estimates
//                          T(i) = i / time(i); the window completes when the
//                          coefficient of variation of {T(1)..T(i)} falls
//                          below a threshold (default 10%), with an adaptive
//                          timeout of 1/T(1,1) without commits that bails out
//                          of starving configurations;
//  * WpnocPolicy         — "Wait for N commits" + the adaptive timeout
//                          (WPNOC10/WPNOC30 variants of Fig 7c).
//
// Policies are clock-agnostic: they consume commit timestamps in seconds and
// answer "is the window complete?", so the same code runs live (wall clock)
// and in virtual time (sim::CommitStream).

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace autopn::runtime {

/// Result of one measurement window.
struct Measurement {
  double throughput = 0.0;  ///< commits / elapsed (0 if nothing committed)
  std::size_t commits = 0;
  double elapsed = 0.0;  ///< seconds from window start to completion
  bool timed_out = false;
  /// Latency statistics over the window (seconds; all 0 without samples).
  /// By default these are commit-to-commit gaps observed by the policy; a
  /// LatencySource (e.g. the serving engine's enqueue→commit tracker)
  /// overrides them with true per-request latencies.
  double mean_latency = 0.0;
  double p99_latency = 0.0;
  std::size_t latency_samples = 0;
};

/// Fills the latency fields of `m` from raw samples in seconds; leaves `m`
/// untouched when `samples` is empty.
void attach_latency_samples(Measurement& m, std::vector<double> samples);

/// Provider of request-level latency samples gathered while a measurement
/// window runs. drain_latencies() hands over (and clears) everything recorded
/// since the previous drain, so the controller can discard pre-window samples
/// and attach in-window ones to the Measurement (KpiKind::kLatency then
/// optimizes real request latency instead of inverse throughput).
class LatencySource {
 public:
  virtual ~LatencySource() = default;
  [[nodiscard]] virtual std::vector<double> drain_latencies() = 0;
};

class MonitorPolicy {
 public:
  virtual ~MonitorPolicy() = default;

  /// Starts a new measurement window at absolute time `now`.
  virtual void begin_window(double now);

  /// Feeds one commit event; returns true when the window is complete.
  [[nodiscard]] virtual bool on_commit(double now);

  /// Absolute deadline at which the window must be cut even without further
  /// commits, or nullopt when the policy never times out.
  [[nodiscard]] virtual std::optional<double> deadline() const = 0;

  /// Finalizes the window at time `now`.
  [[nodiscard]] Measurement finish(double now, bool timed_out) const;

  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] std::size_t commits() const noexcept { return commits_; }
  [[nodiscard]] double window_start() const noexcept { return start_; }

 protected:
  /// Policy-specific completion test, called after commit bookkeeping.
  [[nodiscard]] virtual bool window_complete(double now) = 0;

  double start_ = 0.0;
  double last_commit_ = 0.0;
  std::size_t commits_ = 0;
  std::vector<double> gaps_;  ///< inter-commit gaps of the current window
};

/// Static window of fixed duration.
class FixedTimePolicy final : public MonitorPolicy {
 public:
  explicit FixedTimePolicy(double window_seconds) : window_(window_seconds) {}

  [[nodiscard]] std::optional<double> deadline() const override {
    return start_ + window_;
  }
  [[nodiscard]] std::string name() const override;

 protected:
  [[nodiscard]] bool window_complete(double now) override {
    return now - start_ >= window_;
  }

 private:
  double window_;
};

/// Wait for a fixed number of commits, with no safety timeout.
class FixedCommitsPolicy final : public MonitorPolicy {
 public:
  explicit FixedCommitsPolicy(std::size_t target) : target_(target) {}

  [[nodiscard]] std::optional<double> deadline() const override {
    return std::nullopt;
  }
  [[nodiscard]] std::string name() const override;

 protected:
  [[nodiscard]] bool window_complete(double) override {
    return commits_ >= target_;
  }

 private:
  std::size_t target_;
};

/// Shared implementation of the adaptive timeout: the window is cut when no
/// commit arrives for timeout_scale / T(1,1) seconds. T(1,1) is learned from
/// the first (sequential) configuration AutoPN always samples.
class AdaptiveTimeoutMixin {
 public:
  /// Sets the sequential-configuration throughput used to derive the
  /// timeout. Unset => no timeout (the reference is not known yet).
  void set_reference_throughput(double t11) { reference_ = t11; }
  [[nodiscard]] std::optional<double> reference() const {
    if (reference_ > 0.0) return reference_;
    return std::nullopt;
  }
  [[nodiscard]] std::optional<double> timeout_interval(double scale) const {
    if (reference_ <= 0.0) return std::nullopt;
    return scale / reference_;
  }

 private:
  double reference_ = 0.0;
};

/// AutoPN's adaptive policy (paper §VI): CV-based stability + adaptive
/// timeout.
///
/// Reproduction notes (documented deviations from the paper's wording, both
/// required for robustness — see DESIGN.md):
///  * the CV is computed over a sliding window of the most recent cumulative
///    throughput estimates T(i) = i / time(i) rather than the whole series:
///    warm-up after a reconfiguration biases the earliest estimates, and the
///    historical spread of a drifting series never settles, so whole-series
///    CV can keep a long-stable estimate "unstable" for tens of seconds;
///  * the timeout waits `timeout_scale / T(1,1)` (default 3x the sequential
///    mean inter-commit time) since the last commit: with exponentially
///    distributed inter-commits, a gap of exactly 1/T(1,1) occurs with
///    probability e^-2 ~ 0.14 per commit even at twice the sequential rate,
///    which would cut healthy configurations.
class CvAdaptivePolicy final : public MonitorPolicy, public AdaptiveTimeoutMixin {
 public:
  /// `cv_threshold`: declare the measurement stable when the CV of the
  /// recent throughput estimates falls below this (paper default 10%).
  /// `min_commits`: minimum evidence before the CV test applies.
  /// `timeout_scale`: multiple of 1/T(1,1) to wait without commits.
  /// `cv_window`: number of recent estimates the CV is computed over.
  explicit CvAdaptivePolicy(double cv_threshold = 0.10, std::size_t min_commits = 5,
                            double timeout_scale = 3.0, std::size_t cv_window = 20)
      : cv_threshold_(cv_threshold),
        min_commits_(min_commits),
        timeout_scale_(timeout_scale),
        cv_window_(cv_window) {}

  void begin_window(double now) override;
  [[nodiscard]] std::optional<double> deadline() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double current_cv() const;

 protected:
  [[nodiscard]] bool window_complete(double now) override;

 private:
  double cv_threshold_;
  std::size_t min_commits_;
  double timeout_scale_;
  std::size_t cv_window_;
  std::deque<double> estimates_;  // recent T(i) = i / time(i)
};

/// WPNOC: wait for a fixed number of commits; optionally guarded by the
/// adaptive timeout (the WPNOC10/WPNOC30 + adapt-TO variants of Fig 7c).
class WpnocPolicy final : public MonitorPolicy, public AdaptiveTimeoutMixin {
 public:
  WpnocPolicy(std::size_t target, bool adaptive_timeout, double timeout_scale = 3.0)
      : target_(target),
        adaptive_timeout_(adaptive_timeout),
        timeout_scale_(timeout_scale) {}

  [[nodiscard]] std::optional<double> deadline() const override;
  [[nodiscard]] std::string name() const override;

 protected:
  [[nodiscard]] bool window_complete(double) override {
    return commits_ >= target_;
  }

 private:
  std::size_t target_;
  bool adaptive_timeout_;
  double timeout_scale_;
};

/// Drives one measurement window against a commit-event source (virtual time
/// or recorded): `next_commit` yields strictly increasing absolute commit
/// timestamps. Honors the policy's deadline between commits.
[[nodiscard]] Measurement run_window_on_stream(
    MonitorPolicy& policy, const std::function<double()>& next_commit,
    double start_time);

}  // namespace autopn::runtime
