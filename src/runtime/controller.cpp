#include "runtime/controller.hpp"

#include <chrono>

#include "util/failpoint.hpp"

namespace autopn::runtime {

TuningController::TuningController(stm::Stm& stm,
                                   std::unique_ptr<opt::Optimizer> optimizer,
                                   std::unique_ptr<MonitorPolicy> policy,
                                   const util::Clock& clock, ControllerParams params)
    : stm_(&stm),
      optimizer_(std::move(optimizer)),
      policy_(std::move(policy)),
      clock_(&clock),
      params_(params),
      actuator_(stm) {
  actuator_.set_enabled(params_.actuate);
}

TuningController::~TuningController() { stm_->set_commit_callback(nullptr); }

Measurement TuningController::run_live_window() {
  using namespace std::chrono_literals;
  {
    std::scoped_lock lock{mutex_};
    pending_commits_.clear();
  }
  // Discard request latencies recorded before this window started.
  if (latency_source_ != nullptr) (void)latency_source_->drain_latencies();
  // Install the probe for the duration of this window.
  auto callback = std::make_shared<const std::function<void()>>([this] {
    // Chaos hook: swallow the commit event before it reaches the monitor —
    // the window then only ends by timeout, which is exactly the stall the
    // watchdog exists to detect.
    AUTOPN_FAILPOINT("runtime.monitor.drop_commit", return);
    {
      std::scoped_lock lock{mutex_};
      pending_commits_.push_back(clock_->now());
    }
    cv_.notify_one();
  });
  stm_->set_commit_callback(callback);

  const double start = clock_->now();
  policy_->begin_window(start);
  const double hard_cap =
      params_.max_window_seconds > 0.0 ? start + params_.max_window_seconds : 1e18;

  Measurement result;
  bool done = false;
  while (!done) {
    double commit_at = 0.0;
    bool have_commit = false;
    {
      std::unique_lock lock{mutex_};
      cv_.wait_for(lock, 2ms, [this] { return !pending_commits_.empty(); });
      if (!pending_commits_.empty()) {
        commit_at = pending_commits_.front();
        pending_commits_.pop_front();
        have_commit = true;
      }
    }
    const double now = clock_->now();
    const auto deadline = policy_->deadline();
    if (have_commit) {
      if (deadline.has_value() && commit_at > *deadline) {
        result = policy_->finish(*deadline, /*timed_out=*/true);
        done = true;
      } else if (policy_->on_commit(commit_at)) {
        result = policy_->finish(commit_at, /*timed_out=*/false);
        done = true;
      }
    } else if (deadline.has_value() && now > *deadline) {
      result = policy_->finish(*deadline, /*timed_out=*/true);
      done = true;
    }
    if (!done && now > hard_cap) {
      result = policy_->finish(now, /*timed_out=*/true);
      done = true;
    }
  }
  stm_->set_commit_callback(nullptr);
  if (latency_source_ != nullptr) {
    // Request latencies trump the policy's commit-to-commit gap estimate.
    if (auto samples = latency_source_->drain_latencies(); !samples.empty()) {
      attach_latency_samples(result, std::move(samples));
    }
  }
  note_window(result);
  return result;
}

void TuningController::note_window(const Measurement& measurement) {
  if (measurement.commits > 0) {
    // The configuration demonstrably makes progress: remember it as the
    // revert target and clear any stall streak.
    watchdog_.has_last_known_good = true;
    watchdog_.last_known_good = actuator_.current();
    stall_streak_ = 0;
    return;
  }
  if (!measurement.timed_out) return;
  ++watchdog_.stalled_windows;
  if (params_.watchdog_stall_windows == 0) return;
  if (++stall_streak_ < params_.watchdog_stall_windows) return;
  stall_streak_ = 0;
  if (!watchdog_.has_last_known_good) return;  // nothing safe to revert to
  const opt::Config from = actuator_.current();
  actuator_.apply(watchdog_.last_known_good);
  ++watchdog_.reverts;
  watchdog_.events.push_back(
      WatchdogEvent{clock_->now(), from, watchdog_.last_known_good});
}

Measurement TuningController::measure_once() { return run_live_window(); }

double TuningController::kpi_of(const Measurement& measurement,
                                const stm::StmStatsSnapshot& before,
                                const stm::StmStatsSnapshot& after) const {
  switch (params_.kpi) {
    case KpiKind::kThroughput:
      return measurement.throughput;
    case KpiKind::kLatency:
      // Inverse mean latency, as a maximization value. With a LatencySource
      // attached this is real request latency (queueing + execution); without
      // one it degrades to inverse mean commit-to-commit gap, which orders
      // identically to throughput on steady windows.
      if (measurement.mean_latency > 0.0) return 1.0 / measurement.mean_latency;
      return measurement.commits > 0 && measurement.elapsed > 0.0
                 ? static_cast<double>(measurement.commits) / measurement.elapsed
                 : 0.0;
    case KpiKind::kAbortRate: {
      const auto commits = after.top_commits - before.top_commits;
      const auto aborts = after.top_aborts - before.top_aborts;
      const double attempts = static_cast<double>(commits + aborts);
      // Commit efficiency in [0, 1]; 1 = no aborts. Zero-commit windows are
      // worthless configurations.
      return commits > 0 && attempts > 0.0
                 ? static_cast<double>(commits) / attempts
                 : 0.0;
    }
  }
  return measurement.throughput;
}

TuningReport TuningController::tune() {
  TuningReport report;
  opt::Config best_live_config{};
  double best_live_kpi = 0.0;
  while (auto proposal = optimizer_->propose()) {
    // Model veto: once a live incumbent exists, compare the advisor's
    // prediction at the proposal with its prediction at that incumbent —
    // a model-relative test, so the advisor's absolute scale cancels.
    if (advisor_ != nullptr && params_.model_veto_band > 0.0 &&
        best_live_kpi > 0.0) {
      const double pred_ref = advisor_->predicted_kpi(best_live_config);
      const double pred_prop = advisor_->predicted_kpi(*proposal);
      if (pred_ref > 0.0) {
        const double ratio = pred_prop / pred_ref;
        if (ratio < 1.0 - params_.model_veto_band) {
          ++veto_.flagged;
          veto_.events.push_back(VetoEvent{clock_->now(), *proposal,
                                           best_live_config, ratio,
                                           params_.model_veto_blocks});
          if (params_.model_veto_blocks) {
            // Answer with a calibrated prediction (live scale x predicted
            // ratio) instead of burning a window. Always below the incumbent
            // (ratio < 1), so a synthetic KPI can never *win* the search.
            ++veto_.blocked;
            optimizer_->observe(*proposal, best_live_kpi * ratio);
            continue;
          }
        }
      }
    }
    actuator_.apply(*proposal);
    const stm::StmStatsSnapshot before = stm_->stats();
    const Measurement m = run_live_window();
    const stm::StmStatsSnapshot after = stm_->stats();
    const double kpi = kpi_of(m, before, after);
    report.tuning_seconds += m.elapsed;
    ++report.explorations;
    optimizer_->observe(*proposal, kpi);
    report.observations.push_back(opt::Observation{*proposal, kpi});
    if (kpi > best_live_kpi) {
      best_live_kpi = kpi;
      best_live_config = *proposal;
    }

    // Learn the adaptive-timeout reference from the sequential configuration
    // (always part of AutoPN's biased initial samples).
    if (proposal->t == 1 && proposal->c == 1 && m.throughput > 0.0) {
      if (auto* adaptive = dynamic_cast<CvAdaptivePolicy*>(policy_.get())) {
        adaptive->set_reference_throughput(m.throughput);
      } else if (auto* wpnoc = dynamic_cast<WpnocPolicy*>(policy_.get())) {
        wpnoc->set_reference_throughput(m.throughput);
      }
    }
  }
  report.chosen = optimizer_->best();
  actuator_.apply(report.chosen);
  arm_change_detector(0.0);  // caller re-arms with a steady-state sample
  return report;
}

std::size_t TuningController::tune_and_watch(
    const std::function<std::unique_ptr<opt::Optimizer>()>& make_optimizer,
    double duration_seconds) {
  const double end_time = clock_->now() + duration_seconds;
  cusum_ = CusumDetector{params_.cusum_drift, params_.cusum_threshold};
  std::size_t rounds = 0;
  for (;;) {
    optimizer_ = make_optimizer();
    (void)tune();
    ++rounds;
    // Arm the detector on an averaged steady-state level of the chosen
    // configuration (single windows are too noisy to anchor on).
    double reference = 0.0;
    std::size_t reference_count = 0;
    for (std::size_t i = 0; i < std::max<std::size_t>(1, params_.reference_windows);
         ++i) {
      const Measurement steady = run_live_window();
      if (steady.throughput > 0.0) {
        reference += steady.throughput;
        ++reference_count;
      }
    }
    arm_change_detector(reference_count > 0 ? reference / reference_count : 0.0);
    // Watch until a change fires or time runs out.
    bool changed = false;
    while (!changed && clock_->now() < end_time) {
      const Measurement sample = run_live_window();
      changed = check_for_change(sample.throughput);
    }
    if (!changed) return rounds;
  }
}

}  // namespace autopn::runtime
