#pragma once
// The live tuning controller — the glue of Fig 2: optimizer proposes a
// configuration, the actuator applies it, the KPI monitor measures it on the
// running PN-STM, and the observation feeds back into the optimizer until
// the search converges. Runs entirely online against a live Stm while
// application threads keep executing transactions.

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "opt/config_space.hpp"
#include "opt/optimizer.hpp"
#include "runtime/actuator.hpp"
#include "runtime/cusum.hpp"
#include "runtime/monitor.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::runtime {

/// Which key performance indicator the optimizer maximizes (paper §IV: the
/// evaluation uses throughput, "although autoPN could be used to optimize
/// different metrics (e.g., latency or abort rate)"). All KPIs are expressed
/// as maximization problems: lower-is-better metrics are negated-inverted.
enum class KpiKind {
  kThroughput,    ///< committed top-level transactions per second
  kLatency,       ///< inverse mean commit-to-commit latency (1/latency)
  kAbortRate,     ///< commit efficiency: commits / attempts over the window
};

struct ControllerParams {
  /// Inhibit actuation (paper §VII-E overhead study: pay all self-tuning
  /// costs, never change the configuration).
  bool actuate = true;
  /// The metric fed to the optimizer.
  KpiKind kpi = KpiKind::kThroughput;
  /// Hard per-window cap (seconds) as a final safety net for policies
  /// without their own deadline. 0 disables.
  double max_window_seconds = 30.0;
  /// Change-detector sensitivity for tune_and_watch. Live measurements carry
  /// 10-20% window-to-window noise, so the defaults are deliberately wider
  /// than the CusumDetector's (which suit low-noise sample streams).
  double cusum_drift = 0.15;
  double cusum_threshold = 1.5;
  /// Windows averaged into the change detector's reference level.
  std::size_t reference_windows = 3;
  /// Self-healing watchdog: after this many *consecutive* measurement
  /// windows that end by timeout with zero commit events, the controller
  /// declares the KPI monitor stalled and reverts the actuator to the last
  /// configuration whose window produced commits. 0 disables the watchdog.
  std::size_t watchdog_stall_windows = 2;
  /// Model-veto band (DESIGN.md §14): with a ConfigAdvisor attached, a
  /// proposal whose predicted KPI falls below (1 - band) x the prediction at
  /// the best live configuration is flagged. Predictions are compared only
  /// with each other, so the advisor's absolute scale cancels. 0 disables
  /// the veto even when an advisor is attached.
  double model_veto_band = 0.0;
  /// When true, flagged proposals are not measured live: the optimizer is
  /// answered with a calibrated prediction (best live KPI x predicted ratio)
  /// so the search continues without burning a window on a predicted
  /// regression. When false, vetoes are logged but windows still run.
  bool model_veto_blocks = false;
};

/// Predicted-KPI oracle consulted before actuating an optimizer proposal.
/// Implemented by model::TunerAdvisor; runtime/ stays model-agnostic.
class ConfigAdvisor {
 public:
  virtual ~ConfigAdvisor() = default;
  /// Predicted KPI at a configuration, on any fixed maximization scale. The
  /// controller only ever compares two predictions, never a prediction with
  /// a live measurement.
  [[nodiscard]] virtual double predicted_kpi(const opt::Config& config) = 0;
};

/// One watchdog intervention (kept in WatchdogReport::events as a trace).
struct WatchdogEvent {
  double at = 0.0;  ///< clock time of the revert
  opt::Config reverted_from{};
  opt::Config reverted_to{};
};

/// Running account of monitor stalls and watchdog interventions.
struct WatchdogReport {
  std::size_t stalled_windows = 0;  ///< windows timed out with zero commits
  std::size_t reverts = 0;          ///< actuator reverts performed
  bool has_last_known_good = false;
  opt::Config last_known_good{};  ///< last configuration that produced commits
  std::vector<WatchdogEvent> events;
};

/// One model veto (kept in VetoReport::events as a trace).
struct VetoEvent {
  double at = 0.0;  ///< clock time of the veto
  opt::Config proposal{};
  opt::Config reference{};       ///< best live configuration at veto time
  double predicted_ratio = 0.0;  ///< predicted(proposal) / predicted(reference)
  bool blocked = false;          ///< answered synthetically instead of measured
};

/// Running account of model vetoes.
struct VetoReport {
  std::size_t flagged = 0;  ///< proposals outside the veto band
  std::size_t blocked = 0;  ///< flagged proposals not measured live
  std::vector<VetoEvent> events;
};

/// Summary of one completed tuning run.
struct TuningReport {
  opt::Config chosen{};
  std::size_t explorations = 0;
  double tuning_seconds = 0.0;  ///< total time spent measuring windows
  std::vector<opt::Observation> observations;
};

class TuningController {
 public:
  /// The controller borrows the Stm, optimizer, policy and clock; all must
  /// outlive it. It installs a commit callback on the Stm for the duration
  /// of each measurement window.
  TuningController(stm::Stm& stm, std::unique_ptr<opt::Optimizer> optimizer,
                   std::unique_ptr<MonitorPolicy> policy, const util::Clock& clock,
                   ControllerParams params = {});
  ~TuningController();

  TuningController(const TuningController&) = delete;
  TuningController& operator=(const TuningController&) = delete;

  /// Runs the optimization to convergence and applies the winning
  /// configuration. Blocks the calling thread; application threads must be
  /// driving transactions concurrently (otherwise windows only end by
  /// timeout).
  TuningReport tune();

  /// Measures the current configuration once with the controller's policy
  /// (used by the change-detection loop and the overhead study).
  [[nodiscard]] Measurement measure_once();

  /// Attaches a request-latency provider (borrowed; may be nullptr). When
  /// set, every measurement window drains the source and the Measurement's
  /// latency fields carry real request latencies (enqueue→commit) instead of
  /// commit-to-commit gaps — the producer KpiKind::kLatency was missing.
  void set_latency_source(LatencySource* source) { latency_source_ = source; }

  /// Attaches a predicted-KPI advisor (borrowed; may be nullptr). Vetoing
  /// activates when ControllerParams::model_veto_band > 0.
  void set_config_advisor(ConfigAdvisor* advisor) { advisor_ = advisor; }

  /// Vetoes flagged and blocked so far.
  [[nodiscard]] const VetoReport& vetoes() const noexcept { return veto_; }

  /// Feeds a steady-state sample to the change detector; returns true when a
  /// workload shift is detected (caller then re-runs tune()).
  [[nodiscard]] bool check_for_change(double sample) { return cusum_.add(sample); }
  void arm_change_detector(double reference) { cusum_.reset(reference); }

  /// The managed loop (paper §V dynamic workloads): tunes, then keeps taking
  /// steady-state measurements; whenever the CUSUM detector fires, a fresh
  /// optimizer from `make_optimizer` re-runs the whole tuning process. Runs
  /// for `duration_seconds` of clock time and returns the number of tuning
  /// rounds performed (>= 1).
  std::size_t tune_and_watch(
      const std::function<std::unique_ptr<opt::Optimizer>()>& make_optimizer,
      double duration_seconds);

  [[nodiscard]] Actuator& actuator() noexcept { return actuator_; }

  /// Stalls observed and interventions performed so far (see
  /// ControllerParams::watchdog_stall_windows).
  [[nodiscard]] const WatchdogReport& watchdog() const noexcept {
    return watchdog_;
  }

 private:
  /// Blocks until the policy completes a window (or its deadline/safety cap
  /// fires) while the commit callback feeds events.
  Measurement run_live_window();

  /// Watchdog accounting for one completed window: remembers the last
  /// configuration that produced commits, counts zero-commit timeouts, and
  /// reverts the actuator after a configured stall streak.
  void note_window(const Measurement& measurement);

  /// Converts a window measurement (plus STM counter deltas) into the
  /// configured KPI, as a maximization value.
  [[nodiscard]] double kpi_of(const Measurement& measurement,
                              const stm::StmStatsSnapshot& before,
                              const stm::StmStatsSnapshot& after) const;

  stm::Stm* stm_;
  std::unique_ptr<opt::Optimizer> optimizer_;
  std::unique_ptr<MonitorPolicy> policy_;
  const util::Clock* clock_;
  ControllerParams params_;
  Actuator actuator_;
  CusumDetector cusum_;
  LatencySource* latency_source_ = nullptr;
  ConfigAdvisor* advisor_ = nullptr;
  VetoReport veto_;

  WatchdogReport watchdog_;
  std::size_t stall_streak_ = 0;  ///< consecutive zero-commit timeouts

  // Commit-event channel filled by the Stm callback.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<double> pending_commits_ AUTOPN_GUARDED_BY(mutex_);
};

}  // namespace autopn::runtime
