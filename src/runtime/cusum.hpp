#pragma once
// Two-sided CUSUM change detector (paper §V "dynamic workloads"): watches a
// stream of KPI samples for statistically relevant shifts away from a
// reference level and, on detection, lets the controller trigger a fresh
// self-tuning round.

#include <algorithm>
#include <cmath>

namespace autopn::runtime {

class CusumDetector {
 public:
  /// `drift`: allowed slack per sample in relative units (deviations smaller
  /// than this never accumulate). `threshold`: cumulative relative deviation
  /// that signals a change.
  explicit CusumDetector(double drift = 0.05, double threshold = 0.5)
      : drift_(drift), threshold_(threshold) {}

  /// (Re)arms the detector around a reference KPI level.
  void reset(double reference) {
    reference_ = reference;
    high_ = 0.0;
    low_ = 0.0;
  }

  /// Feeds one sample; returns true when a change (in either direction) is
  /// detected. The detector stays latched until reset().
  [[nodiscard]] bool add(double sample) {
    if (reference_ <= 0.0) return false;
    const double deviation = (sample - reference_) / reference_;
    high_ = std::max(0.0, high_ + deviation - drift_);
    low_ = std::max(0.0, low_ - deviation - drift_);
    return high_ > threshold_ || low_ > threshold_;
  }

  [[nodiscard]] double reference() const noexcept { return reference_; }
  [[nodiscard]] double upper_statistic() const noexcept { return high_; }
  [[nodiscard]] double lower_statistic() const noexcept { return low_; }

 private:
  double drift_;
  double threshold_;
  double reference_ = 0.0;
  double high_ = 0.0;
  double low_ = 0.0;
};

}  // namespace autopn::runtime
