#include "runtime/monitor.hpp"

#include <cmath>

#include "util/table.hpp"

namespace autopn::runtime {

void attach_latency_samples(Measurement& m, std::vector<double> samples) {
  if (samples.empty()) return;
  m.latency_samples = samples.size();
  m.mean_latency = util::mean_of(samples);
  m.p99_latency = util::percentile(std::move(samples), 0.99);
}

void MonitorPolicy::begin_window(double now) {
  start_ = now;
  last_commit_ = now;
  commits_ = 0;
  gaps_.clear();
}

bool MonitorPolicy::on_commit(double now) {
  ++commits_;
  gaps_.push_back(now - last_commit_);
  last_commit_ = now;
  return window_complete(now);
}

Measurement MonitorPolicy::finish(double now, bool timed_out) const {
  Measurement m;
  m.commits = commits_;
  m.elapsed = now - start_;
  m.timed_out = timed_out;
  m.throughput = m.elapsed > 0.0 && commits_ > 0
                     ? static_cast<double>(commits_) / m.elapsed
                     : 0.0;
  // Commit-to-commit gaps double as the default latency estimate (the first
  // gap is window-start to first commit). A LatencySource replaces these with
  // real request latencies downstream.
  attach_latency_samples(m, gaps_);
  return m;
}

std::string FixedTimePolicy::name() const {
  return "fixed-time(" + util::fmt_double(window_, 3) + "s)";
}

std::string FixedCommitsPolicy::name() const {
  return "fixed-commits(" + std::to_string(target_) + ")";
}

void CvAdaptivePolicy::begin_window(double now) {
  MonitorPolicy::begin_window(now);
  estimates_.clear();
}

double CvAdaptivePolicy::current_cv() const {
  util::RunningStats stats;
  for (double e : estimates_) stats.add(e);
  return stats.cv();
}

bool CvAdaptivePolicy::window_complete(double now) {
  const double elapsed = now - start_;
  if (elapsed <= 0.0) return false;
  estimates_.push_back(static_cast<double>(commits_) / elapsed);
  if (estimates_.size() > cv_window_) estimates_.pop_front();
  if (commits_ < min_commits_ || estimates_.size() < cv_window_) {
    return false;
  }
  // Stability requires both low dispersion and low drift of the recent
  // estimates: a post-reconfiguration warm-up ramp produces a monotone
  // low-dispersion sequence that is nevertheless still converging.
  const double first = estimates_.front();
  const double last = estimates_.back();
  const double mid = 0.5 * (first + last);
  const double drift = mid > 0.0 ? std::abs(last - first) / mid : 1.0;
  return current_cv() < cv_threshold_ && drift < cv_threshold_;
}

std::optional<double> CvAdaptivePolicy::deadline() const {
  const auto interval = timeout_interval(timeout_scale_);
  if (!interval.has_value()) return std::nullopt;
  return last_commit_ + *interval;
}

std::string CvAdaptivePolicy::name() const {
  return "cv-adaptive(" + util::fmt_percent(cv_threshold_, 0) + ")";
}

std::optional<double> WpnocPolicy::deadline() const {
  if (!adaptive_timeout_) return std::nullopt;
  const auto interval = timeout_interval(timeout_scale_);
  if (!interval.has_value()) return std::nullopt;
  return last_commit_ + *interval;
}

std::string WpnocPolicy::name() const {
  return "wpnoc" + std::to_string(target_) + (adaptive_timeout_ ? "+adaptTO" : "");
}

Measurement run_window_on_stream(MonitorPolicy& policy,
                                 const std::function<double()>& next_commit,
                                 double start_time) {
  policy.begin_window(start_time);
  for (;;) {
    const double commit_at = next_commit();
    if (const auto deadline = policy.deadline();
        deadline.has_value() && commit_at > *deadline) {
      return policy.finish(*deadline, /*timed_out=*/true);
    }
    if (policy.on_commit(commit_at)) {
      return policy.finish(commit_at, /*timed_out=*/false);
    }
  }
}

}  // namespace autopn::runtime
