#include "runtime/live_trace.hpp"

#include <chrono>
#include <thread>

#include "opt/baselines.hpp"
#include "runtime/actuator.hpp"
#include "runtime/controller.hpp"
#include "runtime/monitor.hpp"
#include "util/stats.hpp"

namespace autopn::runtime {

sim::SurfaceTrace record_live_surface(stm::Stm& stm, const opt::ConfigSpace& space,
                                      const std::string& workload_name,
                                      const util::Clock& clock,
                                      LiveTraceParams params) {
  sim::SurfaceTrace trace{workload_name, space.cores()};
  ControllerParams controller_params;
  controller_params.max_window_seconds = params.window_seconds * 10.0;
  // A throwaway grid optimizer satisfies the controller's constructor; only
  // measure_once() is used here.
  TuningController controller{
      stm, std::make_unique<opt::GridSearch>(space),
      std::make_unique<FixedTimePolicy>(params.window_seconds), clock,
      controller_params};

  for (const opt::Config& cfg : space.all()) {
    controller.actuator().apply(cfg);
    std::this_thread::sleep_for(std::chrono::duration<double>(params.settle_seconds));
    util::RunningStats stats;
    for (std::size_t run = 0; run < params.runs; ++run) {
      stats.add(controller.measure_once().throughput);
    }
    trace.set(cfg, sim::SurfaceTrace::Entry{stats.mean(), stats.stddev()});
  }
  return trace;
}

}  // namespace autopn::runtime
