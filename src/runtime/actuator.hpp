#pragma once
// The actuator (paper §VI): applies a parallelism configuration to the
// PN-STM at run-time by resizing the semaphores that gate top-level
// admission (t) and per-tree child spawns (c). Fully transparent to
// application code — transactions already in flight drain naturally.
//
// For the overhead study (§VII-E) the actuator can be inhibited: the tuning
// pipeline then pays all monitoring/modeling costs without the system ever
// changing configuration.

#include <atomic>

#include "opt/config_space.hpp"
#include "stm/stm.hpp"
#include "util/failpoint.hpp"

namespace autopn::runtime {

class Actuator {
 public:
  explicit Actuator(stm::Stm& stm) : stm_(&stm) {
    current_.store(pack(opt::Config{static_cast<int>(stm.top_limit()),
                                    static_cast<int>(stm.child_limit())}),
                   std::memory_order_relaxed);
  }

  /// Applies (t, c) to the runtime. No-op while inhibited (the requested
  /// configuration is still remembered as `current` for bookkeeping).
  void apply(const opt::Config& config) {
    // Chaos hook (delay mode): stall a reconfiguration mid-apply, stretching
    // the interval in which transactions run under a half-applied (t, c).
    AUTOPN_FAILPOINT("runtime.actuator.apply");
    current_.store(pack(config), std::memory_order_relaxed);
    if (!enabled_.load(std::memory_order_relaxed)) return;
    stm_->set_top_limit(static_cast<std::size_t>(config.t));
    stm_->set_child_limit(static_cast<std::size_t>(config.c));
  }

  /// The configuration most recently requested through the actuator. The
  /// ad-hoc API of paper §VI: applications may query the tuned degree of
  /// inter-/intra-transaction parallelism (e.g. to adapt partitioning).
  [[nodiscard]] opt::Config current() const {
    return unpack(current_.load(std::memory_order_relaxed));
  }

  /// Enables/disables actuation (disable for the §VII-E overhead study).
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  static std::uint64_t pack(const opt::Config& cfg) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cfg.t)) << 32) |
           static_cast<std::uint32_t>(cfg.c);
  }
  static opt::Config unpack(std::uint64_t packed) {
    return opt::Config{static_cast<int>(packed >> 32),
                       static_cast<int>(packed & 0xffffffffu)};
  }

  stm::Stm* stm_;
  std::atomic<std::uint64_t> current_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace autopn::runtime
