#pragma once
// Records a performance surface from the *live* PN-STM: for every
// configuration in a space, apply it through the actuator, measure it
// `runs` times with a fixed-time window, and store mean/stddev in the same
// sim::SurfaceTrace format the analytical model emits. This is the bridge
// between the real system and the trace-driven studies (paper §VII-B): on a
// machine with enough cores, the optimizer benches can run on surfaces
// recorded here instead of the simulator's.

#include <cstddef>

#include "opt/config_space.hpp"
#include "sim/trace.hpp"
#include "stm/stm.hpp"
#include "util/clock.hpp"

namespace autopn::runtime {

struct LiveTraceParams {
  std::size_t runs = 3;
  double window_seconds = 0.2;
  /// Settle time after each reconfiguration before measuring (drains
  /// transactions admitted under the previous configuration).
  double settle_seconds = 0.02;
};

/// Measures every configuration of `space` on the running system. The
/// workload must already be driven by application threads; the function
/// blocks for roughly |S| * runs * (window + settle) seconds.
[[nodiscard]] sim::SurfaceTrace record_live_surface(stm::Stm& stm,
                                                    const opt::ConfigSpace& space,
                                                    const std::string& workload_name,
                                                    const util::Clock& clock,
                                                    LiveTraceParams params = {});

}  // namespace autopn::runtime
