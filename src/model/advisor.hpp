#pragma once
// Tuner-facing adapters of the compositional model (DESIGN.md §14): the
// warm-start prior for opt::Smbo and the veto oracle for
// runtime::TuningController. This is the only model/ header that depends on
// runtime/; the model core (queue/compose/fit) stays consumer-agnostic.

#include <cstddef>

#include "model/compose.hpp"
#include "opt/config_space.hpp"
#include "opt/smbo.hpp"
#include "runtime/controller.hpp"

namespace autopn::model {

/// Builds the SMBO warm-start prior: the model's closed-loop throughput
/// surface over the whole space as pseudo-observations (the KPI the paper's
/// tuner maximizes). `decay_observations` bounds how long the prior shapes
/// the surrogate (see opt::Prior).
[[nodiscard]] opt::Prior make_prior(const CompositionalModel& model,
                                    const opt::ConfigSpace& space,
                                    std::size_t decay_observations = 12);

/// runtime::ConfigAdvisor backed by the model's closed-loop throughput
/// surface. Predictions are used model-relatively by the controller, so
/// only the surface *shape* matters, matching the prior's contract.
class TunerAdvisor final : public runtime::ConfigAdvisor {
 public:
  explicit TunerAdvisor(CompositionalModel model) : model_(std::move(model)) {}

  [[nodiscard]] double predicted_kpi(const opt::Config& config) override {
    return model_.closed_throughput(config);
  }

  [[nodiscard]] const CompositionalModel& model() const noexcept {
    return model_;
  }

 private:
  CompositionalModel model_;
};

}  // namespace autopn::model
