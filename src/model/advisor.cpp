#include "model/advisor.hpp"

namespace autopn::model {

opt::Prior make_prior(const CompositionalModel& model,
                      const opt::ConfigSpace& space,
                      std::size_t decay_observations) {
  opt::Prior prior;
  prior.observations = model.closed_surface(space);
  prior.decay_observations = decay_observations;
  return prior;
}

}  // namespace autopn::model
