#pragma once
// Parameter fitting for the compositional model (DESIGN.md §14). The model
// is only useful online if its free parameters come from the live system,
// not from hand calibration, and the serving pipeline exposes two cheap
// signal sources:
//
//   probe windows    a handful of live measurement windows at the pivot
//                    configurations (1,1), (1,c_max), (t_mid,1), (t_max,1)
//                    identify base_work, parallel_fraction and top_conflict
//                    by inverting the surface equations — the warm-start path
//                    (four windows instead of a nine-point blind bootstrap);
//   counter windows  one steady-state serving window's per-stage breakdown
//                    (accept/service/reply means, top-level abort rate from
//                    the ContentionProfiler) rescales base_work and
//                    top_conflict in place and yields the wire costs — the
//                    keep-the-model-honest path while serving.
//
// Fits are deliberately tolerant: every inverted parameter is clamped to its
// physical range and falls back to the base value when a probe is missing or
// lands in a regime where the parameter is unidentifiable (e.g. the
// contention floor). The model is a prior, not an oracle.

#include <vector>

#include "model/compose.hpp"
#include "opt/config_space.hpp"
#include "sim/workload.hpp"

namespace autopn::model {

/// One measured probe: a live window's mean throughput at a configuration.
struct Probe {
  opt::Config config{};
  double throughput = 0.0;  ///< committed top-level transactions per second
};

/// The pivot configurations whose probes identify the model: (1,1),
/// (1,c_max), (t_mid,1) and (t_max,1) for the given space, where t_mid is
/// the grid point nearest sqrt(t_max). The mid-t pivot exists because a
/// heavily contended workload floors (t_max,1) outright, and a floored probe
/// only lower-bounds the hazard by ~log(cap)/t_max — too weak to warn the
/// prior off the mid-t interior. The same floor observed at t_mid bounds the
/// hazard ~sqrt(t_max) times harder.
[[nodiscard]] std::vector<opt::Config> probe_configs(
    const opt::ConfigSpace& space);

/// Inverts the surface equations at the pivot probes to fit base_work (from
/// (1,1)), parallel_fraction (from (1,c_max)) and top_conflict (from the
/// t-axis probes) on top of `base`; parameters without a usable probe keep
/// their base values. Every probe at (t>1, c=1) feeds the hazard fit: each
/// yields a candidate hazard (exact inversion if unfloored, the floor's
/// lower bound otherwise) and the candidate with the least squared log-error
/// across all t-axis probes wins — noisy probes vote instead of the largest
/// t silently dictating. Probes elsewhere are ignored.
[[nodiscard]] sim::WorkloadParams fit_workload(sim::WorkloadParams base,
                                               const std::vector<Probe>& probes,
                                               int cores);

/// Per-stage counters of one steady-state serving window, as surfaced by the
/// serve::ServeReport / net::NetServerReport latency breakdown. Plain
/// doubles so the model layer never depends on serve/net types.
struct MeasuredWindow {
  double mean_service_seconds = 0.0;  ///< dequeue -> commit, incl. retries
  double abort_rate = 0.0;            ///< top-level abort probability
  double accept_seconds = 0.0;        ///< mean decode -> enqueue
  double reply_seconds = 0.0;         ///< mean completion -> flushed
};

struct FittedPipeline {
  sim::WorkloadParams workload;
  WireCosts wire{};
};

/// Rescales `base` so that the model's service time and abort probability at
/// the window's configuration match the measured ones, and extracts the wire
/// costs. Single-window drift correction — cheap enough to run every tuning
/// window.
[[nodiscard]] FittedPipeline fit_from_window(sim::WorkloadParams base,
                                             const MeasuredWindow& window,
                                             const opt::Config& at, int cores);

}  // namespace autopn::model
