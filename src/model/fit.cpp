#include "model/fit.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "sim/surface.hpp"

namespace autopn::model {
namespace {

/// Finds the probe at exactly `config`, if present and positive.
std::optional<double> probe_at(const std::vector<Probe>& probes,
                               const opt::Config& config) {
  for (const Probe& p : probes) {
    if (p.config == config && p.throughput > 0.0) return p.throughput;
  }
  return std::nullopt;
}

double saturation_factor(const sim::WorkloadParams& p, int cores,
                         const opt::Config& cfg) {
  const double used = static_cast<double>(cfg.t) * cfg.c;
  return 1.0 + p.saturation * used / static_cast<double>(cores);
}

}  // namespace

std::vector<opt::Config> probe_configs(const opt::ConfigSpace& space) {
  int t_max = 1;
  int c_max = 1;
  for (const opt::Config& cfg : space.all()) {
    if (cfg.c == 1) t_max = std::max(t_max, cfg.t);
    if (cfg.t == 1) c_max = std::max(c_max, cfg.c);
  }
  std::vector<opt::Config> out;
  out.push_back({1, 1});
  if (c_max > 1) out.push_back({1, c_max});
  if (t_max > 2) {
    // Mid-t pivot: the grid point nearest sqrt(t_max), strictly between the
    // endpoints so it adds information (see the header on floored probes).
    int t_mid =
        static_cast<int>(std::lround(std::sqrt(static_cast<double>(t_max))));
    t_mid = std::clamp(t_mid, 2, t_max - 1);
    if (space.valid({t_mid, 1})) out.push_back({t_mid, 1});
  }
  if (t_max > 1) out.push_back({t_max, 1});
  return out;
}

sim::WorkloadParams fit_workload(sim::WorkloadParams base,
                                 const std::vector<Probe>& probes, int cores) {
  int c_max = 1;
  for (const Probe& p : probes) {
    if (p.config.t == 1) c_max = std::max(c_max, p.config.c);
  }

  // (1,1): thr = 1 / (w * saturation), no nesting overheads, no conflicts.
  if (const auto thr = probe_at(probes, {1, 1})) {
    const double sat = saturation_factor(base, cores, {1, 1});
    base.base_work = std::clamp(1.0 / (*thr * sat), 1e-9, 10.0);
  }

  // (1,c_max): thr = 1 / single(1,c).  Invert the Amdahl split for the
  // parallel fraction, holding the sibling-conflict expansion at its base
  // value (siblings are not identifiable from a single probe).
  if (c_max > 1) {
    if (const auto thr = probe_at(probes, {1, c_max})) {
      const opt::Config cfg{1, c_max};
      const double w = base.base_work;
      const double sat = saturation_factor(base, cores, cfg);
      const double p_sib =
          1.0 - std::exp(-base.sibling_conflict * (c_max - 1));
      const double sib_expansion =
          std::min(1.0 / std::max(1e-9, 1.0 - p_sib),
                   sim::SurfaceModel::kMaxSiblingAttempts);
      const double shrink =
          sib_expansion / std::pow(c_max, base.child_speedup_exponent);
      // body = w*(1-f) + w*f*shrink  =>  f = (1 - body/w) / (1 - shrink)
      const double body = 1.0 / (*thr * sat) -
                          base.spawn_overhead * c_max - base.batch_overhead;
      if (w > 0.0 && std::abs(1.0 - shrink) > 1e-6) {
        const double f = (1.0 - body / w) / (1.0 - shrink);
        base.parallel_fraction = std::clamp(f, 0.0, 0.99);
      }
    }
  }

  // t-axis probes (t>1, c=1): thr = t / (single * E_top) with the retry
  // expansion E_top = min(cap, exp(k * (t-1) * sat)), so each probe yields
  // one hazard candidate: the exact inversion when the probe sits above the
  // contention floor, or the smallest hazard whose expansion hits the
  // starvation cap at that t when it does not (the collapse itself is
  // evidence of at-least-cap contention; the bound tightens as ~1/(t-1),
  // which is why probe_configs() includes a mid-t pivot). Noisy probes can
  // produce mutually inconsistent candidates — e.g. an optimistic (t_max,1)
  // window whose inverted hazard would predict a mid-t probe an order of
  // magnitude above its measurement — so rather than privileging any single
  // probe, the fit keeps the candidate (base value and zero included) that
  // best explains ALL t-axis probes, by squared error in log-throughput.
  {
    struct TProbe {
      int t;
      double sat, single, thr;
    };
    std::vector<TProbe> tprobes;
    std::vector<double> candidates{0.0, base.top_conflict};
    for (const Probe& p : probes) {
      if (p.config.c != 1 || p.config.t <= 1 || p.throughput <= 0.0) continue;
      const double sat = saturation_factor(base, cores, p.config);
      const double single = base.base_work * sat;
      if (single <= 0.0) continue;
      tprobes.push_back({p.config.t, sat, single, p.throughput});
      const double expansion =
          static_cast<double>(p.config.t) / (p.throughput * single);
      if (expansion > 1.0 &&
          expansion < sim::SurfaceModel::kMaxTopAttempts * 0.99) {
        // exp(k * (t-1) * sat) = E  =>  k = log(E) / ((t-1) * sat).
        candidates.push_back(std::log(expansion) / ((p.config.t - 1) * sat));
      } else if (expansion > 1.0) {
        candidates.push_back(std::log(sim::SurfaceModel::kMaxTopAttempts) /
                             ((p.config.t - 1) * sat));
      }
    }
    if (!tprobes.empty()) {
      auto loss = [&](double k) {
        double sse = 0.0;
        for (const TProbe& p : tprobes) {
          const double expansion =
              std::min(sim::SurfaceModel::kMaxTopAttempts,
                       std::exp(k * (p.t - 1) * p.sat));
          const double predicted = p.t / (p.single * expansion);
          const double e = std::log(predicted / p.thr);
          sse += e * e;
        }
        return sse;
      };
      double best_k = candidates.front();
      double best_loss = loss(best_k);
      for (double k : candidates) {
        const double l = loss(std::clamp(k, 0.0, 1e3));
        if (l < best_loss) {
          best_loss = l;
          best_k = k;
        }
      }
      base.top_conflict = std::clamp(best_k, 0.0, 1e3);
    }
  }

  return base;
}

FittedPipeline fit_from_window(sim::WorkloadParams base,
                               const MeasuredWindow& window,
                               const opt::Config& at, int cores) {
  FittedPipeline out;
  const sim::SurfaceModel surface{base, std::max(1, cores)};

  // Rescale base_work so the model's mean service time at `at` matches the
  // measured one (retry expansion and saturation scale along with it).
  if (window.mean_service_seconds > 0.0) {
    const double predicted = surface.mean_latency(at);
    if (predicted > 0.0) {
      const double ratio = window.mean_service_seconds / predicted;
      base.base_work = std::clamp(base.base_work * ratio, 1e-9, 10.0);
    }
  }

  // Rescale the top-level hazard so the modeled abort probability matches
  // the profiler's measured rate (log-odds of survival scale linearly in
  // the hazard coefficient).
  if (at.t > 1 && window.abort_rate > 0.0 && window.abort_rate < 1.0) {
    const double predicted = surface.top_abort_probability(at);
    if (predicted > 1e-9 && predicted < 1.0 - 1e-9) {
      const double ratio =
          std::log1p(-window.abort_rate) / std::log1p(-predicted);
      base.top_conflict = std::clamp(base.top_conflict * ratio, 0.0, 1e3);
    }
  }

  out.workload = std::move(base);
  out.wire.accept_seconds = std::max(0.0, window.accept_seconds);
  out.wire.reply_seconds = std::max(0.0, window.reply_seconds);
  return out;
}

}  // namespace autopn::model
