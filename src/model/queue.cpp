#include "model/queue.hpp"

#include <algorithm>
#include <cmath>

namespace autopn::model {

double poisson_cdf_below(std::size_t m, double x) {
  if (m == 0) return 0.0;
  if (x <= 0.0) return 1.0;
  if (x > 700.0) {
    // exp(-x) underflows; a continuity-corrected normal approximation is
    // accurate to ~1e-3 here, far inside the model's own error bars.
    const double z = (static_cast<double>(m) - 0.5 - x) / std::sqrt(x);
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
  }
  double term = std::exp(-x);
  double sum = term;
  for (std::size_t k = 1; k < m; ++k) {
    term *= x / static_cast<double>(k);
    sum += term;
  }
  return std::min(1.0, sum);
}

QueueSolution solve_queue(const QueueParams& params) {
  const double lambda = std::max(params.arrival_rate, 1e-12);
  const double mu = std::max(params.service_rate, 1e-12);
  const std::size_t c = std::max<std::size_t>(params.servers, 1);
  const std::size_t K = std::max<std::size_t>(params.watermark, 1);
  const std::size_t last = c + K;  // arrivals blocked in this state

  // Unnormalized state weights r_n = p_n / p_0 with periodic rescaling so
  // heavily overloaded chains (lambda >> c*mu) cannot overflow.
  std::vector<double> weight(last + 1);
  weight[0] = 1.0;
  double scale_applied = 0.0;  // log of total downscaling (diagnostic only)
  for (std::size_t n = 1; n <= last; ++n) {
    const double mu_n = static_cast<double>(std::min(n, c)) * mu;
    weight[n] = weight[n - 1] * (lambda / mu_n);
    if (weight[n] > 1e290) {
      for (std::size_t i = 0; i <= n; ++i) weight[i] *= 1e-290;
      scale_applied += std::log(1e290);
    }
  }
  (void)scale_applied;
  double total = 0.0;
  for (double w : weight) total += w;
  for (double& w : weight) w /= total;

  QueueSolution out;
  out.service_rate_ = mu;
  out.servers_ = c;
  out.shed_ = weight[last];
  out.accepted_ = lambda * (1.0 - out.shed_);

  double busy = 0.0;
  double waiting = 0.0;
  for (std::size_t n = 0; n <= last; ++n) {
    busy += static_cast<double>(std::min(n, c)) * weight[n];
    if (n > c) waiting += static_cast<double>(n - c) * weight[n];
  }
  out.utilization_ = busy / static_cast<double>(c);
  out.mean_depth_ = waiting;
  // Little's law on the waiting room, over admitted arrivals only.
  out.mean_wait_ = out.accepted_ > 0.0 ? waiting / out.accepted_ : 0.0;

  // PASTA: an admitted arrival sees state n with probability
  // p_n / (1 - p_last); it waits iff all servers are busy (n >= c).
  out.admit_state_.assign(weight.begin(), weight.end() - 1);
  const double admit_total = 1.0 - out.shed_;
  if (admit_total > 0.0) {
    for (double& w : out.admit_state_) w /= admit_total;
  }
  double wait_prob = 0.0;
  for (std::size_t n = c; n < out.admit_state_.size(); ++n) {
    wait_prob += out.admit_state_[n];
  }
  out.wait_prob_ = wait_prob;
  return out;
}

double QueueSolution::wait_cdf(double w) const {
  if (w < 0.0) return 0.0;
  const double x = static_cast<double>(servers_) * service_rate_ * w;
  double cdf = 0.0;
  for (std::size_t n = 0; n < admit_state_.size(); ++n) {
    if (n < servers_) {
      cdf += admit_state_[n];  // a free server: zero wait
    } else {
      // Erlang(n - c + 1, c*mu) CDF = P(Poisson(x) >= n - c + 1).
      cdf += admit_state_[n] * (1.0 - poisson_cdf_below(n - servers_ + 1, x));
    }
  }
  return cdf;
}

double QueueSolution::wait_quantile(double q) const {
  q = std::clamp(q, 1e-9, 1.0 - 1e-9);
  if (q <= 1.0 - wait_prob_) return 0.0;  // the no-wait atom covers it
  // Bracket the quantile, then bisect the (monotone) mixture CDF.
  double hi = 1.0 / (static_cast<double>(servers_) * service_rate_);
  for (int i = 0; i < 80 && wait_cdf(hi) < q; ++i) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (wait_cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace autopn::model
