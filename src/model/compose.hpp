#pragma once
// CompositionalModel — the end-to-end analytical performance model of the
// serving pipeline (DESIGN.md §14). The pipeline is a composition of stages
// with individually measurable costs, and the model composes one submodel
// per stage:
//
//   wire/accept      fixed per-request overhead (decode + admission verdict
//                    on the way in, response encode + flush on the way out),
//                    fitted from the per-stage breakdown counters that
//                    serve::ServeReport / net::NetServerReport expose;
//   admission queue  M/M/c with watermark shedding (model/queue.hpp) —
//                    serve::RequestQueue + the worker pool;
//   service          contention-inflated PN-STM execution: one top-level
//                    parallel-nesting transaction whose duration comes from
//                    the sim::SurfaceModel machinery (Amdahl split across c
//                    children, sibling/top-level conflict retry expansion,
//                    saturation), with the free parameters fittable from
//                    measured abort rates and probe windows (model/fit.hpp).
//
// From (t, c, arrival rate, workload mix) it predicts throughput, p50/p99
// sojourn, shed fraction, utilization and abort rate — the warm-start prior
// for opt::Smbo, the veto oracle for runtime::TuningController, and the
// `autopn model` capacity what-if engine, cross-validated against the DES
// in bench/des_vs_analytical.

#include <cstddef>
#include <vector>

#include "model/queue.hpp"
#include "opt/config_space.hpp"
#include "opt/optimizer.hpp"
#include "sim/surface.hpp"
#include "sim/workload.hpp"

namespace autopn::model {

/// Fixed per-request wire overhead, additive to the sojourn (the socket
/// front-end's cost; zero for the in-process serving path).
struct WireCosts {
  double accept_seconds = 0.0;  ///< decode -> admission verdict
  double reply_seconds = 0.0;   ///< completion -> last byte flushed
  [[nodiscard]] double total() const noexcept {
    return accept_seconds + reply_seconds;
  }
};

/// Static shape of the pipeline being modeled.
struct PipelineParams {
  sim::WorkloadParams workload;  ///< service-stage parameterization
  int cores = 48;
  std::size_t workers = 4;         ///< engine worker-pool size
  std::size_t queue_capacity = 256;
  /// Waiting depth at which admission sheds; 0 derives 3/4 of capacity
  /// (serve::RequestQueue's rule).
  std::size_t shed_watermark = 0;
  WireCosts wire{};
};

/// One end-to-end prediction at a configuration and arrival rate.
struct Prediction {
  double throughput = 0.0;       ///< completed requests/s
  double p50 = 0.0;              ///< end-to-end sojourn quantiles (seconds)
  double p99 = 0.0;
  double shed_fraction = 0.0;
  double utilization = 0.0;      ///< worker-pool utilization
  double mean_queue_wait = 0.0;  ///< enqueue -> dequeue (seconds)
  double service_time = 0.0;     ///< mean dequeue -> commit, incl. retries
  double abort_rate = 0.0;       ///< top-level abort probability
};

class CompositionalModel {
 public:
  explicit CompositionalModel(PipelineParams params);

  [[nodiscard]] const PipelineParams& params() const noexcept { return params_; }

  /// Open-loop prediction: Poisson arrivals at `arrival_rate` requests/s.
  [[nodiscard]] Prediction predict(const opt::Config& config,
                                   double arrival_rate) const;

  /// Saturated (closed-loop) throughput: what the pipeline sustains when the
  /// queue never starves — the KPI surface the online tuner optimizes. With
  /// workers >= t this is exactly the surface model's mean throughput.
  [[nodiscard]] double closed_throughput(const opt::Config& config) const;

  /// Service-stage capacity: min(workers, t) servers at rate 1/service_time.
  [[nodiscard]] double capacity(const opt::Config& config) const;

  /// Mean contention-inflated service time of one request (seconds).
  [[nodiscard]] double service_time(const opt::Config& config) const;

  /// q-quantile of the service time: geometric retry mixture over the
  /// single-attempt duration (the p99 driver under contention).
  [[nodiscard]] double service_quantile(const opt::Config& config,
                                        double q) const;

  // ---- capacity what-ifs -------------------------------------------------

  /// Largest arrival rate whose predicted shed fraction stays <= target
  /// (bisection; shed is monotone in the rate).
  [[nodiscard]] double max_rate_for_shed(const opt::Config& config,
                                         double shed_target) const;

  /// Smallest number of identical shards (arrivals split evenly) keeping the
  /// per-shard shed fraction <= target; returns max_shards+1 when even that
  /// many are insufficient.
  [[nodiscard]] std::size_t min_shards_for_shed(double arrival_rate,
                                                const opt::Config& config,
                                                double shed_target,
                                                std::size_t max_shards = 64) const;

  /// Best configuration by predicted throughput at an arrival rate (ties
  /// break toward lower p99).
  struct Best {
    opt::Config config{};
    Prediction prediction{};
  };
  [[nodiscard]] Best best_at(const opt::ConfigSpace& space,
                             double arrival_rate) const;

  // ---- tuner-facing surfaces --------------------------------------------

  /// Predicted closed-loop KPI at every configuration of the space — the
  /// pseudo-observation surface injected as an opt::Prior.
  [[nodiscard]] std::vector<opt::Observation> closed_surface(
      const opt::ConfigSpace& space) const;

  /// Same, open-loop at a fixed arrival rate (throughput KPI).
  [[nodiscard]] std::vector<opt::Observation> open_surface(
      const opt::ConfigSpace& space, double arrival_rate) const;

 private:
  /// The worker pool caps concurrent top-level transactions at `workers`:
  /// contention math runs at the effective (min(t, workers), c).
  [[nodiscard]] opt::Config effective(const opt::Config& config) const;
  [[nodiscard]] std::size_t resolved_watermark() const;

  PipelineParams params_;
  sim::SurfaceModel surface_;
};

}  // namespace autopn::model
