#pragma once
// Admission-queue submodel: an M/M/c queue with watermark shedding — the
// analytical stand-in for serve::RequestQueue + the engine's worker pool
// (DESIGN.md §14). Arrivals are Poisson at rate lambda; c servers each
// complete requests at rate mu; an arrival that would find `watermark`
// requests already waiting is shed (exactly RequestQueue::try_push's rule),
// so the chain is birth-death over n = 0..c+watermark with arrivals blocked
// in the last state.
//
// solve() computes the exact steady state of the finite chain: shed
// probability, utilization, mean queue depth and the mean waiting time of
// admitted requests (Little's law on the waiting room). Waiting-time
// *quantiles* use the exact FCFS argument: an admitted arrival that sees n
// in system waits Erlang(n - c + 1, c*mu) (n >= c), so the waiting CDF is a
// PASTA-weighted Erlang mixture inverted by bisection. In the limits the
// chain reduces to the textbook closed forms (M/M/1 waiting time, M/M/1/K
// blocking, Erlang-C), which the unit tests pin.

#include <cstddef>
#include <vector>

namespace autopn::model {

/// One admission queue + worker pool, in steady state.
struct QueueParams {
  double arrival_rate = 0.0;   ///< lambda, requests/s offered
  double service_rate = 1.0;   ///< mu, requests/s per server
  std::size_t servers = 1;     ///< c, concurrent workers
  /// Waiting requests at which admission sheds (RequestQueue semantics:
  /// try_push rejects when depth >= watermark).
  std::size_t watermark = 16;
};

/// Steady-state solution of the shedding M/M/c chain.
class QueueSolution {
 public:
  /// Probability an arrival is shed (finds the waiting room full).
  [[nodiscard]] double shed_probability() const noexcept { return shed_; }
  /// Accepted throughput: lambda * (1 - shed).
  [[nodiscard]] double accepted_rate() const noexcept { return accepted_; }
  /// Mean busy servers / c.
  [[nodiscard]] double utilization() const noexcept { return utilization_; }
  /// Mean number of *waiting* requests (the observable queue depth).
  [[nodiscard]] double mean_depth() const noexcept { return mean_depth_; }
  /// Mean waiting time of an admitted request (seconds).
  [[nodiscard]] double mean_wait() const noexcept { return mean_wait_; }
  /// Probability an admitted request waits at all (Erlang-C analogue).
  [[nodiscard]] double wait_probability() const noexcept { return wait_prob_; }

  /// q-quantile (q in (0,1)) of the admitted-request waiting time, from the
  /// exact Erlang-mixture CDF (bisection; ~1e-4 relative tolerance).
  [[nodiscard]] double wait_quantile(double q) const;

 private:
  friend QueueSolution solve_queue(const QueueParams& params);

  /// P(wait <= w) for an admitted request.
  [[nodiscard]] double wait_cdf(double w) const;

  double shed_ = 0.0;
  double accepted_ = 0.0;
  double utilization_ = 0.0;
  double mean_depth_ = 0.0;
  double mean_wait_ = 0.0;
  double wait_prob_ = 0.0;
  double service_rate_ = 1.0;
  std::size_t servers_ = 1;
  /// State distribution conditioned on admission: probability an admitted
  /// arrival sees state n (index n = number in system, 0..c+watermark-1).
  std::vector<double> admit_state_;
};

/// Solves the chain. Degenerate inputs are clamped (servers/watermark >= 1,
/// rates >= tiny positive) rather than rejected, so callers can sweep
/// parameter grids without guarding edges.
[[nodiscard]] QueueSolution solve_queue(const QueueParams& params);

/// CDF helper shared with tests: P(N < m) for N ~ Poisson(x), i.e. the
/// Erlang(m, rate) CDF evaluated at t with x = rate * t is 1 - this.
/// Switches to a continuity-corrected normal approximation for x > 700
/// where exp(-x) underflows (error there is far below the model's own).
[[nodiscard]] double poisson_cdf_below(std::size_t m, double x);

}  // namespace autopn::model
