#include "model/compose.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace autopn::model {

CompositionalModel::CompositionalModel(PipelineParams params)
    : params_(std::move(params)),
      surface_(params_.workload, params_.cores) {}

opt::Config CompositionalModel::effective(const opt::Config& config) const {
  opt::Config eff = config;
  const int workers = static_cast<int>(std::max<std::size_t>(params_.workers, 1));
  eff.t = std::clamp(config.t, 1, std::max(1, workers));
  eff.c = std::max(1, config.c);
  return eff;
}

std::size_t CompositionalModel::resolved_watermark() const {
  if (params_.shed_watermark > 0) return params_.shed_watermark;
  return std::max<std::size_t>(1, params_.queue_capacity * 3 / 4);
}

double CompositionalModel::service_time(const opt::Config& config) const {
  // mean_latency is the sojourn of one top-level transaction at concurrency
  // eff.t; with eff.t workers each running one transaction at a time, it is
  // exactly the per-server holding time.
  return surface_.mean_latency(effective(config));
}

double CompositionalModel::closed_throughput(const opt::Config& config) const {
  return surface_.mean_throughput(effective(config));
}

double CompositionalModel::capacity(const opt::Config& config) const {
  const opt::Config eff = effective(config);
  return static_cast<double>(eff.t) / surface_.mean_latency(eff);
}

double CompositionalModel::service_quantile(const opt::Config& config,
                                            double q) const {
  q = std::clamp(q, 1e-9, 1.0 - 1e-9);
  const opt::Config eff = effective(config);
  const double p = surface_.top_abort_probability(eff);
  const double expansion = std::min(1.0 / std::max(1e-9, 1.0 - p),
                                    sim::SurfaceModel::kMaxTopAttempts);
  // Split the mean back into (single attempt) x (attempt count), then take
  // the quantile of the truncated-geometric attempt count: the dominant
  // heavy-tail driver under contention is retries, not per-attempt jitter.
  const double single = surface_.mean_latency(eff) / expansion;
  double attempts = 1.0;
  if (p > 1e-12) {
    attempts = std::ceil(std::log1p(-q) / std::log(p));
    attempts = std::clamp(attempts, 1.0, sim::SurfaceModel::kMaxTopAttempts);
  }
  return single * attempts;
}

Prediction CompositionalModel::predict(const opt::Config& config,
                                       double arrival_rate) const {
  const opt::Config eff = effective(config);
  const double holding = surface_.mean_latency(eff);

  QueueParams queue;
  queue.arrival_rate = std::max(arrival_rate, 0.0);
  queue.service_rate = 1.0 / std::max(holding, 1e-12);
  queue.servers = static_cast<std::size_t>(eff.t);
  queue.watermark = resolved_watermark();
  const QueueSolution solved = solve_queue(queue);

  Prediction out;
  out.throughput = solved.accepted_rate();
  out.shed_fraction = solved.shed_probability();
  out.utilization = solved.utilization();
  out.mean_queue_wait = solved.mean_wait();
  out.service_time = holding;
  out.abort_rate = surface_.top_abort_probability(eff);
  // Quantiles of a sum approximated by the sum of quantiles: wait and
  // service are independent stages, so this slightly over-predicts — the
  // conservative direction for an SLO answer (tolerance pinned in tests).
  out.p50 = params_.wire.total() + solved.wait_quantile(0.5) +
            service_quantile(eff, 0.5);
  out.p99 = params_.wire.total() + solved.wait_quantile(0.99) +
            service_quantile(eff, 0.99);
  return out;
}

double CompositionalModel::max_rate_for_shed(const opt::Config& config,
                                             double shed_target) const {
  shed_target = std::clamp(shed_target, 1e-9, 1.0 - 1e-9);
  const double cap = capacity(config);
  double lo = 1e-9;
  double hi = std::max(cap, 1e-6);
  for (int i = 0; i < 60 &&
                  predict(config, hi).shed_fraction <= shed_target;
       ++i) {
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (predict(config, mid).shed_fraction <= shed_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t CompositionalModel::min_shards_for_shed(
    double arrival_rate, const opt::Config& config, double shed_target,
    std::size_t max_shards) const {
  shed_target = std::clamp(shed_target, 1e-9, 1.0 - 1e-9);
  for (std::size_t shards = 1; shards <= max_shards; ++shards) {
    const double per_shard = arrival_rate / static_cast<double>(shards);
    if (predict(config, per_shard).shed_fraction <= shed_target) return shards;
  }
  return max_shards + 1;
}

CompositionalModel::Best CompositionalModel::best_at(
    const opt::ConfigSpace& space, double arrival_rate) const {
  Best best;
  bool first = true;
  for (const opt::Config& cfg : space.all()) {
    const Prediction pred = predict(cfg, arrival_rate);
    const bool better =
        first || pred.throughput > best.prediction.throughput * (1.0 + 1e-9) ||
        (pred.throughput > best.prediction.throughput * (1.0 - 1e-9) &&
         pred.p99 < best.prediction.p99);
    if (better) {
      best.config = cfg;
      best.prediction = pred;
      first = false;
    }
  }
  return best;
}

std::vector<opt::Observation> CompositionalModel::closed_surface(
    const opt::ConfigSpace& space) const {
  std::vector<opt::Observation> out;
  for (const opt::Config& cfg : space.all()) {
    out.push_back({cfg, closed_throughput(cfg)});
  }
  return out;
}

std::vector<opt::Observation> CompositionalModel::open_surface(
    const opt::ConfigSpace& space, double arrival_rate) const {
  std::vector<opt::Observation> out;
  for (const opt::Config& cfg : space.all()) {
    out.push_back({cfg, predict(cfg, arrival_rate).throughput});
  }
  return out;
}

}  // namespace autopn::model
