#pragma once
// Supervised regression datasets for the online learners. In AutoPN the
// feature space is deliberately minimalist — (t, c) only (paper §V-B) — but
// the containers are dimension-generic so the heterogeneous-workload
// extension (paper §VIII) can reuse them.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace autopn::ml {

/// A growable set of (x, y) examples with fixed feature dimensionality.
class Dataset {
 public:
  explicit Dataset(std::size_t dims);

  /// Appends one example; x must have exactly dims() entries.
  void add(std::span<const double> x, double y);

  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return targets_.empty(); }
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }

  /// Feature vector of example i (contiguous view, dims() long).
  [[nodiscard]] std::span<const double> x(std::size_t i) const {
    return {features_.data() + i * dims_, dims_};
  }
  [[nodiscard]] double y(std::size_t i) const { return targets_.at(i); }

  /// Bootstrap resample of the same size (uniform with replacement) — the
  /// randomization behind the bagging ensemble (paper §V-B).
  [[nodiscard]] Dataset bootstrap_sample(util::Rng& rng) const;

  /// Restriction to the given row indices.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> rows) const;

  /// Sample standard deviation of the targets (0 for < 2 rows).
  [[nodiscard]] double target_stddev() const;
  [[nodiscard]] double target_mean() const;

 private:
  std::size_t dims_;
  std::vector<double> features_;  // row-major, size() * dims_
  std::vector<double> targets_;
};

}  // namespace autopn::ml
