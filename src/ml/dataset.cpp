#include "ml/dataset.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace autopn::ml {

Dataset::Dataset(std::size_t dims) : dims_(dims) {
  if (dims == 0) throw std::invalid_argument{"Dataset needs >= 1 feature"};
}

void Dataset::add(std::span<const double> x, double y) {
  if (x.size() != dims_) throw std::invalid_argument{"feature arity mismatch"};
  features_.insert(features_.end(), x.begin(), x.end());
  targets_.push_back(y);
}

Dataset Dataset::bootstrap_sample(util::Rng& rng) const {
  Dataset out{dims_};
  out.features_.reserve(features_.size());
  out.targets_.reserve(targets_.size());
  for (std::size_t i = 0; i < size(); ++i) {
    const std::size_t pick = rng.uniform_index(size());
    out.add(x(pick), y(pick));
  }
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> rows) const {
  Dataset out{dims_};
  for (std::size_t row : rows) out.add(x(row), y(row));
  return out;
}

double Dataset::target_stddev() const {
  util::RunningStats s;
  for (double t : targets_) s.add(t);
  return s.stddev();
}

double Dataset::target_mean() const {
  util::RunningStats s;
  for (double t : targets_) s.add(t);
  return s.mean();
}

}  // namespace autopn::ml
