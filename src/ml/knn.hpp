#pragma once
// k-nearest-neighbour regressor — an alternative lightweight surrogate for
// the SMBO ablation (the paper motivates choosing bagged M5 trees over
// heavier regressors; kNN is the natural even-cheaper contender). Predicts
// a distance-weighted mean of the k nearest training points and exposes a
// variance estimate combining neighbour disagreement and distance (so EI's
// exploration term still has signal away from the data).

#include <cstddef>
#include <span>

#include "ml/dataset.hpp"

namespace autopn::ml {

class KnnRegressor {
 public:
  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
    [[nodiscard]] double stddev() const;
  };

  /// Keeps a reference-free copy of the data. `k` is clamped to the dataset
  /// size at prediction time; `distance_scale` converts squared distance to
  /// extra predictive variance (exploration signal).
  KnnRegressor(const Dataset& data, std::size_t k, double distance_scale = 1.0);

  [[nodiscard]] Prediction predict(std::span<const double> x) const;

  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  Dataset data_;
  std::size_t k_;
  double distance_scale_;
};

}  // namespace autopn::ml
