#include "ml/m5tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace autopn::ml {

namespace {

/// Population standard deviation from count/sum/sum-of-squares.
double sd_from_moments(double n, double sum, double sum_sq) {
  if (n < 1.0) return 0.0;
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  return std::sqrt(var);
}

/// M5 complexity correction: inflate the observed error of a model with p
/// parameters trained on n cases.
double error_correction(std::size_t n, std::size_t p) {
  const auto nd = static_cast<double>(n);
  const auto pd = static_cast<double>(p);
  if (nd <= pd) return 10.0;  // heavily penalize over-parameterized fits
  return (nd + pd) / (nd - pd);
}

struct Split {
  std::size_t feature = 0;
  double threshold = 0.0;
  double sdr = -std::numeric_limits<double>::infinity();
  bool valid = false;
};

Split best_split(const Dataset& data, const std::vector<std::size_t>& rows,
                 std::size_t min_leaf) {
  Split best;
  const std::size_t n = rows.size();
  if (n < 2 * min_leaf) return best;

  double total_sum = 0.0;
  double total_sq = 0.0;
  for (std::size_t r : rows) {
    total_sum += data.y(r);
    total_sq += data.y(r) * data.y(r);
  }
  const double total_sd = sd_from_moments(static_cast<double>(n), total_sum, total_sq);

  std::vector<std::size_t> order(rows);
  for (std::size_t f = 0; f < data.dims(); ++f) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return data.x(a)[f] < data.x(b)[f];
    });
    double left_sum = 0.0;
    double left_sq = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double yi = data.y(order[i]);
      left_sum += yi;
      left_sq += yi * yi;
      const double xv = data.x(order[i])[f];
      const double xnext = data.x(order[i + 1])[f];
      if (xv == xnext) continue;  // can only split between distinct values
      const std::size_t left_n = i + 1;
      const std::size_t right_n = n - left_n;
      if (left_n < min_leaf || right_n < min_leaf) continue;
      const double sd_left =
          sd_from_moments(static_cast<double>(left_n), left_sum, left_sq);
      const double sd_right = sd_from_moments(static_cast<double>(right_n),
                                              total_sum - left_sum,
                                              total_sq - left_sq);
      const double weighted = (static_cast<double>(left_n) * sd_left +
                               static_cast<double>(right_n) * sd_right) /
                              static_cast<double>(n);
      const double sdr = total_sd - weighted;
      if (sdr > best.sdr) {
        best.sdr = sdr;
        best.feature = f;
        best.threshold = 0.5 * (xv + xnext);
        best.valid = true;
      }
    }
  }
  if (best.valid && best.sdr <= 0.0) best.valid = false;
  return best;
}

}  // namespace

M5Tree M5Tree::fit(const Dataset& data, const M5Params& params) {
  M5Tree tree;
  tree.params_ = params;
  if (data.empty()) {
    Node root;
    root.leaf = true;
    root.model = LinearModel{0.0, std::vector<double>(data.dims(), 0.0)};
    tree.nodes_.push_back(std::move(root));
    return tree;
  }
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  const double root_sd = data.target_stddev();
  tree.build(data, rows, root_sd);
  if (params.prune) tree.prune(0, data, rows);
  return tree;
}

std::int32_t M5Tree::build(const Dataset& data, std::vector<std::size_t> rows,
                           double root_sd) {
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.population = rows.size();
    const Dataset sub = data.subset(rows);
    node.model = LinearModel::fit(sub);
    const bool too_small = rows.size() < 2 * params_.min_leaf;
    const bool pure = sub.target_stddev() < params_.sd_fraction * root_sd;
    if (too_small || pure) return index;
  }

  const Split split = best_split(data, rows, params_.min_leaf);
  if (!split.valid) return index;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    (data.x(r)[split.feature] <= split.threshold ? left_rows : right_rows)
        .push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();

  // Children are appended after this node; assign fields through the index
  // since recursion reallocates nodes_.
  const std::int32_t left = build(data, std::move(left_rows), root_sd);
  const std::int32_t right = build(data, std::move(right_rows), root_sd);
  Node& node = nodes_[static_cast<std::size_t>(index)];
  node.leaf = false;
  node.feature = split.feature;
  node.threshold = split.threshold;
  node.left = left;
  node.right = right;
  return index;
}

double M5Tree::subtree_error(std::int32_t index, const Dataset& data,
                             const std::vector<std::size_t>& rows) const {
  // Raw RMSE of the (unsmoothed) subtree on its own training rows.
  if (rows.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t r : rows) {
    std::int32_t at = index;
    while (!nodes_[static_cast<std::size_t>(at)].leaf) {
      const Node& n = nodes_[static_cast<std::size_t>(at)];
      at = data.x(r)[n.feature] <= n.threshold ? n.left : n.right;
    }
    const double err = nodes_[static_cast<std::size_t>(at)].model.predict(data.x(r)) -
                       data.y(r);
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(rows.size()));
}

void M5Tree::prune(std::int32_t index, const Dataset& data,
                   const std::vector<std::size_t>& rows) {
  Node& node = nodes_[static_cast<std::size_t>(index)];
  if (node.leaf) return;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (std::size_t r : rows) {
    (data.x(r)[node.feature] <= node.threshold ? left_rows : right_rows).push_back(r);
  }
  prune(node.left, data, left_rows);
  prune(node.right, data, right_rows);

  const Dataset sub = data.subset(rows);
  const std::size_t n = rows.size();

  // Corrected error of replacing the subtree by this node's linear model.
  const double model_err =
      node.model.rmse(sub) * error_correction(n, node.model.effective_params());

  // Corrected error of the subtree: parameters = leaf model params + splits.
  std::size_t subtree_params = 0;
  std::size_t splits = 0;
  // Count over the subtree rooted here.
  std::vector<std::int32_t> stack{index};
  while (!stack.empty()) {
    const Node& at = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (at.leaf) {
      subtree_params += at.model.effective_params();
    } else {
      ++splits;
      stack.push_back(at.left);
      stack.push_back(at.right);
    }
  }
  const double tree_err =
      subtree_error(index, data, rows) * error_correction(n, subtree_params + splits);

  if (model_err <= tree_err) {
    node.leaf = true;
    node.left = -1;
    node.right = -1;
  }
}

double M5Tree::predict(std::span<const double> x) const {
  if (nodes_.empty()) return 0.0;
  // Descend, recording the path for smoothing.
  std::vector<std::int32_t> path;
  std::int32_t at = 0;
  for (;;) {
    path.push_back(at);
    const Node& n = nodes_[static_cast<std::size_t>(at)];
    if (n.leaf) break;
    at = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  const Node& leaf = nodes_[static_cast<std::size_t>(path.back())];
  double value = leaf.model.predict(x);
  if (!params_.smooth) return value;
  // Quinlan smoothing: blend upwards, weighting by the lower node's
  // population against the smoothing constant k.
  for (std::size_t i = path.size() - 1; i-- > 0;) {
    const Node& lower = nodes_[static_cast<std::size_t>(path[i + 1])];
    const Node& upper = nodes_[static_cast<std::size_t>(path[i])];
    const auto pop = static_cast<double>(lower.population);
    value = (pop * value + params_.smoothing_k * upper.model.predict(x)) /
            (pop + params_.smoothing_k);
  }
  return value;
}

std::size_t M5Tree::leaf_count() const noexcept {
  // Count only nodes reachable from the root: pruning detaches subtrees
  // without erasing them from storage.
  if (nodes_.empty()) return 0;
  std::size_t count = 0;
  std::vector<std::int32_t> stack{0};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (n.leaf) {
      ++count;
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return count;
}

std::size_t M5Tree::depth_of(std::int32_t index) const {
  const Node& n = nodes_[static_cast<std::size_t>(index)];
  if (n.leaf) return 1;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

std::size_t M5Tree::depth() const noexcept {
  return nodes_.empty() ? 0 : depth_of(0);
}

namespace {
std::string feature_label(std::span<const std::string> names, std::size_t index) {
  if (index < names.size()) return names[index];
  return "x" + std::to_string(index);
}

std::string model_label(const LinearModel& model,
                        std::span<const std::string> names) {
  std::string out = "y = " + std::to_string(model.bias());
  for (std::size_t i = 0; i < model.weights().size(); ++i) {
    if (std::abs(model.weights()[i]) < 1e-12) continue;
    out += (model.weights()[i] >= 0 ? " + " : " - ") +
           std::to_string(std::abs(model.weights()[i])) + "*" +
           feature_label(names, i);
  }
  return out;
}
}  // namespace

std::string M5Tree::to_string(std::span<const std::string> feature_names) const {
  if (nodes_.empty()) return "(empty)\n";
  std::string out;
  // Depth-first with explicit stack of (node, depth).
  std::vector<std::pair<std::int32_t, int>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<std::size_t>(index)];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    if (node.leaf) {
      out += "leaf[n=" + std::to_string(node.population) + "] " +
             model_label(node.model, feature_names) + "\n";
    } else {
      out += feature_label(feature_names, node.feature) +
             " <= " + std::to_string(node.threshold) + " ?\n";
      stack.emplace_back(node.right, depth + 1);
      stack.emplace_back(node.left, depth + 1);
    }
  }
  return out;
}

std::string M5Tree::to_dot(std::span<const std::string> feature_names) const {
  std::string out = "digraph m5 {\n  node [shape=box];\n";
  if (!nodes_.empty()) {
    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
      const std::int32_t index = stack.back();
      stack.pop_back();
      const Node& node = nodes_[static_cast<std::size_t>(index)];
      out += "  n" + std::to_string(index) + " [label=\"";
      if (node.leaf) {
        out += "n=" + std::to_string(node.population) + "\\n" +
               model_label(node.model, feature_names);
      } else {
        out += feature_label(feature_names, node.feature) +
               " <= " + std::to_string(node.threshold);
      }
      out += "\"];\n";
      if (!node.leaf) {
        out += "  n" + std::to_string(index) + " -> n" + std::to_string(node.left) +
               " [label=\"yes\"];\n";
        out += "  n" + std::to_string(index) + " -> n" +
               std::to_string(node.right) + " [label=\"no\"];\n";
        stack.push_back(node.left);
        stack.push_back(node.right);
      }
    }
  }
  out += "}\n";
  return out;
}

double M5Tree::rmse(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double err = predict(data.x(i)) - data.y(i);
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(data.size()));
}

}  // namespace autopn::ml
