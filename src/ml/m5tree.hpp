#pragma once
// M5 model tree (Quinlan 1992; M5' refinements by Wang & Witten 1997) — the
// regressor AutoPN's SMBO phase bags into its surrogate model (paper §V-B).
//
// A model tree is a decision tree whose splits maximize standard-deviation
// reduction (SDR) of the targets and whose leaves carry multivariate linear
// models, yielding a piece-wise linear approximation of the unknown
// performance function f(t, c). Pruning replaces subtrees by their node's
// linear model when the complexity-corrected error does not improve, and
// smoothing blends leaf predictions with ancestor models along the path to
// the root, as in the original algorithm.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/linear.hpp"

namespace autopn::ml {

struct M5Params {
  /// Minimum examples per leaf (M5' default 4).
  std::size_t min_leaf = 4;
  /// Stop splitting when a node's target stddev falls below this fraction of
  /// the root stddev (M5' default 5%).
  double sd_fraction = 0.05;
  /// Enable complexity-corrected bottom-up pruning.
  bool prune = true;
  /// Enable leaf-to-root smoothing (smoothing constant k = 15, Quinlan).
  bool smooth = true;
  double smoothing_k = 15.0;
};

class M5Tree {
 public:
  /// Learns a model tree. An empty dataset yields a constant-zero model.
  [[nodiscard]] static M5Tree fit(const Dataset& data, const M5Params& params = {});

  [[nodiscard]] double predict(std::span<const double> x) const;

  [[nodiscard]] std::size_t leaf_count() const noexcept;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t depth() const noexcept;

  [[nodiscard]] double rmse(const Dataset& data) const;

  /// Human-readable rendering of the (reachable) tree: one line per node,
  /// indented by depth, leaves showing their linear model.
  [[nodiscard]] std::string to_string(
      std::span<const std::string> feature_names = {}) const;

  /// Graphviz dot rendering (for docs/debugging).
  [[nodiscard]] std::string to_dot(
      std::span<const std::string> feature_names = {}) const;

 private:
  struct Node {
    // Split (valid when !leaf).
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;   // index into nodes_
    std::int32_t right = -1;  // index into nodes_
    bool leaf = true;
    std::size_t population = 0;  // training rows that reached this node
    LinearModel model;           // linear model at every node (used by
                                 // pruning and smoothing; prediction at leaves)
  };

  M5Params params_;
  std::vector<Node> nodes_;  // nodes_[0] is the root when non-empty

  std::int32_t build(const Dataset& data, std::vector<std::size_t> rows,
                     double root_sd);
  double subtree_error(std::int32_t index, const Dataset& data,
                       const std::vector<std::size_t>& rows) const;
  void prune(std::int32_t index, const Dataset& data,
             const std::vector<std::size_t>& rows);
  [[nodiscard]] std::size_t depth_of(std::int32_t index) const;
};

}  // namespace autopn::ml
