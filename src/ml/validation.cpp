#include "ml/validation.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace autopn::ml {

CvResult cross_validate(const Dataset& data, const ModelFactory& make,
                        std::size_t folds, std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument{"cross_validate needs >= 2 folds"};
  if (data.size() < folds) {
    throw std::invalid_argument{"cross_validate needs >= folds rows"};
  }

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  util::Rng rng{seed};
  rng.shuffle(order);

  double squared_error = 0.0;
  double absolute_error = 0.0;
  std::size_t held_out = 0;

  const std::size_t base = data.size() / folds;
  const std::size_t remainder = data.size() % folds;
  std::size_t cursor = 0;
  for (std::size_t fold = 0; fold < folds; ++fold) {
    const std::size_t fold_size = base + (fold < remainder ? 1 : 0);
    std::vector<std::size_t> test_rows(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                                       order.begin() +
                                           static_cast<std::ptrdiff_t>(cursor + fold_size));
    std::vector<std::size_t> train_rows;
    train_rows.reserve(data.size() - fold_size);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::size_t row = order[i];
      if (i < cursor || i >= cursor + fold_size) train_rows.push_back(row);
    }
    cursor += fold_size;

    const Dataset train = data.subset(train_rows);
    const auto predict = make(train);
    for (std::size_t row : test_rows) {
      const double err = predict(data.x(row)) - data.y(row);
      squared_error += err * err;
      absolute_error += std::abs(err);
      ++held_out;
    }
  }
  CvResult result;
  result.rmse = std::sqrt(squared_error / static_cast<double>(held_out));
  result.mae = absolute_error / static_cast<double>(held_out);
  return result;
}

}  // namespace autopn::ml
