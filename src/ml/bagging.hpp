#pragma once
// Bagging ensemble of M5 model trees — AutoPN's surrogate model (paper §V-B).
//
// Each of the k learners is trained on a bootstrap resample of the training
// set; the ensemble's prediction mean feeds Expected Improvement's mu and the
// prediction variance its sigma^2, approximating the Gaussian posterior SMBO
// assumes. The paper uses k = 10, found large enough to generate sufficient
// model diversity at negligible overhead (§VII-E).

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/m5tree.hpp"

namespace autopn::ml {

class BaggingEnsemble {
 public:
  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
    [[nodiscard]] double stddev() const;
  };

  /// Trains `k` M5 trees on bootstrap resamples drawn with `seed`.
  [[nodiscard]] static BaggingEnsemble fit(const Dataset& data, std::size_t k,
                                           const M5Params& params,
                                           std::uint64_t seed);

  /// Ensemble mean and (sample) variance across member predictions.
  [[nodiscard]] Prediction predict(std::span<const double> x) const;

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] const M5Tree& member(std::size_t i) const { return members_.at(i); }

 private:
  std::vector<M5Tree> members_;
};

}  // namespace autopn::ml
