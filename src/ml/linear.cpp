#include "ml/linear.hpp"

#include <cmath>

namespace autopn::ml {

bool solve_linear_system(std::vector<std::vector<double>>& a, std::vector<double>& b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  for (std::size_t col = n; col-- > 0;) {
    double acc = b[col];
    for (std::size_t k = col + 1; k < n; ++k) acc -= a[col][k] * b[k];
    b[col] = acc / a[col][col];
  }
  return true;
}

LinearModel LinearModel::fit(const Dataset& data, double ridge) {
  const std::size_t d = data.dims();
  if (data.empty()) return LinearModel{0.0, std::vector<double>(d, 0.0)};
  if (data.size() == 1) return LinearModel{data.y(0), std::vector<double>(d, 0.0)};

  // Normal equations over augmented features [x, 1].
  const std::size_t n = d + 1;
  std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto xi = data.x(i);
    const double yi = data.y(i);
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a; b < d; ++b) gram[a][b] += xi[a] * xi[b];
      gram[a][d] += xi[a];
      rhs[a] += xi[a] * yi;
    }
    gram[d][d] += 1.0;
    rhs[d] += yi;
  }
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b < a; ++b) gram[a][b] = gram[b][a];
    gram[a][a] += ridge;
  }
  for (std::size_t b = 0; b < d; ++b) gram[d][b] = gram[b][d];

  if (!solve_linear_system(gram, rhs)) {
    // Degenerate: fall back to the constant mean model.
    return LinearModel{data.target_mean(), std::vector<double>(d, 0.0)};
  }
  std::vector<double> weights(rhs.begin(), rhs.begin() + static_cast<std::ptrdiff_t>(d));
  return LinearModel{rhs[d], std::move(weights)};
}

double LinearModel::predict(std::span<const double> x) const {
  double acc = bias_;
  const std::size_t d = std::min(x.size(), weights_.size());
  for (std::size_t i = 0; i < d; ++i) acc += weights_[i] * x[i];
  return acc;
}

double LinearModel::rmse(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double err = predict(data.x(i)) - data.y(i);
    acc += err * err;
  }
  return std::sqrt(acc / static_cast<double>(data.size()));
}

double LinearModel::mae(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    acc += std::abs(predict(data.x(i)) - data.y(i));
  }
  return acc / static_cast<double>(data.size());
}

std::size_t LinearModel::effective_params() const {
  std::size_t count = 1;  // bias
  for (double w : weights_) {
    if (std::abs(w) > 1e-12) ++count;
  }
  return count;
}

}  // namespace autopn::ml
