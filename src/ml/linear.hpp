#pragma once
// Ordinary least squares linear regression — the leaf models of the M5 model
// tree. Fitting solves the (d+1)x(d+1) normal equations with a small ridge
// term for robustness against rank-deficient leaves (e.g. a leaf whose rows
// all share the same t).

#include <span>
#include <vector>

#include "ml/dataset.hpp"

namespace autopn::ml {

/// y = bias + w · x.
class LinearModel {
 public:
  /// Constant model (used for empty/degenerate fits).
  explicit LinearModel(double bias = 0.0, std::vector<double> weights = {})
      : bias_(bias), weights_(std::move(weights)) {}

  /// Fits OLS over the whole dataset. `ridge` is added to the Gram matrix's
  /// diagonal (not the bias row) for numerical robustness. An empty dataset
  /// yields the zero model; a single-row dataset yields a constant.
  [[nodiscard]] static LinearModel fit(const Dataset& data, double ridge = 1e-9);

  [[nodiscard]] double predict(std::span<const double> x) const;

  [[nodiscard]] double bias() const noexcept { return bias_; }
  [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }

  /// Root-mean-square error over a dataset (0 for an empty one).
  [[nodiscard]] double rmse(const Dataset& data) const;

  /// Mean absolute error over a dataset (0 for an empty one).
  [[nodiscard]] double mae(const Dataset& data) const;

  /// Number of estimated parameters, excluding near-zero weights; used by
  /// M5's pruning error correction.
  [[nodiscard]] std::size_t effective_params() const;

 private:
  double bias_;
  std::vector<double> weights_;
};

/// Solves the symmetric positive (semi-)definite system A w = b in place via
/// Gaussian elimination with partial pivoting. Returns false when singular
/// beyond repair. Exposed for testing.
bool solve_linear_system(std::vector<std::vector<double>>& a, std::vector<double>& b);

}  // namespace autopn::ml
