#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace autopn::ml {

double KnnRegressor::Prediction::stddev() const { return std::sqrt(variance); }

KnnRegressor::KnnRegressor(const Dataset& data, std::size_t k, double distance_scale)
    : data_(data), k_(std::max<std::size_t>(1, k)), distance_scale_(distance_scale) {}

KnnRegressor::Prediction KnnRegressor::predict(std::span<const double> x) const {
  if (data_.empty()) return {};
  const std::size_t k = std::min(k_, data_.size());

  // Squared distances to every training point; partial-select the k nearest.
  std::vector<std::pair<double, std::size_t>> by_distance;
  by_distance.reserve(data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const auto xi = data_.x(i);
    double d2 = 0.0;
    for (std::size_t f = 0; f < data_.dims(); ++f) {
      const double diff = xi[f] - x[f];
      d2 += diff * diff;
    }
    by_distance.emplace_back(d2, i);
  }
  std::nth_element(by_distance.begin(),
                   by_distance.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   by_distance.end());

  // Inverse-distance weighted mean and disagreement.
  double weight_sum = 0.0;
  double mean = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const auto [d2, idx] = by_distance[j];
    const double w = 1.0 / (1.0 + d2);
    weight_sum += w;
    mean += w * data_.y(idx);
  }
  mean /= weight_sum;

  double disagreement = 0.0;
  double nearest_d2 = by_distance[0].first;
  for (std::size_t j = 0; j < k; ++j) {
    const auto [d2, idx] = by_distance[j];
    const double w = 1.0 / (1.0 + d2);
    const double diff = data_.y(idx) - mean;
    disagreement += w * diff * diff;
    nearest_d2 = std::min(nearest_d2, d2);
  }
  disagreement /= weight_sum;

  Prediction out;
  out.mean = mean;
  // Exploration term: far from the data, the prediction is uncertain in
  // proportion to the distance and the target scale.
  out.variance = disagreement + distance_scale_ * nearest_d2 *
                                    (std::abs(mean) * 0.01 + 1e-9) *
                                    (std::abs(mean) * 0.01 + 1e-9);
  return out;
}

}  // namespace autopn::ml
