#include "ml/bagging.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace autopn::ml {

double BaggingEnsemble::Prediction::stddev() const { return std::sqrt(variance); }

BaggingEnsemble BaggingEnsemble::fit(const Dataset& data, std::size_t k,
                                     const M5Params& params, std::uint64_t seed) {
  BaggingEnsemble ensemble;
  ensemble.members_.reserve(k);
  util::Rng rng{seed};
  for (std::size_t i = 0; i < k; ++i) {
    ensemble.members_.push_back(M5Tree::fit(data.bootstrap_sample(rng), params));
  }
  return ensemble;
}

BaggingEnsemble::Prediction BaggingEnsemble::predict(std::span<const double> x) const {
  util::RunningStats stats;
  for (const M5Tree& tree : members_) stats.add(tree.predict(x));
  return Prediction{stats.mean(), stats.variance()};
}

}  // namespace autopn::ml
