#pragma once
// Model-validation utilities: k-fold cross-validation of regressors over a
// Dataset. Used by the surrogate-selection study and mirrors the paper's
// §VII-A calibration procedure ("10-fold cross-validation combined with
// grid-search").

#include <cstdint>
#include <functional>

#include "ml/dataset.hpp"

namespace autopn::ml {

/// Result of one cross-validation run.
struct CvResult {
  double rmse = 0.0;  ///< root mean squared error over held-out folds
  double mae = 0.0;   ///< mean absolute error over held-out folds
};

/// A model factory paired with a predictor: `fit(train)` returns an opaque
/// predict function evaluated on the held-out fold.
using ModelFactory =
    std::function<std::function<double(std::span<const double>)>(const Dataset&)>;

/// k-fold cross-validation: shuffles rows with `seed`, splits into `folds`
/// contiguous folds, trains on k-1 and scores the held-out fold, aggregating
/// the errors over all held-out predictions. Requires folds >= 2 and at
/// least `folds` rows.
[[nodiscard]] CvResult cross_validate(const Dataset& data, const ModelFactory& make,
                                      std::size_t folds, std::uint64_t seed);

}  // namespace autopn::ml
