#pragma once
// The Array microbenchmark (paper §VII-A): nested transactions parallelize
// the access of top-level transactions to a large shared array of integers.
// A top-level transaction scans the entire array — partitioned across the
// currently configured number of child transactions — and updates a
// configurable fraction of the elements (the paper's variants update none,
// 0.01%, 50% and 90%).
//
// Because every transaction scans the whole array, any two concurrent
// top-level transactions conflict as soon as updates are present, while
// sibling children work on disjoint segments and never conflict with each
// other — the workload whose optimal configuration (few roots, many
// children) is the pessimum of scan-only workloads (paper Fig 1b).

#include <cstdint>

#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/rng.hpp"

namespace autopn::workloads {

struct ArrayConfig {
  std::size_t array_size = 1024;
  /// Probability that a scanned element is rewritten (0, 0.0001, 0.5, 0.9).
  double update_fraction = 0.0;
  std::uint64_t seed = 1;
};

class ArrayBenchmark {
 public:
  ArrayBenchmark(stm::Stm& stm, ArrayConfig config);

  /// Executes one top-level transaction: partition the array over the
  /// currently configured child limit, scan each segment in a child
  /// transaction, update elements with probability update_fraction, and
  /// fold the segment sums into a scan total.
  void run_one(util::Rng& rng);

  /// Runs `count` transactions back to back (driver helper).
  void run_many(std::size_t count, util::Rng& rng);

  /// Sum of the array outside any transaction (verification).
  [[nodiscard]] long long checksum() const;

  /// Total elements updated by committed transactions (verification: each
  /// update adds exactly 1 to its element, so checksum - initial == updates).
  [[nodiscard]] long long committed_updates() const;

  [[nodiscard]] const ArrayConfig& config() const noexcept { return config_; }

 private:
  stm::Stm* stm_;
  ArrayConfig config_;
  stm::TArray<long long> data_;
  stm::VBox<long long> update_counter_;
};

}  // namespace autopn::workloads
