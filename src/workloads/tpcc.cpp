#include "workloads/tpcc.hpp"

#include <algorithm>

#include <functional>

namespace autopn::workloads {

namespace {
std::size_t buckets_for(std::size_t entries) {
  return std::max<std::size_t>(16, entries / 2);
}
}  // namespace

TpccBenchmark::TpccBenchmark(stm::Stm& stm, TpccConfig config)
    : stm_(&stm),
      config_(config),
      warehouses_(buckets_for(config.warehouses), "warehouse",
                  config.container_policy),
      districts_(buckets_for(config.warehouses * config.districts_per_warehouse),
                 "district", config.container_policy),
      customers_(buckets_for(config.warehouses * config.districts_per_warehouse *
                             config.customers_per_district),
                 "customer", config.container_policy),
      stock_(buckets_for(config.warehouses * config.items), "stock",
             config.container_policy),
      orders_(buckets_for(1024), "orders", config.container_policy),
      new_orders_(0LL),
      total_payments_(0LL) {
  new_orders_.set_label("new_orders_counter");
  total_payments_.set_label("total_payments_counter");
  stm_->run_top([&](stm::Tx& tx) {
    for (std::size_t w = 0; w < config_.warehouses; ++w) {
      warehouses_.put(tx, static_cast<int>(w), WarehouseRow{});
      for (std::size_t d = 0; d < config_.districts_per_warehouse; ++d) {
        districts_.put(tx, district_key(static_cast<int>(w), static_cast<int>(d)),
                       DistrictRow{});
        for (std::size_t c = 0; c < config_.customers_per_district; ++c) {
          customers_.put(tx,
                         customer_key(static_cast<int>(w), static_cast<int>(d),
                                      static_cast<int>(c)),
                         CustomerRow{});
        }
      }
      for (std::size_t i = 0; i < config_.items; ++i) {
        stock_.put(tx, stock_key(static_cast<int>(w), static_cast<int>(i)),
                   StockRow{initial_stock_quantity_, 0});
      }
    }
  });
}

int TpccBenchmark::district_key(int warehouse, int district) const {
  return warehouse * static_cast<int>(config_.districts_per_warehouse) + district;
}

int TpccBenchmark::customer_key(int warehouse, int district, int customer) const {
  return district_key(warehouse, district) *
             static_cast<int>(config_.customers_per_district) +
         customer;
}

int TpccBenchmark::stock_key(int warehouse, int item) const {
  return warehouse * static_cast<int>(config_.items) + item;
}

int TpccBenchmark::order_key(int warehouse, int district, int order_id) const {
  return (district_key(warehouse, district) << 16) | order_id;
}

long long TpccBenchmark::new_order(int warehouse, int district, int customer,
                                   util::Rng& rng) {
  const std::uint64_t tx_seed = rng();
  long long order_total = 0;
  stm_->run_top([&](stm::Tx& tx) {
    util::Rng order_rng{tx_seed};
    const std::size_t line_count =
        config_.min_order_lines +
        order_rng.uniform_index(config_.max_order_lines - config_.min_order_lines + 1);

    // Allocate the order id from the district row (the classic TPC-C
    // district hotspot).
    const int dkey = district_key(warehouse, district);
    DistrictRow drow = districts_.get(tx, dkey).value();
    const int order_id = drow.next_order_id;
    drow.next_order_id += 1;
    districts_.put(tx, dkey, drow);

    // Draw the order lines up front so every attempt of every child works on
    // a stable picture.
    struct LinePick {
      int item;
      int supply_warehouse;
      int quantity;
    };
    std::vector<LinePick> picks(line_count);
    for (std::size_t l = 0; l < line_count; ++l) {
      picks[l].item = static_cast<int>(order_rng.uniform_index(config_.items));
      picks[l].supply_warehouse =
          order_rng.bernoulli(config_.remote_item_fraction) && config_.warehouses > 1
              ? static_cast<int>(order_rng.uniform_index(config_.warehouses))
              : warehouse;
      picks[l].quantity = 1 + static_cast<int>(order_rng.uniform_index(10));
    }

    // Process order lines in parallel child transactions: each line updates
    // its stock row and computes its amount.
    std::vector<OrderLine> lines(line_count);
    std::vector<std::function<void(stm::Tx&)>> children;
    children.reserve(line_count);
    for (std::size_t l = 0; l < line_count; ++l) {
      children.emplace_back([&, l](stm::Tx& child) {
        const LinePick& pick = picks[l];
        const int skey = stock_key(pick.supply_warehouse, pick.item);
        StockRow srow = stock_.get(child, skey).value();
        if (srow.quantity >= pick.quantity + 10) {
          srow.quantity -= pick.quantity;
        } else {
          srow.quantity = srow.quantity - pick.quantity + 91;  // TPC-C restock
        }
        srow.ytd += pick.quantity;
        stock_.put(child, skey, srow);
        lines[l] = OrderLine{pick.item, pick.supply_warehouse, pick.quantity,
                             static_cast<long long>(pick.quantity) *
                                 (1 + pick.item % 100)};
      });
    }
    tx.run_children(std::move(children));

    order_total = 0;
    for (const OrderLine& line : lines) order_total += line.amount;
    orders_.put(tx, order_key(warehouse, district, order_id),
                OrderRow{customer, false, lines});
    new_orders_.write(tx, new_orders_.read(tx) + 1);
  });
  return order_total;
}

void TpccBenchmark::payment(int warehouse, int district, int customer,
                            long long amount) {
  stm_->run_top([&](stm::Tx& tx) {
    WarehouseRow wrow = warehouses_.get(tx, warehouse).value();
    wrow.ytd += amount;
    warehouses_.put(tx, warehouse, wrow);

    const int dkey = district_key(warehouse, district);
    DistrictRow drow = districts_.get(tx, dkey).value();
    drow.ytd += amount;
    districts_.put(tx, dkey, drow);

    const int ckey = customer_key(warehouse, district, customer);
    CustomerRow crow = customers_.get(tx, ckey).value();
    crow.balance -= amount;
    crow.payment_count += 1;
    customers_.put(tx, ckey, crow);

    total_payments_.write(tx, total_payments_.read(tx) + amount);
  });
}

long long TpccBenchmark::order_status(int warehouse, int district, int customer) {
  return stm_->run_top_returning<long long>([&](stm::Tx& tx) {
    const int dkey = district_key(warehouse, district);
    const DistrictRow drow = districts_.get(tx, dkey).value();
    // Scan back for the customer's most recent order.
    for (int oid = drow.next_order_id - 1; oid >= 1; --oid) {
      const auto order = orders_.get(tx, order_key(warehouse, district, oid));
      if (order.has_value() && order->customer_id == customer) {
        long long total = 0;
        for (const OrderLine& line : order->lines) total += line.amount;
        return total;
      }
    }
    return 0LL;
  });
}

int TpccBenchmark::delivery(int warehouse) {
  int delivered_total = 0;
  stm_->run_top([&](stm::Tx& tx) {
    const std::size_t districts = config_.districts_per_warehouse;
    std::vector<int> delivered(districts, 0);
    std::vector<std::function<void(stm::Tx&)>> children;
    children.reserve(districts);
    for (std::size_t d = 0; d < districts; ++d) {
      children.emplace_back([&, d](stm::Tx& child) {
        const int dkey = district_key(warehouse, static_cast<int>(d));
        DistrictRow drow = districts_.get(child, dkey).value();
        if (drow.next_delivery_id >= drow.next_order_id) {
          delivered[d] = 0;
          return;  // nothing undelivered in this district
        }
        const int oid = drow.next_delivery_id;
        const int okey = order_key(warehouse, static_cast<int>(d), oid);
        OrderRow order = orders_.get(child, okey).value();
        order.delivered = true;
        long long total = 0;
        for (const OrderLine& line : order.lines) total += line.amount;
        orders_.put(child, okey, order);

        const int ckey =
            customer_key(warehouse, static_cast<int>(d), order.customer_id);
        CustomerRow crow = customers_.get(child, ckey).value();
        crow.balance += total;
        crow.delivery_count += 1;
        customers_.put(child, ckey, crow);

        drow.next_delivery_id += 1;
        districts_.put(child, dkey, drow);
        delivered[d] = 1;
      });
    }
    tx.run_children(std::move(children));
    delivered_total = 0;
    for (int d : delivered) delivered_total += d;
  });
  return delivered_total;
}

int TpccBenchmark::stock_level(int warehouse, int district, int threshold,
                               int recent_orders) {
  return stm_->run_top_returning<int>([&](stm::Tx& tx) {
    const int dkey = district_key(warehouse, district);
    const DistrictRow drow = districts_.get(tx, dkey).value();
    std::vector<int> seen;
    int low = 0;
    const int newest = drow.next_order_id - 1;
    const int oldest = std::max(1, newest - recent_orders + 1);
    for (int oid = newest; oid >= oldest; --oid) {
      const auto order = orders_.get(tx, order_key(warehouse, district, oid));
      if (!order.has_value()) continue;
      for (const OrderLine& line : order->lines) {
        if (std::find(seen.begin(), seen.end(), line.item_id) != seen.end()) {
          continue;
        }
        seen.push_back(line.item_id);
        const StockRow srow =
            stock_.get(tx, stock_key(line.supply_warehouse, line.item_id)).value();
        if (srow.quantity < threshold) ++low;
      }
    }
    return low;
  });
}

void TpccBenchmark::run_one(util::Rng& rng) {
  const int warehouse = static_cast<int>(rng.uniform_index(config_.warehouses));
  const int district =
      static_cast<int>(rng.uniform_index(config_.districts_per_warehouse));
  const int customer =
      static_cast<int>(rng.uniform_index(config_.customers_per_district));
  const double op = rng.uniform();
  double cut = config_.new_order_fraction;
  if (op < cut) {
    (void)new_order(warehouse, district, customer, rng);
    return;
  }
  cut += config_.payment_fraction;
  if (op < cut) {
    payment(warehouse, district, customer,
            1 + static_cast<long long>(rng.uniform_index(5000)));
    return;
  }
  cut += config_.order_status_fraction;
  if (op < cut) {
    (void)order_status(warehouse, district, customer);
    return;
  }
  cut += config_.delivery_fraction;
  if (op < cut) {
    (void)delivery(warehouse);
    return;
  }
  (void)stock_level(warehouse, district, /*threshold=*/900);
}

void TpccBenchmark::run_many(std::size_t count, util::Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) run_one(rng);
}

bool TpccBenchmark::verify_consistency() {
  return stm_->run_top_returning<bool>([&](stm::Tx& tx) {
    bool ok = true;

    // Orders per district match the allocated ids, and stock YTD matches
    // the order lines.
    std::vector<long long> stock_ordered(config_.warehouses * config_.items, 0);
    std::vector<int> orders_per_district(
        config_.warehouses * config_.districts_per_warehouse, 0);
    orders_.for_each(tx, [&](const int& key, const OrderRow& order) {
      const int dkey = key >> 16;
      orders_per_district[static_cast<std::size_t>(dkey)]++;
      for (const OrderLine& line : order.lines) {
        stock_ordered[static_cast<std::size_t>(
            stock_key(line.supply_warehouse, line.item_id))] += line.quantity;
      }
    });
    for (std::size_t w = 0; w < config_.warehouses; ++w) {
      for (std::size_t d = 0; d < config_.districts_per_warehouse; ++d) {
        const int dkey = district_key(static_cast<int>(w), static_cast<int>(d));
        const DistrictRow drow = districts_.get(tx, dkey).value();
        if (drow.next_order_id - 1 != orders_per_district[static_cast<std::size_t>(dkey)]) {
          ok = false;
        }
      }
      for (std::size_t i = 0; i < config_.items; ++i) {
        const int skey = stock_key(static_cast<int>(w), static_cast<int>(i));
        const StockRow srow = stock_.get(tx, skey).value();
        if (srow.ytd != stock_ordered[static_cast<std::size_t>(skey)]) ok = false;
        // quantity is restocked in units of 91, so track only ytd linkage
        // and non-negativity.
        if (srow.quantity < 0) ok = false;
      }
    }

    // Warehouse YTD equals the sum of its districts' YTD.
    for (std::size_t w = 0; w < config_.warehouses; ++w) {
      long long district_sum = 0;
      for (std::size_t d = 0; d < config_.districts_per_warehouse; ++d) {
        district_sum +=
            districts_.get(tx, district_key(static_cast<int>(w), static_cast<int>(d)))
                .value()
                .ytd;
      }
      if (warehouses_.get(tx, static_cast<int>(w)).value().ytd != district_sum) {
        ok = false;
      }
    }

    // Delivery bookkeeping: an order is delivered iff its id is below the
    // district's delivery watermark, and money is conserved — the sum of all
    // customer balances equals delivered order totals minus payments.
    long long delivered_total = 0;
    orders_.for_each(tx, [&](const int& key, const OrderRow& order) {
      const int dkey = key >> 16;
      const int oid = key & 0xffff;
      const DistrictRow drow = districts_.get(tx, dkey).value();
      const bool should_be_delivered = oid < drow.next_delivery_id;
      if (order.delivered != should_be_delivered) ok = false;
      if (order.delivered) {
        for (const OrderLine& line : order.lines) delivered_total += line.amount;
      }
    });
    long long balance_total = 0;
    customers_.for_each(tx, [&](const int&, const CustomerRow& crow) {
      balance_total += crow.balance;
    });
    if (balance_total != delivered_total - total_payments_.read(tx)) ok = false;

    return ok;
  });
}

}  // namespace autopn::workloads
