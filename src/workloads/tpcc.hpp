#pragma once
// A TPC-C port for the PN-STM (paper §VII-A), modeled after the PN-TM
// adaptations used with JVSTM: the order-entry schema reduced to the
// transaction profiles that exercise transactional memory — New-Order
// (with per-order-line stock updates parallelized across nested children),
// Payment, and Order-Status — over warehouse/district/customer/stock/order
// relations. Contention is controlled by the warehouse count (TPC-C
// semantics: most traffic stays within one warehouse, so fewer warehouses
// means hotter districts and stock rows).

#include <cstdint>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/rng.hpp"

namespace autopn::workloads {

struct TpccConfig {
  std::size_t warehouses = 4;
  std::size_t districts_per_warehouse = 10;
  std::size_t customers_per_district = 30;
  std::size_t items = 1000;  ///< catalogue size (stock rows per warehouse)
  std::size_t min_order_lines = 5;
  std::size_t max_order_lines = 15;
  /// Probability that an order line hits a remote warehouse (TPC-C: 1%).
  double remote_item_fraction = 0.01;
  /// Operation mix (TPC-C-style); the remainder after the four write-heavy
  /// profiles is Stock-Level (read-only).
  double new_order_fraction = 0.45;
  double payment_fraction = 0.43;
  double order_status_fraction = 0.04;
  double delivery_fraction = 0.04;
  std::uint64_t seed = 3;
  /// Conflict-unit policy for all five relations: kSemantic (per-key
  /// predicates and delta install — the default) or kBoxGranularity
  /// (whole-bucket COW) for A/B comparison.
  stm::ContainerPolicy container_policy = stm::ContainerPolicy::kSemantic;
};

struct WarehouseRow {
  long long ytd = 0;
};
struct DistrictRow {
  int next_order_id = 1;
  int next_delivery_id = 1;  ///< orders with id below this are delivered
  long long ytd = 0;
};
struct CustomerRow {
  long long balance = 0;
  int payment_count = 0;
  int delivery_count = 0;
};
struct StockRow {
  int quantity = 0;
  long long ytd = 0;  ///< units sold
};
struct OrderLine {
  int item_id = 0;
  int supply_warehouse = 0;
  int quantity = 0;
  long long amount = 0;
};
struct OrderRow {
  int customer_id = 0;
  bool delivered = false;
  std::vector<OrderLine> lines;
};

class TpccBenchmark {
 public:
  TpccBenchmark(stm::Stm& stm, TpccConfig config);

  /// Executes one transaction from the configured mix.
  void run_one(util::Rng& rng);
  void run_many(std::size_t count, util::Rng& rng);

  /// New-Order: allocate an order id from the district, then process each
  /// order line (stock read-modify-write + amount computation) in parallel
  /// child transactions, and insert the order. Returns the order's total.
  long long new_order(int warehouse, int district, int customer, util::Rng& rng);

  /// Payment: update warehouse/district YTD and the customer's balance.
  void payment(int warehouse, int district, int customer, long long amount);

  /// Order-Status (read-only): total amount of a customer's latest order.
  [[nodiscard]] long long order_status(int warehouse, int district, int customer);

  /// Delivery: delivers the oldest undelivered order of *every* district of
  /// a warehouse — the per-district work (find order, credit the customer,
  /// mark delivered) runs in parallel child transactions, one per district.
  /// Returns the number of orders delivered.
  int delivery(int warehouse);

  /// Stock-Level (read-only): number of distinct items among the district's
  /// most recent `recent_orders` orders whose stock is below `threshold`.
  [[nodiscard]] int stock_level(int warehouse, int district, int threshold,
                                int recent_orders = 20);

  // ---- verification -------------------------------------------------------

  /// Consistency checks over the committed state:
  ///  * district.next_order_id - 1 == number of orders in that district;
  ///  * every stock row's ytd equals the units ordered from it across all
  ///    order lines and quantity + ytd equals the initial quantity;
  ///  * warehouse ytd equals the sum of its districts' ytd.
  [[nodiscard]] bool verify_consistency();

  [[nodiscard]] const TpccConfig& config() const noexcept { return config_; }

  /// Committed new-order transactions (for throughput accounting).
  [[nodiscard]] long long new_orders_committed() const {
    return new_orders_.peek();
  }

 private:
  // Flat integer keys for the composite relations.
  [[nodiscard]] int district_key(int warehouse, int district) const;
  [[nodiscard]] int customer_key(int warehouse, int district, int customer) const;
  [[nodiscard]] int stock_key(int warehouse, int item) const;
  [[nodiscard]] int order_key(int warehouse, int district, int order_id) const;

  stm::Stm* stm_;
  TpccConfig config_;
  stm::TMap<int, WarehouseRow> warehouses_;
  stm::TMap<int, DistrictRow> districts_;
  stm::TMap<int, CustomerRow> customers_;
  stm::TMap<int, StockRow> stock_;
  stm::TMap<int, OrderRow> orders_;
  stm::VBox<long long> new_orders_;
  stm::VBox<long long> total_payments_;  ///< sum of all payment amounts
  int initial_stock_quantity_ = 1000;
};

}  // namespace autopn::workloads
