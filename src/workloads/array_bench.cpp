#include "workloads/array_bench.hpp"

#include <atomic>
#include <functional>
#include <vector>

namespace autopn::workloads {

ArrayBenchmark::ArrayBenchmark(stm::Stm& stm, ArrayConfig config)
    : stm_(&stm),
      config_(config),
      data_(config.array_size, 0LL),
      update_counter_(0LL) {}

void ArrayBenchmark::run_one(util::Rng& rng) {
  // Children derive independent RNG streams so retries re-draw decisions
  // deterministically per attempt without sharing mutable state.
  const std::uint64_t tx_seed = rng();
  stm_->run_top([&](stm::Tx& tx) {
    const std::size_t segments = stm_->child_limit();
    const std::size_t n = data_.size();
    const std::size_t chunk = (n + segments - 1) / segments;

    std::vector<long long> segment_sums(segments, 0);
    std::vector<long long> segment_updates(segments, 0);
    std::vector<std::function<void(stm::Tx&)>> children;
    children.reserve(segments);
    for (std::size_t s = 0; s < segments; ++s) {
      children.emplace_back([&, s](stm::Tx& child) {
        util::Rng child_rng{tx_seed ^ (0x9e3779b97f4a7c15ULL * (s + 1))};
        long long sum = 0;
        long long updates = 0;
        const std::size_t lo = s * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          const long long value = data_.read(child, i);
          sum += value;
          if (child_rng.bernoulli(config_.update_fraction)) {
            data_.write(child, i, value + 1);
            ++updates;
          }
        }
        segment_sums[s] = sum;
        segment_updates[s] = updates;
      });
    }
    tx.run_children(std::move(children));

    long long total_updates = 0;
    for (std::size_t s = 0; s < segments; ++s) total_updates += segment_updates[s];
    if (total_updates > 0) {
      update_counter_.write(tx, update_counter_.read(tx) + total_updates);
    }
  });
}

void ArrayBenchmark::run_many(std::size_t count, util::Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) run_one(rng);
}

long long ArrayBenchmark::checksum() const {
  long long sum = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) sum += data_.peek(i);
  return sum;
}

long long ArrayBenchmark::committed_updates() const { return update_counter_.peek(); }

}  // namespace autopn::workloads
