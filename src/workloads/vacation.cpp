#include "workloads/vacation.hpp"

#include <functional>

namespace autopn::workloads {

namespace {
constexpr int kKinds = 3;

std::size_t buckets_for(std::size_t entries) {
  // ~2 entries per bucket keeps bucket conflicts representative without
  // making every access collide.
  return std::max<std::size_t>(8, entries / 2);
}
}  // namespace

VacationBenchmark::VacationBenchmark(stm::Stm& stm, VacationConfig config)
    : stm_(&stm),
      config_(config),
      cars_(buckets_for(config.relations), "cars", config.container_policy),
      flights_(buckets_for(config.relations), "flights", config.container_policy),
      rooms_(buckets_for(config.relations), "rooms", config.container_policy),
      customers_(buckets_for(config.customers), "customers",
                 config.container_policy) {
  util::Rng rng{config.seed};
  stm_->run_top([&](stm::Tx& tx) {
    for (std::size_t id = 0; id < config_.relations; ++id) {
      const Resource row{config_.initial_capacity, 0,
                         50 + static_cast<int>(rng.uniform_index(100))};
      cars_.put(tx, static_cast<int>(id), row);
      flights_.put(tx, static_cast<int>(id),
                   Resource{config_.initial_capacity, 0,
                            100 + static_cast<int>(rng.uniform_index(400))});
      rooms_.put(tx, static_cast<int>(id),
                 Resource{config_.initial_capacity, 0,
                          30 + static_cast<int>(rng.uniform_index(70))});
    }
    for (std::size_t id = 0; id < config_.customers; ++id) {
      customers_.put(tx, static_cast<int>(id), {});
    }
  });
}

const stm::TMap<int, Resource>& VacationBenchmark::table(ResourceKind kind) const {
  switch (kind) {
    case ResourceKind::kCar: return cars_;
    case ResourceKind::kFlight: return flights_;
    case ResourceKind::kRoom: return rooms_;
  }
  return cars_;
}

int VacationBenchmark::make_reservation(int customer_id, util::Rng& rng) {
  const std::uint64_t tx_seed = rng();
  int reserved_total = 0;
  stm_->run_top([&](stm::Tx& tx) {
    const std::size_t items = config_.items_per_reservation;
    std::vector<ReservationItem> picked(items);
    std::vector<int> success(items, 0);

    // Phase 1 (parallel children): reserve each item on its resource table.
    std::vector<std::function<void(stm::Tx&)>> children;
    children.reserve(items);
    for (std::size_t i = 0; i < items; ++i) {
      children.emplace_back([&, i](stm::Tx& child) {
        util::Rng item_rng{tx_seed ^ (0xda942042e4dd58b5ULL * (i + 1))};
        const auto kind = static_cast<ResourceKind>(item_rng.uniform_index(kKinds));
        const int resource_id =
            static_cast<int>(item_rng.uniform_index(config_.relations));
        const auto& tbl = table(kind);
        auto row = tbl.get(child, resource_id);
        if (!row.has_value() || row->used >= row->capacity) {
          success[i] = 0;
          return;
        }
        Resource updated = *row;
        updated.used += 1;
        tbl.put(child, resource_id, updated);
        picked[i] = ReservationItem{kind, resource_id, updated.price};
        success[i] = 1;
      });
    }
    tx.run_children(std::move(children));

    // Phase 2 (parent): attach the successfully reserved items to the
    // customer record.
    reserved_total = 0;
    auto record = customers_.get(tx, customer_id).value_or(std::vector<ReservationItem>{});
    for (std::size_t i = 0; i < items; ++i) {
      if (success[i] != 0) {
        record.push_back(picked[i]);
        ++reserved_total;
      }
    }
    customers_.put(tx, customer_id, std::move(record));
  });
  return reserved_total;
}

void VacationBenchmark::delete_customer_reservations(int customer_id) {
  stm_->run_top([&](stm::Tx& tx) {
    auto record = customers_.get(tx, customer_id);
    if (!record.has_value() || record->empty()) return;
    for (const ReservationItem& item : *record) {
      const auto& tbl = table(item.kind);
      auto row = tbl.get(tx, item.resource_id);
      if (row.has_value()) {
        Resource updated = *row;
        updated.used -= 1;
        tbl.put(tx, item.resource_id, updated);
      }
    }
    customers_.put(tx, customer_id, {});
  });
}

void VacationBenchmark::update_tables(util::Rng& rng) {
  const std::uint64_t tx_seed = rng();
  stm_->run_top([&](stm::Tx& tx) {
    util::Rng op_rng{tx_seed};
    const auto kind = static_cast<ResourceKind>(op_rng.uniform_index(kKinds));
    const int resource_id = static_cast<int>(op_rng.uniform_index(config_.relations));
    const int delta = op_rng.bernoulli(0.5) ? 10 : -10;
    const auto& tbl = table(kind);
    auto row = tbl.get(tx, resource_id);
    if (!row.has_value()) return;
    Resource updated = *row;
    // Capacity never drops below what is currently reserved.
    updated.capacity = std::max(updated.used, updated.capacity + delta);
    tbl.put(tx, resource_id, updated);
  });
}

int VacationBenchmark::query_customer_total(int customer_id) {
  return stm_->run_top_returning<int>([&](stm::Tx& tx) {
    auto record = customers_.get(tx, customer_id);
    int total = 0;
    if (record.has_value()) {
      for (const ReservationItem& item : *record) total += item.price;
    }
    return total;
  });
}

void VacationBenchmark::run_one(util::Rng& rng) {
  const double op = rng.uniform();
  const int customer = static_cast<int>(rng.uniform_index(config_.customers));
  if (op < config_.make_fraction) {
    (void)make_reservation(customer, rng);
  } else if (op < config_.make_fraction + config_.delete_fraction) {
    delete_customer_reservations(customer);
  } else if (op <
             config_.make_fraction + config_.delete_fraction + config_.update_fraction) {
    update_tables(rng);
  } else {
    (void)query_customer_total(customer);
  }
}

void VacationBenchmark::run_many(std::size_t count, util::Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) run_one(rng);
}

bool VacationBenchmark::verify_consistency() {
  return stm_->run_top_returning<bool>([&](stm::Tx& tx) {
    // Tally reservations held by customers per (kind, resource).
    std::vector<std::vector<int>> held(
        kKinds, std::vector<int>(config_.relations, 0));
    bool ok = true;
    customers_.for_each(tx, [&](const int&, const std::vector<ReservationItem>& items) {
      for (const ReservationItem& item : items) {
        held[static_cast<int>(item.kind)][static_cast<std::size_t>(item.resource_id)]++;
      }
    });
    for (int kind = 0; kind < kKinds; ++kind) {
      const auto& tbl = table(static_cast<ResourceKind>(kind));
      for (std::size_t id = 0; id < config_.relations; ++id) {
        const auto row = tbl.get(tx, static_cast<int>(id));
        if (!row.has_value()) {
          ok = false;
          continue;
        }
        if (row->used != held[kind][id] || row->used < 0 ||
            row->used > row->capacity) {
          ok = false;
        }
      }
    }
    return ok;
  });
}

}  // namespace autopn::workloads
