#pragma once
// Port of STAMP's Vacation benchmark (paper §VII-A) to the PN-STM: a travel
// reservation system with three resource tables (cars, flights, rooms) and a
// customer table. Client transactions make multi-item reservations, cancel
// customers, and the manager updates resource capacity. The PN adaptation
// (as in the JVSTM port) parallelizes the per-item work of a reservation
// across nested child transactions.
//
// Contention is controlled by the relation size: fewer distinct resources
// make concurrent reservations collide more often.

#include <cstdint>
#include <optional>
#include <vector>

#include "stm/containers.hpp"
#include "stm/stm.hpp"
#include "util/rng.hpp"

namespace autopn::workloads {

enum class ResourceKind : int { kCar = 0, kFlight = 1, kRoom = 2 };

struct VacationConfig {
  std::size_t relations = 64;       ///< resources per table (smaller = hotter)
  std::size_t customers = 64;
  int initial_capacity = 100;
  std::size_t items_per_reservation = 4;  ///< nested fan-out of a reservation
  /// Operation mix (fractions of make/delete/update; must sum to <= 1, the
  /// remainder are read-only queries).
  double make_fraction = 0.8;
  double delete_fraction = 0.1;
  double update_fraction = 0.1;
  std::uint64_t seed = 2;
  /// Conflict-unit policy for all four tables: kSemantic (per-key predicates
  /// and delta install — the default) or kBoxGranularity (whole-bucket COW)
  /// for A/B comparison.
  stm::ContainerPolicy container_policy = stm::ContainerPolicy::kSemantic;
};

/// One resource row.
struct Resource {
  int capacity = 0;
  int used = 0;
  int price = 0;
};

/// A customer's reservation of one resource.
struct ReservationItem {
  ResourceKind kind = ResourceKind::kCar;
  int resource_id = 0;
  int price = 0;

  friend bool operator==(const ReservationItem&, const ReservationItem&) = default;
};

class VacationBenchmark {
 public:
  VacationBenchmark(stm::Stm& stm, VacationConfig config);

  /// Executes one client transaction according to the configured mix.
  void run_one(util::Rng& rng);
  void run_many(std::size_t count, util::Rng& rng);

  // Individual operations (also used directly by tests/examples).

  /// Reserves `items_per_reservation` random resources for a customer; the
  /// per-item reservation work runs in parallel child transactions. Returns
  /// the number of items successfully reserved (capacity permitting).
  int make_reservation(int customer_id, util::Rng& rng);

  /// Releases all of a customer's reservations.
  void delete_customer_reservations(int customer_id);

  /// Manager operation: add or remove capacity on a random resource.
  void update_tables(util::Rng& rng);

  /// Read-only query: total price of a customer's reservations.
  [[nodiscard]] int query_customer_total(int customer_id);

  // ---- verification -------------------------------------------------------

  /// Checks conservation: for every resource, used == total reservations
  /// held by customers, and 0 <= used <= capacity. Runs transactionally.
  [[nodiscard]] bool verify_consistency();

  [[nodiscard]] const VacationConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] const stm::TMap<int, Resource>& table(ResourceKind kind) const;

  stm::Stm* stm_;
  VacationConfig config_;
  stm::TMap<int, Resource> cars_;
  stm::TMap<int, Resource> flights_;
  stm::TMap<int, Resource> rooms_;
  stm::TMap<int, std::vector<ReservationItem>> customers_;
};

}  // namespace autopn::workloads
