#pragma once
// Model-checked synchronization primitives — what util/sync.hpp's aliases
// resolve to under AUTOPN_MC (docs/MODEL_CHECKING.md). Each primitive
//
//  * makes every operation a scheduling point of the cooperative scheduler
//    (src/mc/scheduler.hpp), so the explorer controls the interleaving;
//  * feeds the SPELLED memory order into a vector-clock happens-before
//    engine: release stores publish the writer's clock on the atomic, acquire
//    loads join it, relaxed does neither (and a relaxed store BREAKS the
//    release sequence, per C++20), mutexes release-on-unlock /
//    acquire-on-lock;
//  * race-checks ModelShared<T> cells against that engine — a too-weak
//    annotation on the ordering atomic surfaces as a reported race on the
//    payload even in executions where the accesses did not physically
//    interleave.
//
// Model simplifications (deliberate, documented in docs/MODEL_CHECKING.md):
// atomics have sequentially consistent VALUE semantics (a load observes the
// latest store in the schedule; stale-read enumeration of weak memory is out
// of scope — the checker verifies happens-before sufficiency, not value
// speculation), seq_cst ordering is treated as acq_rel (its extra total-order
// guarantee is implied by SC value semantics here), compare_exchange_weak
// never fails spuriously, and notify_one deterministically wakes the
// lowest-id waiter.
//
// Operations performed while no execution is active (setup before
// mc::explore, teardown after, result inspection) execute raw.

#include <concepts>
#include <cstdint>
#include <mutex>
#include <source_location>
#include <sstream>
#include <string>
#include <utility>

#include "mc/scheduler.hpp"
#include "mc/vclock.hpp"

namespace autopn::mc {

[[nodiscard]] constexpr bool acquire_side(std::memory_order o) noexcept {
  return o == std::memory_order_acquire || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst || o == std::memory_order_consume;
}
[[nodiscard]] constexpr bool release_side(std::memory_order o) noexcept {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}
/// Failure order derived from a combined CAS order, as std::atomic does.
[[nodiscard]] constexpr std::memory_order cas_failure_order(
    std::memory_order o) noexcept {
  if (o == std::memory_order_acq_rel) return std::memory_order_acquire;
  if (o == std::memory_order_release) return std::memory_order_relaxed;
  return o;
}

template <typename T>
class ModelAtomic {
 public:
  constexpr ModelAtomic() noexcept : value_{} {}
  constexpr ModelAtomic(T v) noexcept : value_(std::move(v)) {}  // NOLINT(google-explicit-constructor)

  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    Execution* ex = Execution::current();
    if (ex == nullptr) return value_;
    ex->yield_op({this, false, "atomic.load"});
    hb_acquire(ex, order);
    return value_;
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    Execution* ex = Execution::current();
    if (ex == nullptr) {
      value_ = std::move(v);
      return;
    }
    ex->yield_op({this, true, "atomic.store"});
    value_ = std::move(v);
    if (release_side(order)) {
      sync_vc_ = ex->self_vc();
      has_sync_ = true;
    } else {
      // A plain relaxed store heads no release sequence and (C++20) is not
      // part of the previous one: it strips the carried clock. THIS is the
      // semantic difference the "weakened annotation" fixtures exercise.
      has_sync_ = false;
    }
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
    Execution* ex = Execution::current();
    if (ex == nullptr) return std::exchange(value_, std::move(v));
    ex->yield_op({this, true, "atomic.exchange"});
    hb_acquire(ex, order);
    T old = std::exchange(value_, std::move(v));
    hb_rmw_release(ex, order);
    return old;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    Execution* ex = Execution::current();
    if (ex == nullptr) {
      if (value_ == expected) {
        value_ = std::move(desired);
        return true;
      }
      expected = value_;
      return false;
    }
    ex->yield_op({this, true, "atomic.cas"});
    if (value_ == expected) {
      hb_acquire(ex, success);
      value_ = std::move(desired);
      hb_rmw_release(ex, success);
      return true;
    }
    hb_acquire(ex, failure);
    expected = value_;
    return false;
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order =
                                   std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, std::move(desired), order,
                                   cas_failure_order(order));
  }
  /// The model never fails spuriously: weak == strong (a strict subset of
  /// allowed weak behaviors, so no false races; spurious-failure loops are
  /// exercised by the CAS-lost path instead).
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return compare_exchange_strong(expected, std::move(desired), success,
                                   failure);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order order =
                                 std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, std::move(desired), order,
                                   cas_failure_order(order));
  }

  T fetch_add(T delta, std::memory_order order = std::memory_order_seq_cst)
    requires(std::integral<T> && !std::same_as<T, bool>)
  {
    return rmw_arith(static_cast<T>(delta), "atomic.fetch_add", order);
  }
  T fetch_sub(T delta, std::memory_order order = std::memory_order_seq_cst)
    requires(std::integral<T> && !std::same_as<T, bool>)
  {
    return rmw_arith(static_cast<T>(T{} - delta), "atomic.fetch_sub", order);
  }

  [[nodiscard]] bool is_lock_free() const noexcept { return true; }

 private:
  void hb_acquire(Execution* ex, std::memory_order order) const {
    if (acquire_side(order) && has_sync_) ex->self_vc().join(sync_vc_);
  }
  /// Write side of an RMW: a release RMW both heads a new release sequence
  /// and carries the previous head's clock; a relaxed RMW continues the
  /// existing release sequence untouched (C++20 [intro.races]).
  void hb_rmw_release(Execution* ex, std::memory_order order) {
    if (release_side(order)) {
      if (has_sync_) {
        sync_vc_.join(ex->self_vc());
      } else {
        sync_vc_ = ex->self_vc();
      }
      has_sync_ = true;
    }
  }
  T rmw_arith(T delta, const char* what, std::memory_order order)
    requires std::integral<T>
  {
    Execution* ex = Execution::current();
    if (ex == nullptr) {
      T old = value_;
      value_ = static_cast<T>(value_ + delta);
      return old;
    }
    ex->yield_op({this, true, what});
    hb_acquire(ex, order);
    T old = value_;
    value_ = static_cast<T>(value_ + delta);
    hb_rmw_release(ex, order);
    return old;
  }

  T value_;
  // The clock carried by the current value's release sequence; joined into
  // acquiring loaders. Mutable state is scheduler-serialized (one thread runs
  // at a time), so no further locking.
  mutable VectorClock sync_vc_;
  mutable bool has_sync_ = false;
};

class ModelMutex {
 public:
  ModelMutex() = default;
  ModelMutex(const ModelMutex&) = delete;
  ModelMutex& operator=(const ModelMutex&) = delete;

  void lock() {
    Execution* ex = Execution::current();
    if (ex == nullptr) {
      locked_ = true;
      return;
    }
    ex->yield_op({this, true, "mutex.lock"});
    lock_after_yield(ex);
  }

  bool try_lock() {
    Execution* ex = Execution::current();
    if (ex == nullptr) {
      if (locked_) return false;
      locked_ = true;
      return true;
    }
    ex->yield_op({this, true, "mutex.try_lock"});
    if (locked_) return false;
    locked_ = true;
    owner_ = ex->self();
    ex->self_vc().join(vc_);
    return true;
  }

  void unlock() {
    Execution* ex = Execution::current();
    if (ex == nullptr) {
      locked_ = false;
      return;
    }
    ex->yield_op({this, true, "mutex.unlock"});
    vc_ = ex->self_vc();  // release edge to the next acquirer
    locked_ = false;
    owner_ = kController;
    ex->unblock(BlockKind::kMutex, this, /*all=*/true);
  }

 private:
  friend class ModelCondVar;

  /// Acquisition body shared by lock() and condvar re-acquisition (which must
  /// not insert an extra scheduling point of its own).
  void lock_after_yield(Execution* ex) {
    while (locked_) {
      if (!ex->block_self(BlockKind::kMutex, this)) return;  // teardown
    }
    locked_ = true;
    owner_ = ex->self();
    ex->self_vc().join(vc_);  // acquire edge from the last unlock
  }

  bool locked_ = false;
  int owner_ = kController;
  VectorClock vc_;  ///< clock of the most recent unlock
};

class ModelCondVar {
 public:
  ModelCondVar() = default;
  ModelCondVar(const ModelCondVar&) = delete;
  ModelCondVar& operator=(const ModelCondVar&) = delete;

  void wait(std::unique_lock<ModelMutex>& lk) {
    Execution* ex = Execution::current();
    if (ex == nullptr) return;
    ModelMutex* m = lk.mutex();
    ex->yield_op({this, true, "cv.wait"});
    // Atomically-release-and-sleep: release edge + waiter wakeups, without a
    // second scheduling point between unlock and sleep (matches std
    // semantics: no notification can be lost in that window).
    m->vc_ = ex->self_vc();
    m->locked_ = false;
    m->owner_ = kController;
    ex->unblock(BlockKind::kMutex, m, /*all=*/true);
    if (!ex->block_self(BlockKind::kCondVar, this)) return;  // teardown
    m->lock_after_yield(ex);
  }

  template <typename Pred>
  void wait(std::unique_lock<ModelMutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  void notify_one() {
    Execution* ex = Execution::current();
    if (ex == nullptr) return;
    ex->yield_op({this, true, "cv.notify_one"});
    ex->unblock(BlockKind::kCondVar, this, /*all=*/false);
  }

  void notify_all() {
    Execution* ex = Execution::current();
    if (ex == nullptr) return;
    ex->yield_op({this, true, "cv.notify_all"});
    ex->unblock(BlockKind::kCondVar, this, /*all=*/true);
  }
};

/// Race-checked plain cell: accesses are NOT scheduling points (keeps the
/// state space small), but every read/write is checked for a happens-before
/// edge to all conflicting prior accesses via the vector-clock engine — so a
/// race is caught in EVERY schedule that lacks the edge, not only in the
/// schedules where the accesses physically interleave.
template <typename T>
class ModelShared {
 public:
  constexpr ModelShared() : value_{} {}
  constexpr ModelShared(T v) : value_(std::move(v)) {}  // NOLINT(google-explicit-constructor)

  const T& read(std::source_location loc = std::source_location::current()) const {
    Execution* ex = Execution::current();
    if (ex != nullptr) check(ex, /*write=*/false, loc);
    return value_;
  }

  T& write(std::source_location loc = std::source_location::current()) {
    Execution* ex = Execution::current();
    if (ex != nullptr) check(ex, /*write=*/true, loc);
    return value_;
  }

 private:
  struct Site {
    const char* file = "";
    unsigned line = 0;
  };

  void check(Execution* ex, bool write, const std::source_location& loc) const {
    const int tid = ex->self();
    const VectorClock& my = ex->self_vc();
    for (std::size_t u = 0; u < kMaxThreads; ++u) {
      if (static_cast<int>(u) == tid) continue;
      if (writes_.at(u) > my.at(u)) {
        report(ex, write, loc, wsite_[u], u, "write");
      } else if (write && reads_.at(u) > my.at(u)) {
        report(ex, write, loc, rsite_[u], u, "read");
      }
    }
    const auto t = static_cast<std::size_t>(tid);
    if (write) {
      writes_.set(t, my.at(t));
      wsite_[t] = Site{loc.file_name(), loc.line()};
    } else {
      reads_.set(t, my.at(t));
      rsite_[t] = Site{loc.file_name(), loc.line()};
    }
  }

  void report(Execution* ex, bool write, const std::source_location& loc,
              const Site& prior, std::size_t prior_tid,
              const char* prior_kind) const {
    std::ostringstream msg;
    msg << "data race on Shared cell @" << static_cast<const void*>(this)
        << ": T" << ex->self() << " " << (write ? "write" : "read") << " at "
        << loc.file_name() << ":" << loc.line()
        << " has no happens-before edge to T" << prior_tid << " "
        << prior_kind << " at " << prior.file << ":" << prior.line;
    ex->fail(FailureKind::kRace, msg.str());
  }

  T value_;
  // Scheduler-serialized (one running thread); mutable because reads record
  // epochs through const access.
  mutable VectorClock writes_, reads_;
  mutable Site wsite_[kMaxThreads], rsite_[kMaxThreads];
};

}  // namespace autopn::mc
