#include "mc/explore.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>

namespace autopn::mc {

namespace {

/// Two transitions commute iff they touch different primitives or are both
/// non-mutating. Scheduler-internal ops (obj == nullptr: thread start/join)
/// are conservatively dependent — never a pruning basis.
bool independent(const PendingOp& a, const PendingOp& b) {
  if (a.obj == nullptr || b.obj == nullptr) return false;
  if (a.obj != b.obj) return true;
  return !a.write && !b.write;
}

/// One node of the DFS schedule tree: the enabled set observed there, each
/// enabled thread's pending op (for sleep-set independence), the candidate
/// order, and the sleep set that grows as siblings are explored.
struct Frame {
  std::vector<int> enabled;
  std::vector<PendingOp> pending;  // parallel to enabled
  std::vector<int> order;          // candidate tids, preference order
  std::size_t k = 0;               // current choice: order[k]
  std::set<int> sleep;
  int running_before = kController;
  int preemptions = 0;

  [[nodiscard]] const PendingOp& pending_of(int tid) const {
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      if (enabled[i] == tid) return pending[i];
    }
    static const PendingOp kNone{};
    return kNone;
  }

  /// Cost of switching to `tid` here: 1 when it preempts a still-enabled
  /// previously-running thread (CHESS), else 0.
  [[nodiscard]] int cost(int tid) const {
    if (running_before == kController || tid == running_before) return 0;
    return std::find(enabled.begin(), enabled.end(), running_before) !=
                   enabled.end()
               ? 1
               : 0;
  }
};

class DfsExplorer {
 public:
  explicit DfsExplorer(int preemption_bound) : bound_(preemption_bound) {}

  int choose(Execution& ex, const std::vector<int>& enabled, int step) {
    const auto depth = static_cast<std::size_t>(step);
    if (depth < path_.size()) {
      // Replaying the prefix that leads to this run's divergence point. The
      // model is deterministic, so the recorded choice must still be enabled.
      return path_[depth].order[path_[depth].k];
    }
    Frame f;
    f.enabled = enabled;
    f.pending.reserve(enabled.size());
    for (int tid : enabled) f.pending.push_back(ex.pending(tid));
    if (!path_.empty()) {
      const Frame& parent = path_.back();
      const int prev = parent.order[parent.k];
      f.running_before = prev;
      f.preemptions = parent.preemptions + parent.cost(prev);
      // Sleep inheritance: a sibling explored at the parent stays asleep
      // unless the transition just taken is dependent on its pending op.
      const PendingOp& taken = parent.pending_of(prev);
      for (int s : parent.sleep) {
        if (independent(parent.pending_of(s), taken)) f.sleep.insert(s);
      }
    }
    // Prefer continuing the running thread (costs no preemption), then
    // ascending tid — so the first full execution is the natural sequential
    // one and preemptions are spent late.
    if (std::find(enabled.begin(), enabled.end(), f.running_before) !=
        enabled.end()) {
      f.order.push_back(f.running_before);
    }
    for (int tid : enabled) {
      if (tid != f.running_before) f.order.push_back(tid);
    }
    f.k = 0;
    while (f.k < f.order.size() && !viable(f, f.order[f.k])) ++f.k;
    if (f.k == f.order.size()) f.k = 0;  // all asleep/over-bound: any choice
    path_.push_back(std::move(f));
    return path_.back().order[path_.back().k];
  }

  /// Advances to the next unexplored schedule; false when the tree (within
  /// the preemption bound) is exhausted.
  bool backtrack() {
    while (!path_.empty()) {
      Frame& f = path_.back();
      f.sleep.insert(f.order[f.k]);
      ++f.k;
      while (f.k < f.order.size() && !viable(f, f.order[f.k])) ++f.k;
      if (f.k < f.order.size()) return true;
      path_.pop_back();
    }
    return false;
  }

 private:
  [[nodiscard]] bool viable(const Frame& f, int tid) const {
    if (f.sleep.count(tid) != 0) return false;
    return f.preemptions + f.cost(tid) <= bound_;
  }

  const int bound_;
  std::vector<Frame> path_;
};

}  // namespace

std::vector<int> parse_schedule(const std::string& s) {
  std::vector<int> out;
  std::size_t i = 0;
  while (i < s.size()) {
    std::size_t end = s.find(',', i);
    if (end == std::string::npos) end = s.size();
    const std::string tok = s.substr(i, end - i);
    std::size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size() || v < 0) {
      throw std::invalid_argument{"malformed schedule token: " + tok};
    }
    out.push_back(v);
    i = end + 1;
  }
  if (out.empty()) throw std::invalid_argument{"empty schedule string"};
  return out;
}

void assert_fail(const char* expr, const char* msg, std::source_location loc) {
  std::ostringstream m;
  m << "MC_ASSERT(" << expr << ") failed at " << loc.file_name() << ":"
    << loc.line() << ": " << msg;
  Execution* ex = Execution::current();
  if (ex != nullptr) {
    ex->fail(FailureKind::kAssert, m.str());
    ex->abort_self();
  }
  std::fprintf(stderr, "%s\n", m.str().c_str());
  std::abort();
}

std::string Result::summary() const {
  std::ostringstream out;
  out << schedules << " schedule(s) explored";
  if (budget_exhausted) out << " (budget exhausted before full enumeration)";
  out << ", " << failures.size() << " failure(s)\n";
  for (const Failure& f : failures) {
    out << "[" << failure_kind_name(f.kind) << "] " << f.message << "\n";
    out << "  replay with: --replay=" << f.schedule << "\n";
    out << "  interleaving:\n" << f.trace;
  }
  return out.str();
}

Result explore(const Options& options, const std::function<void()>& body) {
  Result result;

  auto run_one = [&](const Execution::Chooser& chooser) {
    Execution ex(chooser, options.max_steps);
    ex.run(body);
    ++result.schedules;
    const bool failed = !ex.failures().empty();
    for (const Failure& f : ex.failures()) {
      if (result.failures.size() < 32) result.failures.push_back(f);
    }
    return failed;
  };

  switch (options.mode) {
    case Mode::kReplay: {
      run_one([&](Execution&, const std::vector<int>& enabled, int step) {
        const auto i = static_cast<std::size_t>(step);
        // Past the recorded suffix (or deviated): lowest enabled id, so
        // truncated schedule strings still complete deterministically.
        if (i >= options.replay.size()) return enabled[0];
        const int want = options.replay[i];
        return std::find(enabled.begin(), enabled.end(), want) != enabled.end()
                   ? want
                   : enabled[0];
      });
      return result;
    }

    case Mode::kPct: {
      std::mt19937_64 rng(options.seed);
      for (std::uint64_t iter = 0; iter < options.max_schedules; ++iter) {
        // Fresh random priorities + change points per execution (PCT d-1).
        std::array<int, kMaxThreads> pri{};
        for (std::size_t i = 0; i < kMaxThreads; ++i) {
          pri[i] = static_cast<int>(kMaxThreads - i) * 100 +
                   static_cast<int>(rng() % 100);
        }
        std::shuffle(pri.begin(), pri.end(), rng);
        std::set<int> change_steps;
        for (int i = 0; i < options.pct_change_points; ++i) {
          change_steps.insert(
              static_cast<int>(rng() % static_cast<std::uint64_t>(
                                           std::max(1, options.max_steps / 4))));
        }
        int low = 0;  // descending: each change point goes below all others
        const bool failed = run_one(
            [&](Execution&, const std::vector<int>& enabled, int step) {
              auto best = [&] {
                int b = enabled[0];
                for (int tid : enabled) {
                  if (pri[static_cast<std::size_t>(tid)] >
                      pri[static_cast<std::size_t>(b)]) {
                    b = tid;
                  }
                }
                return b;
              };
              int c = best();
              if (change_steps.count(step) != 0) {
                pri[static_cast<std::size_t>(c)] = --low;
                c = best();
              }
              return c;
            });
        if (failed && options.stop_on_failure) break;
      }
      return result;
    }

    case Mode::kExhaustive: {
      DfsExplorer dfs(options.preemption_bound);
      for (;;) {
        if (result.schedules >= options.max_schedules) {
          result.budget_exhausted = true;
          break;
        }
        const bool failed =
            run_one([&](Execution& ex, const std::vector<int>& enabled,
                        int step) { return dfs.choose(ex, enabled, step); });
        if (failed && options.stop_on_failure) break;
        if (!dfs.backtrack()) break;
      }
      return result;
    }
  }
  return result;
}

}  // namespace autopn::mc
