#pragma once
// Schedule exploration strategies over the cooperative scheduler
// (src/mc/scheduler.hpp); the model checker's front door. Three modes:
//
//  * kExhaustive — depth-first enumeration of the schedule tree with two
//    prunings: sleep sets (DPOR-lite: a sibling already explored stays
//    asleep in the child unless the chosen transition is dependent on its
//    pending op) and CHESS-style preemption bounding (a context switch away
//    from a still-enabled thread costs one preemption; schedules over the
//    bound are skipped). Within the bound the enumeration is exhaustive, so
//    "0 failures" is a proof over that schedule class, not a sample.
//  * kPct — probabilistic concurrency testing: random thread priorities with
//    depth-1 random priority-change points per execution; a cheap randomized
//    sweep for harnesses too big to exhaust.
//  * kReplay — runs exactly one schedule, parsed from a failure's
//    `schedule` string (the --replay workflow of docs/MODEL_CHECKING.md).
//
// Usage (harness shape; see tests/mc_*.cpp):
//
//   mc::Options opts;
//   mc::Result r = mc::explore(opts, [] {
//     auto state = std::make_shared<State>();   // fresh per schedule!
//     mc::Thread t1{[state] { ... }};
//     mc::Thread t2{[state] { ... }};
//     t1.join(); t2.join();
//     MC_ASSERT(state->invariant(), "invariant");
//   });
//   if (!r.failures.empty()) { print r.summary(); exit(1); }

#include <cstdint>
#include <functional>
#include <source_location>
#include <string>
#include <vector>

#include "mc/scheduler.hpp"

namespace autopn::mc {

enum class Mode : std::uint8_t { kExhaustive, kPct, kReplay };

struct Options {
  Mode mode = Mode::kExhaustive;
  /// CHESS preemption bound for kExhaustive. Empirically nearly all
  /// concurrency bugs need <= 2 preemptions; raising it explodes the tree.
  int preemption_bound = 2;
  /// Hard cap on executions (all modes). kExhaustive sets
  /// Result::budget_exhausted when the tree was NOT fully enumerated within
  /// the cap — treat that as "sampled", not "proved".
  std::uint64_t max_schedules = 200000;
  /// Per-execution step cap (livelock guard).
  int max_steps = 10000;
  /// kPct: number of priority-change points per execution (the 'd' in PCT;
  /// bug depth d needs d-1 change points).
  int pct_change_points = 2;
  std::uint64_t seed = 1;
  /// kReplay: the exact schedule to run (parse_schedule of a Failure's
  /// `schedule` field).
  std::vector<int> replay;
  /// Stop exploring after the first failing schedule (default: a failure is
  /// terminal; flip off to count distinct failing schedules).
  bool stop_on_failure = true;
};

struct Result {
  std::uint64_t schedules = 0;
  /// kExhaustive only: the tree was larger than max_schedules.
  bool budget_exhausted = false;
  std::vector<Failure> failures;

  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  /// Human-readable report: schedule count, then each failure with its kind,
  /// message, replay schedule, and interleaving trace.
  [[nodiscard]] std::string summary() const;
};

/// Explores `body` under the option'd strategy. The body runs once per
/// schedule as model thread 0; it must create all shared state fresh inside
/// the body (state persisting across executions carries stale clocks).
Result explore(const Options& options, const std::function<void()>& body);

/// Parses a Failure::schedule string ("0,1,1,0") back into choice list form
/// for Options::replay. Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<int> parse_schedule(const std::string& s);

/// Records an assertion failure against the current execution (with trace
/// and replay schedule) and unwinds the thread; outside an execution, prints
/// and aborts the process.
void assert_fail(const char* expr, const char* msg, std::source_location loc);

}  // namespace autopn::mc

/// Model-checked invariant check for harness bodies. On failure the checker
/// reports the failing schedule exactly like a race.
#define MC_ASSERT(cond, msg)                                            \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::autopn::mc::assert_fail(#cond, (msg),                           \
                                std::source_location::current());       \
    }                                                                   \
  } while (0)
