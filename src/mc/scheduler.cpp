#include "mc/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <sstream>

namespace autopn::mc {

namespace {
// Model-thread identity. tl_exec doubles as the "am I under the checker"
// test used by every primitive; tl_unwinding suppresses scheduling points
// while an AbortExecution propagates (destructors of lock guards etc. still
// execute their raw effect, serialized because teardown grants one thread at
// a time).
thread_local Execution* tl_exec = nullptr;
thread_local int tl_tid = kController;
thread_local bool tl_unwinding = false;
}  // namespace

const char* failure_kind_name(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kRace: return "data-race";
    case FailureKind::kDeadlock: return "deadlock";
    case FailureKind::kAssert: return "assertion";
    case FailureKind::kStepCap: return "step-cap";
    case FailureKind::kException: return "exception";
  }
  return "unknown";
}

Execution::Execution(Chooser chooser, int max_steps)
    : chooser_(std::move(chooser)), max_steps_(max_steps) {}

Execution::~Execution() {
  for (std::size_t i = 0; i < nthreads_; ++i) {
    if (recs_[i].worker.joinable()) recs_[i].worker.join();
  }
}

Execution* Execution::current() noexcept { return tl_exec; }

int Execution::self() const noexcept { return tl_tid; }

int Execution::spawn(std::function<void()> fn) {
  std::unique_lock lk{m_};
  const int tid = static_cast<int>(nthreads_);
  if (tid >= static_cast<int>(kMaxThreads)) {
    lk.unlock();
    fail(FailureKind::kException,
         "spawned more than kMaxThreads model threads");
    throw AbortExecution{};
  }
  ++nthreads_;
  Rec& rec = recs_[static_cast<std::size_t>(tid)];
  if (tl_tid != kController) {
    // HB edge: everything the parent did before the spawn is visible to the
    // child from its first step.
    rec.vc = recs_[static_cast<std::size_t>(tl_tid)].vc;
  }
  rec.vc.tick(static_cast<std::size_t>(tid));
  rec.worker = std::thread(
      [this, tid, f = std::move(fn)]() mutable { worker_main(tid, std::move(f)); });
  return tid;
}

void Execution::worker_main(int tid, std::function<void()> fn) {
  tl_exec = this;
  tl_tid = tid;
  tl_unwinding = false;
  Rec& rec = recs_[static_cast<std::size_t>(tid)];
  bool run_body = true;
  {
    std::unique_lock lk{m_};
    rec.pending = PendingOp{nullptr, false, "thread.start"};
    rec.parked = true;
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == tid; });
    rec.parked = false;
    if (rec.abort_grant) {
      run_body = false;  // torn down before it ever ran
    } else {
      trace_.push_back({step_, tid, rec.pending.what, nullptr});
      rec.vc.tick(static_cast<std::size_t>(tid));
    }
  }
  if (run_body) {
    try {
      fn();
    } catch (const AbortExecution&) {
      tl_unwinding = false;
    } catch (const std::exception& e) {
      fail(FailureKind::kException,
           std::string{"exception escaped model thread: "} + e.what());
    } catch (...) {
      fail(FailureKind::kException,
           "non-std exception escaped model thread");
    }
  }
  std::unique_lock lk{m_};
  rec.state = State::kFinished;
  rec.parked = true;  // settled for good
  active_ = kController;
  // Joiners key on the rec address (stable: recs_ is a fixed array).
  for (std::size_t i = 0; i < nthreads_; ++i) {
    Rec& other = recs_[i];
    if (other.state == State::kBlocked && other.block_kind == BlockKind::kJoin &&
        other.block_obj == &rec) {
      other.state = State::kRunnable;
      other.block_kind = BlockKind::kNone;
      other.block_obj = nullptr;
    }
  }
  cv_.notify_all();
  tl_exec = nullptr;
  tl_tid = kController;
}

void Execution::yield_op(PendingOp op) {
  if (tl_unwinding) return;  // teardown: perform ops raw, no scheduling
  const int tid = tl_tid;
  Rec& rec = recs_[static_cast<std::size_t>(tid)];
  std::unique_lock lk{m_};
  rec.pending = op;
  rec.parked = true;
  active_ = kController;
  cv_.notify_all();
  cv_.wait(lk, [&] { return active_ == tid; });
  rec.parked = false;
  if (rec.abort_grant) {
    tl_unwinding = true;
    throw AbortExecution{};
  }
  trace_.push_back({step_, tid, op.what, op.obj});
  rec.vc.tick(static_cast<std::size_t>(tid));
}

bool Execution::block_self(BlockKind kind, const void* obj) {
  if (tl_unwinding) return false;
  const int tid = tl_tid;
  Rec& rec = recs_[static_cast<std::size_t>(tid)];
  std::unique_lock lk{m_};
  rec.state = State::kBlocked;
  rec.block_kind = kind;
  rec.block_obj = obj;
  rec.parked = true;
  active_ = kController;
  cv_.notify_all();
  cv_.wait(lk, [&] { return active_ == tid; });
  rec.parked = false;
  if (rec.abort_grant) {
    tl_unwinding = true;
    throw AbortExecution{};
  }
  trace_.push_back({step_, tid, "resume", obj});
  rec.vc.tick(static_cast<std::size_t>(tid));
  return true;
}

void Execution::unblock(BlockKind kind, const void* obj, bool all) {
  // Caller is the running thread (or teardown); state is scheduler-owned, so
  // mutate under the baton mutex.
  std::unique_lock lk{m_};
  for (std::size_t i = 0; i < nthreads_; ++i) {
    Rec& rec = recs_[i];
    if (rec.state == State::kBlocked && rec.block_kind == kind &&
        rec.block_obj == obj) {
      rec.state = State::kRunnable;
      rec.block_kind = BlockKind::kNone;
      rec.block_obj = nullptr;
      rec.pending = PendingOp{obj, true, "wakeup"};
      if (!all) return;
    }
  }
}

void Execution::join_thread(int tid) {
  yield_op(PendingOp{&recs_[static_cast<std::size_t>(tid)], false, "thread.join"});
  while (!thread_finished(tid)) {
    if (!block_self(BlockKind::kJoin, &recs_[static_cast<std::size_t>(tid)])) {
      return;
    }
  }
  if (tl_tid != kController) {
    std::unique_lock lk{m_};
    recs_[static_cast<std::size_t>(tl_tid)].vc.join(
        recs_[static_cast<std::size_t>(tid)].vc);
  }
}

bool Execution::thread_finished(int tid) const {
  std::unique_lock lk{m_};
  return recs_[static_cast<std::size_t>(tid)].state == State::kFinished;
}

VectorClock& Execution::self_vc() {
  return recs_[static_cast<std::size_t>(tl_tid)].vc;
}

const PendingOp& Execution::pending(int tid) const {
  return recs_[static_cast<std::size_t>(tid)].pending;
}

void Execution::abort_self() {
  tl_unwinding = true;
  throw AbortExecution{};
}

void Execution::fail(FailureKind kind, std::string message) {
  std::unique_lock lk{m_};
  if (failures_.size() < 16) {
    failures_.push_back(Failure{kind, std::move(message), schedule_string(),
                                trace_string()});
  }
  if (kind != FailureKind::kRace) abort_requested_ = true;
}

std::string Execution::schedule_string() const {
  std::string out;
  for (std::size_t i = 0; i < choices_.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(choices_[i]);
  }
  return out;
}

std::string Execution::trace_string() const {
  std::ostringstream out;
  for (const TraceEvent& ev : trace_) {
    out << "  #" << ev.step << " T" << ev.tid << " " << ev.what;
    if (ev.obj != nullptr) out << " @" << ev.obj;
    out << "\n";
  }
  return out.str();
}

std::vector<int> Execution::enabled_threads() const {
  std::vector<int> enabled;
  for (std::size_t i = 0; i < nthreads_; ++i) {
    if (recs_[i].state == State::kRunnable) enabled.push_back(static_cast<int>(i));
  }
  return enabled;
}

void Execution::await_settled(std::unique_lock<std::mutex>& lk) {
  cv_.wait(lk, [&] {
    if (active_ != kController) return false;
    for (std::size_t i = 0; i < nthreads_; ++i) {
      if (!recs_[i].parked && recs_[i].state != State::kFinished) return false;
    }
    return true;
  });
}

void Execution::grant(std::unique_lock<std::mutex>& lk, int tid,
                      bool abort_grant) {
  Rec& rec = recs_[static_cast<std::size_t>(tid)];
  rec.abort_grant = abort_grant;
  active_ = tid;
  cv_.notify_all();
  await_settled(lk);
}

void Execution::run(std::function<void()> body) {
  spawn(std::move(body));
  std::unique_lock lk{m_};
  for (;;) {
    await_settled(lk);
    if (abort_requested_) aborting_ = true;
    bool all_finished = true;
    for (std::size_t i = 0; i < nthreads_; ++i) {
      if (recs_[i].state != State::kFinished) all_finished = false;
    }
    if (all_finished) break;
    if (aborting_) {
      // Tear down one thread at a time (keeps raw teardown ops serialized):
      // grant any unfinished thread an abort token; blocked or not, it wakes,
      // throws AbortExecution, unwinds, and finishes.
      for (std::size_t i = 0; i < nthreads_; ++i) {
        if (recs_[i].state != State::kFinished) {
          grant(lk, static_cast<int>(i), /*abort_grant=*/true);
          break;
        }
      }
      continue;
    }
    std::vector<int> enabled = enabled_threads();
    if (enabled.empty()) {
      std::ostringstream msg;
      msg << "deadlock: every live thread is blocked —";
      for (std::size_t i = 0; i < nthreads_; ++i) {
        if (recs_[i].state == State::kBlocked) {
          msg << " T" << i << "("
              << (recs_[i].block_kind == BlockKind::kMutex     ? "mutex"
                  : recs_[i].block_kind == BlockKind::kCondVar ? "condvar"
                                                               : "join")
              << " @" << recs_[i].block_obj << ")";
        }
      }
      deadlocked_ = true;
      lk.unlock();
      fail(FailureKind::kDeadlock, msg.str());
      lk.lock();
      aborting_ = true;
      continue;
    }
    if (step_ >= max_steps_) {
      lk.unlock();
      fail(FailureKind::kStepCap,
           "execution exceeded max_steps (possible livelock; raise "
           "Options::max_steps if the harness is legitimately long)");
      lk.lock();
      aborting_ = true;
      continue;
    }
    int choice;
    {
      // The chooser may inspect pending() freely: every thread is parked.
      lk.unlock();
      choice = chooser_(*this, enabled, step_);
      lk.lock();
    }
    if (std::find(enabled.begin(), enabled.end(), choice) == enabled.end()) {
      lk.unlock();
      fail(FailureKind::kException,
           "chooser returned a non-enabled thread id " + std::to_string(choice));
      lk.lock();
      aborting_ = true;
      continue;
    }
    choices_.push_back(choice);
    ++step_;
    grant(lk, choice, /*abort_grant=*/false);
  }
}

Thread::Thread(std::function<void()> fn)
    : ex_(Execution::current()), tid_(-1) {
  if (ex_ == nullptr) {
    std::fprintf(stderr,
                 "mc::Thread constructed outside a model execution\n");
    std::terminate();
  }
  tid_ = ex_->spawn(std::move(fn));
}

void Thread::join() {
  if (joined_) return;
  joined_ = true;
  ex_->join_thread(tid_);
}

Thread::~Thread() { join(); }

}  // namespace autopn::mc
