#pragma once
// Cooperative execution engine of the autopn model checker (AUTOPN_MC; see
// docs/MODEL_CHECKING.md). One Execution runs a test body once under ONE
// schedule: every model thread is a real std::thread, but a baton handshake
// guarantees exactly one runs at a time, and every seam operation
// (sync::Atomic / sync::Mutex / sync::CondVar via src/mc/model_sync.hpp) is a
// scheduling point where an externally supplied chooser — the exploration
// strategy in src/mc/explore.cpp — decides which enabled thread performs its
// pending operation next. The engine also owns the per-thread vector clocks
// of the happens-before race detector and all failure reporting (races,
// deadlocks, assertion failures, step-cap overruns), each failure carrying
// the full interleaving trace plus a replayable schedule string.
//
// Layering: src/mc depends only on the standard library — never on src/util
// or anything above it — because util/sync.hpp includes this subsystem when
// AUTOPN_MC is on.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mc/vclock.hpp"
#include "util/thread_annotations.hpp"

namespace autopn::mc {

inline constexpr int kController = -1;

/// The operation a parked thread will perform once granted — the unit the
/// exploration strategy reasons about (sleep-set independence keys on
/// (obj, write)).
struct PendingOp {
  const void* obj = nullptr;  ///< primitive identity; nullptr = scheduler-internal
  bool write = false;         ///< mutating op (store/rmw/lock/unlock/notify)
  const char* what = "";      ///< static label for traces, e.g. "atomic.store"
};

enum class BlockKind : std::uint8_t { kNone, kMutex, kCondVar, kJoin };

/// Thrown at a scheduling point when the execution is being torn down
/// (deadlock, assertion failure, step cap). Worker wrappers catch it; user
/// code must let it propagate (harness bodies that swallow `...` would hang
/// the teardown).
struct AbortExecution {};

enum class FailureKind : std::uint8_t {
  kRace,      ///< Shared<T> access without a happens-before edge
  kDeadlock,  ///< every live thread blocked
  kAssert,    ///< MC_ASSERT failed
  kStepCap,   ///< execution exceeded Options::max_steps (livelock guard)
  kException, ///< an exception escaped a model thread
};

[[nodiscard]] const char* failure_kind_name(FailureKind kind) noexcept;

struct Failure {
  FailureKind kind;
  std::string message;
  /// Comma-separated chosen thread ids, one per scheduling point — feed to
  /// --replay= (explore.hpp) to deterministically re-run this interleaving.
  std::string schedule;
  /// Human-readable step-by-step interleaving up to the failure.
  std::string trace;
};

class Execution {
 public:
  /// Picks the next thread at each scheduling point. `enabled` is sorted and
  /// non-empty; the return value must be one of its elements. `step` counts
  /// scheduling decisions from 0. Query pending(tid) for sleep-set reasoning.
  using Chooser =
      std::function<int(Execution&, const std::vector<int>& enabled, int step)>;

  Execution(Chooser chooser, int max_steps);
  ~Execution();

  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;

  /// The execution driving the calling thread, or nullptr when the caller is
  /// not a model thread (then seam ops execute raw — setup/teardown paths).
  [[nodiscard]] static Execution* current() noexcept;

  /// Runs `body` as model thread 0 and drives scheduling until every thread
  /// finishes (or the execution aborts). Call once.
  void run(std::function<void()> body);

  // ---- model-thread API (called from primitives in model_sync.hpp) --------

  /// Id of the calling model thread.
  [[nodiscard]] int self() const noexcept;
  /// Scheduling point: parks until the chooser grants this thread, then
  /// records `op` in the trace. Returns immediately (performing the op raw)
  /// while the thread is unwinding from an abort.
  void yield_op(PendingOp op);
  /// Parks as blocked on (kind, obj) until unblocked AND granted. Returns
  /// false when the execution is tearing down (caller must bail out of its
  /// wait loop rather than retry).
  bool block_self(BlockKind kind, const void* obj);
  /// Marks threads blocked on (kind, obj) runnable — lowest tid only when
  /// `all` is false (deterministic stand-in for notify_one's free choice).
  void unblock(BlockKind kind, const void* obj, bool all);

  /// Registers a new model thread (HB edge parent→child). Fails the
  /// execution if more than kMaxThreads are spawned.
  int spawn(std::function<void()> fn);
  /// Blocks until `tid` finishes, then joins its clock (HB edge child→parent).
  void join_thread(int tid);
  [[nodiscard]] bool thread_finished(int tid) const;

  [[nodiscard]] VectorClock& self_vc();
  [[nodiscard]] bool tearing_down() const noexcept { return aborting_; }

  /// Records a failure with the trace-so-far and schedule. Races keep the
  /// execution running (the model state stays consistent); every other kind
  /// also triggers teardown.
  void fail(FailureKind kind, std::string message);

  /// Unwinds the calling model thread out of the execution (after fail());
  /// seam ops hit during the unwind execute raw. [[noreturn]].
  [[noreturn]] void abort_self();

  // ---- chooser / explorer API --------------------------------------------

  [[nodiscard]] const PendingOp& pending(int tid) const;
  [[nodiscard]] const std::vector<int>& choices() const noexcept {
    return choices_;
  }
  [[nodiscard]] const std::vector<Failure>& failures() const noexcept {
    return failures_;
  }
  [[nodiscard]] bool deadlocked() const noexcept { return deadlocked_; }

  [[nodiscard]] std::string schedule_string() const;
  [[nodiscard]] std::string trace_string() const;

 private:
  enum class State : std::uint8_t { kRunnable, kBlocked, kFinished };

  struct Rec {
    std::thread worker;
    State state = State::kRunnable;
    BlockKind block_kind = BlockKind::kNone;
    const void* block_obj = nullptr;
    PendingOp pending{};
    bool parked = false;  ///< sitting at the baton, resumable by a grant
    bool abort_grant = false;
    VectorClock vc;
  };

  struct TraceEvent {
    int step;
    int tid;
    const char* what;
    const void* obj;
  };

  void worker_main(int tid, std::function<void()> fn);
  /// Waits until every live thread is parked and control is back here.
  void await_settled(std::unique_lock<std::mutex>& lk);
  void grant(std::unique_lock<std::mutex>& lk, int tid, bool abort_grant);
  [[nodiscard]] std::vector<int> enabled_threads() const;

  Chooser chooser_;
  const int max_steps_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  int active_ AUTOPN_GUARDED_BY(m_) = kController;
  bool aborting_ AUTOPN_GUARDED_BY(m_) = false;
  bool abort_requested_ AUTOPN_GUARDED_BY(m_) = false;
  bool deadlocked_ AUTOPN_GUARDED_BY(m_) = false;
  int step_ AUTOPN_GUARDED_BY(m_) = 0;

  // Fixed-capacity thread table: element addresses are stable (join/ unblock
  // key on them) and workers index their own slot without reallocation races.
  std::array<Rec, kMaxThreads> recs_ AUTOPN_GUARDED_BY(m_);
  std::size_t nthreads_ AUTOPN_GUARDED_BY(m_) = 0;
  std::vector<int> choices_ AUTOPN_GUARDED_BY(m_);
  std::vector<TraceEvent> trace_ AUTOPN_GUARDED_BY(m_);
  std::vector<Failure> failures_ AUTOPN_GUARDED_BY(m_);
};

/// Model thread handle — the only way harness code may create concurrency
/// under the checker. Join before destruction (the destructor joins as a
/// convenience, so scoped teardown during aborts stays safe).
class Thread {
 public:
  explicit Thread(std::function<void()> fn);
  ~Thread();

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void join();

 private:
  Execution* ex_;
  int tid_;
  bool joined_ = false;
};

}  // namespace autopn::mc
