#pragma once
// Fixed-width vector clocks for the model checker's happens-before engine
// (docs/MODEL_CHECKING.md). Clocks are indexed by model-thread id; the
// checker caps concurrency at kMaxThreads per execution, which keeps every
// clock a flat array (no allocation on the hot yield path) and makes joins
// and ordering checks branch-free loops.

#include <array>
#include <cstddef>
#include <cstdint>

namespace autopn::mc {

/// Hard cap on simultaneously-live model threads in one execution. Harnesses
/// that need more are modeling the wrong granularity — exhaustive exploration
/// is exponential in threads, so realistic harnesses use 2-4.
inline constexpr std::size_t kMaxThreads = 8;

class VectorClock {
 public:
  constexpr VectorClock() : c_{} {}

  [[nodiscard]] std::uint64_t at(std::size_t tid) const { return c_[tid]; }
  void tick(std::size_t tid) { ++c_[tid]; }
  void set(std::size_t tid, std::uint64_t v) { c_[tid] = v; }

  /// Pointwise max — the HB edge primitive ("everything `other` has seen, I
  /// have now seen too").
  void join(const VectorClock& other) {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      if (other.c_[i] > c_[i]) c_[i] = other.c_[i];
    }
  }

  /// this <= other pointwise: every event this clock knows about
  /// happens-before (or is) the other clock's frontier.
  [[nodiscard]] bool leq(const VectorClock& other) const {
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      if (c_[i] > other.c_[i]) return false;
    }
    return true;
  }

  void clear() { c_.fill(0); }

 private:
  std::array<std::uint64_t, kMaxThreads> c_;
};

}  // namespace autopn::mc
