#include "sim/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace autopn::sim {

SurfaceTrace::SurfaceTrace(std::string workload, int cores)
    : workload_(std::move(workload)), cores_(cores) {}

SurfaceTrace SurfaceTrace::record(const SurfaceModel& model,
                                  const opt::ConfigSpace& space, std::size_t runs,
                                  double window_seconds, std::uint64_t seed) {
  SurfaceTrace trace{model.params().name, space.cores()};
  util::Rng rng{seed};
  for (const opt::Config& cfg : space.all()) {
    util::RunningStats stats;
    for (std::size_t r = 0; r < runs; ++r) {
      stats.add(model.sample(cfg, window_seconds, rng));
    }
    trace.set(cfg, Entry{stats.mean(), stats.stddev()});
  }
  return trace;
}

void SurfaceTrace::set(const opt::Config& config, Entry entry) {
  entries_.insert_or_assign(config, entry);
}

const SurfaceTrace::Entry& SurfaceTrace::at(const opt::Config& config) const {
  auto it = entries_.find(config);
  if (it == entries_.end()) {
    throw std::out_of_range{"no trace entry for " + config.to_string()};
  }
  return it->second;
}

bool SurfaceTrace::contains(const opt::Config& config) const {
  return entries_.contains(config);
}

double SurfaceTrace::sample(const opt::Config& config, util::Rng& rng) const {
  const Entry& e = at(config);
  return std::max(1e-9, rng.gaussian(e.mean, e.stddev));
}

SurfaceModel::Optimum SurfaceTrace::optimum() const {
  SurfaceModel::Optimum best;
  for (const auto& [cfg, entry] : entries_) {
    if (entry.mean > best.throughput) {
      best.throughput = entry.mean;
      best.config = cfg;
    }
  }
  return best;
}

double SurfaceTrace::distance_from_optimum(const opt::Config& config) const {
  const auto best = optimum();
  return (best.throughput - mean(config)) / best.throughput;
}

void SurfaceTrace::save(std::ostream& out) const {
  out.precision(17);  // lossless double round-trip
  out << "autopn-trace v1\n";
  out << "workload " << workload_ << '\n';
  out << "cores " << cores_ << '\n';
  out << "entries " << entries_.size() << '\n';
  // Deterministic order for diff-friendliness.
  std::vector<std::pair<opt::Config, Entry>> sorted(entries_.begin(), entries_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.first.t != b.first.t ? a.first.t < b.first.t : a.first.c < b.first.c;
  });
  for (const auto& [cfg, entry] : sorted) {
    out << cfg.t << ' ' << cfg.c << ' ' << entry.mean << ' ' << entry.stddev << '\n';
  }
}

SurfaceTrace SurfaceTrace::load(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "autopn-trace v1") {
    throw std::runtime_error{"bad trace header"};
  }
  std::string keyword;
  std::string workload;
  int cores = 0;
  std::size_t count = 0;
  in >> keyword >> workload;
  if (keyword != "workload") throw std::runtime_error{"expected 'workload'"};
  in >> keyword >> cores;
  if (keyword != "cores") throw std::runtime_error{"expected 'cores'"};
  in >> keyword >> count;
  if (keyword != "entries") throw std::runtime_error{"expected 'entries'"};
  SurfaceTrace trace{workload, cores};
  for (std::size_t i = 0; i < count; ++i) {
    opt::Config cfg;
    Entry entry;
    if (!(in >> cfg.t >> cfg.c >> entry.mean >> entry.stddev)) {
      throw std::runtime_error{"truncated trace"};
    }
    trace.set(cfg, entry);
  }
  return trace;
}

}  // namespace autopn::sim
