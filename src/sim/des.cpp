#include "sim/des.hpp"

#include <algorithm>
#include <cmath>

#include "sim/workload.hpp"

namespace autopn::sim {

DesParams des_from_workload(const WorkloadParams& params, int cores) {
  DesParams des;
  des.cores = cores;
  des.base_work = params.base_work;
  des.parallel_fraction = params.parallel_fraction;
  des.child_speedup_exponent = params.child_speedup_exponent;
  des.spawn_overhead = params.spawn_overhead;
  // Contention mapping: the analytical model's top_conflict coefficient k
  // makes a pair of concurrent base-length transactions conflict with
  // probability ~ 1 - e^-k. In the DES, two transactions conflict when one
  // writes a granule the other read. With uniform access,
  //   P(pair conflict) ~ 1 - (1 - W/G)^R ~ R*W/G.
  // Fix R and W at workload-plausible sizes and solve for G.
  des.reads_per_tx = 64;
  des.writes_per_tx = 8;
  const double pair_conflict = 1.0 - std::exp(-params.top_conflict);
  const double rw = static_cast<double>(des.reads_per_tx * des.writes_per_tx);
  des.data_granules = static_cast<std::size_t>(
      std::clamp(rw / std::max(1e-6, pair_conflict), 64.0, 5e7));
  des.sibling_conflict_prob = 1.0 - std::exp(-params.sibling_conflict);
  des.saturation = params.saturation;
  return des;
}

DesSimulator::DesSimulator(DesParams params, opt::Config config, std::uint64_t seed)
    : params_(params),
      config_(config),
      rng_(seed),
      granule_version_(params.data_granules, 0) {
  slots_.resize(static_cast<std::size_t>(std::max(1, config.t)));
  for (Slot& slot : slots_) start_attempt(slot, 0.0);
}

void DesSimulator::reconfigure(opt::Config config) {
  config_ = config;
  const auto target = static_cast<std::size_t>(std::max(1, config.t));
  if (target < slots_.size()) {
    // Drain: drop the slots with the latest completions (they "finish and
    // are not re-admitted"); in-flight earliest ones continue.
    std::sort(slots_.begin(), slots_.end(), [](const Slot& a, const Slot& b) {
      return a.completion_time < b.completion_time;
    });
    slots_.resize(target);
  } else {
    while (slots_.size() < target) {
      Slot slot;
      start_attempt(slot, now_);
      slots_.push_back(std::move(slot));
    }
  }
}

void DesSimulator::start_attempt(Slot& slot, double start) {
  const int c = std::max(1, config_.c);

  // Service time: serial part + slowest child chunk (+ sibling retries) +
  // spawn overheads, with multiplicative jitter.
  const double jitter =
      std::max(0.1, 1.0 + params_.work_jitter * rng_.gaussian());
  double service = 0.0;
  std::uint64_t sibling_retries = 0;
  if (c <= 1) {
    service = params_.base_work * jitter;
  } else {
    const double serial = params_.base_work * (1.0 - params_.parallel_fraction);
    const double chunk = params_.base_work * params_.parallel_fraction /
                         std::pow(c, params_.child_speedup_exponent);
    // Sample sibling conflicts: each of the c-1 sibling pairs involving the
    // slowest child may force one extra chunk execution.
    double child_phase = chunk;
    for (int sibling = 1; sibling < c; ++sibling) {
      if (rng_.bernoulli(params_.sibling_conflict_prob)) {
        child_phase += chunk;
        ++sibling_retries;
      }
    }
    service =
        (serial + child_phase) * jitter + params_.spawn_overhead * c;
  }
  const double used =
      static_cast<double>(std::max(1, config_.t)) * std::max(1, config_.c);
  service *= 1.0 + params_.saturation * used / static_cast<double>(params_.cores);
  totals_.sibling_retries += sibling_retries;

  // Access sets: uniform over the granule space, with an optional hot set.
  auto draw_granule = [&]() -> std::uint32_t {
    if (params_.hot_fraction > 0.0 && rng_.bernoulli(params_.hot_fraction)) {
      return static_cast<std::uint32_t>(rng_.uniform_index(
          std::min(params_.hot_granules, params_.data_granules)));
    }
    return static_cast<std::uint32_t>(rng_.uniform_index(params_.data_granules));
  };
  slot.reads.clear();
  slot.writes.clear();
  for (std::size_t i = 0; i < params_.reads_per_tx; ++i) {
    slot.reads.push_back(draw_granule());
  }
  for (std::size_t i = 0; i < params_.writes_per_tx; ++i) {
    slot.writes.push_back(draw_granule());
  }

  slot.start_version = global_version_;
  slot.completion_time = start + service;
}

std::size_t DesSimulator::next_slot() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].completion_time < slots_[best].completion_time) best = i;
  }
  return best;
}

bool DesSimulator::step() {
  const std::size_t index = next_slot();
  Slot& slot = slots_[index];
  now_ = slot.completion_time;

  // Timestamp validation: abort if any granule this attempt read (or wants
  // to overwrite) was committed by another transaction since it started.
  bool valid = true;
  for (std::uint32_t granule : slot.reads) {
    if (granule_version_[granule] > slot.start_version) {
      valid = false;
      break;
    }
  }
  if (valid) {
    for (std::uint32_t granule : slot.writes) {
      if (granule_version_[granule] > slot.start_version) {
        valid = false;
        break;
      }
    }
  }

  if (valid) {
    ++global_version_;
    for (std::uint32_t granule : slot.writes) {
      granule_version_[granule] = global_version_;
    }
    ++totals_.commits;
    if (commit_callback_) commit_callback_(now_);
    slot.attempt = 0;
    start_attempt(slot, now_);
    return true;
  }
  ++totals_.aborts;
  ++slot.attempt;  // start_attempt leaves the retry count alone
  const double mean_backoff = params_.backoff_fraction * params_.base_work *
                              std::min<unsigned>(slot.attempt, 8);
  start_attempt(slot, now_ + rng_.exponential(1.0 / mean_backoff));
  return false;
}

DesSimulator::Result DesSimulator::run(double sim_seconds) {
  const double end = now_ + sim_seconds;
  const Result before = totals_;
  const double start = now_;
  while (!slots_.empty() && slots_[next_slot()].completion_time <= end) {
    (void)step();
  }
  now_ = end;
  Result window;
  window.commits = totals_.commits - before.commits;
  window.aborts = totals_.aborts - before.aborts;
  window.sibling_retries = totals_.sibling_retries - before.sibling_retries;
  window.sim_seconds = end - start;
  return window;
}

DesSimulator::Result DesSimulator::run_commits(std::uint64_t commits,
                                               double max_seconds) {
  const Result before = totals_;
  const double start = now_;
  const double deadline = now_ + max_seconds;
  while (totals_.commits - before.commits < commits && !slots_.empty() &&
         slots_[next_slot()].completion_time <= deadline) {
    (void)step();
  }
  Result window;
  window.commits = totals_.commits - before.commits;
  window.aborts = totals_.aborts - before.aborts;
  window.sibling_retries = totals_.sibling_retries - before.sibling_retries;
  window.sim_seconds = now_ - start;
  return window;
}

}  // namespace autopn::sim
