#pragma once
// Virtual-time commit-event streams. The Fig 7 monitoring study (paper
// §VII-D) needs per-commit event semantics — the KPI monitor computes a
// throughput estimate upon *each commit* and decides when the measurement is
// stable — without depending on wall-clock execution. A CommitStream
// generates the commit instants a PN-STM under the given configuration would
// produce:
//
//   * base rate = the surface model's mean throughput;
//   * a warm-up ramp after (re)configuration (caches/queues refilling), the
//     effect that makes too-short static windows inaccurate;
//   * multiplicative AR(1) rate modulation for realistic over-dispersion
//     (measured CVs exceed the Poisson floor).

#include <cstdint>

#include "opt/config_space.hpp"
#include "sim/surface.hpp"
#include "util/rng.hpp"

namespace autopn::sim {

struct StreamParams {
  /// AR(1) persistence of the rate-modulation factor.
  double modulation_rho = 0.8;
  /// Innovation stddev of the modulation factor (stationary rate wobble
  /// sigma/sqrt(1-rho^2) ~ 8%).
  double modulation_sigma = 0.05;
  /// Clamp band of the modulation factor.
  double modulation_min = 0.25;
  double modulation_max = 3.0;
  /// Rate multiplier at the instant of reconfiguration (ramps to 1).
  double warmup_start_fraction = 0.5;
  /// Warm-up also completes after this many commits (caches/queues warm with
  /// accesses, not only with time): the ramp progress is the faster of the
  /// time-based and the commit-based one.
  std::size_t warmup_commits = 40;
};

class CommitStream {
 public:
  /// Starts a stream at absolute virtual time `start_time` for a workload
  /// running under `config`.
  CommitStream(const SurfaceModel& model, const opt::Config& config,
               std::uint64_t seed, double start_time = 0.0,
               StreamParams params = {});

  /// Absolute virtual timestamp of the next commit event (strictly
  /// increasing).
  [[nodiscard]] double next_commit();

  /// Current virtual time (timestamp of the last commit, or start time).
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] double mean_rate() const noexcept { return mean_rate_; }

 private:
  double mean_rate_;
  double warmup_seconds_;
  double start_time_;
  StreamParams params_;
  util::Rng rng_;
  double now_;
  double modulation_ = 1.0;
  std::size_t commits_ = 0;
};

}  // namespace autopn::sim
