#include "sim/event_sim.hpp"

#include <algorithm>
#include <cmath>

namespace autopn::sim {

CommitStream::CommitStream(const SurfaceModel& model, const opt::Config& config,
                           std::uint64_t seed, double start_time,
                           StreamParams params)
    : mean_rate_(model.mean_throughput(config)),
      warmup_seconds_(model.params().warmup_seconds),
      start_time_(start_time),
      params_(params),
      rng_(seed),
      now_(start_time) {}

double CommitStream::next_commit() {
  // AR(1) step of the multiplicative rate modulation.
  modulation_ = 1.0 + params_.modulation_rho * (modulation_ - 1.0) +
                params_.modulation_sigma * rng_.gaussian();
  modulation_ = std::clamp(modulation_, params_.modulation_min, params_.modulation_max);

  // Warm-up ramp from warmup_start_fraction to 1; progress advances with
  // elapsed time and with committed transactions, whichever is faster.
  double ramp = 1.0;
  if (warmup_seconds_ > 0.0) {
    const double time_progress =
        std::clamp((now_ - start_time_) / warmup_seconds_, 0.0, 1.0);
    const double commit_progress =
        params_.warmup_commits > 0
            ? std::clamp(static_cast<double>(commits_) /
                             static_cast<double>(params_.warmup_commits),
                         0.0, 1.0)
            : 1.0;
    const double progress = std::max(time_progress, commit_progress);
    ramp = params_.warmup_start_fraction +
           (1.0 - params_.warmup_start_fraction) * progress;
  }
  const double rate = std::max(1e-9, mean_rate_ * modulation_ * ramp);
  now_ += rng_.exponential(rate);
  ++commits_;
  return now_;
}

}  // namespace autopn::sim
