#include "sim/workload.hpp"

#include <stdexcept>

namespace autopn::sim {

std::vector<WorkloadParams> paper_workloads() {
  std::vector<WorkloadParams> out;

  // TPC-C port: mid-sized transactions (new-order/payment mixes) with
  // moderate parallelizable work per transaction and contention that rises
  // with the fraction of cross-warehouse orders. Calibrated so the medium
  // variant peaks near (20, 2) at roughly 9x the sequential throughput
  // (paper Fig 1a).
  auto tpcc = [](const char* name, double top_conflict, double sibling_conflict,
                 double floor_winners) {
    WorkloadParams p;
    p.name = name;
    p.base_work = 5e-4;
    p.parallel_fraction = 0.75;
    p.child_speedup_exponent = 0.85;
    p.spawn_overhead = 1e-5;
    p.batch_overhead = 1e-5;
    p.top_conflict = top_conflict;
    p.sibling_conflict = sibling_conflict;
    p.saturation = 0.30;
    p.measurement_cv = 0.12;
    p.warmup_seconds = 0.05;
    // TPC-C conflicts are warehouse-local, so several non-overlapping
    // winners commit per round even under pressure.
    p.contention_floor = floor_winners;
    return p;
  };
  out.push_back(tpcc("tpcc-low", 0.015, 0.12, 2.0));
  out.push_back(tpcc("tpcc-med", 0.033, 0.22, 2.0));
  out.push_back(tpcc("tpcc-high", 0.120, 0.30, 3.2));

  // Vacation (STAMP): shorter transactions over reservation tables; less
  // parallelizable work per transaction, smaller spawn costs.
  auto vacation = [](const char* name, double top_conflict, double sibling_conflict,
                     double floor_winners) {
    WorkloadParams p;
    p.name = name;
    p.base_work = 2e-4;
    p.parallel_fraction = 0.55;
    p.child_speedup_exponent = 0.72;
    p.spawn_overhead = 6e-6;
    p.batch_overhead = 5e-6;
    p.top_conflict = top_conflict;
    p.sibling_conflict = sibling_conflict;
    p.saturation = 0.20;
    p.measurement_cv = 0.15;
    p.warmup_seconds = 0.03;
    // Reservation tables conflict per-item: partially disjoint write sets.
    p.contention_floor = floor_winners;
    return p;
  };
  out.push_back(vacation("vacation-low", 0.008, 0.10, 2.0));
  out.push_back(vacation("vacation-med", 0.050, 0.18, 2.0));
  out.push_back(vacation("vacation-high", 0.150, 0.28, 2.8));

  // Array microbenchmark: long transactions scanning a large shared array
  // and updating a fraction of it. Scans are highly parallelizable across
  // children on disjoint segments (siblings barely conflict); the update
  // fraction drives top-level contention, since every pair of concurrent
  // scans overlaps. base_work is large, so these are the low-throughput
  // workloads of the Fig 7 monitoring study.
  auto array = [](const char* name, double top_conflict, double sibling_conflict,
                  double update_cv, double floor_winners) {
    WorkloadParams p;
    p.name = name;
    p.base_work = 2e-2;
    p.parallel_fraction = 0.90;
    p.child_speedup_exponent = 0.80;
    p.spawn_overhead = 1e-4;
    p.batch_overhead = 5e-5;
    p.top_conflict = top_conflict;
    p.sibling_conflict = sibling_conflict;
    p.saturation = 0.15;
    p.measurement_cv = update_cv;
    p.warmup_seconds = 0.10;
    // Partial write-set overlap between concurrent scans leaves room for
    // several winners per round at moderate update fractions.
    p.contention_floor = floor_winners;
    return p;
  };
  out.push_back(array("array-0", 0.0, 0.0, 0.10, 1.2));
  out.push_back(array("array-0.01", 0.020, 0.01, 0.12, 1.2));
  out.push_back(array("array-50", 0.350, 0.04, 0.20, 1.90));
  out.push_back(array("array-90", 0.900, 0.06, 0.25, 0.72));

  return out;
}

WorkloadParams workload_by_name(const std::string& name) {
  for (const WorkloadParams& w : paper_workloads()) {
    if (w.name == name) return w;
  }
  throw std::invalid_argument{"unknown workload: " + name};
}

}  // namespace autopn::sim
