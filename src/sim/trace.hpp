#pragma once
// Recorded performance surfaces. The paper's optimizer study (§VII-B) feeds
// the tuners with "off-line collected traces, obtained by evaluating
// exhaustively every configuration in the solution space" (10 runs of >= 10
// minutes each). SurfaceTrace is that artifact: per-configuration mean and
// standard deviation of the measured KPI, recordable from the analytical
// model or from the live STM, serializable to a small text format.

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "opt/config_space.hpp"
#include "sim/surface.hpp"
#include "util/rng.hpp"

namespace autopn::sim {

class SurfaceTrace {
 public:
  struct Entry {
    double mean = 0.0;
    double stddev = 0.0;
  };

  SurfaceTrace(std::string workload, int cores);

  /// Records `runs` noisy measurements of every configuration in `space`
  /// from the analytical model, each over `window_seconds` of simulated
  /// execution — the simulation analogue of the paper's exhaustive offline
  /// measurement campaign.
  [[nodiscard]] static SurfaceTrace record(const SurfaceModel& model,
                                           const opt::ConfigSpace& space,
                                           std::size_t runs, double window_seconds,
                                           std::uint64_t seed);

  void set(const opt::Config& config, Entry entry);
  [[nodiscard]] const Entry& at(const opt::Config& config) const;
  [[nodiscard]] bool contains(const opt::Config& config) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  [[nodiscard]] const std::string& workload() const noexcept { return workload_; }
  [[nodiscard]] int cores() const noexcept { return cores_; }

  /// Mean KPI of a configuration (throws when absent).
  [[nodiscard]] double mean(const opt::Config& config) const { return at(config).mean; }

  /// Draws one measurement: Gaussian around the recorded mean/stddev,
  /// truncated at a small positive floor.
  [[nodiscard]] double sample(const opt::Config& config, util::Rng& rng) const;

  /// Best recorded configuration.
  [[nodiscard]] SurfaceModel::Optimum optimum() const;

  /// Distance-from-optimum fraction of a configuration.
  [[nodiscard]] double distance_from_optimum(const opt::Config& config) const;

  // ---- serialization ----------------------------------------------------
  void save(std::ostream& out) const;
  [[nodiscard]] static SurfaceTrace load(std::istream& in);

 private:
  std::string workload_;
  int cores_;
  std::unordered_map<opt::Config, Entry, opt::ConfigHash> entries_;
};

}  // namespace autopn::sim
