#pragma once
// Analytical PN-TM performance model — the stand-in for the paper's 48-core
// testbed (see DESIGN.md §3). It produces, for every configuration (t, c),
// the mean steady-state throughput of a workload, composed from:
//
//   * Amdahl-style work splitting across c children with sub-linear speedup
//     and per-child spawn overheads;
//   * sibling-level conflicts inflating the child phase via retry expansion
//     (the partial-abort cost of closed nesting);
//   * top-level conflicts whose window of vulnerability grows with the
//     attempt duration — the reason long transactions abort so much (§I) —
//     with retry expansion capped at a starvation limit;
//   * a resource-saturation term coupling utilization to latency.
//
// The same object also provides *noisy sampling* (finite measurement windows
// have a CV that shrinks with the number of commits observed) so optimizer
// studies can be run against realistic feedback.

#include <cstdint>

#include "opt/config_space.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace autopn::sim {

class SurfaceModel {
 public:
  SurfaceModel(WorkloadParams params, int cores);

  [[nodiscard]] const WorkloadParams& params() const noexcept { return params_; }
  [[nodiscard]] int cores() const noexcept { return cores_; }

  /// Mean steady-state throughput (committed top-level transactions per
  /// second) at the given configuration. Deterministic.
  [[nodiscard]] double mean_throughput(const opt::Config& config) const;

  /// Expected duration of one successful top-level transaction (seconds),
  /// including retry expansion.
  [[nodiscard]] double mean_latency(const opt::Config& config) const;

  /// Top-level abort probability per attempt.
  [[nodiscard]] double top_abort_probability(const opt::Config& config) const;

  /// Sibling abort probability per child attempt.
  [[nodiscard]] double sibling_abort_probability(const opt::Config& config) const;

  /// Best configuration and its throughput over a space.
  struct Optimum {
    opt::Config config;
    double throughput = 0.0;
  };
  [[nodiscard]] Optimum optimum(const opt::ConfigSpace& space) const;

  /// Distance from optimum of a configuration, as a fraction in [0, 1):
  /// (f_opt - f_cfg) / f_opt.
  [[nodiscard]] double distance_from_optimum(const opt::ConfigSpace& space,
                                             const opt::Config& config) const;

  /// One noisy measurement over a window observing approximately
  /// `window_seconds` of steady-state execution: relative noise with
  /// CV = measurement_cv / sqrt(max(1, commits_in_window)).
  [[nodiscard]] double sample(const opt::Config& config, double window_seconds,
                              util::Rng& rng) const;

  /// Retry-expansion cap modelling starvation (attempts are truncated here;
  /// beyond it a configuration is effectively livelocked).
  static constexpr double kMaxTopAttempts = 50.0;
  static constexpr double kMaxSiblingAttempts = 10.0;

 private:
  WorkloadParams params_;
  int cores_;
};

}  // namespace autopn::sim
