#include "sim/surface.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autopn::sim {

namespace {
/// Retry expansion 1/(1-p), truncated at a starvation cap.
double retry_expansion(double abort_prob, double cap) {
  return std::min(1.0 / std::max(1e-9, 1.0 - abort_prob), cap);
}
}  // namespace

SurfaceModel::SurfaceModel(WorkloadParams params, int cores)
    : params_(std::move(params)), cores_(cores) {
  if (cores < 1) throw std::invalid_argument{"SurfaceModel needs >= 1 core"};
}

double SurfaceModel::sibling_abort_probability(const opt::Config& config) const {
  // Each additional concurrent sibling adds a roughly constant pairwise
  // conflict hazard per attempt (sibling chunks cover disjoint-but-adjacent
  // data regions whose overlap does not shrink with chunk length).
  if (config.c <= 1) return 0.0;
  return 1.0 - std::exp(-params_.sibling_conflict * (config.c - 1));
}

/// Duration of one top-level attempt (no top-level retries), in seconds.
static double single_attempt_duration(const WorkloadParams& p, int cores,
                                      const opt::Config& config,
                                      double sibling_abort) {
  const double w = p.base_work;
  double attempt = 0.0;
  if (config.c <= 1) {
    // Nesting disabled: sequential body, no nesting overheads.
    attempt = w;
  } else {
    const double serial = w * (1.0 - p.parallel_fraction);
    const double chunk =
        w * p.parallel_fraction / std::pow(config.c, p.child_speedup_exponent);
    const double sibling_attempts =
        retry_expansion(sibling_abort, SurfaceModel::kMaxSiblingAttempts);
    attempt = serial + chunk * sibling_attempts + p.spawn_overhead * config.c +
              p.batch_overhead;
  }
  const double used = static_cast<double>(config.t) * config.c;
  return attempt * (1.0 + p.saturation * used / static_cast<double>(cores));
}

double SurfaceModel::top_abort_probability(const opt::Config& config) const {
  if (config.t <= 1) return 0.0;
  const double single = single_attempt_duration(params_, cores_, config,
                                                sibling_abort_probability(config));
  const double exposure = single / params_.base_work;
  return 1.0 - std::exp(-params_.top_conflict * (config.t - 1) * exposure);
}

double SurfaceModel::mean_throughput(const opt::Config& config) const {
  const double single = single_attempt_duration(params_, cores_, config,
                                                sibling_abort_probability(config));
  const double contended =
      static_cast<double>(config.t) /
      (single * retry_expansion(top_abort_probability(config), kMaxTopAttempts));
  // Winner-per-round floor: extreme contention serializes commits rather
  // than starving the system entirely. The floor cannot admit more winners
  // than there are concurrent transactions.
  const double floor =
      std::min(static_cast<double>(config.t), params_.contention_floor) / single;
  return std::max(contended, floor);
}

double SurfaceModel::mean_latency(const opt::Config& config) const {
  return static_cast<double>(config.t) / mean_throughput(config);
}

SurfaceModel::Optimum SurfaceModel::optimum(const opt::ConfigSpace& space) const {
  Optimum best;
  for (const opt::Config& cfg : space.all()) {
    const double thr = mean_throughput(cfg);
    if (thr > best.throughput) {
      best.throughput = thr;
      best.config = cfg;
    }
  }
  return best;
}

double SurfaceModel::distance_from_optimum(const opt::ConfigSpace& space,
                                           const opt::Config& config) const {
  const Optimum best = optimum(space);
  return (best.throughput - mean_throughput(config)) / best.throughput;
}

double SurfaceModel::sample(const opt::Config& config, double window_seconds,
                            util::Rng& rng) const {
  const double mean = mean_throughput(config);
  const double commits = std::max(1.0, mean * window_seconds);
  const double cv = params_.measurement_cv / std::sqrt(commits);
  return std::max(1e-9, mean * (1.0 + cv * rng.gaussian()));
}

}  // namespace autopn::sim
