#pragma once
// Discrete-event simulation of a PN-TM executing on an n-core machine — the
// high-fidelity complement to the closed-form SurfaceModel (DESIGN.md §3).
//
// Instead of a formula, throughput *emerges* from simulated concurrency:
//
//  * `t` top-level transaction slots run concurrently (the actuator's
//    t-gate); each attempt samples a service time and a read/write set of
//    data granules;
//  * nested execution splits the parallel fraction across `c` children with
//    per-child spawn overhead; sibling conflicts are sampled from the
//    children's granule picks and retried child-locally (closed-nesting
//    partial aborts), stretching the attempt;
//  * commits use multi-version timestamp validation, exactly like the real
//    STM: an attempt records the global version at start and aborts at
//    commit when any granule it read was re-written since (first committer
//    wins), then retries with fresh samples after backoff;
//  * every commit fires an optional callback with the virtual timestamp, so
//    the KPI monitor policies run in-the-loop unchanged.
//
// The DES validates the analytical model (bench/des_vs_analytical) and lets
// the entire tuning pipeline run at paper scale (48 cores) on this host.

#include <cstdint>
#include <functional>
#include <vector>

#include "opt/config_space.hpp"
#include "util/rng.hpp"

namespace autopn::sim {

struct DesParams {
  int cores = 48;

  /// Mean CPU time of one top-level transaction body at c = 1 (seconds);
  /// sampled per attempt from a lognormal-ish jitter around the mean.
  double base_work = 5e-4;
  /// Relative jitter of the service time.
  double work_jitter = 0.2;

  /// Fraction of base_work the children parallelize.
  double parallel_fraction = 0.75;
  /// Imbalance: the slowest child chunk takes parallel_work / c^exponent.
  double child_speedup_exponent = 0.85;
  /// Per-child activation overhead (seconds).
  double spawn_overhead = 1e-5;

  /// Shared data: number of granules (cache-line/object granularity).
  std::size_t data_granules = 4096;
  /// Granules read / written by one top-level transaction (its children's
  /// accesses included). Writes are a subset drawn uniformly.
  std::size_t reads_per_tx = 64;
  std::size_t writes_per_tx = 8;
  /// Fraction of the accesses drawn from a small hot region (contention
  /// knob; 0 = uniform access).
  double hot_fraction = 0.0;
  std::size_t hot_granules = 32;

  /// Probability that two concurrent siblings of one tree conflict per pair
  /// (their chunks touch adjacent granules).
  double sibling_conflict_prob = 0.02;

  /// Retry backoff: mean pause after an abort, in units of base_work.
  double backoff_fraction = 0.1;

  /// Shared-resource saturation: service times inflate by
  /// (1 + saturation * used_cores / cores), as in the analytical model
  /// (memory bandwidth / cache pressure grows with utilization).
  double saturation = 0.0;
};

/// Derives DES parameters approximating one of the analytical presets (used
/// by the cross-validation bench).
[[nodiscard]] DesParams des_from_workload(const struct WorkloadParams& params,
                                          int cores);

class DesSimulator {
 public:
  DesSimulator(DesParams params, opt::Config config, std::uint64_t seed);

  struct Result {
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t sibling_retries = 0;
    double sim_seconds = 0.0;

    [[nodiscard]] double throughput() const {
      return sim_seconds > 0.0 ? static_cast<double>(commits) / sim_seconds : 0.0;
    }
    [[nodiscard]] double abort_rate() const {
      const double attempts = static_cast<double>(commits + aborts);
      return attempts > 0 ? static_cast<double>(aborts) / attempts : 0.0;
    }
  };

  /// Runs the simulation for `sim_seconds` of virtual time.
  Result run(double sim_seconds);

  /// Runs until `commits` transactions committed (or `max_seconds` passed).
  Result run_commits(std::uint64_t commits, double max_seconds = 1e9);

  /// Called at each commit with the virtual timestamp (monitor hook).
  void set_commit_callback(std::function<void(double)> callback) {
    commit_callback_ = std::move(callback);
  }

  /// Current virtual time (advances across run() calls).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Reconfigures the parallelism degree; applies to attempts started after
  /// the call (in-flight attempts drain, as with the real actuator).
  void reconfigure(opt::Config config);

 private:
  struct Slot {
    double completion_time = 0.0;
    std::uint64_t start_version = 0;
    std::vector<std::uint32_t> reads;
    std::vector<std::uint32_t> writes;
    unsigned attempt = 0;
  };

  /// Samples an attempt for a slot starting at `start`: service time
  /// (including nested execution and sibling retries) and access sets.
  void start_attempt(Slot& slot, double start);

  /// Index of the slot with the earliest completion.
  [[nodiscard]] std::size_t next_slot() const;

  /// Processes one completion event; returns true if it committed.
  bool step();

  DesParams params_;
  opt::Config config_;
  util::Rng rng_;
  double now_ = 0.0;
  std::uint64_t global_version_ = 0;
  std::vector<std::uint64_t> granule_version_;
  std::vector<Slot> slots_;
  Result totals_;
  std::function<void(double)> commit_callback_;
};

}  // namespace autopn::sim
